#include "src/obs/span.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/util/query_context.h"
#include "src/util/thread_pool.h"

namespace c2lsh {
namespace obs {

namespace {

// ---------------------------------------------------------------------------
// Clock calibration: one process-lifetime anchor pairing a raw tick read
// with a steady-clock read. Export-time Calibrate() measures the tick rate
// over the (anchor, now) interval, so the longer the process has been
// tracing, the tighter the estimate — with a short bounded spin when an
// export happens almost immediately after the anchor was planted.

struct ClockAnchor {
  uint64_t ticks;
  std::chrono::steady_clock::time_point when;
};

const ClockAnchor& Anchor() {
  static const ClockAnchor a{TraceClock::NowTicks(),
                             std::chrono::steady_clock::now()};
  return a;
}

}  // namespace

uint64_t TraceClock::NowTicks() {
#if defined(__x86_64__) || defined(__i386__)
  // The invariant TSC: constant-rate, core-synchronized on every platform
  // this library targets. Confined to src/obs/ by lint's tsc-read rule.
  return __builtin_ia32_rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

TraceClock::Scale TraceClock::Calibrate() {
  const ClockAnchor& a = Anchor();
  // Ensure the measurement interval is long enough for a stable rate
  // estimate: a bounded busy-wait on the steady clock (never a sleep —
  // lint's raw-sleep rule holds in src/obs/ too), only ever taken when an
  // export runs within ~200us of the very first tick read.
  constexpr auto kMinInterval = std::chrono::microseconds(200);
  auto now = std::chrono::steady_clock::now();
  while (now - a.when < kMinInterval) {
    now = std::chrono::steady_clock::now();
  }
  const uint64_t now_ticks = NowTicks();
  const double elapsed_us =
      std::chrono::duration<double, std::micro>(now - a.when).count();
  Scale s;
  s.anchor_ticks = a.ticks;
  s.anchor_micros = 0.0;
  const double dticks =
      static_cast<double>(now_ticks) - static_cast<double>(a.ticks);
  // Fallback (non-monotone or zero-width interval): pretend 1 GHz.
  s.micros_per_tick = dticks > 0.0 ? elapsed_us / dticks : 1e-3;
  return s;
}

std::string_view SpanSubsystemName(SpanSubsystem s) {
  switch (s) {
    case SpanSubsystem::kQuery:
      return "query";
    case SpanSubsystem::kRound:
      return "round";
    case SpanSubsystem::kBatch:
      return "batch";
    case SpanSubsystem::kBufferPool:
      return "buffer_pool";
    case SpanSubsystem::kPageFile:
      return "page_file";
    case SpanSubsystem::kWal:
      return "wal";
    case SpanSubsystem::kThreadPool:
      return "thread_pool";
    case SpanSubsystem::kAdmission:
      return "admission";
    case SpanSubsystem::kRetry:
      return "retry";
    case SpanSubsystem::kCompaction:
      return "compaction";
    case SpanSubsystem::kOther:
      return "other";
    case SpanSubsystem::kServe:
      return "serve";
  }
  return "other";
}

// ---------------------------------------------------------------------------
// TraceRing

// Slot word layout (all release stores, in this order — the chain of
// release stores keeps them observed in program order on every target):
//   w7 = 0                (invalidate: readers of the old event bail out)
//   w0 = start_ticks
//   w1 = dur_ticks
//   w2 = name pointer     (static string literal)
//   w3 = kind | subsystem << 8
//   w4 = query_id
//   w5 = value bits       (bit-cast double)
//   w6 = generation       (emission index + 1; never 0)
//   w7 = generation       (publish)
// A reader accepts a slot only when w7 matches the expected generation both
// before and after reading the payload and w6 agrees — anything else means
// the writer lapped it, and the (older) event is dropped, not torn.
void TraceRing::Emit(TraceEventKind kind, SpanSubsystem subsystem,
                     const char* name, uint64_t start_ticks,
                     uint64_t dur_ticks, uint64_t query_id, double value) {
  const uint64_t idx = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[idx & (kCapacity - 1)];
  const uint64_t gen = idx + 1;
  s.w[7].store(0, std::memory_order_release);
  s.w[0].store(start_ticks, std::memory_order_release);
  s.w[1].store(dur_ticks, std::memory_order_release);
  s.w[2].store(reinterpret_cast<uint64_t>(name), std::memory_order_release);
  s.w[3].store(static_cast<uint64_t>(kind) |
                   (static_cast<uint64_t>(subsystem) << 8),
               std::memory_order_release);
  s.w[4].store(query_id, std::memory_order_release);
  s.w[5].store(std::bit_cast<uint64_t>(value), std::memory_order_release);
  s.w[6].store(gen, std::memory_order_release);
  s.w[7].store(gen, std::memory_order_release);
  head_.store(gen, std::memory_order_release);
}

void TraceRing::Snapshot(std::vector<TraceEvent>* out) const {
  const uint64_t h = head_.load(std::memory_order_acquire);
  const uint64_t lo = h > kCapacity ? h - kCapacity : 0;
  for (uint64_t idx = lo; idx < h; ++idx) {
    const Slot& s = slots_[idx & (kCapacity - 1)];
    const uint64_t gen = idx + 1;
    if (s.w[7].load(std::memory_order_acquire) != gen) continue;
    TraceEvent e;
    e.seq = idx;
    e.tid = tid_;
    e.start_ticks = s.w[0].load(std::memory_order_acquire);
    e.dur_ticks = s.w[1].load(std::memory_order_acquire);
    const uint64_t name_bits = s.w[2].load(std::memory_order_acquire);
    const uint64_t tag = s.w[3].load(std::memory_order_acquire);
    e.query_id = s.w[4].load(std::memory_order_acquire);
    e.value =
        std::bit_cast<double>(s.w[5].load(std::memory_order_acquire));
    // Re-check: if the writer lapped this slot mid-read, its invalidate (or
    // new generation) is necessarily visible by now — drop, never tear.
    if (s.w[6].load(std::memory_order_acquire) != gen ||
        s.w[7].load(std::memory_order_acquire) != gen) {
      continue;
    }
    e.name = reinterpret_cast<const char*>(name_bits);
    e.kind = static_cast<TraceEventKind>(tag & 0xff);
    e.subsystem = static_cast<SpanSubsystem>((tag >> 8) & 0xff);
    out->push_back(e);
  }
}

// ---------------------------------------------------------------------------
// Tracer

Tracer& Tracer::Global() {
  // Intentionally leaked, like MetricsRegistry::Global(): thread rings may
  // be touched from static destructors after main.
  static Tracer* tracer = new Tracer();  // NOLINT(banned-function)
  return *tracer;
}

namespace {

// ThreadPool dispatch hooks: the util layer cannot link obs (obs links
// util), so the pool exposes a narrow callback seam and this TU is its only
// installer. The hooks re-check the tracing gate so a disabled tracer costs
// the pool one pointer load + branch per region.
uint64_t PoolTraceBegin(const char* what, size_t n) {
  (void)what;
  (void)n;
  if (!Tracer::enabled()) return 0;
  return TraceClock::NowTicks();
}

void PoolTraceEnd(uint64_t token, const char* what, size_t n) {
  if (token == 0 || !Tracer::enabled()) return;
  const uint64_t end = TraceClock::NowTicks();
  Tracer::Global().ThreadRing()->Emit(
      TraceEventKind::kSpan, SpanSubsystem::kThreadPool, what, token,
      end > token ? end - token : 0, /*query_id=*/0,
      static_cast<double>(n));
}

constexpr ThreadPoolTraceHooks kPoolTraceHooks{&PoolTraceBegin,
                                               &PoolTraceEnd};

}  // namespace

void Tracer::SetMode(TraceMode mode, uint64_t every_nth) {
  every_nth_.store(std::max<uint64_t>(1, every_nth),
                   std::memory_order_relaxed);
  mode_.store(mode, std::memory_order_relaxed);
  if (mode != TraceMode::kOff) {
    (void)Anchor();  // plant the calibration anchor before the first event
    SetThreadPoolTraceHooks(&kPoolTraceHooks);
  }
  span_internal::g_tracing_enabled.store(mode != TraceMode::kOff,
                                         std::memory_order_relaxed);
}

TraceRing* Tracer::ThreadRing() {
  thread_local TraceRing* ring = [this] {
    auto owned = std::make_unique<TraceRing>();
    TraceRing* raw = owned.get();
    MutexLock lock(&mu_);
    raw->tid_ = static_cast<uint32_t>(rings_.size());
    rings_.push_back(std::move(owned));
    return raw;
  }();
  return ring;
}

bool Tracer::SampleQuery(const QueryContext* ctx) {
  switch (mode()) {
    case TraceMode::kOff:
      return false;
    case TraceMode::kAlways:
      return true;
    case TraceMode::kPerQuery:
      return ctx != nullptr && ctx->trace;
    case TraceMode::kEveryNth: {
      const uint64_t n =
          std::max<uint64_t>(1, every_nth_.load(std::memory_order_relaxed));
      return query_counter_.fetch_add(1, std::memory_order_relaxed) % n == 0;
    }
  }
  return false;
}

std::vector<TraceEvent> Tracer::SnapshotAll() const {
  std::vector<TraceEvent> out;
  {
    MutexLock lock(&mu_);
    // analyze-ok(cancellation-cadence): bounded by kCapacity * thread count; runs only at dump/export time, never on a query's hot path.
    for (const auto& ring : rings_) ring->Snapshot(&out);
  }
  const uint64_t floor_ticks = clear_ticks_.load(std::memory_order_relaxed);
  if (floor_ticks != 0) {
    out.erase(std::remove_if(out.begin(), out.end(),
                             [floor_ticks](const TraceEvent& e) {
                               return e.start_ticks < floor_ticks;
                             }),
              out.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ticks != b.start_ticks
                         ? a.start_ticks < b.start_ticks
                         : (a.tid != b.tid ? a.tid < b.tid : a.seq < b.seq);
            });
  return out;
}

uint64_t Tracer::DroppedTotal() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

void Tracer::Clear() {
  clear_ticks_.store(TraceClock::NowTicks(), std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Emission helpers

void ScopedSpan::End() {
  if (!armed_) return;
  armed_ = false;
  const uint64_t end = TraceClock::NowTicks();
  Tracer::Global().ThreadRing()->Emit(TraceEventKind::kSpan, subsystem_,
                                      name_, start_,
                                      end > start_ ? end - start_ : 0,
                                      query_id_, 0.0);
}

void TraceInstant(SpanSubsystem subsystem, const char* name,
                  uint64_t query_id, double value) {
  if (!Tracer::enabled()) return;
  Tracer::Global().ThreadRing()->Emit(TraceEventKind::kInstant, subsystem,
                                      name, TraceClock::NowTicks(), 0,
                                      query_id, value);
}

void TraceCounter(SpanSubsystem subsystem, const char* name, double value) {
  if (!Tracer::enabled()) return;
  Tracer::Global().ThreadRing()->Emit(TraceEventKind::kCounter, subsystem,
                                      name, TraceClock::NowTicks(), 0,
                                      /*query_id=*/0, value);
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON export

namespace {

// Same escaping contract as export.cc's EscapeJson (kept local: the two TUs
// escape different payloads and share no other code).
std::string EscapeJsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FmtMicros(double us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", us < 0.0 ? 0.0 : us);
  return std::string(buf);
}

std::string FmtValue(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

}  // namespace

std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              std::string_view process_name) {
  const TraceClock::Scale scale = TraceClock::Calibrate();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"tid\": 0, \"args\": {\"name\": \"" +
         EscapeJsonString(process_name) + "\"}}";
  // analyze-ok(cancellation-cadence): export runs at dump time over an already-snapshotted, ring-bounded event list — not on a query's hot path.
  for (const TraceEvent& e : events) {
    out += ",\n{\"name\": \"";
    out += EscapeJsonString(e.name);
    out += "\", \"cat\": \"";
    out += SpanSubsystemName(e.subsystem);
    out += "\", \"ph\": \"";
    switch (e.kind) {
      case TraceEventKind::kSpan:
        out += "X";
        break;
      case TraceEventKind::kInstant:
        out += "i";
        break;
      case TraceEventKind::kCounter:
        out += "C";
        break;
    }
    out += "\", \"pid\": 1, \"tid\": " + std::to_string(e.tid);
    out += ", \"ts\": " + FmtMicros(TraceClock::ToMicros(e.start_ticks, scale));
    if (e.kind == TraceEventKind::kSpan) {
      const double dur_us =
          static_cast<double>(e.dur_ticks) * scale.micros_per_tick;
      out += ", \"dur\": " + FmtMicros(dur_us);
    }
    if (e.kind == TraceEventKind::kInstant) out += ", \"s\": \"t\"";
    out += ", \"args\": {";
    bool first_arg = true;
    if (e.query_id != 0) {
      out += "\"query_id\": " + std::to_string(e.query_id);
      first_arg = false;
    }
    if (e.kind == TraceEventKind::kCounter || e.value != 0.0) {
      if (!first_arg) out += ", ";
      out += "\"value\": " + FmtValue(e.value);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON validator: a minimal recursive-descent JSON
// parser (objects, arrays, strings, numbers, literals) plus the trace-event
// shape checks. Mirrors ValidatePrometheusText: first offender wins and is
// named in the error.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct JsonParser {
  std::string_view text;
  size_t pos = 0;
  std::string error;  // first parse error, empty = OK

  bool Fail(const std::string& why) {
    if (error.empty()) {
      error = "byte " + std::to_string(pos) + ": " + why;
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos >= text.size() || text[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos >= text.size() || text[pos] != '"') {
      return Fail("expected string");
    }
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos];
      if (c == '\\') {
        if (pos + 1 >= text.size()) return Fail("dangling escape");
        const char esc = text[pos + 1];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            *out += esc;
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
          case 'f':
            *out += ' ';
            break;
          case 'u': {
            if (pos + 5 >= text.size()) return Fail("truncated \\u escape");
            for (size_t k = pos + 2; k < pos + 6; ++k) {
              const char h = text[k];
              const bool hex = (h >= '0' && h <= '9') ||
                               (h >= 'a' && h <= 'f') ||
                               (h >= 'A' && h <= 'F');
              if (!hex) return Fail("bad \\u escape");
            }
            *out += '?';  // validation only cares that it parses
            pos += 4;
            break;
          }
          default:
            return Fail("invalid escape");
        }
        pos += 2;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      } else {
        *out += c;
        ++pos;
      }
    }
    if (pos >= text.size()) return Fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  bool ParseNumber(double* out) {
    SkipWs();
    const size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
            text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return Fail("expected number");
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("malformed number");
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > 64) return Fail("nesting too deep");
    SkipWs();
    if (pos >= text.size()) return Fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out->type = JsonValue::Type::kObject;
      SkipWs();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue v;
        if (!ParseValue(&v, depth + 1)) return false;
        out->object.emplace_back(std::move(key), std::move(v));
        SkipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      out->type = JsonValue::Type::kArray;
      SkipWs();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        JsonValue v;
        if (!ParseValue(&v, depth + 1)) return false;
        out->array.push_back(std::move(v));
        SkipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return Consume(']');
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (text.substr(pos, 4) == "true") {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      pos += 4;
      return true;
    }
    if (text.substr(pos, 5) == "false") {
      out->type = JsonValue::Type::kBool;
      pos += 5;
      return true;
    }
    if (text.substr(pos, 4) == "null") {
      out->type = JsonValue::Type::kNull;
      pos += 4;
      return true;
    }
    out->type = JsonValue::Type::kNumber;
    return ParseNumber(&out->number);
  }
};

bool IsIntegral(const JsonValue& v) {
  return v.type == JsonValue::Type::kNumber &&
         v.number == static_cast<double>(static_cast<long long>(v.number));
}

Status EventError(size_t index, const std::string& why) {
  return Status::InvalidArgument("chrome trace event #" +
                                 std::to_string(index) + ": " + why);
}

}  // namespace

Status ValidateChromeTraceJson(std::string_view json) {
  JsonParser p{json, 0, {}};
  JsonValue root;
  if (!p.ParseValue(&root, 0)) {
    return Status::InvalidArgument("chrome trace json: " + p.error);
  }
  p.SkipWs();
  if (p.pos != json.size()) {
    return Status::InvalidArgument(
        "chrome trace json: trailing garbage at byte " +
        std::to_string(p.pos));
  }

  // Both container formats load in Perfetto: the JSON-object format (an
  // object with a traceEvents array — what ExportChromeTrace writes) and
  // the bare JSON-array format.
  const JsonValue* events = nullptr;
  if (root.type == JsonValue::Type::kArray) {
    events = &root;
  } else if (root.type == JsonValue::Type::kObject) {
    events = root.Find("traceEvents");
    if (events == nullptr) {
      return Status::InvalidArgument(
          "chrome trace json: top-level object has no 'traceEvents' member");
    }
    if (events->type != JsonValue::Type::kArray) {
      return Status::InvalidArgument(
          "chrome trace json: 'traceEvents' is not an array");
    }
  } else {
    return Status::InvalidArgument(
        "chrome trace json: top level must be an object or an array");
  }

  // Per-tid B/E balance, the histogram-cumulative analogue of this format.
  std::vector<std::pair<double, long long>> begin_depth;  // (tid, depth)
  auto depth_for = [&begin_depth](double tid) -> long long& {
    for (auto& [t, d] : begin_depth) {
      if (t == tid) return d;
    }
    begin_depth.emplace_back(tid, 0);
    return begin_depth.back().second;
  };

  static constexpr std::string_view kPhases = "XBEiICM";
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    if (e.type != JsonValue::Type::kObject) {
      return EventError(i, "not an object");
    }
    const JsonValue* name = e.Find("name");
    if (name == nullptr || name->type != JsonValue::Type::kString ||
        name->str.empty()) {
      return EventError(i, "missing or empty string 'name'");
    }
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString ||
        ph->str.size() != 1 ||
        kPhases.find(ph->str[0]) == std::string_view::npos) {
      return EventError(i, "'ph' must be one of X/B/E/i/I/C/M");
    }
    for (const char* field : {"pid", "tid"}) {
      const JsonValue* v = e.Find(field);
      if (v == nullptr || !IsIntegral(*v)) {
        return EventError(i, std::string("'") + field +
                                 "' must be an integer");
      }
    }
    const bool metadata = ph->str[0] == 'M';
    const JsonValue* ts = e.Find("ts");
    if (!metadata) {
      if (ts == nullptr || ts->type != JsonValue::Type::kNumber) {
        return EventError(i, "missing numeric 'ts'");
      }
      if (ts->number < 0.0) return EventError(i, "'ts' is negative");
    }
    if (ph->str[0] == 'X') {
      const JsonValue* dur = e.Find("dur");
      if (dur == nullptr || dur->type != JsonValue::Type::kNumber) {
        return EventError(i, "complete ('X') event missing numeric 'dur'");
      }
      if (dur->number < 0.0) return EventError(i, "'dur' is negative");
    }
    const JsonValue* args = e.Find("args");
    if (args != nullptr && args->type != JsonValue::Type::kObject) {
      return EventError(i, "'args' must be an object");
    }
    const JsonValue* cat = e.Find("cat");
    if (cat != nullptr && cat->type != JsonValue::Type::kString) {
      return EventError(i, "'cat' must be a string");
    }
    if (ph->str[0] == 'B') ++depth_for(e.Find("tid")->number);
    if (ph->str[0] == 'E') {
      long long& d = depth_for(e.Find("tid")->number);
      if (--d < 0) {
        return EventError(i, "'E' without a matching 'B' on its tid");
      }
    }
  }
  for (const auto& [tid, depth] : begin_depth) {
    if (depth != 0) {
      return Status::InvalidArgument(
          "chrome trace json: tid " + std::to_string(tid) + " has " +
          std::to_string(depth) + " unclosed 'B' event(s)");
    }
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace c2lsh
