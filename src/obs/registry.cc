#include "src/obs/registry.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace c2lsh {
namespace obs {
namespace {

// Percentile by cumulative walk + linear interpolation, over a consistent
// local copy of the bucket counts (so a snapshot's p50/p95/p99 agree with
// its cumulative series even while writers are active).
double PercentileFromCounts(const uint64_t* counts, uint64_t total, double p) {
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    const uint64_t prev = cum;
    cum += counts[i];
    if (static_cast<double>(cum) >= rank) {
      const double lo = (i == 0) ? 0.0 : Histogram::BucketUpperBound(i - 1);
      if (i == Histogram::kNumBuckets - 1) return lo;  // overflow: no width
      const double hi = Histogram::BucketUpperBound(i);
      const double frac = std::clamp(
          (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]),
          0.0, 1.0);
      return lo + (hi - lo) * frac;
    }
  }
  return Histogram::BucketUpperBound(Histogram::kNumBuckets - 2);
}

}  // namespace

size_t Histogram::BucketIndex(double value) {
  const double min_value = std::ldexp(1.0, kMinExp);
  // !(value >= min) also routes NaN and negatives into the underflow bucket.
  if (!(value >= min_value)) return 0;
  if (value >= std::ldexp(1.0, kMaxExp)) return kNumBuckets - 1;
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // frac in [0.5, 1)
  int sub = static_cast<int>((frac - 0.5) * (2 * kSubBucketsPerOctave));
  sub = std::clamp(sub, 0, kSubBucketsPerOctave - 1);
  const long idx = 1 + (static_cast<long>(exp) - 1 - kMinExp) *
                           kSubBucketsPerOctave + sub;
  return static_cast<size_t>(
      std::clamp(idx, 1L, static_cast<long>(kNumBuckets) - 2));
}

double Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return std::ldexp(1.0, kMinExp);
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  const size_t j = i - 1;
  const int octave = static_cast<int>(j) / kSubBucketsPerOctave;
  const int sub = static_cast<int>(j) % kSubBucketsPerOctave;
  return std::ldexp(
      1.0 + static_cast<double>(sub + 1) / kSubBucketsPerOctave,
      kMinExp + octave);
}

void Histogram::Observe(double value, uint64_t exemplar_id) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  uint64_t new_bits;
  do {
    new_bits = std::bit_cast<uint64_t>(std::bit_cast<double>(old_bits) + value);
  } while (!sum_bits_.compare_exchange_weak(
      old_bits, new_bits, std::memory_order_relaxed,
      std::memory_order_relaxed));
  if (exemplar_id == 0) return;
  // Keep the largest exemplar-tagged observation: (float(value), id32)
  // packed into one word, CAS-max on the value half. The float comparison
  // can be done on the packed words directly because non-negative floats
  // order the same as their bit patterns.
  const float fvalue = value < 0.0 ? 0.0f : static_cast<float>(value);
  const uint64_t packed =
      (static_cast<uint64_t>(std::bit_cast<uint32_t>(fvalue)) << 32) |
      (exemplar_id & 0xffffffffu);
  uint64_t cur = exemplar_bits_.load(std::memory_order_relaxed);
  while ((cur >> 32) < (packed >> 32) || cur == 0) {
    if (exemplar_bits_.compare_exchange_weak(cur, packed,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
      break;
    }
  }
}

std::pair<double, uint64_t> Histogram::Exemplar() const {
  const uint64_t bits = exemplar_bits_.load(std::memory_order_relaxed);
  if (bits == 0) return {0.0, 0};
  const float fvalue =
      std::bit_cast<float>(static_cast<uint32_t>(bits >> 32));
  return {static_cast<double>(fvalue), bits & 0xffffffffu};
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::Percentile(double p) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  return PercentileFromCounts(counts, total, p);
}

void Histogram::Reset() {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_bits_.store(0, std::memory_order_relaxed);
  exemplar_bits_.store(0, std::memory_order_relaxed);
}

bool MetricsRegistry::ValidName(std::string_view name) {
  if (name.empty()) return false;
  const char first = name.front();
  if (!((first >= 'a' && first <= 'z') || first == '_')) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked: cached metric pointers must stay valid even in
  // static destructors that run after main (e.g. a pool flushing at exit).
  static MetricsRegistry* registry = new MetricsRegistry();  // NOLINT(banned-function)
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  if (!ValidName(name)) return nullptr;
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.type = MetricType::kCounter;
    e.help = std::string(help);
    e.counter = std::make_unique<Counter>();
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  }
  if (it->second.type != MetricType::kCounter) return nullptr;
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  if (!ValidName(name)) return nullptr;
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.type = MetricType::kGauge;
    e.help = std::string(help);
    e.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  }
  if (it->second.type != MetricType::kGauge) return nullptr;
  return it->second.gauge.get();
}

Gauge* MetricsRegistry::GetGaugeWithLabels(std::string_view name,
                                           std::string_view help,
                                           std::string_view labels) {
  if (!ValidName(name)) return nullptr;
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.type = MetricType::kGauge;
    e.help = std::string(help);
    e.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  }
  if (it->second.type != MetricType::kGauge) return nullptr;
  // Unlike help, labels refresh on every call: an info metric's labels ARE
  // its value (c2lsh_build_info re-registers when the SIMD dispatch moves).
  it->second.labels = std::string(labels);
  return it->second.gauge.get();
}

Counter* MetricsRegistry::GetCounterWithLabels(std::string_view name,
                                               std::string_view help,
                                               std::string_view labels) {
  if (!ValidName(name)) return nullptr;
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.type = MetricType::kCounter;
    e.help = std::string(help);
    e.counter = std::make_unique<Counter>();
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  }
  if (it->second.type != MetricType::kCounter) return nullptr;
  it->second.labels = std::string(labels);
  return it->second.counter.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help) {
  if (!ValidName(name)) return nullptr;
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.type = MetricType::kHistogram;
    e.help = std::string(help);
    e.histogram = std::make_unique<Histogram>();
    it = metrics_.emplace(std::string(name), std::move(e)).first;
  }
  if (it->second.type != MetricType::kHistogram) return nullptr;
  return it->second.histogram.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.type != MetricType::kCounter) {
    return nullptr;
  }
  return it->second.counter.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.type != MetricType::kGauge) {
    return nullptr;
  }
  return it->second.gauge.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.type != MetricType::kHistogram) {
    return nullptr;
  }
  return it->second.histogram.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  MutexLock lock(&mu_);
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.help = entry.help;
    snap.type = entry.type;
    snap.labels = entry.labels;
    switch (entry.type) {
      case MetricType::kCounter:
        snap.counter_value = entry.counter->value();
        break;
      case MetricType::kGauge:
        snap.gauge_value = entry.gauge->value();
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry.histogram;
        uint64_t counts[Histogram::kNumBuckets];
        uint64_t total = 0;
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          counts[i] = h.BucketCount(i);
          total += counts[i];
        }
        snap.histogram.count = total;
        snap.histogram.sum = h.sum();
        snap.histogram.p50 = PercentileFromCounts(counts, total, 0.50);
        snap.histogram.p95 = PercentileFromCounts(counts, total, 0.95);
        snap.histogram.p99 = PercentileFromCounts(counts, total, 0.99);
        uint64_t cum = 0;
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          cum += counts[i];
          if (counts[i] != 0 && i != Histogram::kNumBuckets - 1) {
            snap.histogram.cumulative.emplace_back(
                Histogram::BucketUpperBound(i), cum);
          }
        }
        // The +Inf bucket is always present and equals the total count.
        snap.histogram.cumulative.emplace_back(
            std::numeric_limits<double>::infinity(), total);
        const auto [exemplar_value, exemplar_id] = h.Exemplar();
        snap.histogram.exemplar_value = exemplar_value;
        snap.histogram.exemplar_id = exemplar_id;
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;  // std::map iteration order is already sorted by name
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.type) {
      case MetricType::kCounter:
        entry.counter->Reset();
        break;
      case MetricType::kGauge:
        entry.gauge->Reset();
        break;
      case MetricType::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace obs
}  // namespace c2lsh
