// Build attribution metrics: ties every scrape and flight-recorder dump to
// a specific build of the library.
//
//   c2lsh_build_info{git="...", isa="...", sanitizer="..."} 1
//     An info-style gauge (constant value 1; the payload is the labels):
//     `git` is the `git describe` of the source tree the library was built
//     from, `isa` the active SIMD dispatch target (re-registered when
//     ForceIsa or the C2LSH_SIMD override changes it), `sanitizer` the
//     C2LSH_SANITIZE mode ("none" in plain builds).
//   process_start_time_seconds
//     Unix timestamp of (approximately) process start — set once at first
//     registration, the conventional Prometheus name for scrape-age math.
//
// Registration happens automatically at first SIMD dispatch (simd.cc calls
// RegisterBuildMetrics with the chosen ISA), so any binary that touches a
// kernel exports attribution without extra wiring; tools that never
// dispatch can call it directly.

#pragma once
#ifndef C2LSH_OBS_BUILD_INFO_H_
#define C2LSH_OBS_BUILD_INFO_H_

#include <string_view>

namespace c2lsh {
namespace obs {

/// Registers (or refreshes) c2lsh_build_info with the given active-ISA
/// label and sets process_start_time_seconds on first call. Idempotent and
/// thread-safe; cheap enough to call from the dispatch path (one registry
/// lookup after the first call).
void RegisterBuildMetrics(std::string_view isa_name);

/// The `git describe` string baked in at configure time ("unknown" when the
/// tree was built outside git).
std::string_view BuildGitDescribe();

/// The sanitizer mode baked in at configure time ("none", "address", ...).
std::string_view BuildSanitizerMode();

}  // namespace obs
}  // namespace c2lsh

#endif  // C2LSH_OBS_BUILD_INFO_H_
