#include "src/obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace c2lsh {
namespace obs {
namespace {

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string FmtDouble(double v, const char* fmt = "%.17g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return std::string(buf);
}

// Prometheus renders the +Inf bucket bound literally; finite bounds as
// floats with full round-trip precision.
std::string PromBound(double le) {
  if (std::isinf(le)) return le > 0 ? "+Inf" : "-Inf";
  return FmtDouble(le);
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// HELP text escaping per the exposition format: backslash and newline only.
std::string EscapePromHelp(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string FormatTable(const std::vector<MetricSnapshot>& snapshot) {
  // The metric column shows constant labels inline: name{k="v",...}.
  const auto display_name = [](const MetricSnapshot& m) {
    return m.labels.empty() ? m.name : m.name + "{" + m.labels + "}";
  };
  size_t width = 6;  // len("metric")
  for (const MetricSnapshot& m : snapshot) {
    width = std::max(width, display_name(m).size());
  }
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%-*s  %-9s  value\n",
                static_cast<int>(width), "metric", "type");
  out += buf;
  out += std::string(width + 2 + 9 + 2 + 40, '-');
  out += "\n";
  for (const MetricSnapshot& m : snapshot) {
    switch (m.type) {
      case MetricType::kCounter:
        std::snprintf(buf, sizeof(buf), "%-*s  %-9s  %" PRIu64 "\n",
                      static_cast<int>(width), display_name(m).c_str(),
                      "counter", m.counter_value);
        break;
      case MetricType::kGauge:
        std::snprintf(buf, sizeof(buf), "%-*s  %-9s  %.6g\n",
                      static_cast<int>(width), display_name(m).c_str(),
                      "gauge", m.gauge_value);
        break;
      case MetricType::kHistogram:
        // An empty histogram has no distribution: rendering p50/p95/p99
        // would fabricate zeros that read like real (fast!) latencies.
        if (m.histogram.count == 0) {
          std::snprintf(buf, sizeof(buf), "%-*s  %-9s  count=0\n",
                        static_cast<int>(width), display_name(m).c_str(),
                        "histogram");
        } else if (m.histogram.exemplar_id != 0) {
          std::snprintf(buf, sizeof(buf),
                        "%-*s  %-9s  count=%" PRIu64
                        " sum=%.6g p50=%.4g p95=%.4g p99=%.4g"
                        " exemplar=%.4g@%" PRIu64 "\n",
                        static_cast<int>(width), display_name(m).c_str(),
                        "histogram", m.histogram.count, m.histogram.sum,
                        m.histogram.p50, m.histogram.p95, m.histogram.p99,
                        m.histogram.exemplar_value, m.histogram.exemplar_id);
        } else {
          std::snprintf(buf, sizeof(buf),
                        "%-*s  %-9s  count=%" PRIu64
                        " sum=%.6g p50=%.4g p95=%.4g p99=%.4g\n",
                        static_cast<int>(width), display_name(m).c_str(),
                        "histogram", m.histogram.count, m.histogram.sum,
                        m.histogram.p50, m.histogram.p95, m.histogram.p99);
        }
        break;
    }
    out += buf;
  }
  return out;
}

std::string FormatJson(const std::vector<MetricSnapshot>& snapshot) {
  std::string out = "{";
  bool first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + EscapeJson(m.name) + "\": {\"type\": \"";
    out += TypeName(m.type);
    out += "\", \"help\": \"" + EscapeJson(m.help) + "\"";
    if (!m.labels.empty()) {
      out += ", \"labels\": \"" + EscapeJson(m.labels) + "\"";
    }
    switch (m.type) {
      case MetricType::kCounter:
        out += ", \"value\": " + std::to_string(m.counter_value);
        break;
      case MetricType::kGauge:
        out += ", \"value\": " + FmtDouble(m.gauge_value, "%.6g");
        break;
      case MetricType::kHistogram: {
        out += ", \"count\": " + std::to_string(m.histogram.count);
        out += ", \"sum\": " + FmtDouble(m.histogram.sum, "%.6g");
        // Percentiles only exist once there is a distribution; an empty
        // histogram must not fabricate p50/p95/p99 zeros.
        if (m.histogram.count != 0) {
          out += ", \"p50\": " + FmtDouble(m.histogram.p50, "%.6g");
          out += ", \"p95\": " + FmtDouble(m.histogram.p95, "%.6g");
          out += ", \"p99\": " + FmtDouble(m.histogram.p99, "%.6g");
        }
        if (m.histogram.exemplar_id != 0) {
          out += ", \"exemplar\": {\"value\": " +
                 FmtDouble(m.histogram.exemplar_value, "%.6g") +
                 ", \"trace_id\": " +
                 std::to_string(m.histogram.exemplar_id) + "}";
        }
        out += ", \"buckets\": [";
        for (size_t i = 0; i < m.histogram.cumulative.size(); ++i) {
          const auto& [le, cum] = m.histogram.cumulative[i];
          if (i > 0) out += ", ";
          // JSON has no Infinity literal; the +Inf bound becomes a string.
          out += "{\"le\": ";
          out += std::isinf(le) ? "\"+Inf\"" : FmtDouble(le, "%.17g");
          out += ", \"cumulative\": " + std::to_string(cum) + "}";
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "\n}\n";
  return out;
}

std::string FormatPrometheus(const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  for (const MetricSnapshot& m : snapshot) {
    if (!m.help.empty()) {
      out += "# HELP " + m.name + " " + EscapePromHelp(m.help) + "\n";
    }
    out += "# TYPE " + m.name + " ";
    out += TypeName(m.type);
    out += "\n";
    // Constant labels (info metrics like c2lsh_build_info) render inline;
    // histograms never carry them in this registry.
    const std::string label_set =
        m.labels.empty() ? std::string() : "{" + m.labels + "}";
    switch (m.type) {
      case MetricType::kCounter:
        out += m.name + label_set + " " + std::to_string(m.counter_value) +
               "\n";
        break;
      case MetricType::kGauge:
        out += m.name + label_set + " " + FmtDouble(m.gauge_value) + "\n";
        break;
      case MetricType::kHistogram:
        for (const auto& [le, cum] : m.histogram.cumulative) {
          out += m.name + "_bucket{le=\"" + PromBound(le) + "\"} " +
                 std::to_string(cum) + "\n";
        }
        out += m.name + "_sum " + FmtDouble(m.histogram.sum) + "\n";
        out += m.name + "_count " + std::to_string(m.histogram.count) + "\n";
        break;
    }
  }
  return out;
}

namespace {

bool NameHead(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool NameTail(char c) {
  return NameHead(c) || (c >= '0' && c <= '9');
}
bool LabelNameHead(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool LabelNameTail(char c) {
  return LabelNameHead(c) || (c >= '0' && c <= '9');
}

size_t SkipSpace(std::string_view s, size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return i;
}

// strtod accepts the full Prometheus value vocabulary, including +Inf,
// -Inf, and NaN (case-insensitively); require the whole token to parse.
bool ParseFloatToken(std::string_view token, double* out) {
  if (token.empty()) return false;
  const std::string buf(token);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseIntToken(std::string_view token) {
  if (token.empty()) return false;
  const std::string buf(token);
  char* end = nullptr;
  (void)std::strtoll(buf.c_str(), &end, 10);
  return end == buf.c_str() + buf.size();
}

struct BucketSample {
  double le = 0.0;
  double cumulative = 0.0;
};

}  // namespace

Status ValidatePrometheusText(std::string_view text) {
  // Per-series bookkeeping for the histogram semantic checks.
  std::map<std::string, std::vector<BucketSample>> buckets;
  std::map<std::string, double> counts;

  size_t lineno = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, (nl == std::string_view::npos ? text.size() : nl) -
                             pos);
    pos = (nl == std::string_view::npos) ? text.size() : nl + 1;
    ++lineno;
    const auto fail = [lineno](const std::string& why) {
      return Status::InvalidArgument("prometheus text line " +
                                     std::to_string(lineno) + ": " + why);
    };

    if (SkipSpace(line, 0) == line.size()) continue;  // blank line

    if (line[0] == '#') {
      // "# HELP <name> <text>" / "# TYPE <name> <type>" / free comment.
      size_t i = SkipSpace(line, 1);
      size_t kw_end = i;
      while (kw_end < line.size() && line[kw_end] != ' ' &&
             line[kw_end] != '\t') {
        ++kw_end;
      }
      const std::string_view keyword = line.substr(i, kw_end - i);
      if (keyword != "HELP" && keyword != "TYPE") continue;  // plain comment
      i = SkipSpace(line, kw_end);
      size_t name_end = i;
      while (name_end < line.size() && NameTail(line[name_end])) ++name_end;
      if (name_end == i || !NameHead(line[i])) {
        return fail("missing metric name after # " + std::string(keyword));
      }
      if (keyword == "TYPE") {
        const size_t t = SkipSpace(line, name_end);
        size_t t_end = t;
        while (t_end < line.size() && line[t_end] != ' ' &&
               line[t_end] != '\t') {
          ++t_end;
        }
        const std::string_view type = line.substr(t, t_end - t);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail("unknown metric type '" + std::string(type) + "'");
        }
        if (SkipSpace(line, t_end) != line.size()) {
          return fail("trailing characters after # TYPE");
        }
      } else if (name_end == line.size()) {
        return fail("# HELP without help text");
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    if (!NameHead(line[0])) return fail("expected metric name");
    size_t i = 1;
    while (i < line.size() && NameTail(line[i])) ++i;
    const std::string name(line.substr(0, i));

    bool has_le = false;
    double le = 0.0;
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (true) {
        i = SkipSpace(line, i);
        if (i >= line.size()) return fail("unterminated label set");
        if (line[i] == '}') {
          ++i;
          break;
        }
        if (i >= line.size() || !LabelNameHead(line[i])) {
          return fail("expected label name");
        }
        const size_t ln_start = i;
        while (i < line.size() && LabelNameTail(line[i])) ++i;
        const std::string_view label = line.substr(ln_start, i - ln_start);
        if (i >= line.size() || line[i] != '=') {
          return fail("expected '=' after label name");
        }
        ++i;
        if (i >= line.size() || line[i] != '"') {
          return fail("label value must be double-quoted");
        }
        ++i;
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            if (i + 1 >= line.size()) return fail("dangling escape");
            const char esc = line[i + 1];
            if (esc != '\\' && esc != '"' && esc != 'n') {
              return fail("invalid escape in label value");
            }
            value += (esc == 'n') ? '\n' : esc;
            i += 2;
          } else {
            value += line[i];
            ++i;
          }
        }
        if (i >= line.size()) return fail("unterminated label value");
        ++i;  // closing quote
        if (label == "le") {
          if (!ParseFloatToken(value, &le)) {
            return fail("le label is not a float: '" + value + "'");
          }
          has_le = true;
        }
        i = SkipSpace(line, i);
        if (i < line.size() && line[i] == ',') {
          ++i;  // next label (a trailing comma before '}' is legal)
        } else if (i >= line.size() || line[i] != '}') {
          return fail("expected ',' or '}' after label");
        }
      }
    }

    const size_t v_start = SkipSpace(line, i);
    if (v_start == i) return fail("expected whitespace before sample value");
    size_t v_end = v_start;
    while (v_end < line.size() && line[v_end] != ' ' && line[v_end] != '\t') {
      ++v_end;
    }
    double value = 0.0;
    if (!ParseFloatToken(line.substr(v_start, v_end - v_start), &value)) {
      return fail("sample value is not a float");
    }
    const size_t ts_start = SkipSpace(line, v_end);
    if (ts_start < line.size()) {
      size_t ts_end = ts_start;
      while (ts_end < line.size() && line[ts_end] != ' ' &&
             line[ts_end] != '\t') {
        ++ts_end;
      }
      if (!ParseIntToken(line.substr(ts_start, ts_end - ts_start))) {
        return fail("timestamp is not an integer");
      }
      if (SkipSpace(line, ts_end) != line.size()) {
        return fail("trailing characters after timestamp");
      }
    }

    constexpr std::string_view kBucket = "_bucket";
    constexpr std::string_view kCount = "_count";
    if (name.size() > kBucket.size() &&
        std::string_view(name).substr(name.size() - kBucket.size()) ==
            kBucket &&
        has_le) {
      buckets[name.substr(0, name.size() - kBucket.size())].push_back(
          {le, value});
    } else if (name.size() > kCount.size() &&
               std::string_view(name).substr(name.size() - kCount.size()) ==
                   kCount) {
      counts[name.substr(0, name.size() - kCount.size())] = value;
    }
  }

  // Histogram semantics: bucket series cumulative and capped by +Inf.
  for (const auto& [base, series] : buckets) {
    bool saw_inf = false;
    double inf_value = 0.0;
    for (size_t i = 0; i < series.size(); ++i) {
      if (i > 0) {
        if (series[i].le < series[i - 1].le) {
          return Status::InvalidArgument(
              "histogram '" + base + "': bucket bounds not ascending");
        }
        if (series[i].cumulative < series[i - 1].cumulative) {
          return Status::InvalidArgument(
              "histogram '" + base + "': bucket counts not cumulative");
        }
      }
      if (std::isinf(series[i].le) && series[i].le > 0) {
        saw_inf = true;
        inf_value = series[i].cumulative;
      }
    }
    if (!saw_inf) {
      return Status::InvalidArgument("histogram '" + base +
                                     "': missing le=\"+Inf\" bucket");
    }
    const auto count_it = counts.find(base);
    if (count_it != counts.end() && count_it->second != inf_value) {
      return Status::InvalidArgument(
          "histogram '" + base + "': +Inf bucket does not match _count");
    }
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace c2lsh
