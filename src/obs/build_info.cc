#include "src/obs/build_info.h"

#include <chrono>
#include <string>

#include "src/obs/registry.h"

// Baked in by src/obs/CMakeLists.txt at configure time.
#ifndef C2LSH_GIT_DESCRIBE
#define C2LSH_GIT_DESCRIBE "unknown"
#endif
#ifndef C2LSH_SANITIZE_MODE
#define C2LSH_SANITIZE_MODE "none"
#endif

namespace c2lsh {
namespace obs {

namespace {

// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string_view BuildGitDescribe() { return C2LSH_GIT_DESCRIBE; }

std::string_view BuildSanitizerMode() { return C2LSH_SANITIZE_MODE; }

void RegisterBuildMetrics(std::string_view isa_name) {
  MetricsRegistry& registry = MetricsRegistry::Global();

  // Set once: re-dispatch (ForceIsa) must not move the start time.
  static const bool start_time_set = [&registry] {
    const double now_seconds =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    if (Gauge* g = registry.GetGauge(
            "process_start_time_seconds",
            "Unix time the process started (set at first registration)")) {
      g->Set(now_seconds);
    }
    return true;
  }();
  (void)start_time_set;

  const std::string labels = "git=\"" +
                             EscapeLabelValue(BuildGitDescribe()) +
                             "\",isa=\"" + EscapeLabelValue(isa_name) +
                             "\",sanitizer=\"" +
                             EscapeLabelValue(BuildSanitizerMode()) + "\"";
  if (Gauge* g = registry.GetGaugeWithLabels(
          "c2lsh_build_info",
          "Build attribution (value is always 1; the labels carry the info)",
          labels)) {
    g->Set(1.0);
  }
}

}  // namespace obs
}  // namespace c2lsh
