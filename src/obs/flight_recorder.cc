#include "src/obs/flight_recorder.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/util/env.h"

namespace c2lsh {
namespace obs {

namespace {

Counter* DumpsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "c2lsh_flight_recorder_dumps_total",
      "Flight-recorder dump files written (one per recorded anomaly)");
  return c;
}

Counter* DumpErrorsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "c2lsh_flight_recorder_dump_errors_total",
      "Flight-recorder dumps lost to filesystem errors");
  return c;
}

std::string FmtDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

// Same escaping contract as export.cc's EscapeJson (kept local, like
// span.cc's copy). The detail string may carry external input — a tenant id
// straight off the wire — so it MUST be escaped before splicing into JSON.
std::string EscapeJsonDetail(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// The "otherData" metadata object: anomaly cause, query attribution, the
// QueryTrace, and every histogram exemplar in the registry (the trace ids
// attached to tail latency observations — the cross-link from metrics back
// into this dump's timeline).
std::string RenderOtherData(AnomalyKind kind, const char* what,
                            uint64_t query_id, const QueryTrace* trace,
                            uint64_t dropped_events, std::string_view detail) {
  std::string out = "{\"anomaly\": \"";
  out += AnomalyKindName(kind);
  out += "\", \"what\": \"";
  out += what;
  out += "\"";
  if (!detail.empty()) {
    out += ", \"detail\": \"" + EscapeJsonDetail(detail) + "\"";
  }
  out += ", \"query_id\": " + std::to_string(query_id);
  out += ", \"dropped_events\": " + std::to_string(dropped_events);
  out += ", \"query_trace\": ";
  out += trace != nullptr ? trace->ToJson() : std::string("null");
  out += ", \"exemplars\": [";
  bool first = true;
  for (const MetricSnapshot& ms : MetricsRegistry::Global().Snapshot()) {
    if (ms.type != MetricType::kHistogram) continue;
    if (ms.histogram.exemplar_id == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "{\"metric\": \"" + ms.name +
           "\", \"value\": " + FmtDouble(ms.histogram.exemplar_value) +
           ", \"trace_id\": " + std::to_string(ms.histogram.exemplar_id) +
           "}";
  }
  out += "]}";
  return out;
}

}  // namespace

std::string_view AnomalyKindName(AnomalyKind k) {
  switch (k) {
    case AnomalyKind::kDeadline:
      return "deadline";
    case AnomalyKind::kCancelled:
      return "cancelled";
    case AnomalyKind::kAdmissionShed:
      return "admission_shed";
    case AnomalyKind::kDegraded:
      return "degraded";
    case AnomalyKind::kRetryAbandoned:
      return "retry_abandoned";
    case AnomalyKind::kSlowQuery:
      return "slow_query";
    case AnomalyKind::kDrainDeadlineExceeded:
      return "drain_deadline_exceeded";
    case AnomalyKind::kTenantShed:
      return "tenant_shed";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked like Tracer::Global(): anomalies may be reported from static
  // destructors (a pool draining at exit).
  static FlightRecorder* recorder = new FlightRecorder();  // NOLINT(banned-function)
  return *recorder;
}

Status FlightRecorder::Configure(const FlightRecorderOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("FlightRecorder: dump dir is empty");
  }
  if (options.max_dumps == 0) {
    return Status::InvalidArgument("FlightRecorder: max_dumps must be >= 1");
  }
  {
    MutexLock lock(&mu_);
    options_ = options;
    if (options_.env == nullptr) options_.env = Env::Default();
    next_slot_ = 0;
    last_query_id_ = 0;
  }
  slow_query_millis_.store(options.slow_query_millis,
                           std::memory_order_relaxed);
  // A recorder in front of empty rings records nothing: arm tracing if the
  // caller has not picked a sampling mode of their own.
  if (Tracer::Global().mode() == TraceMode::kOff) {
    Tracer::Global().SetMode(TraceMode::kAlways);
  }
  enabled_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void FlightRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
  slow_query_millis_.store(0.0, std::memory_order_relaxed);
}

bool FlightRecorder::RecordAnomaly(AnomalyKind kind, const char* what,
                                   uint64_t query_id,
                                   const QueryTrace* trace) {
  return RecordAnomaly(kind, what, query_id, trace, std::string_view());
}

bool FlightRecorder::RecordAnomaly(AnomalyKind kind, const char* what,
                                   uint64_t query_id, const QueryTrace* trace,
                                   std::string_view detail) {
  if (!enabled()) return false;

  Env* env;
  std::string path;
  size_t max_bytes;
  {
    MutexLock lock(&mu_);
    if (query_id != 0 && query_id == last_query_id_) {
      // Same query, next layer: the first dump already has this timeline.
      return false;
    }
    last_query_id_ = query_id;
    const uint64_t slot = next_slot_ % options_.max_dumps;
    ++next_slot_;
    env = options_.env;
    path = options_.dir + "/flight-" + std::to_string(slot) + ".json";
    max_bytes = options_.max_dump_bytes;
  }

  std::vector<TraceEvent> events = Tracer::Global().SnapshotAll();
  const uint64_t dropped = Tracer::Global().DroppedTotal();
  const std::string other =
      RenderOtherData(kind, what, query_id, trace, dropped, detail);

  // Render, trimming the oldest half of the timeline until the dump fits
  // the byte cap. ExportChromeTrace output starts with '{', so the
  // metadata splices in as the first member and the result is still one
  // Chrome trace-event JSON object.
  std::string dump;
  // analyze-ok(cancellation-cadence): halves a ring-bounded event list each pass (O(log) passes); runs once per anomaly, after the query has already terminated.
  for (;;) {
    const std::string chrome = ExportChromeTrace(events, "c2lsh-flight");
    dump = "{\"otherData\": " + other + ", " + chrome.substr(1);
    if (dump.size() <= max_bytes || events.empty()) break;
    events.erase(events.begin(),
                 events.begin() + static_cast<long>(events.size() + 1) / 2);
  }

  auto file = env->NewFile(path);
  Status io = file.status();
  if (io.ok()) io = (*file)->WriteAt(0, dump.data(), dump.size());
  if (io.ok()) io = (*file)->Sync();
  if (!io.ok()) {
    DumpErrorsCounter()->Increment();
    return false;
  }
  dumps_written_.fetch_add(1, std::memory_order_relaxed);
  DumpsCounter()->Increment();
  return true;
}

bool MaybeRecordQueryAnomaly(const char* what, uint64_t query_id,
                             const QueryTrace& trace) {
  FlightRecorder& fr = FlightRecorder::Global();
  if (!fr.enabled()) return false;
  if (trace.termination == Termination::kDeadline) {
    return fr.RecordAnomaly(AnomalyKind::kDeadline, what, query_id, &trace);
  }
  if (trace.termination == Termination::kCancelled) {
    return fr.RecordAnomaly(AnomalyKind::kCancelled, what, query_id, &trace);
  }
  if (trace.degraded) {
    return fr.RecordAnomaly(AnomalyKind::kDegraded, what, query_id, &trace);
  }
  const double slow = fr.slow_query_millis();
  if (slow > 0.0 && trace.total_millis >= slow) {
    return fr.RecordAnomaly(AnomalyKind::kSlowQuery, what, query_id, &trace);
  }
  return false;
}

}  // namespace obs
}  // namespace c2lsh
