// Exporters for a MetricsRegistry snapshot: a human-readable table, JSON,
// and the Prometheus text exposition format, plus a validator for the
// latter so tests (and the metrics_dump tool itself) can prove the output
// parses before anything scrapes it.

#pragma once
#ifndef C2LSH_OBS_EXPORT_H_
#define C2LSH_OBS_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/obs/registry.h"
#include "src/util/status.h"

namespace c2lsh {
namespace obs {

/// Fixed-width table for terminals: one line per counter/gauge, histograms
/// rendered as count/sum/p50/p95/p99.
std::string FormatTable(const std::vector<MetricSnapshot>& snapshot);

/// One JSON object keyed by metric name; histograms carry count, sum,
/// percentiles, and the cumulative (le, count) bucket series.
std::string FormatJson(const std::vector<MetricSnapshot>& snapshot);

/// Prometheus text exposition format (version 0.0.4): # HELP / # TYPE
/// comments, `name value` samples, and `name_bucket{le="..."}` cumulative
/// histogram series with `_sum` and `_count`.
std::string FormatPrometheus(const std::vector<MetricSnapshot>& snapshot);

/// Checks `text` against the Prometheus text-format grammar: every line must
/// be blank, a comment, or `name[{labels}] value [timestamp]` with a valid
/// metric name, well-formed quoted label values, and a parseable float
/// value. Histogram `_bucket` series must additionally be cumulative
/// (non-decreasing) and end with an `le="+Inf"` bucket that matches the
/// series' `_count`. Returns InvalidArgument naming the first bad line.
Status ValidatePrometheusText(std::string_view text);

}  // namespace obs
}  // namespace c2lsh

#endif  // C2LSH_OBS_EXPORT_H_
