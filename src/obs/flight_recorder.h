// Always-on flight recorder: anomaly-triggered trace dumps.
//
// The per-thread TraceRings (src/obs/span.h) always hold the most recent
// few thousand events per thread at ~zero cost — there is no serialization,
// no I/O, nothing leaves the rings while queries are healthy. When an
// anomaly fires — a deadline/cancellation termination, an admission shed, a
// degraded (corruption-skipping) query, a retry abandonment, or a query
// slower than the configured slow-query threshold — the recorder snapshots
// every ring plus the query's QueryTrace and the registry's histogram
// exemplars into a bounded on-disk dump via Env.
//
// Dump format: one Chrome trace-event JSON object per dump (so each dump
// loads directly in Perfetto / chrome://tracing and passes
// ValidateChromeTraceJson), with the anomaly metadata, QueryTrace, and
// exemplars carried in the spec's free-form "otherData" member. Dumps are
// written round-robin into `dir`/flight-<slot>.json, so at most
// `max_dumps` files ever exist and CI can glob flight-*.json.
//
// The recorder is inert until Configure() is called: RecordAnomaly is a
// single relaxed load + branch, so production code can report anomalies
// unconditionally.

#pragma once
#ifndef C2LSH_OBS_FLIGHT_RECORDER_H_
#define C2LSH_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/obs/trace.h"
#include "src/util/mutex.h"
#include "src/util/status.h"

namespace c2lsh {

class Env;

namespace obs {

/// What tripped the recorder. One value per trigger named in the design so
/// dumps are greppable by cause.
enum class AnomalyKind : uint8_t {
  kDeadline = 0,        ///< Termination::kDeadline (deadline / page budget)
  kCancelled = 1,       ///< Termination::kCancelled
  kAdmissionShed = 2,   ///< AdmissionController rejected or timed out
  kDegraded = 3,        ///< query answered while skipping corrupt data
  kRetryAbandoned = 4,  ///< retry layer gave up on a cancelled/expired ctx
  kSlowQuery = 5,       ///< total_millis above the slow-query threshold
  kDrainDeadlineExceeded = 6,  ///< graceful drain overran its deadline
  kTenantShed = 7,      ///< per-tenant admission shed (quota + overflow full)
};
inline constexpr size_t kNumAnomalyKinds = 8;

/// Stable lower-case name ("deadline", "cancelled", "admission_shed", ...).
std::string_view AnomalyKindName(AnomalyKind k);

struct FlightRecorderOptions {
  /// Directory for dump files (must exist; dumps are `dir`/flight-N.json).
  std::string dir;
  /// Dump slots: at most this many dump files, oldest overwritten first.
  size_t max_dumps = 8;
  /// Hard cap per dump file; the event timeline is trimmed (oldest events
  /// first) until the rendered JSON fits.
  size_t max_dump_bytes = 4u << 20;
  /// Queries slower than this trip kSlowQuery; 0 disables the threshold.
  double slow_query_millis = 0.0;
  /// Filesystem doorway; nullptr = Env::Default(). Tests pass a
  /// FaultInjectionEnv-backed or scratch-dir Env.
  Env* env = nullptr;
};

/// Process-wide recorder. All methods are thread-safe.
class FlightRecorder {
 public:
  static FlightRecorder& Global();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Arms the recorder. Also arms tracing (TraceMode::kAlways) if the
  /// Tracer is off — a flight recorder in front of empty rings records
  /// nothing. Idempotent; reconfiguring moves the dump directory.
  Status Configure(const FlightRecorderOptions& options);

  /// Disarms (tests). Already-written dump files are left on disk.
  void Disable();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Reports one anomaly: snapshots the rings and writes one dump. `what`
  /// is a static description ("disk_query", "admit", ...); `query_id` (0 =
  /// unattributed) and `trace` (may be null) give the dump its query
  /// context. Consecutive reports for the SAME nonzero query_id collapse
  /// into the first dump — one query missing its deadline after a retry
  /// abandonment is one anomaly observed at two layers, not two.
  /// Returns true when a dump was written.
  bool RecordAnomaly(AnomalyKind kind, const char* what, uint64_t query_id,
                     const QueryTrace* trace);

  /// Same, with a free-form `detail` string rendered into the dump's
  /// otherData (JSON-escaped — it may carry external input like a tenant
  /// id). The serving layer uses it to attribute kTenantShed and
  /// kDrainDeadlineExceeded dumps: `{"detail": "tenant=acme", ...}`.
  bool RecordAnomaly(AnomalyKind kind, const char* what, uint64_t query_id,
                     const QueryTrace* trace, std::string_view detail);

  /// Dumps written since process start (mirrors the
  /// c2lsh_flight_recorder_dumps_total counter).
  uint64_t dumps_written() const {
    return dumps_written_.load(std::memory_order_relaxed);
  }

  /// The slow-query threshold (0 = disabled) — read by the query layers to
  /// decide whether to report kSlowQuery.
  double slow_query_millis() const {
    return slow_query_millis_.load(std::memory_order_relaxed);
  }

 private:
  FlightRecorder() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<double> slow_query_millis_{0.0};
  std::atomic<uint64_t> dumps_written_{0};

  mutable Mutex mu_;
  FlightRecorderOptions options_ GUARDED_BY(mu_);
  uint64_t next_slot_ GUARDED_BY(mu_) = 0;
  uint64_t last_query_id_ GUARDED_BY(mu_) = 0;  ///< consecutive-dedupe state
};

/// End-of-query helper: inspects a finished query's QueryTrace and reports
/// the matching anomaly (deadline / cancelled / degraded / slow), if any.
/// One branch when the recorder is disabled. Returns true if a dump was
/// written.
bool MaybeRecordQueryAnomaly(const char* what, uint64_t query_id,
                             const QueryTrace& trace);

}  // namespace obs
}  // namespace c2lsh

#endif  // C2LSH_OBS_FLIGHT_RECORDER_H_
