#include "src/obs/trace.h"

#include <cstdio>

namespace c2lsh {
namespace obs {
namespace {

// %g keeps the JSON compact while preserving enough precision for
// millisecond-scale latencies.
void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(std::to_string(v));
}

}  // namespace

std::string_view TerminationName(Termination t) {
  switch (t) {
    case Termination::kNone:
      return "none";
    case Termination::kT1:
      return "t1";
    case Termination::kT2:
      return "t2";
    case Termination::kExhausted:
      return "exhausted";
    case Termination::kDeadline:
      return "deadline";
    case Termination::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

void QueryTrace::Clear() {
  rounds.clear();
  termination = Termination::kNone;
  total_millis = 0.0;
  pool_hits = 0;
  pool_misses = 0;
  degraded = false;
}

std::string QueryTrace::ToJson() const {
  std::string out;
  out.reserve(128 + rounds.size() * 128);
  out += "{\"termination\": \"";
  out += TerminationName(termination);
  out += "\", \"total_millis\": ";
  AppendDouble(&out, total_millis);
  out += ", \"pool_hits\": ";
  AppendU64(&out, pool_hits);
  out += ", \"pool_misses\": ";
  AppendU64(&out, pool_misses);
  out += ", \"degraded\": ";
  out += degraded ? "true" : "false";
  out += ", \"rounds\": [";
  for (size_t i = 0; i < rounds.size(); ++i) {
    const QueryRoundSpan& r = rounds[i];
    if (i > 0) out += ", ";
    out += "{\"radius\": ";
    out += std::to_string(r.radius);
    out += ", \"buckets_scanned\": ";
    AppendU64(&out, r.buckets_scanned);
    out += ", \"collision_increments\": ";
    AppendU64(&out, r.collision_increments);
    out += ", \"candidates_verified\": ";
    AppendU64(&out, r.candidates_verified);
    out += ", \"index_pages\": ";
    AppendU64(&out, r.index_pages);
    out += ", \"t1_fired\": ";
    out += r.t1_fired ? "true" : "false";
    out += ", \"t2_fired\": ";
    out += r.t2_fired ? "true" : "false";
    out += ", \"millis\": ";
    AppendDouble(&out, r.millis);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace c2lsh
