// Process-wide metrics registry: named counters, gauges, and log-bucketed
// latency histograms, cheap enough for hot paths and thread-safe under the
// annotation regime of src/util/thread_annotations.h.
//
// Design:
//   * Metric objects are plain relaxed atomics — an Increment()/Observe() on
//     a hot path is one (histogram: three) uncontended atomic RMW, no lock,
//     no allocation. Relaxed ordering suffices because each metric is an
//     independent statistic, not a synchronization point (the same contract
//     as RetryStats, src/util/retry.h).
//   * The registry's name->metric map is guarded by a Mutex, but lookups
//     happen once per call site: instrumented code caches the returned
//     pointer in a function-local static. Returned pointers are stable for
//     the life of the process (metrics are never deleted, only Reset()).
//   * Histograms bucket values on a log scale (kSubBucketsPerOctave buckets
//     per power of two, via frexp) so one fixed-size atomic array covers
//     sub-microsecond to multi-hour latencies with <= ~9% relative bucket
//     width, giving honest p50/p95/p99 without per-sample allocation.
//
// Metric names must match [a-z_][a-z0-9_]* — valid for the Prometheus text
// exposition format without escaping. By convention counters end in
// `_total` and millisecond histograms end in `_millis`.

#pragma once
#ifndef C2LSH_OBS_REGISTRY_H_
#define C2LSH_OBS_REGISTRY_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/mutex.h"

namespace c2lsh {
namespace obs {

/// A monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time double value (e.g. the active SIMD ISA, a pool size).
/// Stored as bit-cast uint64 so plain store/load stay lock-free everywhere.
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { Set(0.0); }

 private:
  // 0 is the bit pattern of +0.0, so the default value is 0.0.
  std::atomic<uint64_t> bits_{0};
};

/// A log-bucketed distribution of non-negative values with percentile
/// queries. Observe() is wait-free (two relaxed fetch_adds and one CAS loop
/// for the running sum). Snapshots taken while writers are active are
/// internally consistent per bucket but may straddle concurrent updates —
/// fine for statistics.
class Histogram {
 public:
  /// Buckets per power of two; 8 gives <= 1/8 relative bucket width.
  static constexpr int kSubBucketsPerOctave = 8;
  /// Covered value range [2^kMinExp, 2^kMaxExp): ~1e-6 .. ~1e6.
  /// In milliseconds that is 1ns .. ~17min; out-of-range values land in the
  /// underflow/overflow buckets and still count toward count()/sum().
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 20;
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kMaxExp - kMinExp) * kSubBucketsPerOctave + 2;

  /// Records one observation. A nonzero `exemplar_id` (a trace id from
  /// obs::Tracer) attaches this observation as the histogram's exemplar if
  /// it is the largest exemplar-tagged value seen since the last Reset —
  /// so the exemplar always points at the tail, which is the observation a
  /// flight-recorder dump wants to explain. Lock-free (one extra CAS loop
  /// only on exemplar-tagged observations).
  void Observe(double value, uint64_t exemplar_id = 0);

  /// The current exemplar: (value, trace id), or (0.0, 0) when none was
  /// recorded. The value round-trips through float precision.
  std::pair<double, uint64_t> Exemplar() const;

  /// Total observations (sum over buckets — exact once writers quiesce).
  uint64_t count() const;
  /// Sum of all observed values.
  double sum() const;

  /// The p-quantile (p in [0,1]) by cumulative walk over the buckets with
  /// linear interpolation inside the landing bucket. Returns 0 when empty.
  double Percentile(double p) const;

  /// Inclusive upper bound of bucket i (i == kNumBuckets-1 -> +infinity).
  static double BucketUpperBound(size_t i);

  /// Observation count of bucket i (relaxed read).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  static size_t BucketIndex(double value);

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_bits_{0};  // bit-cast double, CAS-accumulated
  // Exemplar, packed into one word so it publishes atomically:
  // high 32 bits = bit-cast float(value), low 32 = truncated trace id.
  // CAS-max on the value part keeps the largest (tail) observation.
  std::atomic<uint64_t> exemplar_bits_{0};
};

/// Which kind of metric a snapshot entry describes.
enum class MetricType { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one histogram, with the percentiles pre-computed
/// and the cumulative bucket counts Prometheus-style (last entry is +Inf).
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// (upper_bound, cumulative_count) for every bucket with a count increase,
  /// plus always the final (+infinity, count) entry.
  std::vector<std::pair<double, uint64_t>> cumulative;
  /// The tail exemplar: the largest exemplar-tagged observation and its
  /// trace id. exemplar_id == 0 means no exemplar was recorded.
  double exemplar_value = 0.0;
  uint64_t exemplar_id = 0;
};

/// Point-in-time copy of one registered metric.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  /// Pre-rendered constant label pairs (`key="value",key2="v2"` — no
  /// braces), empty for the common unlabeled case. Set at registration via
  /// GetGaugeWithLabels (e.g. c2lsh_build_info).
  std::string labels;
  uint64_t counter_value = 0;
  double gauge_value = 0.0;
  HistogramSnapshot histogram;
};

/// The process-wide name -> metric table. GetX() registers on first use and
/// returns the same stable pointer ever after; Snapshot() renders the whole
/// registry for the exporters in src/obs/export.h.
class MetricsRegistry {
 public:
  /// The process-wide registry (function-local static, safe before main).
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first call.
  /// `help` is recorded on creation (later calls may pass anything).
  /// Returns nullptr if `name` is invalid ([a-z_][a-z0-9_]* required) or is
  /// already registered as a different type — both are caller bugs; callers
  /// with literal names may assume non-null.
  Counter* GetCounter(std::string_view name, std::string_view help);
  Gauge* GetGauge(std::string_view name, std::string_view help);
  Histogram* GetHistogram(std::string_view name, std::string_view help);

  /// Like GetGauge, but attaches constant labels rendered into every
  /// exporter (`labels` is the pre-escaped `key="value",...` body, no
  /// braces). Info-style metrics (c2lsh_build_info) use this; unlike
  /// `help`, the labels refresh on every call — an info metric's labels
  /// are its payload.
  Gauge* GetGaugeWithLabels(std::string_view name, std::string_view help,
                            std::string_view labels);

  /// Counter flavor of GetGaugeWithLabels, for per-entity series like the
  /// serving layer's per-tenant admission counters. The registry (and the
  /// JSON exporter) key by NAME alone, so each labeled series needs a
  /// distinct name with the entity embedded
  /// (`c2lsh_serve_tenant_acme_admitted_total`); the labels
  /// (`tenant="acme"`) carry the un-mangled entity for Prometheus joins.
  Counter* GetCounterWithLabels(std::string_view name, std::string_view help,
                                std::string_view labels);

  /// Lookup without creating. Returns nullptr when absent or of another type.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// Point-in-time copy of every registered metric, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes every registered metric (names stay registered; pointers remain
  /// valid). For test isolation — production code never resets.
  void ResetAll();

  /// True iff `name` is a valid metric name: [a-z_][a-z0-9_]*.
  static bool ValidName(std::string_view name);

 private:
  struct Entry {
    MetricType type;
    std::string help;
    std::string labels;  ///< constant label body, usually empty
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace c2lsh

#endif  // C2LSH_OBS_REGISTRY_H_
