// Per-query rehash tracing: one span per virtual-rehashing round.
//
// C2LSH answers a query by widening the search radius R over rounds
// (R = 1, c, c^2, ...) until a termination condition fires. Aggregate stats
// (C2lshQueryStats) say *how much* work a query did; a QueryTrace says *when*
// it did it — which round scanned how many buckets, raised how many collision
// counters, verified how many candidates, and which of the T1/T2 conditions
// ended the search. Traces are opt-in (pass a QueryTrace* to Query) so the
// hot path pays nothing when nobody is looking.
//
// This header also owns the Termination enum shared by every per-query stats
// struct in the tree (C2lshQueryStats, DiskQueryStats, QalshQueryStats,
// CostPrediction): a query can end by T1, by T2, by exhausting every bucket,
// or not terminate at all inside a bounded-radius probe — two bools could not
// say which.

#pragma once
#ifndef C2LSH_OBS_TRACE_H_
#define C2LSH_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace c2lsh {
namespace obs {

/// Why a collision-counting query stopped.
enum class Termination : uint8_t {
  kNone = 0,       ///< stopped by an external bound (radius cap, budget)
  kT1 = 1,         ///< >= k candidates verified within distance c*R
  kT2 = 2,         ///< >= k + beta*n candidates collected
  kExhausted = 3,  ///< every bucket of every table scanned (fallback to exact)
  kDeadline = 4,   ///< deadline or I/O-page budget expired — partial results
  kCancelled = 5,  ///< cooperatively cancelled — partial results
};

/// Number of Termination values (for per-reason breakdown arrays).
inline constexpr size_t kNumTerminationKinds = 6;

/// Stable lower-case name for a Termination ("none", "t1", "t2",
/// "exhausted", "deadline", "cancelled").
std::string_view TerminationName(Termination t);

/// What one virtual-rehashing round did.
struct QueryRoundSpan {
  long long radius = 0;               ///< search radius R this round
  uint64_t buckets_scanned = 0;       ///< hash buckets visited this round
  uint64_t collision_increments = 0;  ///< collision-counter bumps this round
  uint64_t candidates_verified = 0;   ///< exact distances computed this round
  uint64_t index_pages = 0;           ///< index pages touched (disk mode)
  bool t1_fired = false;              ///< T1 ended the query in this round
  bool t2_fired = false;              ///< T2 ended the query in this round
  double millis = 0.0;                ///< wall time spent in this round
};

/// The full story of one query: a span per round plus query-level outcomes.
/// Reused across queries via Clear() — the rounds vector keeps its capacity.
struct QueryTrace {
  std::vector<QueryRoundSpan> rounds;
  Termination termination = Termination::kNone;
  double total_millis = 0.0;
  uint64_t pool_hits = 0;    ///< BufferPool hits attributed to this query
  uint64_t pool_misses = 0;  ///< BufferPool misses attributed to this query
  bool degraded = false;     ///< answered while skipping corrupt tables/pages

  /// Resets to the empty state, keeping the rounds vector's capacity.
  void Clear();

  /// Compact single-object JSON rendering (used by the eval report).
  std::string ToJson() const;
};

}  // namespace obs

// The termination outcome is part of every per-query stats struct, so the
// enum is hoisted to the library namespace for brevity at call sites.
using obs::Termination;

}  // namespace c2lsh

#endif  // C2LSH_OBS_TRACE_H_
