// Cross-layer span tracing: per-thread lock-free ring buffers of fixed-size
// trace events, a process-wide Tracer that owns buffer registration and
// sampling, and an exporter to Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing) with an in-tree format validator mirroring
// ValidatePrometheusText (src/obs/export.h).
//
// Design:
//   * The hot-path cost contract: a ScopedSpan is a single relaxed atomic
//     load + branch when tracing is off, and two timestamp-counter reads
//     plus one ring-slot publication (a handful of release stores to
//     thread-local memory) when it is on. No locks, no allocation, no
//     syscalls on either path.
//   * Every thread that emits gets its own TraceRing (registered with the
//     Tracer on first emission, kept for the life of the process so late
//     snapshots still see a finished thread's tail). The owning thread is
//     the only writer; snapshots from any thread read the slots through a
//     per-slot generation word, so a wrapping writer *drops* the oldest
//     events instead of tearing them — see TraceRing.
//   * Timestamps are raw ticks (rdtsc on x86, steady-clock nanoseconds
//     elsewhere) converted to microseconds only at export time, against a
//     process-lifetime calibration anchor. Raw tick reads are confined to
//     src/obs/ by lint's tsc-read rule — everything else times with
//     util::Timer.
//   * Sampling: kOff / kAlways / kPerQuery (the caller opts a query in via
//     QueryContext::trace) / kEveryNth (a process-wide query counter).
//     Subsystem spans (BufferPool, WAL, retry, ...) emit whenever tracing
//     is armed; query-level spans additionally gate on SampleQuery so
//     per-query modes keep the timeline readable.
//
// The flight recorder (src/obs/flight_recorder.h) builds on these rings:
// they always hold the most recent events, so an anomaly can snapshot a
// timeline of the recent past without any always-on serialization cost.

#pragma once
#ifndef C2LSH_OBS_SPAN_H_
#define C2LSH_OBS_SPAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/status.h"

namespace c2lsh {

struct QueryContext;  // src/util/query_context.h (full type only in span.cc)

namespace obs {

/// Which layer a trace event came from. One entry per instrumented seam so
/// a dump can be filtered (and the acceptance check "spans from >= 4
/// subsystems" is meaningful). Values are stable across a process run only.
enum class SpanSubsystem : uint8_t {
  kQuery = 0,       ///< whole-query spans (C2lshIndex / DiskC2lshIndex)
  kRound = 1,       ///< one virtual-rehashing round (radius step)
  kBatch = 2,       ///< batched engine blocks, phases, and shard scans
  kBufferPool = 3,  ///< page-cache hit/miss/writeback
  kPageFile = 4,    ///< page read/write/sync I/O
  kWal = 5,         ///< write-ahead log append/replay/sync
  kThreadPool = 6,  ///< ParallelFor regions and helper-task dispatch
  kAdmission = 7,   ///< admission-controller queue wait and sheds
  kRetry = 8,       ///< transient-I/O retry attempts and backoffs
  kCompaction = 9,  ///< disk-index compaction
  kOther = 10,      ///< tools/tests
  kServe = 11,      ///< serving front end: frames, dispatch, drain
};
inline constexpr size_t kNumSpanSubsystems = 12;

/// Stable lower-case name ("query", "round", "batch", "buffer_pool", ...).
std::string_view SpanSubsystemName(SpanSubsystem s);

enum class TraceEventKind : uint8_t {
  kSpan = 0,     ///< a begin/end pair, exported as one Chrome "X" event
  kInstant = 1,  ///< a point event, exported as "i"
  kCounter = 2,  ///< a sampled value, exported as "C"
};

/// The decoded form of one ring slot (the in-ring encoding is 8 atomic
/// words; see span.cc). `name` points at a string literal — emitters must
/// pass static strings, never heap-backed ones.
struct TraceEvent {
  uint64_t seq = 0;          ///< per-ring emission index (monotone)
  uint64_t start_ticks = 0;  ///< TraceClock ticks at begin
  uint64_t dur_ticks = 0;    ///< span duration in ticks; 0 for instants
  const char* name = "";     ///< static string literal
  TraceEventKind kind = TraceEventKind::kInstant;
  SpanSubsystem subsystem = SpanSubsystem::kOther;
  uint32_t tid = 0;          ///< Tracer registration id of the emitting thread
  uint64_t query_id = 0;     ///< trace id of the owning query; 0 = unattributed
  double value = 0.0;        ///< counter sample / instant argument
};

/// The raw tick source plus its export-time conversion to microseconds.
/// Ticks are monotone per thread; on x86 they come from the invariant TSC
/// (constant rate, synchronized across cores on every platform this library
/// targets), elsewhere from the steady clock. Conversion calibrates the
/// tick rate against the steady clock between the first NowTicks() call and
/// the conversion call, so no startup spin-wait is needed.
class TraceClock {
 public:
  static uint64_t NowTicks();

  /// Microseconds-per-tick scale and the anchor tick/us pair, measured at
  /// call time. All events of one export should be converted with one
  /// Scale so their relative order is exact.
  struct Scale {
    uint64_t anchor_ticks = 0;
    double anchor_micros = 0.0;  ///< anchor_ticks expressed on the us axis
    double micros_per_tick = 1e-3;
  };
  static Scale Calibrate();

  static double ToMicros(uint64_t ticks, const Scale& s) {
    return s.anchor_micros +
           (static_cast<double>(ticks) - static_cast<double>(s.anchor_ticks)) *
               s.micros_per_tick;
  }
};

/// A fixed-capacity single-writer ring of trace events. The owning thread
/// is the only caller of Emit; Snapshot may run concurrently from any
/// thread. Each slot carries a generation word written before (invalidate)
/// and after (publish) the payload, all through release stores, so a
/// concurrent reader either gets a fully-published event or skips the slot
/// — a wrap drops the oldest events, it never tears them.
class TraceRing {
 public:
  static constexpr size_t kCapacity = 4096;  // events; power of two
  static constexpr size_t kSlotWords = 8;

  TraceRing() = default;
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Publishes one event. Owner thread only.
  void Emit(TraceEventKind kind, SpanSubsystem subsystem, const char* name,
            uint64_t start_ticks, uint64_t dur_ticks, uint64_t query_id,
            double value);

  /// Appends every still-valid event (oldest first) to `out`. Safe
  /// concurrently with Emit; events overwritten mid-read are skipped.
  void Snapshot(std::vector<TraceEvent>* out) const;

  /// Total events ever emitted (monotone; emitted - kept = dropped).
  uint64_t emitted() const { return head_.load(std::memory_order_acquire); }

  /// Events overwritten by ring wrap so far.
  uint64_t dropped() const {
    const uint64_t h = emitted();
    return h > kCapacity ? h - kCapacity : 0;
  }

  uint32_t tid() const { return tid_; }

 private:
  friend class Tracer;

  struct Slot {
    std::atomic<uint64_t> w[kSlotWords];
  };

  std::atomic<uint64_t> head_{0};  ///< next emission index (writer-owned)
  uint32_t tid_ = 0;               ///< set once at registration
  Slot slots_[kCapacity] = {};
};

enum class TraceMode : uint8_t {
  kOff = 0,      ///< the disabled branch — the only cost anywhere
  kAlways = 1,   ///< every query sampled
  kPerQuery = 2, ///< only queries whose QueryContext sets `trace`
  kEveryNth = 3, ///< every Nth query (process-wide counter)
};

namespace span_internal {
/// The one-branch gate every emission site checks first. Inline so the
/// disabled path compiles to a relaxed load + jump with no function call.
inline std::atomic<bool> g_tracing_enabled{false};
}  // namespace span_internal

/// Process-wide tracing control: ring registration, sampling policy, and
/// whole-process snapshots/export. All methods are thread-safe.
class Tracer {
 public:
  static Tracer& Global();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// True when any emission may happen (mode != kOff). The fast path for
  /// every instrumentation site.
  static bool enabled() {
    return span_internal::g_tracing_enabled.load(std::memory_order_relaxed);
  }

  /// Sets the sampling mode. `every_nth` only matters for kEveryNth
  /// (clamped to >= 1). Enabling also installs the thread-pool dispatch
  /// hooks; disabling stops emission but keeps already-recorded events.
  void SetMode(TraceMode mode, uint64_t every_nth = 64);
  TraceMode mode() const { return mode_.load(std::memory_order_relaxed); }

  /// The calling thread's ring, registered on first use (never freed — a
  /// finished thread's events stay snapshot-able).
  TraceRing* ThreadRing();

  /// Whether this query's query-level spans should be emitted under the
  /// current mode. `ctx` may be null (treated as an untagged query).
  bool SampleQuery(const QueryContext* ctx);

  /// A fresh nonzero trace id for a sampled query.
  uint64_t NextQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Every still-valid event from every registered ring, oldest first
  /// (sorted by start tick). Events emitted before the last Clear() are
  /// filtered out.
  std::vector<TraceEvent> SnapshotAll() const;

  /// Sum of ring-wrap drops across all registered rings.
  uint64_t DroppedTotal() const;

  /// Logically forgets everything emitted so far (tests): snapshots only
  /// return events that begin after this call. Rings stay registered.
  void Clear();

 private:
  Tracer() = default;

  mutable Mutex mu_;
  std::vector<std::unique_ptr<TraceRing>> rings_ GUARDED_BY(mu_);
  std::atomic<TraceMode> mode_{TraceMode::kOff};
  std::atomic<uint64_t> every_nth_{64};
  std::atomic<uint64_t> query_counter_{0};
  std::atomic<uint64_t> next_query_id_{0};
  std::atomic<uint64_t> clear_ticks_{0};
};

/// RAII span: records the begin tick at construction and publishes one
/// complete-span event at destruction (or End()). When tracing is off the
/// constructor is a single branch and the destructor is another.
///
/// `enabled` lets query-level call sites additionally gate on SampleQuery
/// without losing the RAII shape:
///   ScopedSpan span(SpanSubsystem::kQuery, "c2lsh_query", qid, sampled);
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSubsystem subsystem, const char* name,
                      uint64_t query_id = 0, bool enabled = true) {
    if (!enabled || !Tracer::enabled()) return;
    subsystem_ = subsystem;
    name_ = name;
    query_id_ = query_id;
    start_ = TraceClock::NowTicks();
    armed_ = true;
  }
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span early (idempotent; the destructor becomes a no-op).
  void End();

  bool armed() const { return armed_; }

 private:
  bool armed_ = false;
  SpanSubsystem subsystem_ = SpanSubsystem::kOther;
  const char* name_ = "";
  uint64_t query_id_ = 0;
  uint64_t start_ = 0;
};

/// Point event ("i" in the export). One branch when tracing is off.
void TraceInstant(SpanSubsystem subsystem, const char* name,
                  uint64_t query_id = 0, double value = 0.0);

/// Counter sample ("C" in the export). One branch when tracing is off.
void TraceCounter(SpanSubsystem subsystem, const char* name, double value);

/// Renders events as Chrome trace-event JSON (the "JSON object format":
/// a top-level object with a `traceEvents` array), one "X" event per span,
/// "i" per instant, "C" per counter sample, plus process/thread metadata.
/// The result loads in Perfetto and chrome://tracing and passes
/// ValidateChromeTraceJson.
std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              std::string_view process_name = "c2lsh");

/// Checks `json` against the Chrome trace-event format the way
/// ValidatePrometheusText checks the text exposition format: the document
/// must parse as JSON, carry a `traceEvents` array, and every event object
/// must have a string `name`, a known `ph` phase (X/B/E/i/I/C/M), integer
/// `pid`/`tid`, a non-negative numeric `ts` (metadata excepted), and a
/// non-negative `dur` on complete ("X") events. Returns InvalidArgument
/// naming the first offending event (or byte offset for parse errors).
Status ValidateChromeTraceJson(std::string_view json);

}  // namespace obs
}  // namespace c2lsh

#endif  // C2LSH_OBS_SPAN_H_
