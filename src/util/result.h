// Result<T>: a value-or-Status union, the library's replacement for throwing
// constructors and factory functions. Modeled after absl::StatusOr.

#pragma once
#ifndef C2LSH_UTIL_RESULT_H_
#define C2LSH_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace c2lsh {

/// Holds either a T or a non-OK Status explaining why the T is absent.
///
/// Usage:
///   Result<C2lshIndex> r = C2lshIndex::Build(data, params);
///   if (!r.ok()) { /* inspect r.status() */ }
///   C2lshIndex index = std::move(r).value();
/// Like Status, Result is [[nodiscard]]: silently dropping a Result loses
/// both the value and the error explaining its absence.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success path reads naturally:
  /// `return my_t;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from an error Status. It is a programming error to
  /// construct a Result from an OK status; that case is reported as an
  /// Internal error so the misuse is observable rather than silent.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without a value");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error, or OK when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors. Must only be called when ok(); checked with assert in
  /// debug builds (the library itself always checks ok() first).
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// Status from the enclosing function.
/// (C2LSH_CONCAT_ comes from status.h, shared with C2LSH_RETURN_IF_ERROR.)
#define C2LSH_ASSIGN_OR_RETURN(lhs, expr)              \
  auto C2LSH_CONCAT_(_c2lsh_result_, __LINE__) = (expr);        \
  if (!C2LSH_CONCAT_(_c2lsh_result_, __LINE__).ok())            \
    return C2LSH_CONCAT_(_c2lsh_result_, __LINE__).status();    \
  lhs = std::move(C2LSH_CONCAT_(_c2lsh_result_, __LINE__)).value()

}  // namespace c2lsh

#endif  // C2LSH_UTIL_RESULT_H_
