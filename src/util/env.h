// Env: the storage stack's only doorway to the filesystem (LevelDB-style,
// matching the Status/Result conventions of src/util/status.h).
//
// PageFile and the index serializer never call open/fopen/pread themselves;
// they go through an Env, so tests can substitute a FaultInjectionEnv (see
// fault_env.h) that tears writes, drops syncs, flips bits on read, or kills
// the "process" after the Nth write — and the production PosixEnv can attach
// errno context to every failure in one place.

#pragma once
#ifndef C2LSH_UTIL_ENV_H_
#define C2LSH_UTIL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/result.h"

namespace c2lsh {

/// A random-access, read-write file. All offsets are absolute; there is no
/// cursor, so readers and writers cannot interfere through shared seek
/// state. Implementations are not required to be thread-safe.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset` into `buf`; `*bytes_read` is always
  /// set. A short read is NOT an error and may happen at ANY offset, not
  /// just end-of-file (POSIX pread makes that promise for pipes and
  /// signals, and FaultInjectionEnv injects mid-file short reads
  /// deliberately). Callers that require exactly `n` bytes must loop —
  /// use ReadFullyAt below — and only then decide whether a genuinely
  /// truncated range (EOF before `n` bytes) means Corruption.
  virtual Status ReadAt(uint64_t offset, void* buf, size_t n,
                        size_t* bytes_read) const = 0;

  /// Writes exactly `n` bytes at `offset`, extending the file if needed.
  /// Partial application followed by an error is possible (that is what a
  /// torn write is); callers defend with checksums, not with assumptions.
  virtual Status WriteAt(uint64_t offset, const void* buf, size_t n) = 0;

  /// Flushes written data to durable storage (fsync).
  virtual Status Sync() = 0;

  /// Current file size in bytes.
  virtual Result<uint64_t> Size() const = 0;
};

/// Reads exactly `n` bytes at `offset`, looping over short reads until the
/// request is filled or the file genuinely ends (a read that returns zero
/// bytes). `*bytes_read < n` therefore means end-of-file, never a transient
/// short read — the distinction every fixed-size-record reader (PageFile
/// pages, WAL frames, serialized blobs) needs before it may call a short
/// range "truncated".
Status ReadFullyAt(const RandomAccessFile& file, uint64_t offset, void* buf,
                   size_t n, size_t* bytes_read);

/// Factory for files plus the few filesystem queries the library needs.
class Env {
 public:
  virtual ~Env() = default;

  /// The production POSIX environment (pread/pwrite/fsync, errno context on
  /// every failure). A process-lifetime singleton; never delete it.
  static Env* Default();

  /// Creates `path` (truncating any existing file) for read-write access.
  virtual Result<std::unique_ptr<RandomAccessFile>> NewFile(
      const std::string& path) = 0;

  /// Opens an existing `path` for read-write access; NotFound-style IOError
  /// if it does not exist.
  virtual Result<std::unique_ptr<RandomAccessFile>> OpenFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) const = 0;

  virtual Status DeleteFile(const std::string& path) = 0;
};

}  // namespace c2lsh

#endif  // C2LSH_UTIL_ENV_H_
