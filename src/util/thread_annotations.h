// Clang thread-safety analysis annotations (-Wthread-safety), in the style of
// abseil's thread_annotations.h and LevelDB's port layer. Under Clang the
// macros expand to attributes that let the compiler prove, at compile time,
// that every access to a GUARDED_BY member happens with the right mutex held;
// under GCC (which has no such analysis) they expand to nothing.
//
// Project rule (enforced by tools/lint.py): any file that spawns std::thread
// must include this header (usually via src/util/mutex.h), so the shared
// state it touches is either annotated or explicitly documented as disjoint.
//
// Usage:
//   Mutex mu_;
//   int hits_ GUARDED_BY(mu_);
//   void Tick() EXCLUDES(mu_) { MutexLock lock(&mu_); ++hits_; }

#pragma once
#ifndef C2LSH_UTIL_THREAD_ANNOTATIONS_H_
#define C2LSH_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define C2LSH_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define C2LSH_THREAD_ANNOTATION_(x)  // no-op on GCC and others
#endif

/// Declares a class to be a lockable capability ("mutex").
#define CAPABILITY(x) C2LSH_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose lifetime equals a critical section.
#define SCOPED_CAPABILITY C2LSH_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated member may only be accessed while holding mutex `x`.
#define GUARDED_BY(x) C2LSH_THREAD_ANNOTATION_(guarded_by(x))

/// The data *pointed to* by the annotated pointer is guarded by mutex `x`.
#define PT_GUARDED_BY(x) C2LSH_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The annotated function must be called with the listed mutexes held.
#define REQUIRES(...) \
  C2LSH_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The annotated function must be called with the listed mutexes held in
/// shared (reader) mode.
#define REQUIRES_SHARED(...) \
  C2LSH_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the listed mutexes and does not release
/// them before returning.
#define ACQUIRE(...) C2LSH_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The annotated function releases the listed mutexes.
#define RELEASE(...) C2LSH_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The annotated function must NOT be called with the listed mutexes held
/// (it acquires them itself; calling with them held would deadlock).
#define EXCLUDES(...) C2LSH_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The annotated function returns a reference to the mutex guarding its
/// result.
#define RETURN_CAPABILITY(x) C2LSH_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the calling thread holds `x` (trusted by the
/// analysis).
#define ASSERT_CAPABILITY(x) C2LSH_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the access pattern is safe.
#define NO_THREAD_SAFETY_ANALYSIS \
  C2LSH_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // C2LSH_UTIL_THREAD_ANNOTATIONS_H_
