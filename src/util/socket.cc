#include "src/util/socket.h"

namespace c2lsh {

Status ReadFull(Connection& conn, void* buf, size_t n, size_t* bytes_read,
                const Deadline& deadline) {
  auto* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  *bytes_read = 0;
  while (done < n) {
    size_t got = 0;
    C2LSH_RETURN_IF_ERROR(conn.Read(p + done, n - done, &got, deadline));
    if (got == 0) break;  // peer closed; done < n tells the caller mid-frame
    done += got;
    *bytes_read = done;
  }
  return Status::OK();
}

}  // namespace c2lsh
