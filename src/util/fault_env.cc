#include "src/util/fault_env.h"

#include <algorithm>

namespace c2lsh {

namespace internal {

struct FaultEnvState {
  int64_t writes_until_crash = 0;  // 0 = disarmed; 1 = the next write tears
  bool crashed = false;
  size_t torn_bytes = SIZE_MAX;  // SIZE_MAX = half of the crashing write

  int transient_write_faults = 0;
  int transient_read_faults = 0;

  bool corrupt_read = false;
  uint64_t corrupt_offset = 0;
  uint8_t corrupt_mask = 0;

  bool drop_syncs = false;
  bool fail_syncs = false;

  FaultStats stats;
};

}  // namespace internal

using internal::FaultEnvState;

namespace {

class FaultInjectionFile final : public RandomAccessFile {
 public:
  FaultInjectionFile(std::unique_ptr<RandomAccessFile> base,
                     std::shared_ptr<FaultEnvState> state)
      : base_(std::move(base)), state_(std::move(state)) {}

  Status ReadAt(uint64_t offset, void* buf, size_t n,
                size_t* bytes_read) const override {
    FaultEnvState& st = *state_;
    *bytes_read = 0;
    if (st.transient_read_faults > 0) {
      --st.transient_read_faults;
      ++st.stats.transient_faults;
      return Status::Unavailable("FaultInjectionEnv: injected transient read fault");
    }
    ++st.stats.reads;
    C2LSH_RETURN_IF_ERROR(base_->ReadAt(offset, buf, n, bytes_read));
    if (st.corrupt_read && st.corrupt_offset >= offset &&
        st.corrupt_offset < offset + *bytes_read) {
      static_cast<uint8_t*>(buf)[st.corrupt_offset - offset] ^= st.corrupt_mask;
      ++st.stats.corrupted_reads;
    }
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const void* buf, size_t n) override {
    FaultEnvState& st = *state_;
    if (st.transient_write_faults > 0) {
      --st.transient_write_faults;
      ++st.stats.transient_faults;
      return Status::Unavailable("FaultInjectionEnv: injected transient write fault");
    }
    if (st.crashed) {
      ++st.stats.post_crash_rejects;
      return Status::IOError("FaultInjectionEnv: write after simulated crash");
    }
    ++st.stats.writes;
    if (st.writes_until_crash > 0 && --st.writes_until_crash == 0) {
      st.crashed = true;
      const size_t torn = st.torn_bytes == SIZE_MAX ? n / 2 : std::min(st.torn_bytes, n);
      if (torn > 0) {
        // Best effort: the prefix that "made it to the platter" before the
        // crash. Its own failure is subsumed by the simulated crash.
        (void)base_->WriteAt(offset, buf, torn);
      }
      return Status::IOError("FaultInjectionEnv: simulated crash (write torn after " +
                             std::to_string(torn) + " of " + std::to_string(n) +
                             " bytes)");
    }
    return base_->WriteAt(offset, buf, n);
  }

  Status Sync() override {
    FaultEnvState& st = *state_;
    if (st.crashed) {
      ++st.stats.post_crash_rejects;
      return Status::IOError("FaultInjectionEnv: sync after simulated crash");
    }
    ++st.stats.syncs;
    if (st.fail_syncs) {
      return Status::IOError("FaultInjectionEnv: injected sync failure");
    }
    if (st.drop_syncs) return Status::OK();
    return base_->Sync();
  }

  Result<uint64_t> Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  std::shared_ptr<FaultEnvState> state_;
};

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base), state_(std::make_shared<FaultEnvState>()) {}

FaultInjectionEnv::~FaultInjectionEnv() = default;

void FaultInjectionEnv::SetCrashAfterWrites(int64_t n) {
  state_->writes_until_crash = n > 0 ? n : 0;
}

void FaultInjectionEnv::SetTornBytes(size_t torn_bytes) {
  state_->torn_bytes = torn_bytes;
}

bool FaultInjectionEnv::crashed() const { return state_->crashed; }

void FaultInjectionEnv::ClearCrash() {
  state_->crashed = false;
  state_->writes_until_crash = 0;
}

void FaultInjectionEnv::SetTransientWriteFaults(int n) {
  state_->transient_write_faults = n;
}

void FaultInjectionEnv::SetTransientReadFaults(int n) {
  state_->transient_read_faults = n;
}

void FaultInjectionEnv::SetReadCorruption(uint64_t offset, uint8_t mask) {
  state_->corrupt_read = mask != 0;
  state_->corrupt_offset = offset;
  state_->corrupt_mask = mask;
}

void FaultInjectionEnv::ClearReadCorruption() { state_->corrupt_read = false; }

void FaultInjectionEnv::SetDropSyncs(bool drop) { state_->drop_syncs = drop; }

void FaultInjectionEnv::SetFailSyncs(bool fail) { state_->fail_syncs = fail; }

const FaultStats& FaultInjectionEnv::stats() const { return state_->stats; }

void FaultInjectionEnv::ResetStats() { state_->stats = FaultStats(); }

Result<std::unique_ptr<RandomAccessFile>> FaultInjectionEnv::NewFile(
    const std::string& path) {
  C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> f, base_->NewFile(path));
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultInjectionFile>(std::move(f), state_));
}

Result<std::unique_ptr<RandomAccessFile>> FaultInjectionEnv::OpenFile(
    const std::string& path) {
  C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> f, base_->OpenFile(path));
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultInjectionFile>(std::move(f), state_));
}

bool FaultInjectionEnv::FileExists(const std::string& path) const {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

}  // namespace c2lsh
