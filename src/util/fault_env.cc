#include "src/util/fault_env.h"

#include <algorithm>

#include "src/util/mutex.h"

namespace c2lsh {

namespace internal {

// One mutex guards the whole programming state: faults are armed rarely and
// I/O through a fault env is test-path code, so a single lock is simpler to
// reason about than per-field atomics and lets one ReadAt/WriteAt observe a
// consistent fault configuration.
struct FaultEnvState {
  Mutex mu;

  int64_t writes_until_crash GUARDED_BY(mu) = 0;  // 0 = disarmed; 1 = next write tears
  bool crashed GUARDED_BY(mu) = false;
  size_t torn_bytes GUARDED_BY(mu) = SIZE_MAX;  // SIZE_MAX = half of the crashing write

  int transient_write_faults GUARDED_BY(mu) = 0;
  int transient_read_faults GUARDED_BY(mu) = 0;
  int short_reads_remaining GUARDED_BY(mu) = 0;

  bool corrupt_read GUARDED_BY(mu) = false;
  uint64_t corrupt_offset GUARDED_BY(mu) = 0;
  uint8_t corrupt_mask GUARDED_BY(mu) = 0;

  bool drop_syncs GUARDED_BY(mu) = false;
  bool fail_syncs GUARDED_BY(mu) = false;

  FaultStats stats GUARDED_BY(mu);
};

}  // namespace internal

using internal::FaultEnvState;

namespace {

class FaultInjectionFile final : public RandomAccessFile {
 public:
  FaultInjectionFile(std::unique_ptr<RandomAccessFile> base,
                     std::shared_ptr<FaultEnvState> state)
      : base_(std::move(base)), state_(std::move(state)) {}

  Status ReadAt(uint64_t offset, void* buf, size_t n,
                size_t* bytes_read) const override {
    FaultEnvState& st = *state_;
    *bytes_read = 0;
    size_t eff_n = n;
    {
      MutexLock lock(&st.mu);
      if (st.transient_read_faults > 0) {
        --st.transient_read_faults;
        ++st.stats.transient_faults;
        return Status::Unavailable("FaultInjectionEnv: injected transient read fault");
      }
      if (st.short_reads_remaining > 0 && n > 1) {
        // Serve half the request: a short read that is NOT end-of-file. A
        // retried/looped read makes progress (>= 1 byte) and is not shorted
        // again once the budget is spent.
        --st.short_reads_remaining;
        ++st.stats.short_reads;
        eff_n = std::max<size_t>(1, n / 2);
      }
      ++st.stats.reads;
    }
    // The base read runs outside the lock; concurrent reads of one file are
    // the base env's contract (pread is positional and thread-safe).
    C2LSH_RETURN_IF_ERROR(base_->ReadAt(offset, buf, eff_n, bytes_read));
    MutexLock lock(&st.mu);
    if (st.corrupt_read && st.corrupt_offset >= offset &&
        st.corrupt_offset < offset + *bytes_read) {
      static_cast<uint8_t*>(buf)[st.corrupt_offset - offset] ^= st.corrupt_mask;
      ++st.stats.corrupted_reads;
    }
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const void* buf, size_t n) override {
    FaultEnvState& st = *state_;
    // Writes stay fully under the lock: the crash point must tear exactly
    // one write, which requires the arm-check, the torn prefix write and the
    // crashed-flag flip to be one atomic step.
    MutexLock lock(&st.mu);
    if (st.transient_write_faults > 0) {
      --st.transient_write_faults;
      ++st.stats.transient_faults;
      return Status::Unavailable("FaultInjectionEnv: injected transient write fault");
    }
    if (st.crashed) {
      ++st.stats.post_crash_rejects;
      return Status::IOError("FaultInjectionEnv: write after simulated crash");
    }
    ++st.stats.writes;
    if (st.writes_until_crash > 0 && --st.writes_until_crash == 0) {
      st.crashed = true;
      const size_t torn = st.torn_bytes == SIZE_MAX ? n / 2 : std::min(st.torn_bytes, n);
      if (torn > 0) {
        // Best effort: the prefix that "made it to the platter" before the
        // crash. Its own failure is subsumed by the simulated crash.
        (void)base_->WriteAt(offset, buf, torn);
      }
      return Status::IOError("FaultInjectionEnv: simulated crash (write torn after " +
                             std::to_string(torn) + " of " + std::to_string(n) +
                             " bytes)");
    }
    return base_->WriteAt(offset, buf, n);
  }

  Status Sync() override {
    FaultEnvState& st = *state_;
    {
      MutexLock lock(&st.mu);
      if (st.crashed) {
        ++st.stats.post_crash_rejects;
        return Status::IOError("FaultInjectionEnv: sync after simulated crash");
      }
      ++st.stats.syncs;
      if (st.fail_syncs) {
        return Status::IOError("FaultInjectionEnv: injected sync failure");
      }
      if (st.drop_syncs) return Status::OK();
    }
    // The base fsync runs outside the lock, same contract as ReadAt: holding
    // st.mu across a real fsync would serialize every injected-file op
    // behind device latency. (WriteAt is different: the crash point must
    // tear exactly one write, so it stays fully under the lock.)
    return base_->Sync();
  }

  Result<uint64_t> Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  std::shared_ptr<FaultEnvState> state_;
};

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base), state_(std::make_shared<FaultEnvState>()) {}

FaultInjectionEnv::~FaultInjectionEnv() = default;

void FaultInjectionEnv::SetCrashAfterWrites(int64_t n) {
  MutexLock lock(&state_->mu);
  state_->writes_until_crash = n > 0 ? n : 0;
}

void FaultInjectionEnv::SetTornBytes(size_t torn_bytes) {
  MutexLock lock(&state_->mu);
  state_->torn_bytes = torn_bytes;
}

bool FaultInjectionEnv::crashed() const {
  MutexLock lock(&state_->mu);
  return state_->crashed;
}

void FaultInjectionEnv::ClearCrash() {
  MutexLock lock(&state_->mu);
  state_->crashed = false;
  state_->writes_until_crash = 0;
}

void FaultInjectionEnv::SetTransientWriteFaults(int n) {
  MutexLock lock(&state_->mu);
  state_->transient_write_faults = n;
}

void FaultInjectionEnv::SetTransientReadFaults(int n) {
  MutexLock lock(&state_->mu);
  state_->transient_read_faults = n;
}

void FaultInjectionEnv::SetShortReads(int n) {
  MutexLock lock(&state_->mu);
  state_->short_reads_remaining = n > 0 ? n : 0;
}

void FaultInjectionEnv::SetReadCorruption(uint64_t offset, uint8_t mask) {
  MutexLock lock(&state_->mu);
  state_->corrupt_read = mask != 0;
  state_->corrupt_offset = offset;
  state_->corrupt_mask = mask;
}

void FaultInjectionEnv::ClearReadCorruption() {
  MutexLock lock(&state_->mu);
  state_->corrupt_read = false;
}

void FaultInjectionEnv::SetDropSyncs(bool drop) {
  MutexLock lock(&state_->mu);
  state_->drop_syncs = drop;
}

void FaultInjectionEnv::SetFailSyncs(bool fail) {
  MutexLock lock(&state_->mu);
  state_->fail_syncs = fail;
}

FaultStats FaultInjectionEnv::stats() const {
  MutexLock lock(&state_->mu);
  return state_->stats;
}

void FaultInjectionEnv::ResetStats() {
  MutexLock lock(&state_->mu);
  state_->stats = FaultStats();
}

Result<std::unique_ptr<RandomAccessFile>> FaultInjectionEnv::NewFile(
    const std::string& path) {
  C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> f, base_->NewFile(path));
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultInjectionFile>(std::move(f), state_));
}

Result<std::unique_ptr<RandomAccessFile>> FaultInjectionEnv::OpenFile(
    const std::string& path) {
  C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> f, base_->OpenFile(path));
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultInjectionFile>(std::move(f), state_));
}

bool FaultInjectionEnv::FileExists(const std::string& path) const {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

}  // namespace c2lsh
