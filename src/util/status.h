// Status: exception-free error propagation for the c2lsh library.
//
// The library never throws; every fallible operation returns a Status (or a
// Result<T>, see result.h). This mirrors the convention used by RocksDB and
// LevelDB: a Status is cheap to create and copy in the OK case, carries an
// error code plus a human-readable message otherwise.

#pragma once
#ifndef C2LSH_UTIL_STATUS_H_
#define C2LSH_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace c2lsh {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,  ///< Caller passed a parameter outside its contract.
  kNotFound = 2,         ///< A requested entity (file, id, key) is absent.
  kIOError = 3,          ///< Filesystem / serialization failure.
  kNotSupported = 4,     ///< Valid request, unimplemented configuration.
  kInternal = 5,         ///< Invariant violation inside the library.
  kCorruption = 6,       ///< Persisted data failed validation.
  kOutOfRange = 7,       ///< Index or radius outside the valid domain.
  kUnavailable = 8,      ///< Transient failure; retrying may succeed.
};

/// Returns a stable human-readable name for a code ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status is either OK (no allocation, fits in a register) or an error code
/// with a message. Copyable and movable; moving leaves the source OK.
///
/// [[nodiscard]]: a Status that is neither checked nor explicitly voided is a
/// compile-time warning (an error under C2LSH_WERROR). Intentional drops must
/// spell out `(void)` plus a comment saying why losing the error is safe.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// The error message, empty for OK.
  std::string_view message() const {
    return rep_ == nullptr ? std::string_view() : std::string_view(rep_->message);
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_unique<Rep>(Rep{code, std::move(msg)})) {}

  std::unique_ptr<Rep> rep_;  // nullptr <=> OK
};

/// Token-pasting helpers shared by the status/result macros. Keeping the
/// temporary names line-unique means an expression passed to a macro can
/// itself mention a variable with the "obvious" name (or another macro
/// expansion) without being captured by the macro's own declaration.
#define C2LSH_CONCAT_INNER_(a, b) a##b
#define C2LSH_CONCAT_(a, b) C2LSH_CONCAT_INNER_(a, b)

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK. The temporary's name is unique per line, so
/// `expr` may reference surrounding variables named `_c2lsh_status` (see
/// status_test.cc's compile-time regression test).
#define C2LSH_RETURN_IF_ERROR(expr)                                         \
  do {                                                                      \
    ::c2lsh::Status C2LSH_CONCAT_(_c2lsh_status_, __LINE__) = (expr);       \
    if (!C2LSH_CONCAT_(_c2lsh_status_, __LINE__).ok())                      \
      return C2LSH_CONCAT_(_c2lsh_status_, __LINE__);                       \
  } while (0)

}  // namespace c2lsh

#endif  // C2LSH_UTIL_STATUS_H_
