// Status: exception-free error propagation for the c2lsh library.
//
// The library never throws; every fallible operation returns a Status (or a
// Result<T>, see result.h). This mirrors the convention used by RocksDB and
// LevelDB: a Status is cheap to create and copy in the OK case, carries an
// error code plus a human-readable message otherwise.

#ifndef C2LSH_UTIL_STATUS_H_
#define C2LSH_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace c2lsh {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,  ///< Caller passed a parameter outside its contract.
  kNotFound = 2,         ///< A requested entity (file, id, key) is absent.
  kIOError = 3,          ///< Filesystem / serialization failure.
  kNotSupported = 4,     ///< Valid request, unimplemented configuration.
  kInternal = 5,         ///< Invariant violation inside the library.
  kCorruption = 6,       ///< Persisted data failed validation.
  kOutOfRange = 7,       ///< Index or radius outside the valid domain.
};

/// Returns a stable human-readable name for a code ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status is either OK (no allocation, fits in a register) or an error code
/// with a message. Copyable and movable; moving leaves the source OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }

  /// The error message, empty for OK.
  std::string_view message() const {
    return rep_ == nullptr ? std::string_view() : std::string_view(rep_->message);
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_unique<Rep>(Rep{code, std::move(msg)})) {}

  std::unique_ptr<Rep> rep_;  // nullptr <=> OK
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define C2LSH_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::c2lsh::Status _c2lsh_status = (expr);          \
    if (!_c2lsh_status.ok()) return _c2lsh_status;   \
  } while (0)

}  // namespace c2lsh

#endif  // C2LSH_UTIL_STATUS_H_
