// Bounded retry with jittered exponential backoff for transient I/O
// failures, deadline-aware when the operation runs on behalf of a query.
//
// The Env layer reports EINTR-style transient conditions as
// Status::Unavailable (distinct from a hard IOError); RetryTransient retries
// exactly those, a bounded number of times, and converts persistent
// unavailability into an IOError so no caller can spin forever. PageFile
// wraps every page read/write in this helper and exposes the RetryStats.
//
// Backoff uses *decorrelated jitter* (sleep ~ U[base, 3*prev], capped),
// seeded per thread from RetryPolicy::jitter_seed: deterministic within a
// thread, decorrelated across threads, so a burst of threads hitting the
// same transient fault does not sleep — and then retry — in lockstep.
//
// When a QueryContext is supplied, the retry loop honors it: it stops
// retrying (returning the still-transient Unavailable) as soon as the query
// is cancelled or the remaining deadline budget cannot cover the next
// backoff sleep, so a disk-fault retry can never blow a query's latency
// budget. Callers on the query path treat that Unavailable plus an expired
// context as "stop with partial results", not as an error.

#pragma once
#ifndef C2LSH_UTIL_RETRY_H_
#define C2LSH_UTIL_RETRY_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/util/query_context.h"
#include "src/util/random.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace c2lsh {

/// How hard to try. The defaults absorb a short burst of transient faults
/// without adding noticeable latency; tests set backoff_initial_us = 0.
struct RetryPolicy {
  int max_attempts = 4;          ///< total attempts (first try included), >= 1
  int backoff_initial_us = 100;  ///< backoff floor; 0 disables sleeping
  int backoff_max_us = 10'000;   ///< backoff ceiling
  /// Seed of the decorrelated jitter stream. Each thread derives its own
  /// stream from (jitter_seed, thread id), so identical policies on
  /// different threads produce different backoff sequences while any single
  /// thread stays reproducible.
  uint64_t jitter_seed = 1;
};

/// Cumulative counters, observable wherever a policy is applied.
///
/// The counters are atomic so a monitoring thread can read them while
/// another thread is inside RetryTransient (the "read while retrying" case —
/// see retry_concurrency_test.cc). Relaxed ordering suffices: each counter
/// is an independent statistic, not a synchronization point. Copying takes a
/// relaxed per-field snapshot, so a copied RetryStats is a plain value whose
/// fields may be from slightly different instants — fine for statistics.
struct RetryStats {
  std::atomic<uint64_t> operations{0};  ///< calls to RetryTransient
  std::atomic<uint64_t> retries{0};     ///< extra attempts after a transient failure
  std::atomic<uint64_t> exhausted{0};   ///< operations that failed every attempt
  std::atomic<uint64_t> abandoned{0};   ///< retry loops cut short by deadline/cancel

  RetryStats() = default;
  RetryStats(const RetryStats& other) { *this = other; }
  RetryStats& operator=(const RetryStats& other) {
    operations.store(other.operations.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    retries.store(other.retries.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    exhausted.store(other.exhausted.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    abandoned.store(other.abandoned.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }
};

namespace retry_internal {

/// Process-wide registry counters, the cross-instance complement of the
/// per-owner RetryStats. Resolved once outside the template so every
/// RetryTransient instantiation shares one cache.
struct RegistryCounters {
  obs::Counter* operations;
  obs::Counter* retries;
  obs::Counter* exhausted;
  obs::Counter* abandoned;
};

inline const RegistryCounters& Metrics() {
  static const RegistryCounters m = [] {
    auto& r = obs::MetricsRegistry::Global();
    RegistryCounters mm;
    mm.operations =
        r.GetCounter("retry_operations_total", "operations run under RetryTransient");
    mm.retries = r.GetCounter("retry_retries_total",
                              "extra attempts after a transient failure");
    mm.exhausted = r.GetCounter("retry_exhausted_total",
                                "operations that failed every retry attempt");
    mm.abandoned = r.GetCounter(
        "retry_abandoned_total",
        "retry loops cut short by a query deadline or cancellation");
    return mm;
  }();
  return m;
}

/// The next decorrelated-jitter backoff: U[base, 3*prev] clamped to
/// [base, cap] (AWS "decorrelated jitter"; prev = 0 on the first retry, so
/// the first sleep is U[base, min(3*base, cap)]). Returns 0 when the policy
/// disables sleeping (backoff_initial_us <= 0).
inline int NextBackoffUs(const RetryPolicy& policy, int prev_us, Rng* rng) {
  if (policy.backoff_initial_us <= 0) return 0;
  const int64_t base = policy.backoff_initial_us;
  const int64_t cap = std::max<int64_t>(policy.backoff_max_us, base);
  const int64_t prev = std::max<int64_t>(prev_us, base);
  const int64_t hi = std::min<int64_t>(cap, 3 * prev);
  if (hi <= base) return static_cast<int>(base);
  return static_cast<int>(rng->UniformInt(base, hi));
}

/// Per-thread jitter stream: deterministic given (seed, thread), distinct
/// across threads. The stream advances across RetryTransient calls on the
/// same thread, so even two back-to-back retry loops do not repeat sleeps.
inline Rng& ThreadJitterRng(uint64_t seed) {
  thread_local Rng rng(SplitMix64(
      seed ^ static_cast<uint64_t>(
                 std::hash<std::thread::id>{}(std::this_thread::get_id()))));
  return rng;
}

}  // namespace retry_internal

/// Runs `fn` (returning Status) until it returns anything other than
/// Unavailable, up to `policy.max_attempts` attempts. Non-transient results
/// (OK, IOError, Corruption, ...) pass through untouched on whichever
/// attempt produces them.
///
/// `ctx` (nullable) makes the loop deadline-aware: before each backoff
/// sleep, if the query is cancelled or its remaining deadline cannot cover
/// the sleep, the loop gives up immediately and returns the last transient
/// Status (still Unavailable — the condition might clear; it is the *query*
/// that ran out of budget, not the device that failed hard). Exhausting
/// every attempt still converts to IOError as before.
template <typename Fn>
Status RetryTransient(const RetryPolicy& policy, RetryStats* stats,
                      const QueryContext* ctx, Fn&& fn) {
  retry_internal::Metrics().operations->Increment();
  if (stats != nullptr) {
    stats->operations.fetch_add(1, std::memory_order_relaxed);
  }
  obs::ScopedSpan retry_span(obs::SpanSubsystem::kRetry, "retry_transient",
                             ctx != nullptr ? ctx->trace_id : 0);
  const int attempts = std::max(1, policy.max_attempts);
  int prev_backoff_us = 0;
  Status s;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      const int backoff_us = retry_internal::NextBackoffUs(
          policy, prev_backoff_us,
          &retry_internal::ThreadJitterRng(policy.jitter_seed));
      if (ctx != nullptr &&
          (ctx->cancelled() ||
           ctx->deadline.RemainingMicros() < static_cast<double>(backoff_us))) {
        retry_internal::Metrics().abandoned->Increment();
        if (stats != nullptr) {
          stats->abandoned.fetch_add(1, std::memory_order_relaxed);
        }
        const uint64_t trace_id = ctx->trace_id;
        obs::TraceInstant(obs::SpanSubsystem::kRetry, "retry_abandoned",
                          trace_id, static_cast<double>(attempt));
        obs::FlightRecorder::Global().RecordAnomaly(
            obs::AnomalyKind::kRetryAbandoned, "retry_transient", trace_id,
            /*trace=*/nullptr);
        return s;  // still Unavailable: the query's budget ended, not the device
      }
      retry_internal::Metrics().retries->Increment();
      if (stats != nullptr) stats->retries.fetch_add(1, std::memory_order_relaxed);
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
      prev_backoff_us = backoff_us;
    }
    s = fn();
    if (!s.IsUnavailable()) return s;
  }
  retry_internal::Metrics().exhausted->Increment();
  if (stats != nullptr) stats->exhausted.fetch_add(1, std::memory_order_relaxed);
  return Status::IOError("transient failure persisted after " +
                         std::to_string(attempts) +
                         " attempts: " + std::string(s.message()));
}

/// Context-free overload (build paths, maintenance I/O): retries are
/// bounded by the policy alone.
template <typename Fn>
Status RetryTransient(const RetryPolicy& policy, RetryStats* stats, Fn&& fn) {
  return RetryTransient(policy, stats, /*ctx=*/nullptr, std::forward<Fn>(fn));
}

}  // namespace c2lsh

#endif  // C2LSH_UTIL_RETRY_H_
