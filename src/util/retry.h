// Bounded retry with exponential backoff for transient I/O failures.
//
// The Env layer reports EINTR-style transient conditions as
// Status::Unavailable (distinct from a hard IOError); RetryTransient retries
// exactly those, a bounded number of times, and converts persistent
// unavailability into an IOError so no caller can spin forever. PageFile
// wraps every page read/write in this helper and exposes the RetryStats.

#ifndef C2LSH_UTIL_RETRY_H_
#define C2LSH_UTIL_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>

#include "src/util/status.h"

namespace c2lsh {

/// How hard to try. The defaults absorb a short burst of transient faults
/// without adding noticeable latency; tests set backoff_initial_us = 0.
struct RetryPolicy {
  int max_attempts = 4;          ///< total attempts (first try included), >= 1
  int backoff_initial_us = 100;  ///< sleep before the first retry; doubles
  int backoff_max_us = 10'000;   ///< backoff ceiling
};

/// Cumulative counters, observable wherever a policy is applied.
struct RetryStats {
  uint64_t operations = 0;  ///< calls to RetryTransient
  uint64_t retries = 0;     ///< extra attempts after a transient failure
  uint64_t exhausted = 0;   ///< operations that failed every attempt
};

/// Runs `fn` (returning Status) until it returns anything other than
/// Unavailable, up to `policy.max_attempts` attempts. Non-transient results
/// (OK, IOError, Corruption, ...) pass through untouched on whichever
/// attempt produces them.
template <typename Fn>
Status RetryTransient(const RetryPolicy& policy, RetryStats* stats, Fn&& fn) {
  if (stats != nullptr) ++stats->operations;
  const int attempts = std::max(1, policy.max_attempts);
  int backoff_us = policy.backoff_initial_us;
  Status s;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (stats != nullptr) ++stats->retries;
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
      backoff_us = std::min(std::max(backoff_us, 1) * 2, policy.backoff_max_us);
    }
    s = fn();
    if (!s.IsUnavailable()) return s;
  }
  if (stats != nullptr) ++stats->exhausted;
  return Status::IOError("transient failure persisted after " +
                         std::to_string(attempts) +
                         " attempts: " + std::string(s.message()));
}

}  // namespace c2lsh

#endif  // C2LSH_UTIL_RETRY_H_
