// Bounded retry with exponential backoff for transient I/O failures.
//
// The Env layer reports EINTR-style transient conditions as
// Status::Unavailable (distinct from a hard IOError); RetryTransient retries
// exactly those, a bounded number of times, and converts persistent
// unavailability into an IOError so no caller can spin forever. PageFile
// wraps every page read/write in this helper and exposes the RetryStats.

#pragma once
#ifndef C2LSH_UTIL_RETRY_H_
#define C2LSH_UTIL_RETRY_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>

#include "src/obs/registry.h"
#include "src/util/status.h"

namespace c2lsh {

/// How hard to try. The defaults absorb a short burst of transient faults
/// without adding noticeable latency; tests set backoff_initial_us = 0.
struct RetryPolicy {
  int max_attempts = 4;          ///< total attempts (first try included), >= 1
  int backoff_initial_us = 100;  ///< sleep before the first retry; doubles
  int backoff_max_us = 10'000;   ///< backoff ceiling
};

/// Cumulative counters, observable wherever a policy is applied.
///
/// The counters are atomic so a monitoring thread can read them while
/// another thread is inside RetryTransient (the "read while retrying" case —
/// see retry_concurrency_test.cc). Relaxed ordering suffices: each counter
/// is an independent statistic, not a synchronization point. Copying takes a
/// relaxed per-field snapshot, so a copied RetryStats is a plain value whose
/// fields may be from slightly different instants — fine for statistics.
struct RetryStats {
  std::atomic<uint64_t> operations{0};  ///< calls to RetryTransient
  std::atomic<uint64_t> retries{0};     ///< extra attempts after a transient failure
  std::atomic<uint64_t> exhausted{0};   ///< operations that failed every attempt

  RetryStats() = default;
  RetryStats(const RetryStats& other) { *this = other; }
  RetryStats& operator=(const RetryStats& other) {
    operations.store(other.operations.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    retries.store(other.retries.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    exhausted.store(other.exhausted.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }
};

namespace retry_internal {

/// Process-wide registry counters, the cross-instance complement of the
/// per-owner RetryStats. Resolved once outside the template so every
/// RetryTransient instantiation shares one cache.
struct RegistryCounters {
  obs::Counter* operations;
  obs::Counter* retries;
  obs::Counter* exhausted;
};

inline const RegistryCounters& Metrics() {
  static const RegistryCounters m = [] {
    auto& r = obs::MetricsRegistry::Global();
    RegistryCounters mm;
    mm.operations =
        r.GetCounter("retry_operations_total", "operations run under RetryTransient");
    mm.retries = r.GetCounter("retry_retries_total",
                              "extra attempts after a transient failure");
    mm.exhausted = r.GetCounter("retry_exhausted_total",
                                "operations that failed every retry attempt");
    return mm;
  }();
  return m;
}

}  // namespace retry_internal

/// Runs `fn` (returning Status) until it returns anything other than
/// Unavailable, up to `policy.max_attempts` attempts. Non-transient results
/// (OK, IOError, Corruption, ...) pass through untouched on whichever
/// attempt produces them.
template <typename Fn>
Status RetryTransient(const RetryPolicy& policy, RetryStats* stats, Fn&& fn) {
  retry_internal::Metrics().operations->Increment();
  if (stats != nullptr) {
    stats->operations.fetch_add(1, std::memory_order_relaxed);
  }
  const int attempts = std::max(1, policy.max_attempts);
  int backoff_us = policy.backoff_initial_us;
  Status s;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retry_internal::Metrics().retries->Increment();
      if (stats != nullptr) stats->retries.fetch_add(1, std::memory_order_relaxed);
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
      backoff_us = std::min(std::max(backoff_us, 1) * 2, policy.backoff_max_us);
    }
    s = fn();
    if (!s.IsUnavailable()) return s;
  }
  retry_internal::Metrics().exhausted->Increment();
  if (stats != nullptr) stats->exhausted.fetch_add(1, std::memory_order_relaxed);
  return Status::IOError("transient failure persisted after " +
                         std::to_string(attempts) +
                         " attempts: " + std::string(s.message()));
}

}  // namespace c2lsh

#endif  // C2LSH_UTIL_RETRY_H_
