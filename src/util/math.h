// Numeric kernels shared across the library: the standard normal CDF, the
// p-stable LSH collision probability p(s; w) from Datar et al. (SoCG 2004)
// that C2LSH's parameterization is built on, and small statistics helpers
// used by the evaluation harness.

#pragma once
#ifndef C2LSH_UTIL_MATH_H_
#define C2LSH_UTIL_MATH_H_

#include <cstddef>
#include <vector>

namespace c2lsh {

/// Standard normal probability density function.
double NormalPdf(double x);

/// Standard normal cumulative distribution function Phi(x), accurate to
/// ~1e-15 via std::erfc.
double NormalCdf(double x);

/// Collision probability of the 2-stable (Gaussian) projection hash
/// h(o) = floor((a.o + b)/w) for two points at Euclidean distance `s`:
///
///   p(s; w) = 1 - 2*Phi(-w/s) - (2 / (sqrt(2*pi) * (w/s))) * (1 - exp(-(w/s)^2 / 2))
///
/// Monotonically decreasing in s; p(0) = 1, p(inf) = 0. `s` must be >= 0 and
/// `w` > 0. The s = 0 limit returns exactly 1.
double PStableCollisionProbability(double s, double w);

/// Inverse of PStableCollisionProbability in `s` for fixed `w`: returns the
/// distance at which the collision probability equals `p` (0 < p < 1).
/// Solved by bisection to ~1e-12 relative accuracy.
double PStableInverseDistance(double p, double w);

/// Regularized lower incomplete gamma function P(a, x) = γ(a, x) / Γ(a),
/// for a > 0, x >= 0. Series expansion for x < a + 1, continued fraction
/// otherwise; absolute accuracy ~1e-12. The chi-squared CDF below is its
/// only in-repo consumer.
double RegularizedGammaP(double a, double x);

/// CDF of the chi-squared distribution with k degrees of freedom at x —
/// the distribution of a squared Gaussian-projection distance ratio, which
/// the SRS baseline's early-termination test is built on.
double ChiSquaredCdf(double x, int k);

/// Hoeffding bound: probability that the mean of `m` i.i.d. Bernoulli(p)
/// variables deviates below p by at least `t` is <= exp(-2 m t^2). This
/// returns that bound; used by core/params self-checks and tests.
double HoeffdingLowerTailBound(double t, int m);

/// Arithmetic mean; returns 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); returns 0 for size < 2.
double SampleStddev(const std::vector<double>& xs);

/// The q-th percentile (0 <= q <= 100) by linear interpolation between
/// closest ranks. Copies and sorts; returns 0 for an empty input.
double Percentile(std::vector<double> xs, double q);

/// Integer ceil(a / b) for positive b and non-negative a.
inline long long CeilDiv(long long a, long long b) { return (a + b - 1) / b; }

/// Floor division that is correct for negative numerators (C++'s `/`
/// truncates toward zero; bucket ids are signed so virtual rehashing needs
/// true floor semantics).
inline long long FloorDiv(long long a, long long b) {
  long long q = a / b;
  long long r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

}  // namespace c2lsh

#endif  // C2LSH_UTIL_MATH_H_
