// ThreadPool: the process-wide worker pool behind every parallel region in
// the library (index build, batched queries, ground-truth computation).
//
// The pool exists so parallel call sites stop paying thread-creation cost on
// every call and so the process has one bounded set of compute threads
// instead of per-call bursts: raw std::thread construction is confined to
// this translation unit by lint's raw-thread rule (tests and tools are
// exempt). Pool size is clamped to std::thread::hardware_concurrency().
//
// The primitive is ParallelFor(n, fn): run fn(0..n-1), block until done.
// The calling thread PARTICIPATES — it pulls indexes from the same shared
// counter as the workers — so a ParallelFor always makes progress even when
// every worker is busy with someone else's region. Work items must not
// block on the pool themselves (no nested ParallelFor from inside fn):
// worker threads run one task to completion and never wait on other tasks.
//
// Determinism contract: ParallelFor guarantees each index runs exactly once
// and all writes made by fn are visible to the caller on return (the
// completion handshake is an acquire/release pair). It does NOT guarantee
// which thread runs which index — callers needing deterministic output must
// write to disjoint, index-addressed slots (the pattern every call site in
// this tree uses).
//
// Thread-safety: the queue is guarded by an annotated Mutex; the worker
// wait loop goes through std::unique_lock + std::condition_variable_any,
// which the capability analysis cannot follow, so those functions carry
// NO_THREAD_SAFETY_ANALYSIS with the reasoning in a comment (same idiom as
// AdmissionController::Admit). No <chrono> here: all waits are untimed
// condition-variable waits, wakeable by enqueue or shutdown.

#pragma once
#ifndef C2LSH_UTIL_THREAD_POOL_H_
#define C2LSH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace c2lsh {

/// Trace instrumentation seam. The util layer cannot call into src/obs/
/// (obs links util), so the pool publishes its dispatch timing through this
/// narrow callback table instead; obs::Tracer installs it when tracing is
/// first enabled. `begin` returns an opaque token (0 = "not tracing")
/// passed back to `end`. Both run on hot paths: implementations must be
/// lock-free and allocation-free. The `what` strings are static literals.
struct ThreadPoolTraceHooks {
  uint64_t (*begin)(const char* what, size_t n);
  void (*end)(uint64_t token, const char* what, size_t n);
};

/// Installs the dispatch hooks (nullptr uninstalls). The pointer must stay
/// valid for the life of the process; installation is one-way in practice
/// (the tracer installs a static table once).
void SetThreadPoolTraceHooks(const ThreadPoolTraceHooks* hooks);

class ThreadPool {
 public:
  /// Creates a pool with min(num_threads, hardware_concurrency) workers
  /// (at least one). `num_threads == 0` means "use hardware concurrency".
  explicit ThreadPool(size_t num_threads);

  /// `clamp_to_hardware = false` takes `num_threads` literally (still at
  /// least one): for pools whose tasks BLOCK on I/O rather than compute —
  /// e.g. one worker per live server connection — where the right size is
  /// the concurrency cap of the resource, not the core count. Compute pools
  /// must keep the clamp.
  ThreadPool(size_t num_threads, bool clamp_to_hardware);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for every i in [0, n) and returns once all calls completed.
  /// The caller participates in the work, so this cannot deadlock waiting
  /// for busy workers; fn must not block on this pool (see file comment).
  /// Safe to call from multiple threads concurrently.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Enqueues `task` to run on some worker and returns immediately. No
  /// completion handshake: callers that must observe completion (a server
  /// joining its connection handlers at drain) keep their own counter or
  /// latch. Unlike ParallelFor work items, submitted tasks MAY block — on a
  /// pool built with clamp_to_hardware = false and sized to the blocking
  /// concurrency cap — but must never call back into this pool.
  void Submit(std::function<void()> task);

  /// The process-wide shared pool, sized to hardware concurrency. Built on
  /// first use; lives for the life of the process.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  Mutex mu_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace c2lsh

#endif  // C2LSH_UTIL_THREAD_POOL_H_
