// CRC-32C (Castagnoli): the checksum guarding every persisted byte.
//
// One implementation shared by the storage stack (per-page footers in
// PageFile) and the index serializer (whole-file trailer in serialize.cc),
// so a bit flip anywhere on disk is detected by the same, well-tested code
// path. Table-driven, byte-at-a-time — checksumming is off the query hot
// path (pages are verified once per pool miss).

#pragma once
#ifndef C2LSH_UTIL_CRC32_H_
#define C2LSH_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace c2lsh {

/// CRC-32C of `data[0, n)`. Pass a previous result as `seed` to checksum a
/// logical stream in chunks: Crc32c(b, nb, Crc32c(a, na)) == Crc32c(a+b).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// Mixes a checksum so that a stored CRC of zero-filled data is never the
/// all-zeros bit pattern (a freshly truncated or torn region would otherwise
/// masquerade as a valid zero page). Unmask inverts Mask; use Mask to store
/// and Unmask to load.
inline uint32_t Crc32cMask(uint32_t crc) {
  // Rotate right by 15 bits and add a constant, per the RocksDB/LevelDB
  // masked-CRC convention.
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8U;
}
inline uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - 0xA282EAD8U;
  return (rot << 15) | (rot >> 17);
}

}  // namespace c2lsh

#endif  // C2LSH_UTIL_CRC32_H_
