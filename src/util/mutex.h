// c2lsh::Mutex / MutexLock: a thin std::mutex wrapper that carries Clang
// thread-safety annotations, so members declared GUARDED_BY(mu_) are
// machine-checked under `clang++ -Wthread-safety` (see thread_annotations.h;
// the annotations compile away under GCC).
//
// The wrapper exists because std::mutex itself cannot be annotated: the
// analysis needs CAPABILITY on the lock type and ACQUIRE/RELEASE on its
// methods. Use MutexLock for scoped sections and Mutex::AssertHeld() to
// document (and, under Clang, prove) "caller already holds the lock"
// internal helpers.

#pragma once
#ifndef C2LSH_UTIL_MUTEX_H_
#define C2LSH_UTIL_MUTEX_H_

#include <mutex>

#include "src/util/thread_annotations.h"

namespace c2lsh {

/// An annotated exclusive mutex. Non-copyable, non-movable: the address of a
/// Mutex identifies the capability, so a Mutex member pins its owner in
/// place (owners that must stay movable exclude the Mutex from their move,
/// e.g. BufferPool constructs a fresh one).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  /// BasicLockable spelling of Lock/Unlock, so std::unique_lock and
  /// std::condition_variable_any can operate on an annotated Mutex (the
  /// admission controller waits on one). Callers going through these
  /// wrappers are invisible to the capability analysis and must annotate
  /// themselves (see AdmissionController::Admit).
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

  /// Documents that the calling thread must already hold this mutex. A no-op
  /// at runtime; under Clang the analysis treats it as proof of possession,
  /// so private REQUIRES(mu_) helpers can assert their contract.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

/// RAII critical section over a c2lsh::Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace c2lsh

#endif  // C2LSH_UTIL_MUTEX_H_
