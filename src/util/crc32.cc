#include "src/util/crc32.h"

namespace c2lsh {

namespace {

struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    // Reflected Castagnoli polynomial.
    constexpr uint32_t kPoly = 0x82F63B78U;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  const Crc32cTable& t = Table();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ t.entries[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace c2lsh
