#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "src/util/mutex.h"

namespace c2lsh {
namespace {

size_t ClampToHardware(size_t requested) {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;  // unknown: stay conservative
  if (requested == 0) requested = hw;
  return std::max<size_t>(1, std::min(requested, hw));
}

// The installed hook table, or nullptr. Read with acquire so a helper task
// observing the pointer also observes the table it points at.
std::atomic<const ThreadPoolTraceHooks*> g_trace_hooks{nullptr};

uint64_t TraceBegin(const char* what, size_t n) {
  const ThreadPoolTraceHooks* h =
      g_trace_hooks.load(std::memory_order_acquire);
  return h != nullptr && h->begin != nullptr ? h->begin(what, n) : 0;
}

void TraceEnd(uint64_t token, const char* what, size_t n) {
  if (token == 0) return;
  const ThreadPoolTraceHooks* h =
      g_trace_hooks.load(std::memory_order_acquire);
  if (h != nullptr && h->end != nullptr) h->end(token, what, n);
}

}  // namespace

void SetThreadPoolTraceHooks(const ThreadPoolTraceHooks* hooks) {
  g_trace_hooks.store(hooks, std::memory_order_release);
}

ThreadPool::ThreadPool(size_t num_threads) : ThreadPool(num_threads, true) {}

ThreadPool::ThreadPool(size_t num_threads, bool clamp_to_hardware) {
  const size_t n = clamp_to_hardware ? ClampToHardware(num_threads)
                                     : std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

// The capability analysis cannot follow std::unique_lock or the
// condition_variable_any wait (both lock/unlock the Mutex inside library
// templates), so this function is excluded; the whole body runs under mu_
// held by `lock` except while executing a popped task, and the cv wait
// releases/reacquires it as usual.
void ThreadPool::WorkerLoop() NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<Mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (!queue_.empty()) {
      std::function<void()> task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();
      lock.lock();
      continue;
    }
    if (shutdown_) return;
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const uint64_t region_token = TraceBegin("parallel_for", n);
  if (n == 1 || threads_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    TraceEnd(region_token, "parallel_for", n);
    return;
  }

  // Shared region state. Heap-allocated and reference-counted because a
  // helper that loses the race for the last index may still be between its
  // final decrement and its notify after the caller has already returned.
  struct Region {
    explicit Region(size_t live_helpers) : live(live_helpers) {}
    std::atomic<size_t> next{0};
    std::atomic<size_t> live;  // helper tasks not yet finished
    Mutex mu;
    std::condition_variable_any cv;
  };
  const size_t helpers = std::min(threads_.size(), n - 1);
  auto region = std::make_shared<Region>(helpers);

  // `fn` stays valid for the whole region: the caller below blocks until
  // every helper has finished, so capturing its address is safe.
  const std::function<void(size_t)>* fn_ptr = &fn;
  auto helper_task = [region, fn_ptr, n] {
    const uint64_t task_token = TraceBegin("pool_task", n);
    size_t i;
    while ((i = region->next.fetch_add(1, std::memory_order_relaxed)) < n) {
      (*fn_ptr)(i);
    }
    TraceEnd(task_token, "pool_task", n);
    // Last helper out wakes the caller. The lock/notify pair (instead of a
    // bare notify) closes the missed-wakeup window against the caller's
    // predicate check.
    if (region->live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::unique_lock<Mutex> lock(region->mu);
      region->cv.notify_all();
    }
  };
  {
    MutexLock lock(&mu_);
    for (size_t h = 0; h < helpers; ++h) queue_.emplace_back(helper_task);
  }
  cv_.notify_all();

  // The caller works the same counter, then waits for the helpers. The
  // acquire on `live` pairs with each helper's release-decrement, making
  // every fn(i) write visible here on return.
  size_t i;
  while ((i = region->next.fetch_add(1, std::memory_order_relaxed)) < n) {
    fn(i);
  }
  std::unique_lock<Mutex> lock(region->mu);
  region->cv.wait(lock, [&region] {
    return region->live.load(std::memory_order_acquire) == 0;
  });
  lock.unlock();
  TraceEnd(region_token, "parallel_for", n);
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.emplace_back(std::move(task));
  }
  cv_.notify_one();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(0);  // 0 = hardware concurrency
  return pool;
}

}  // namespace c2lsh
