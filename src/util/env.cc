#include "src/util/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace c2lsh {

namespace {

/// "op 'path': strerror (errno N)" — every IOError the storage stack emits
/// carries the failing syscall, the path, and the OS cause.
std::string ErrnoMessage(const char* op, const std::string& path, int err) {
  return std::string(op) + " '" + path + "': " + std::strerror(err) +
         " (errno " + std::to_string(err) + ")";
}

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status ReadAt(uint64_t offset, void* buf, size_t n,
                size_t* bytes_read) const override {
    auto* p = static_cast<uint8_t*>(buf);
    size_t done = 0;
    while (done < n) {
      const ssize_t r = ::pread(fd_, p + done, n - done,
                                static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        *bytes_read = done;
        return Status::IOError(ErrnoMessage("pread", path_, errno));
      }
      if (r == 0) break;  // end of file
      done += static_cast<size_t>(r);
    }
    *bytes_read = done;
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const void* buf, size_t n) override {
    const auto* p = static_cast<const uint8_t*>(buf);
    size_t done = 0;
    while (done < n) {
      const ssize_t w = ::pwrite(fd_, p + done, n - done,
                                 static_cast<off_t>(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pwrite", path_, errno));
      }
      done += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fsync", path_, errno));
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError(ErrnoMessage("fstat", path_, errno));
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<RandomAccessFile>> NewFile(const std::string& path) override {
    return OpenWithFlags(path, O_RDWR | O_CREAT | O_TRUNC);
  }

  Result<std::unique_ptr<RandomAccessFile>> OpenFile(const std::string& path) override {
    return OpenWithFlags(path, O_RDWR);
  }

  bool FileExists(const std::string& path) const override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("unlink", path, errno));
    }
    return Status::OK();
  }

 private:
  static Result<std::unique_ptr<RandomAccessFile>> OpenWithFlags(
      const std::string& path, int flags) {
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("open", path, errno));
    }
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<PosixRandomAccessFile>(fd, path));
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status ReadFullyAt(const RandomAccessFile& file, uint64_t offset, void* buf,
                   size_t n, size_t* bytes_read) {
  auto* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  *bytes_read = 0;
  // analyze-ok(cancellation-cadence): bounded by n — every iteration strictly advances `done` or breaks at EOF, so this is one read request's short-read recovery, well under the poll cadence.
  while (done < n) {
    size_t got = 0;
    C2LSH_RETURN_IF_ERROR(file.ReadAt(offset + done, p + done, n - done, &got));
    if (got == 0) break;  // end of file — the one short read that is final
    done += got;
    *bytes_read = done;
  }
  return Status::OK();
}

}  // namespace c2lsh
