#include "src/util/status.h"

namespace c2lsh {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(const Status& other)
    : rep_(other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_)) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += rep_->message;
  return out;
}

}  // namespace c2lsh
