// Deterministic random number generation.
//
// Every randomized component in the library (hash function sampling, synthetic
// data generation, query selection) takes an explicit seed and derives its
// randomness through Rng, so a whole experiment is reproducible from a single
// 64-bit seed printed in its header line.

#pragma once
#ifndef C2LSH_UTIL_RANDOM_H_
#define C2LSH_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace c2lsh {

/// Mixes a 64-bit value through the SplitMix64 finalizer. Used to derive
/// independent child seeds from a master seed without correlation.
uint64_t SplitMix64(uint64_t x);

/// A seeded pseudo-random generator with the distribution helpers the library
/// needs. Wraps std::mt19937_64; not thread-safe (create one per thread).
class Rng {
 public:
  /// Constructs a generator from an explicit seed. Identical seeds produce
  /// identical streams on every platform the library supports.
  explicit Rng(uint64_t seed) : engine_(SplitMix64(seed)), base_seed_(seed) {}

  /// Derives a child generator whose stream is independent of this one and of
  /// every other child with a different `stream_id`. Deterministic.
  Rng Fork(uint64_t stream_id) const;

  /// Standard normal N(0, 1).
  double Gaussian() { return normal_(engine_); }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform in [0, n) — convenience for index selection. Requires n > 0.
  size_t Index(size_t n);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fills `out` with i.i.d. standard normal values.
  void GaussianVector(size_t n, std::vector<float>* out);

  /// Returns `k` distinct indices drawn uniformly from [0, n). Requires
  /// k <= n. O(n) time via partial Fisher-Yates.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Raw 64 random bits.
  uint64_t Next64() { return engine_(); }

  /// The underlying engine, for use with std:: distribution objects.
  std::mt19937_64& engine() { return engine_; }

 private:
  Rng(uint64_t seed, bool /*raw_tag*/) : engine_(seed) {}

  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  uint64_t base_seed_ = 0;
};

}  // namespace c2lsh

#endif  // C2LSH_UTIL_RANDOM_H_
