// Minimal --key=value command-line parsing for the bench and example
// binaries. Not a general-purpose flags library: every binary declares the
// flags it understands, unknown flags are an error, and `--help` prints the
// declared set.

#pragma once
#ifndef C2LSH_UTIL_ARGPARSE_H_
#define C2LSH_UTIL_ARGPARSE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace c2lsh {

/// Declarative flag set. Declare defaults, then Parse(argc, argv); getters
/// return the parsed or default value.
class ArgParser {
 public:
  /// `program_doc` is printed at the top of --help output.
  explicit ArgParser(std::string program_doc) : doc_(std::move(program_doc)) {}

  /// Declares a flag with a default value and help text. Must be called
  /// before Parse. Redeclaring a flag overwrites its default.
  void AddString(const std::string& name, const std::string& def, const std::string& help);
  void AddInt(const std::string& name, int64_t def, const std::string& help);
  void AddDouble(const std::string& name, double def, const std::string& help);
  void AddBool(const std::string& name, bool def, const std::string& help);

  /// Parses `--name=value` and `--name value` forms. Returns InvalidArgument
  /// on unknown flags or unparseable values. `--help` sets help_requested().
  Status Parse(int argc, char** argv);

  bool help_requested() const { return help_requested_; }

  /// Renders the help text (doc + one line per declared flag).
  std::string HelpString() const;

  /// Typed getters; the flag must have been declared.
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;  // canonical string form of current value
    std::string help;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::string doc_;
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace c2lsh

#endif  // C2LSH_UTIL_ARGPARSE_H_
