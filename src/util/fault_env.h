// FaultInjectionEnv: an Env decorator that makes storage failure modes
// reproducible, so the crash-safety invariants of PageFile and
// DiskC2lshIndex are *tested*, not assumed.
//
// Programmable faults (all deterministic, shared across every file the env
// hands out):
//   * crash point      — the Nth write from now is torn (only a prefix
//                        reaches the base env) and every later write/sync
//                        fails, simulating a process kill mid-write;
//   * transient faults — the next K reads or writes fail with
//                        Status::Unavailable (EINTR-style), exercising the
//                        bounded-retry path in PageFile;
//   * read bit-flips   — any read covering a chosen file offset comes back
//                        with that byte XOR-ed, simulating media corruption
//                        without touching the file (the checksum layer must
//                        catch it);
//   * short reads      — the next K reads return fewer bytes than requested
//                        WITHOUT being at end-of-file (POSIX pread permits
//                        this at any offset); readers of fixed-size records
//                        must loop via ReadFullyAt, not call it truncation;
//   * sync faults      — Sync() either silently does nothing (dropped
//                        fsync) or fails with an IOError.
//
// Thread-safe: the env and every file it hands out share one mutex-guarded
// fault-programming state, so faults can be armed from one thread while I/O
// runs on others (the TSan race lane does exactly this to storage stacks).

#pragma once
#ifndef C2LSH_UTIL_FAULT_ENV_H_
#define C2LSH_UTIL_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/env.h"

namespace c2lsh {

/// Counters for everything the env observed or injected.
struct FaultStats {
  uint64_t reads = 0;              ///< read ops forwarded to the base env
  uint64_t writes = 0;             ///< write ops forwarded (torn write included)
  uint64_t syncs = 0;              ///< sync ops (dropped ones included)
  uint64_t transient_faults = 0;   ///< Unavailable results injected
  uint64_t corrupted_reads = 0;    ///< reads that had a byte flipped
  uint64_t short_reads = 0;        ///< reads deliberately returned short (no EOF)
  uint64_t post_crash_rejects = 0; ///< ops refused because the env "crashed"
};

namespace internal {
struct FaultEnvState;  // shared between the env and the files it creates
}  // namespace internal

class FaultInjectionEnv final : public Env {
 public:
  /// `base` is borrowed (typically Env::Default()) and must outlive this env.
  explicit FaultInjectionEnv(Env* base);
  ~FaultInjectionEnv() override;

  // --- fault programming -------------------------------------------------
  /// The Nth write from now (1-based) is torn and the env crashes: that
  /// write persists only `torn_bytes` of its buffer (default: half) and
  /// returns IOError, as does every subsequent write or sync. n <= 0 disarms.
  void SetCrashAfterWrites(int64_t n);
  /// How much of the crashing write reaches the base env.
  void SetTornBytes(size_t torn_bytes);
  bool crashed() const;
  /// Clears the crashed flag and any armed crash point (a "new process"
  /// against the same files).
  void ClearCrash();

  /// The next `n` write (resp. read) operations fail with
  /// Status::Unavailable before touching the base env.
  void SetTransientWriteFaults(int n);
  void SetTransientReadFaults(int n);

  /// The next `n` multi-byte reads are served short: only the first half of
  /// the requested range (at least 1 byte) comes back, with no error and no
  /// EOF. Single-byte reads pass through untouched so loops always progress.
  void SetShortReads(int n);

  /// Any read whose range covers absolute file offset `offset` has that
  /// byte XOR-ed with `mask` (mask != 0). One corruption site at a time.
  void SetReadCorruption(uint64_t offset, uint8_t mask);
  void ClearReadCorruption();

  /// Dropped syncs return OK without forwarding; failed syncs return
  /// IOError. Mutually independent; failure wins if both are set.
  void SetDropSyncs(bool drop);
  void SetFailSyncs(bool fail);

  /// Snapshot of the counters (by value: a const reference would race with
  /// I/O running on other threads).
  FaultStats stats() const;
  void ResetStats();

  // --- Env interface -----------------------------------------------------
  Result<std::unique_ptr<RandomAccessFile>> NewFile(const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> OpenFile(const std::string& path) override;
  bool FileExists(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;

 private:
  Env* base_;  // not owned
  std::shared_ptr<internal::FaultEnvState> state_;
};

}  // namespace c2lsh

#endif  // C2LSH_UTIL_FAULT_ENV_H_
