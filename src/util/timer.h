// Wall-clock stopwatch used by the evaluation harness and benchmarks.

#pragma once
#ifndef C2LSH_UTIL_TIMER_H_
#define C2LSH_UTIL_TIMER_H_

#include <chrono>

namespace c2lsh {

/// Measures elapsed wall time with steady_clock. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace c2lsh

#endif  // C2LSH_UTIL_TIMER_H_
