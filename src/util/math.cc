#include "src/util/math.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace c2lsh {

namespace {
constexpr double kSqrt2 = 1.4142135623730951;
constexpr double kSqrt2Pi = 2.5066282746310002;
}  // namespace

double NormalPdf(double x) { return std::exp(-0.5 * x * x) / kSqrt2Pi; }

double NormalCdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double PStableCollisionProbability(double s, double w) {
  assert(w > 0.0);
  assert(s >= 0.0);
  if (s <= 0.0) return 1.0;
  const double u = w / s;
  // p(s; w) = 1 - 2*Phi(-u) - 2/(sqrt(2*pi)*u) * (1 - exp(-u^2/2)).
  const double p =
      1.0 - 2.0 * NormalCdf(-u) - (2.0 / (kSqrt2Pi * u)) * (1.0 - std::exp(-0.5 * u * u));
  // Numerical floor: the expression is mathematically in (0, 1) but can
  // round to a hair below 0 for enormous s.
  return std::clamp(p, 0.0, 1.0);
}

double PStableInverseDistance(double p, double w) {
  assert(p > 0.0 && p < 1.0);
  // p(s) is strictly decreasing in s. Bracket the root then bisect.
  double lo = 1e-12;
  double hi = 1.0;
  while (PStableCollisionProbability(hi, w) > p) {
    hi *= 2.0;
    if (hi > 1e18) break;  // p was astronomically small; return the cap.
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (PStableCollisionProbability(mid, w) > p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if ((hi - lo) <= 1e-12 * hi) break;
  }
  return 0.5 * (lo + hi);
}

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) return 0.0;
  const double log_gamma_a = std::lgamma(a);
  if (x < a + 1.0) {
    // Series: P(a,x) = x^a e^-x / Γ(a) * sum_{n>=0} x^n / (a(a+1)...(a+n)).
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma_a);
  }
  // Continued fraction for Q(a,x) = 1 - P(a,x) (Lentz's algorithm).
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - log_gamma_a) * h;
  return 1.0 - q;
}

double ChiSquaredCdf(double x, int k) {
  assert(k > 0);
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(static_cast<double>(k) / 2.0, x / 2.0);
}

double HoeffdingLowerTailBound(double t, int m) {
  assert(m > 0);
  if (t <= 0.0) return 1.0;
  return std::exp(-2.0 * static_cast<double>(m) * t * t);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double SampleStddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = q / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace c2lsh
