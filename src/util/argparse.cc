#include "src/util/argparse.h"

#include <cstdlib>
#include <sstream>

namespace c2lsh {

namespace {

bool ParseBoolLiteral(const std::string& s, bool* out) {
  if (s == "true" || s == "1" || s == "yes" || s == "on") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "0" || s == "no" || s == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void ArgParser::AddString(const std::string& name, const std::string& def,
                          const std::string& help) {
  flags_[name] = Flag{Type::kString, def, help};
}

void ArgParser::AddInt(const std::string& name, int64_t def, const std::string& help) {
  flags_[name] = Flag{Type::kInt, std::to_string(def), help};
}

void ArgParser::AddDouble(const std::string& name, double def, const std::string& help) {
  std::ostringstream os;
  os << def;
  flags_[name] = Flag{Type::kDouble, os.str(), help};
}

void ArgParser::AddBool(const std::string& name, bool def, const std::string& help) {
  flags_[name] = Flag{Type::kBool, def ? "true" : "false", help};
}

Status ArgParser::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kString:
      flag.value = value;
      return Status::OK();
    case Type::kInt: {
      char* end = nullptr;
      errno = 0;
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name + " expects an integer, got '" +
                                       value + "'");
      }
      flag.value = std::to_string(v);
      return Status::OK();
    }
    case Type::kDouble: {
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(value.c_str(), &end);
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name + " expects a number, got '" +
                                       value + "'");
      }
      std::ostringstream os;
      os << v;
      flag.value = os.str();
      return Status::OK();
    }
    case Type::kBool: {
      bool v = false;
      if (!ParseBoolLiteral(value, &v)) {
        return Status::InvalidArgument("flag --" + name + " expects a boolean, got '" +
                                       value + "'");
      }
      flag.value = v ? "true" : "false";
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag type");
}

Status ArgParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("positional arguments are not supported: '" + arg + "'");
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // bare --flag enables a boolean
      } else {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("flag --" + name + " is missing a value");
        }
        value = argv[++i];
      }
    }
    C2LSH_RETURN_IF_ERROR(SetValue(name, value));
  }
  return Status::OK();
}

std::string ArgParser::HelpString() const {
  std::ostringstream os;
  os << doc_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.value << ")\n      " << flag.help << "\n";
  }
  return os.str();
}

std::string ArgParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? std::string() : it->second.value;
}

int64_t ArgParser::GetInt(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? 0 : std::strtoll(it->second.value.c_str(), nullptr, 10);
}

double ArgParser::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? 0.0 : std::strtod(it->second.value.c_str(), nullptr);
}

bool ArgParser::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  return it != flags_.end() && it->second.value == "true";
}

}  // namespace c2lsh
