// The transport seam: the serving stack's only doorway to the network, the
// way Env is the storage stack's only doorway to the filesystem.
//
// src/serve talks to Connection/Listener/Transport, never to socket(2)
// directly — lint's socket-header and raw-socket rules confine the actual
// syscalls to src/serve/transport_posix.cc — so tests can substitute an
// in-process transport (src/serve/inproc_transport.h) that injects short
// reads, mid-frame disconnects and accept failures deterministically, the
// same move FaultInjectionEnv makes for storage.
//
// Blocking model: all calls block. Interruption is cooperative and comes
// from two places only: a Deadline passed to the call, and a cross-thread
// Shutdown()/Close() on the same object. Both surface as
// Status::Unavailable, never as a hang.

#pragma once
#ifndef C2LSH_UTIL_SOCKET_H_
#define C2LSH_UTIL_SOCKET_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/query_context.h"
#include "src/util/result.h"

namespace c2lsh {

/// One bidirectional byte stream (a TCP connection, or an in-process pipe).
/// A Connection may be used by two threads at once only in the pattern the
/// server needs: one thread in Read/Write, another calling Shutdown().
class Connection {
 public:
  virtual ~Connection() = default;

  /// Reads up to `n` bytes. `*bytes_read` is always set. OK with
  /// `*bytes_read == 0` means the peer closed cleanly (EOF); a short read
  /// (`0 < *bytes_read < n`) is normal stream behaviour, not an error —
  /// framed readers loop (see ReadFull). Blocks until at least one byte,
  /// EOF, `deadline` expiry, or Shutdown(); the latter two return
  /// Status::Unavailable.
  virtual Status Read(void* buf, size_t n, size_t* bytes_read,
                      const Deadline& deadline) = 0;

  /// Writes all `n` bytes or fails; there are no partial-write successes at
  /// this seam. Unavailable on deadline expiry or Shutdown(), IOError when
  /// the peer is gone (EPIPE/ECONNRESET — routine during drain, not a bug).
  virtual Status Write(const void* buf, size_t n, const Deadline& deadline) = 0;

  /// Makes every current and future Read/Write on this connection return
  /// Unavailable, from any thread, without freeing the object. Idempotent.
  /// This is how the server yanks a connection whose handler is blocked in
  /// Read when drain overruns its deadline.
  virtual void Shutdown() = 0;
};

/// An accepting endpoint bound to one address.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks for the next inbound connection. After Close() — before or
  /// during the call — returns Status::Unavailable("listener closed").
  virtual Result<std::unique_ptr<Connection>> Accept() = 0;

  /// Stops accepting and unblocks any thread in Accept(). Idempotent; the
  /// kernel accept queue (or in-process equivalent) is discarded.
  virtual void Close() = 0;

  /// The bound address in the transport's own notation (e.g. "127.0.0.1:PORT"
  /// with the ephemeral port resolved) — what a client passes to Connect.
  virtual std::string address() const = 0;
};

/// Factory for both ends. Addresses are transport-defined strings: the posix
/// transport takes "host:port" ("127.0.0.1:0" binds an ephemeral port); the
/// in-process transport takes any name it has a listener registered under.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<std::unique_ptr<Listener>> Listen(
      const std::string& address) = 0;

  virtual Result<std::unique_ptr<Connection>> Connect(
      const std::string& address, const Deadline& deadline) = 0;
};

/// Loops Connection::Read until exactly `n` bytes arrive. OK with
/// `*bytes_read == 0` is a clean EOF *on a frame boundary* (the caller sees
/// no partial frame); OK with `0 < *bytes_read < n` means the peer closed
/// mid-frame — the framing layer decides whether that is Corruption.
Status ReadFull(Connection& conn, void* buf, size_t n, size_t* bytes_read,
                const Deadline& deadline);

}  // namespace c2lsh

#endif  // C2LSH_UTIL_SOCKET_H_
