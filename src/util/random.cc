#include "src/util/random.h"

#include <cassert>

namespace c2lsh {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the engine's current state hash with the stream id. We cannot read
  // mt19937_64 state cheaply, so forks are derived from the stream id and a
  // fixed tweak of the original seed captured at construction; this keeps
  // Fork() const and deterministic.
  uint64_t child = SplitMix64(base_seed_ ^ SplitMix64(stream_id + 0x517cc1b727220a95ULL));
  Rng r(child);
  return r;
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

size_t Rng::Index(size_t n) {
  assert(n > 0);
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

void Rng::GaussianVector(size_t n, std::vector<float>* out) {
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*out)[i] = static_cast<float>(Gaussian());
  }
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  for (size_t i = 0; i < k; ++i) {
    std::uniform_int_distribution<size_t> dist(i, n - 1);
    std::swap(pool[i], pool[dist(engine_)]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace c2lsh
