// Per-query execution controls: deadline, cooperative cancellation, and an
// optional I/O-page budget — the control side of the degraded-query contract.
//
// A QueryContext travels with one query through the whole execution path
// (C2lshIndex, DiskC2lshIndex, QALSH, the retry layer, the admission
// controller). The query loops check it at bounded intervals — every
// virtual-rehashing round, every kCheckIntervalMask+1 collision increments,
// and every entry-page boundary of a disk scan — and stop *cooperatively*:
// an expired deadline or a cancelled token makes the query return its
// best-effort partial results under Termination::kDeadline /
// Termination::kCancelled, never an error. (The same shape as the corrupt-
// page degradation of PR 1: results may be incomplete, never silently wrong,
// and the caller can always tell.)
//
// This header is one of the sanctioned clock seams (with util/timer.h,
// util/retry.h, and src/obs/) — see tools/lint.py's chrono-include rule.
// All deadline math goes through Deadline so the steady_clock reads stay in
// one auditable place.

#pragma once
#ifndef C2LSH_UTIL_QUERY_CONTEXT_H_
#define C2LSH_UTIL_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "src/obs/trace.h"

namespace c2lsh {

/// A thread-safe cancellation flag, shared by reference between the caller
/// (who cancels) and the query (which polls). Cancellation is sticky until
/// Reset(); one token may gate many queries (e.g. all queries of one client
/// connection).
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Safe from any thread; idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True once Cancel() has been called (and not Reset since).
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// Re-arms the token (between queries — not while one is in flight).
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A point on the steady clock a query must not run past. Default-constructed
/// deadlines are infinite (never expire), so "no deadline" costs no clock
/// reads at check sites that gate on IsInfinite().
class Deadline {
 public:
  /// Infinite — never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `millis` (resp. `micros`) from now; non-positive values yield a
  /// deadline that is already expired.
  static Deadline AfterMillis(double millis) {
    return AfterMicros(static_cast<int64_t>(millis * 1e3));
  }
  static Deadline AfterMicros(int64_t micros) {
    Deadline d;
    d.finite_ = true;
    d.at_ = Clock::now() + std::chrono::microseconds(micros);
    return d;
  }

  bool IsInfinite() const { return !finite_; }

  /// True once the steady clock has passed the deadline.
  bool Expired() const { return finite_ && Clock::now() >= at_; }

  /// Microseconds until expiry: +infinity when infinite, clamped at 0 once
  /// expired. The retry layer compares this against its next backoff.
  double RemainingMicros() const {
    if (!finite_) return std::numeric_limits<double>::infinity();
    const double us =
        std::chrono::duration<double, std::micro>(at_ - Clock::now()).count();
    return us > 0.0 ? us : 0.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool finite_ = false;
  Clock::time_point at_{};
};

/// The per-query control block. Plain value; the token is borrowed (the
/// caller keeps it alive for the duration of the query). A default
/// QueryContext imposes no bounds, so `RunQuery(..., nullptr)` and
/// `RunQuery(..., &QueryContext{})` behave identically.
struct QueryContext {
  /// Wall-clock bound for the whole query, admission wait included.
  Deadline deadline;

  /// Optional cancellation signal; nullptr = not cancellable.
  const CancellationToken* cancel = nullptr;

  /// Optional I/O budget in pages (0 = unlimited): once the query has cost
  /// this many pages (measured pool misses in disk mode, modelled pages in
  /// memory mode), it stops at the next rehash-round boundary with
  /// Termination::kDeadline — a resource deadline, same partial-result
  /// contract as the time deadline.
  uint64_t io_page_budget = 0;

  /// Opts this query into span tracing under TraceMode::kPerQuery (see
  /// src/obs/span.h). Ignored in the other modes: kAlways samples every
  /// query and kEveryNth uses its own counter.
  bool trace = false;

  /// Trace id attributing this query's spans in dumps and exemplars. 0 (the
  /// default) lets the query engine assign one via Tracer::NextQueryId();
  /// callers that correlate across systems may set their own nonzero id.
  uint64_t trace_id = 0;

  /// Query loops poll the cheap atomic every iteration but the clock only
  /// every (kCheckIntervalMask + 1) collision increments.
  static constexpr uint64_t kCheckIntervalMask = 1023;

  bool cancelled() const { return cancel != nullptr && cancel->cancelled(); }

  /// The checkpoint predicate: kNone to keep going, kCancelled/kDeadline to
  /// stop with partial results. Cancellation wins over the deadline so an
  /// abandoned query reports kCancelled even after its deadline also passed.
  Termination CheckNow() const {
    if (cancelled()) return Termination::kCancelled;
    if (deadline.Expired()) return Termination::kDeadline;
    return Termination::kNone;
  }

  /// CheckNow() plus the page budget (`pages_used` = pages charged so far).
  Termination Check(uint64_t pages_used) const {
    const Termination t = CheckNow();
    if (t != Termination::kNone) return t;
    if (io_page_budget > 0 && pages_used >= io_page_budget) {
      return Termination::kDeadline;
    }
    return Termination::kNone;
  }
};

/// True for the Termination values that mean "an external control stopped
/// the query with partial results" (vs the algorithmic T1/T2/exhausted).
inline bool IsEarlyStop(Termination t) {
  return t == Termination::kDeadline || t == Termination::kCancelled;
}

}  // namespace c2lsh

#endif  // C2LSH_UTIL_QUERY_CONTEXT_H_
