// Analytic query-cost model for C2LSH — the paper's complexity analysis made
// executable. Given the derived parameters and an empirical sample of the
// dataset's query-to-object distance distribution, predict per-query
// behaviour (terminating radius, candidates verified, counter work) without
// running a single query. The predictions are validated against measured
// C2lshQueryStats in tests/cost_model_test.cc and surfaced to users through
// the tuning_advisor example.

#pragma once
#ifndef C2LSH_CORE_COST_MODEL_H_
#define C2LSH_CORE_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/core/params.h"
#include "src/obs/trace.h"
#include "src/util/result.h"
#include "src/vector/dataset.h"
#include "src/vector/matrix.h"

namespace c2lsh {

/// An empirical sample of query-to-object distances: for each sampled query
/// point, the distances to a sample of data objects, plus the exact k-NN
/// distance estimates the T1 prediction needs.
struct DistanceProfile {
  /// Pooled sampled distances (query, object) pairs.
  std::vector<double> distances;
  /// Estimated k-th nearest-neighbor distance for a typical query, indexed
  /// by k-1 (computed for k up to `max_k`).
  std::vector<double> kth_nn_distance;
  size_t n = 0;  ///< dataset cardinality the sample represents
};

/// Samples a profile: `num_queries` probe points (jittered data rows) each
/// measured against `sample_per_query` random objects plus an exact scan for
/// the k-NN distances (up to max_k). Deterministic given `seed`.
Result<DistanceProfile> SampleDistanceProfile(const Dataset& data, size_t num_queries,
                                              size_t sample_per_query, size_t max_k,
                                              uint64_t seed);

/// The model's per-query predictions.
struct CostPrediction {
  long long terminating_radius = 1;  ///< first R with >= k frequent objects
                                     ///< within c*R (T1), or budget hit (T2)
  double expected_rounds = 0.0;
  /// Expected objects whose collision count reaches l by the terminating
  /// round (the verification / random-I/O driver).
  double expected_candidates = 0.0;
  /// Expected counter increments summed over rounds (the CPU driver):
  /// n * m * p(d; w*R_final) averaged over the distance sample.
  double expected_increments = 0.0;
  /// Predicted stopping condition: kT1, kT2 (budget), or kNone when the
  /// round cap of the model was reached without either firing.
  Termination predicted_termination = Termination::kNone;
};

/// Evaluates the model for a query load asking for k neighbors.
Result<CostPrediction> PredictQueryCost(const C2lshDerived& derived,
                                        const DistanceProfile& profile, size_t k);

}  // namespace c2lsh

#endif  // C2LSH_CORE_COST_MODEL_H_
