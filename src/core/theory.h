// Analytic predictions of C2LSH's behaviour, used by the T1 parameter table,
// the property-based tests (measured frequencies must match these within
// statistical tolerance) and the tuning-advisor example.

#pragma once
#ifndef C2LSH_CORE_THEORY_H_
#define C2LSH_CORE_THEORY_H_

#include "src/core/params.h"

namespace c2lsh {

/// log of the binomial coefficient C(m, k), via lgamma.
double LogBinomialCoeff(int m, int k);

/// Exact upper tail of the binomial: P[Bin(m, p) >= l]. Computed by
/// log-space summation; valid for 0 <= p <= 1, 0 <= l <= m.
double BinomialTailGE(int m, int l, double p);

/// Probability that an object at distance `s` from the query is *frequent*
/// (collision count >= l) in the round at radius `R`: each of the m tables
/// collides independently with probability p(s; w*R).
double ProbFrequent(const C2lshDerived& d, double s, double R);

/// Hoeffding bound on property P1's failure probability: an object within
/// distance R misses the threshold with probability <= exp(-2 m (p1-alpha)^2)
/// <= delta. Returned so tests can assert the <= delta relation numerically.
double P1FailureBound(const C2lshDerived& d);

/// Expected number of frequent far objects (distance > cR) among `n_far` of
/// them, using the exact binomial tail at p2. Property P2 bounds this by
/// beta * n / 2 via Hoeffding; the exact value is tighter.
double ExpectedFalsePositives(const C2lshDerived& d, double n_far);

}  // namespace c2lsh

#endif  // C2LSH_CORE_THEORY_H_
