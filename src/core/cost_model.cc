#include "src/core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "src/core/theory.h"
#include "src/util/math.h"
#include "src/util/random.h"
#include "src/vector/distance.h"

namespace c2lsh {

Result<DistanceProfile> SampleDistanceProfile(const Dataset& data, size_t num_queries,
                                              size_t sample_per_query, size_t max_k,
                                              uint64_t seed) {
  if (num_queries == 0 || sample_per_query == 0 || max_k == 0) {
    return Status::InvalidArgument("SampleDistanceProfile: sample sizes must be positive");
  }
  if (data.size() < 2) {
    return Status::InvalidArgument("SampleDistanceProfile: dataset too small");
  }
  Rng rng(seed);
  DistanceProfile profile;
  profile.n = data.size();
  profile.distances.reserve(num_queries * sample_per_query);

  max_k = std::min(max_k, data.size() - 1);
  std::vector<std::vector<double>> knn(num_queries);

  const size_t dim = data.dim();
  std::vector<float> query(dim);
  for (size_t q = 0; q < num_queries; ++q) {
    // Probe point: a jittered data row (matches how workloads are drawn).
    const ObjectId base = static_cast<ObjectId>(rng.Index(data.size()));
    for (size_t j = 0; j < dim; ++j) {
      query[j] = data.object(base)[j] + static_cast<float>(rng.Gaussian(0.0, 1e-3));
    }
    // Random-object distance sample.
    for (size_t s = 0; s < sample_per_query; ++s) {
      const ObjectId o = static_cast<ObjectId>(rng.Index(data.size()));
      profile.distances.push_back(L2(query.data(), data.object(o), dim));
    }
    // Exact k-NN distances for this probe (full scan; the profile is built
    // once per dataset, not per query).
    std::vector<double> dists(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      dists[i] = L2(query.data(), data.object(static_cast<ObjectId>(i)), dim);
    }
    std::partial_sort(dists.begin(), dists.begin() + max_k + 1, dists.end());
    knn[q].assign(dists.begin(), dists.begin() + max_k + 1);
  }

  // Median k-NN distance over probes, per k. knn[q][0] is the base row
  // itself (distance ~0), so the k-th NN estimate is knn[q][k].
  profile.kth_nn_distance.resize(max_k);
  std::vector<double> column(num_queries);
  for (size_t k = 1; k <= max_k; ++k) {
    for (size_t q = 0; q < num_queries; ++q) column[q] = knn[q][k];
    std::nth_element(column.begin(), column.begin() + num_queries / 2, column.end());
    profile.kth_nn_distance[k - 1] = column[num_queries / 2];
  }
  return profile;
}

Result<CostPrediction> PredictQueryCost(const C2lshDerived& derived,
                                        const DistanceProfile& profile, size_t k) {
  if (k == 0) return Status::InvalidArgument("PredictQueryCost: k must be positive");
  if (profile.distances.empty() || profile.kth_nn_distance.empty() || profile.n == 0) {
    return Status::InvalidArgument("PredictQueryCost: empty distance profile");
  }
  const size_t k_idx = std::min(k, profile.kth_nn_distance.size()) - 1;
  const double kth_nn = profile.kth_nn_distance[k_idx];
  const double w = derived.model.w;
  const double c = derived.model.c;
  const long long c_int = static_cast<long long>(std::llround(c));
  const double n_over_sample =
      static_cast<double>(profile.n) / static_cast<double>(profile.distances.size());
  const double t2_budget =
      static_cast<double>(k) + derived.beta * static_cast<double>(profile.n);

  CostPrediction pred;
  long long R = 1;
  for (int round = 0; round < 48; ++round) {
    pred.expected_rounds = static_cast<double>(round + 1);
    pred.terminating_radius = R;

    // Expected frequent objects at this radius, from the distance sample.
    double expected_candidates = 0.0;
    double expected_increments = 0.0;
    for (double d : profile.distances) {
      const double p = PStableCollisionProbability(d, w * static_cast<double>(R));
      expected_candidates += BinomialTailGE(static_cast<int>(derived.m),
                                            static_cast<int>(derived.l), p);
      expected_increments += static_cast<double>(derived.m) * p;
    }
    expected_candidates *= n_over_sample;
    expected_increments *= n_over_sample;
    pred.expected_candidates = expected_candidates;
    pred.expected_increments = expected_increments;

    // T1: the k-th NN is within c*R and is itself frequent w.h.p. The
    // per-object frequency guarantee (P1) applies once kth_nn <= R; between
    // R and c*R the probability is lower but usually still dominant — the
    // model uses the exact binomial at the k-th NN distance.
    const double p_kth = PStableCollisionProbability(kth_nn, w * static_cast<double>(R));
    const double freq_kth = BinomialTailGE(static_cast<int>(derived.m),
                                           static_cast<int>(derived.l), p_kth);
    if (kth_nn <= c * static_cast<double>(R) && freq_kth >= 0.5) {
      pred.predicted_termination = Termination::kT1;
      break;
    }
    // T2: the candidate budget is expected to be exhausted.
    if (expected_candidates >= t2_budget) {
      pred.predicted_termination = Termination::kT2;
      break;
    }
    R *= c_int;
  }
  return pred;
}

}  // namespace c2lsh
