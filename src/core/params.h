// C2LSH parameterization (Gan, Feng, Fang, Ng — SIGMOD 2012).
//
// From the user-facing knobs (bucket width w, integer approximation ratio c,
// error probability delta, false-positive frequency beta) and the dataset
// cardinality n, derive the scheme's internal parameters:
//
//   p1     = p(1; w)                     base collision prob. at distance R
//   p2     = p(c; w)                     base collision prob. at distance cR
//   z      = sqrt( ln(2/beta) / ln(1/delta) )
//   alpha  = (z * p1 + p2) / (1 + z)     collision-threshold percentage
//   m      = ceil( ln(1/delta) / (2 (p1 - alpha)^2) )
//          [ = ceil( ln(2/beta) / (2 (alpha - p2)^2) ) by choice of alpha ]
//   l      = ceil( alpha * m )           collision threshold
//
// With these, Hoeffding's inequality gives the two per-round properties the
// paper's quality guarantee rests on:
//   P1: an object within distance R collides >= l times w.p. >= 1 - delta;
//   P2: at most beta*n objects beyond distance cR collide >= l times,
//       w.p. >= 1/2.

#pragma once
#ifndef C2LSH_CORE_PARAMS_H_
#define C2LSH_CORE_PARAMS_H_

#include <cstdint>
#include <string>

#include "src/lsh/collision_model.h"
#include "src/util/result.h"

namespace c2lsh {

/// User-facing configuration of a C2lshIndex.
struct C2lshOptions {
  /// Base bucket width of the p-stable functions. The radius schedule
  /// R in {1, c, c^2, ...} is expressed in data units, so w = 1 matches
  /// datasets normalized to NN distances a few doublings above 1
  /// (vector/synthetic.h does this normalization).
  double w = 1.0;

  /// Approximation ratio. Must be an integer >= 2: virtual rehashing
  /// widens buckets by exact integer factors (h^R = floor(h / R)).
  double c = 2.0;

  /// Per-object error probability of property P1. The paper's experiments
  /// run at delta = 0.1.
  double delta = 0.1;

  /// False-positive frequency: at most beta * n far objects pass the
  /// collision threshold per round (property P2). 0 selects the paper's
  /// default of 100 / n.
  double beta = 0.0;

  /// Highest round of the radius schedule: radii run over
  /// {1, c, ..., c^max_radius_exponent}. The hash offsets are drawn from
  /// [0, w * c^max_radius_exponent) so that virtual rehashing is an exact
  /// LSH at every level (the paper's b* in [0, w * c^{t*}) construction);
  /// past the last level the index falls back to one exhaustive round, so
  /// queries always terminate. 24 doublings cover a 16-million-fold distance
  /// range — far beyond any normalized dataset.
  int max_radius_exponent = 24;

  /// Seed for hash-function sampling; identical seeds give identical
  /// indexes.
  uint64_t seed = 1;

  /// Page size of the simulated-I/O cost model.
  size_t page_bytes = 4096;
};

/// Parameters derived from C2lshOptions and n (see file comment).
struct C2lshDerived {
  CollisionModel model;  ///< p1, p2, rho for (w, c)
  double beta = 0.0;     ///< resolved false-positive frequency
  double z = 0.0;
  double alpha = 0.0;    ///< in (p2, p1)
  size_t m = 0;          ///< number of base hash functions / hash tables
  size_t l = 0;          ///< collision threshold (l = ceil(alpha * m))

  /// One-line rendering for experiment tables.
  std::string ToString() const;
};

/// Validates options and computes the derived parameters for a dataset of
/// cardinality n. Fails with InvalidArgument when the options violate their
/// documented domains (c non-integer or < 2, delta outside (0, 1), beta*n
/// below 1, w <= 0).
Result<C2lshDerived> ComputeDerivedParams(const C2lshOptions& options, size_t n);

/// The family-independent core of the derivation: given any LSH family's
/// (p1, p2) at the guarantee boundary, the error probability delta and the
/// false-positive frequency beta, compute (z, alpha, m, l) from the Hoeffding
/// bounds. Shared by C2LSH and the query-aware QALSH extension.
struct CountingParams {
  double z = 0.0;
  double alpha = 0.0;
  size_t m = 0;
  size_t l = 0;
};
Result<CountingParams> ComputeCountingParams(double p1, double p2, double delta,
                                             double beta);

}  // namespace c2lsh

#endif  // C2LSH_CORE_PARAMS_H_
