#include "src/core/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace c2lsh {

namespace {

constexpr uint64_t kMagic = 0xC25123AA2012F00DULL;  // "C2LSH index, SIGMOD'12"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Streaming CRC-64 (ECMA polynomial, bitwise — cold path, clarity over
/// speed). Accumulated over every payload byte written/read.
class Crc64 {
 public:
  void Update(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
      crc_ ^= static_cast<uint64_t>(p[i]);
      for (int bit = 0; bit < 8; ++bit) {
        crc_ = (crc_ >> 1) ^ ((crc_ & 1) ? 0xC96C5795D7870F42ULL : 0);
      }
    }
  }
  uint64_t value() const { return crc_; }

 private:
  uint64_t crc_ = ~0ULL;
};

class Writer {
 public:
  Writer(std::FILE* f) : f_(f) {}

  template <typename T>
  bool Put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    crc_.Update(&v, sizeof(v));
    return std::fwrite(&v, sizeof(v), 1, f_) == 1;
  }
  template <typename T>
  bool PutArray(const T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count == 0) return true;
    crc_.Update(data, count * sizeof(T));
    return std::fwrite(data, sizeof(T), count, f_) == count;
  }
  bool Finish() {
    const uint64_t crc = crc_.value();
    return std::fwrite(&crc, sizeof(crc), 1, f_) == 1;
  }

 private:
  std::FILE* f_;
  Crc64 crc_;
};

class Reader {
 public:
  Reader(std::FILE* f) : f_(f) {}

  template <typename T>
  bool Get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (std::fread(v, sizeof(T), 1, f_) != 1) return false;
    crc_.Update(v, sizeof(T));
    return true;
  }
  template <typename T>
  bool GetArray(T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count == 0) return true;
    if (std::fread(data, sizeof(T), count, f_) != count) return false;
    crc_.Update(data, count * sizeof(T));
    return true;
  }
  bool VerifyChecksum() {
    uint64_t stored = 0;
    if (std::fread(&stored, sizeof(stored), 1, f_) != 1) return false;
    return stored == crc_.value();
  }

 private:
  std::FILE* f_;
  Crc64 crc_;
};

}  // namespace

Status SaveIndex(const std::string& path, C2lshIndex* index) {
  if (index == nullptr) {
    return Status::InvalidArgument("SaveIndex: index is null");
  }
  // Fold overlays/tombstones so the flat representation is the whole truth.
  index->Compact();

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IOError("SaveIndex: cannot open '" + path + "' for writing");
  }
  Writer w(f.get());

  const C2lshOptions& opt = index->options();
  const C2lshDerived& d = index->derived();
  bool ok = w.Put(kMagic) && w.Put(kVersion);
  ok = ok && w.Put(opt.w) && w.Put(opt.c) && w.Put(opt.delta) && w.Put(opt.beta) &&
       w.Put(opt.max_radius_exponent) && w.Put(opt.seed) &&
       w.Put(static_cast<uint64_t>(opt.page_bytes));
  ok = ok && w.Put(d.model.w) && w.Put(d.model.c) && w.Put(d.model.p1) &&
       w.Put(d.model.p2) && w.Put(d.model.rho) && w.Put(d.beta) && w.Put(d.z) &&
       w.Put(d.alpha) && w.Put(static_cast<uint64_t>(d.m)) &&
       w.Put(static_cast<uint64_t>(d.l));
  ok = ok && w.Put(static_cast<uint32_t>(index->num_tables())) &&
       w.Put(static_cast<uint32_t>(index->dim())) &&
       w.Put(static_cast<uint64_t>(index->num_objects())) && w.Put(index->radius_cap());

  for (size_t i = 0; ok && i < index->num_tables(); ++i) {
    const PStableHash& h = index->family().function(i);
    ok = ok && w.PutArray(h.a().data(), h.a().size()) && w.Put(h.b()) && w.Put(h.w());
  }
  std::vector<int64_t> buckets;
  std::vector<ObjectId> ids;
  for (size_t i = 0; ok && i < index->num_tables(); ++i) {
    buckets.clear();
    ids.clear();
    index->table(i).ForEachEntry([&](BucketId b, ObjectId id) {
      buckets.push_back(b);
      ids.push_back(id);
    });
    ok = ok && w.Put(static_cast<uint64_t>(buckets.size())) &&
         w.PutArray(buckets.data(), buckets.size()) && w.PutArray(ids.data(), ids.size());
  }
  ok = ok && w.Finish();
  if (!ok) {
    return Status::IOError("SaveIndex: short write to '" + path + "'");
  }
  if (std::fflush(f.get()) != 0) {
    return Status::IOError("SaveIndex: flush failed for '" + path + "'");
  }
  return Status::OK();
}

Result<C2lshIndex> LoadIndex(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IOError("LoadIndex: cannot open '" + path + "'");
  }
  Reader r(f.get());

  uint64_t magic = 0;
  uint32_t version = 0;
  if (!r.Get(&magic) || magic != kMagic) {
    return Status::Corruption("LoadIndex: '" + path + "' is not a C2LSH index file");
  }
  if (!r.Get(&version) || version != kVersion) {
    return Status::Corruption("LoadIndex: unsupported version in '" + path + "'");
  }

  C2lshOptions opt;
  C2lshDerived d;
  uint64_t page_bytes = 0, m64 = 0, l64 = 0, num_objects = 0;
  uint32_t m32 = 0, dim32 = 0;
  long long radius_cap = 0;
  bool ok = r.Get(&opt.w) && r.Get(&opt.c) && r.Get(&opt.delta) && r.Get(&opt.beta) &&
            r.Get(&opt.max_radius_exponent) && r.Get(&opt.seed) && r.Get(&page_bytes);
  ok = ok && r.Get(&d.model.w) && r.Get(&d.model.c) && r.Get(&d.model.p1) &&
       r.Get(&d.model.p2) && r.Get(&d.model.rho) && r.Get(&d.beta) && r.Get(&d.z) &&
       r.Get(&d.alpha) && r.Get(&m64) && r.Get(&l64);
  ok = ok && r.Get(&m32) && r.Get(&dim32) && r.Get(&num_objects) && r.Get(&radius_cap);
  if (!ok) {
    return Status::Corruption("LoadIndex: truncated header in '" + path + "'");
  }
  opt.page_bytes = static_cast<size_t>(page_bytes);
  d.m = static_cast<size_t>(m64);
  d.l = static_cast<size_t>(l64);
  if (m32 != d.m || m32 == 0 || dim32 == 0) {
    return Status::Corruption("LoadIndex: inconsistent header in '" + path + "'");
  }

  std::vector<PStableHash> funcs;
  funcs.reserve(m32);
  for (uint32_t i = 0; i < m32; ++i) {
    std::vector<float> a(dim32);
    double b = 0, w = 0;
    if (!r.GetArray(a.data(), a.size()) || !r.Get(&b) || !r.Get(&w)) {
      return Status::Corruption("LoadIndex: truncated hash function in '" + path + "'");
    }
    C2LSH_ASSIGN_OR_RETURN(PStableHash h, PStableHash::FromParts(std::move(a), b, w));
    funcs.push_back(std::move(h));
  }
  C2LSH_ASSIGN_OR_RETURN(PStableFamily family,
                         PStableFamily::FromFunctions(std::move(funcs)));

  std::vector<BucketTable> tables;
  tables.reserve(m32);
  for (uint32_t i = 0; i < m32; ++i) {
    uint64_t count = 0;
    if (!r.Get(&count) || count > (1ULL << 40)) {
      return Status::Corruption("LoadIndex: bad table size in '" + path + "'");
    }
    std::vector<int64_t> buckets(count);
    std::vector<ObjectId> ids(count);
    if (!r.GetArray(buckets.data(), count) || !r.GetArray(ids.data(), count)) {
      return Status::Corruption("LoadIndex: truncated table in '" + path + "'");
    }
    std::vector<std::pair<BucketId, ObjectId>> pairs;
    pairs.reserve(count);
    for (uint64_t j = 0; j < count; ++j) {
      pairs.emplace_back(buckets[j], ids[j]);
    }
    tables.push_back(BucketTable::Build(std::move(pairs)));
  }

  if (!r.VerifyChecksum()) {
    return Status::Corruption("LoadIndex: checksum mismatch in '" + path +
                              "' (truncated or corrupted file)");
  }
  return C2lshIndex::FromParts(opt, d, std::move(family), std::move(tables),
                               static_cast<size_t>(num_objects), dim32, radius_cap);
}

}  // namespace c2lsh
