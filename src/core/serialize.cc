#include "src/core/serialize.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/util/crc32.h"

namespace c2lsh {

namespace {

constexpr uint64_t kMagic = 0xC25123AA2012F00DULL;  // "C2LSH index, SIGMOD'12"
// v1 used a bitwise crc64 trailer and stdio; v2 shares the storage stack's
// crc32c and Env plumbing. v1 files are rejected, not misread.
constexpr uint32_t kVersion = 2;
constexpr size_t kBufBytes = 1u << 16;

/// Buffered sequential writer over a RandomAccessFile, checksumming every
/// payload byte with the shared CRC-32C.
class Writer {
 public:
  explicit Writer(RandomAccessFile* f) : f_(f) { buf_.reserve(kBufBytes); }

  template <typename T>
  bool Put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Append(&v, sizeof(v));
  }
  template <typename T>
  bool PutArray(const T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    return count == 0 || Append(data, count * sizeof(T));
  }
  /// Appends the checksum trailer and flushes. The trailer itself is not
  /// part of the checksummed stream.
  bool Finish() {
    const uint32_t crc = Crc32cMask(crc_);
    const auto* p = reinterpret_cast<const uint8_t*>(&crc);
    buf_.insert(buf_.end(), p, p + sizeof(crc));
    return Flush() && f_->Sync().ok();
  }
  const Status& status() const { return status_; }

 private:
  bool Append(const void* data, size_t n) {
    crc_ = Crc32c(data, n, crc_);
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
    return buf_.size() < kBufBytes || Flush();
  }
  bool Flush() {
    if (buf_.empty()) return true;
    status_ = f_->WriteAt(offset_, buf_.data(), buf_.size());
    if (!status_.ok()) return false;
    offset_ += buf_.size();
    buf_.clear();
    return true;
  }

  RandomAccessFile* f_;
  uint64_t offset_ = 0;
  std::vector<uint8_t> buf_;
  uint32_t crc_ = 0;
  Status status_;
};

/// Buffered sequential reader; mirrors Writer's checksum accounting.
/// Constructed with the file's size so length fields parsed from the (still
/// unverified) stream can be sanity-bounded BEFORE anything is allocated —
/// the checksum trailer only proves integrity after the whole file is read,
/// so it cannot defend the parser against a forged multi-terabyte count.
class Reader {
 public:
  Reader(RandomAccessFile* f, uint64_t file_size) : f_(f), size_(file_size) {}

  /// Bytes the file can still supply (buffered + unread). Any section that
  /// claims to need more than this is corrupt, however plausible its count
  /// field looks.
  uint64_t RemainingBytes() const {
    // Defensive max(0): a concurrently truncated file must degrade to "no
    // bytes left", not underflow.
    const uint64_t unread = size_ > offset_ ? size_ - offset_ : 0;
    return unread + (avail_ - pos_);
  }

  template <typename T>
  bool Get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!Read(v, sizeof(T))) return false;
    crc_ = Crc32c(v, sizeof(T), crc_);
    return true;
  }
  template <typename T>
  bool GetArray(T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count == 0) return true;
    if (!Read(data, count * sizeof(T))) return false;
    crc_ = Crc32c(data, count * sizeof(T), crc_);
    return true;
  }
  bool VerifyChecksum() {
    uint32_t stored = 0;
    if (!Read(&stored, sizeof(stored))) return false;
    return Crc32cUnmask(stored) == crc_;
  }

 private:
  bool Read(void* out, size_t n) {
    auto* dst = static_cast<uint8_t*>(out);
    while (n > 0) {
      if (pos_ == avail_) {
        buf_.resize(kBufBytes);
        if (!f_->ReadAt(offset_, buf_.data(), buf_.size(), &avail_).ok()) return false;
        if (avail_ == 0) return false;  // end of file
        offset_ += avail_;
        pos_ = 0;
      }
      const size_t chunk = std::min(n, avail_ - pos_);
      std::memcpy(dst, buf_.data() + pos_, chunk);
      dst += chunk;
      pos_ += chunk;
      n -= chunk;
    }
    return true;
  }

  RandomAccessFile* f_;
  uint64_t offset_ = 0;
  uint64_t size_ = 0;
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
  size_t avail_ = 0;
  uint32_t crc_ = 0;
};

}  // namespace

Status SaveIndex(const std::string& path, C2lshIndex* index, Env* env) {
  if (index == nullptr) {
    return Status::InvalidArgument("SaveIndex: index is null");
  }
  if (env == nullptr) env = Env::Default();
  // Fold overlays/tombstones so the flat representation is the whole truth.
  index->Compact();

  C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> f, env->NewFile(path));
  Writer w(f.get());

  const C2lshOptions& opt = index->options();
  const C2lshDerived& d = index->derived();
  bool ok = w.Put(kMagic) && w.Put(kVersion);
  ok = ok && w.Put(opt.w) && w.Put(opt.c) && w.Put(opt.delta) && w.Put(opt.beta) &&
       w.Put(opt.max_radius_exponent) && w.Put(opt.seed) &&
       w.Put(static_cast<uint64_t>(opt.page_bytes));
  ok = ok && w.Put(d.model.w) && w.Put(d.model.c) && w.Put(d.model.p1) &&
       w.Put(d.model.p2) && w.Put(d.model.rho) && w.Put(d.beta) && w.Put(d.z) &&
       w.Put(d.alpha) && w.Put(static_cast<uint64_t>(d.m)) &&
       w.Put(static_cast<uint64_t>(d.l));
  ok = ok && w.Put(static_cast<uint32_t>(index->num_tables())) &&
       w.Put(static_cast<uint32_t>(index->dim())) &&
       w.Put(static_cast<uint64_t>(index->num_objects())) && w.Put(index->radius_cap());

  for (size_t i = 0; ok && i < index->num_tables(); ++i) {
    const PStableHash& h = index->family().function(i);
    ok = ok && w.PutArray(h.a().data(), h.a().size()) && w.Put(h.b()) && w.Put(h.w());
  }
  std::vector<int64_t> buckets;
  std::vector<ObjectId> ids;
  for (size_t i = 0; ok && i < index->num_tables(); ++i) {
    buckets.clear();
    ids.clear();
    index->table(i).ForEachEntry([&](BucketId b, ObjectId id) {
      buckets.push_back(b);
      ids.push_back(id);
    });
    ok = ok && w.Put(static_cast<uint64_t>(buckets.size())) &&
         w.PutArray(buckets.data(), buckets.size()) && w.PutArray(ids.data(), ids.size());
  }
  ok = ok && w.Finish();
  if (!ok) {
    std::string cause = w.status().ok() ? std::string("short write")
                                        : std::string(w.status().message());
    return Status::IOError("SaveIndex: writing '" + path + "' failed: " + cause);
  }
  return Status::OK();
}

Result<C2lshIndex> LoadIndex(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> f, env->OpenFile(path));
  C2LSH_ASSIGN_OR_RETURN(uint64_t file_size, f->Size());
  Reader r(f.get(), file_size);

  uint64_t magic = 0;
  uint32_t version = 0;
  if (!r.Get(&magic) || magic != kMagic) {
    return Status::Corruption("LoadIndex: '" + path + "' is not a C2LSH index file");
  }
  if (!r.Get(&version)) {
    return Status::Corruption("LoadIndex: truncated header in '" + path + "'");
  }
  if (version != kVersion) {
    return Status::NotSupported(
        "LoadIndex: '" + path + "' is format version " + std::to_string(version) +
        "; this build reads version " + std::to_string(kVersion) +
        " (the checksum format changed in v2 — rebuild and re-save the index)");
  }

  C2lshOptions opt;
  C2lshDerived d;
  uint64_t page_bytes = 0, m64 = 0, l64 = 0, num_objects = 0;
  uint32_t m32 = 0, dim32 = 0;
  long long radius_cap = 0;
  bool ok = r.Get(&opt.w) && r.Get(&opt.c) && r.Get(&opt.delta) && r.Get(&opt.beta) &&
            r.Get(&opt.max_radius_exponent) && r.Get(&opt.seed) && r.Get(&page_bytes);
  ok = ok && r.Get(&d.model.w) && r.Get(&d.model.c) && r.Get(&d.model.p1) &&
       r.Get(&d.model.p2) && r.Get(&d.model.rho) && r.Get(&d.beta) && r.Get(&d.z) &&
       r.Get(&d.alpha) && r.Get(&m64) && r.Get(&l64);
  ok = ok && r.Get(&m32) && r.Get(&dim32) && r.Get(&num_objects) && r.Get(&radius_cap);
  if (!ok) {
    return Status::Corruption("LoadIndex: truncated header in '" + path + "'");
  }
  opt.page_bytes = static_cast<size_t>(page_bytes);
  d.m = static_cast<size_t>(m64);
  d.l = static_cast<size_t>(l64);
  if (m32 != d.m || m32 == 0 || dim32 == 0) {
    return Status::Corruption("LoadIndex: inconsistent header in '" + path + "'");
  }

  // Bound every parsed count against the bytes the file can actually supply
  // before allocating. These fields are read ahead of the checksum trailer,
  // so a bit-flipped or malicious file can claim any m/dim/pair count it
  // likes — without this, a forged count turns into a giant allocation (and
  // its zero-fill) long before VerifyChecksum would reject the file.
  const uint64_t per_fn_bytes =
      uint64_t{dim32} * sizeof(float) + 2 * sizeof(double);
  if (m32 > r.RemainingBytes() / per_fn_bytes) {
    return Status::Corruption("LoadIndex: '" + path + "' claims " +
                              std::to_string(m32) + " hash functions of dim " +
                              std::to_string(dim32) +
                              " but is too small to hold them");
  }

  std::vector<PStableHash> funcs;
  funcs.reserve(m32);
  for (uint32_t i = 0; i < m32; ++i) {
    std::vector<float> a(dim32);
    double b = 0, w = 0;
    if (!r.GetArray(a.data(), a.size()) || !r.Get(&b) || !r.Get(&w)) {
      return Status::Corruption("LoadIndex: truncated hash function in '" + path + "'");
    }
    C2LSH_ASSIGN_OR_RETURN(PStableHash h, PStableHash::FromParts(std::move(a), b, w));
    funcs.push_back(std::move(h));
  }
  C2LSH_ASSIGN_OR_RETURN(PStableFamily family,
                         PStableFamily::FromFunctions(std::move(funcs)));

  std::vector<BucketTable> tables;
  tables.reserve(m32);
  for (uint32_t i = 0; i < m32; ++i) {
    uint64_t count = 0;
    constexpr uint64_t kPairBytes = sizeof(int64_t) + sizeof(ObjectId);
    if (!r.Get(&count) || count > r.RemainingBytes() / kPairBytes) {
      return Status::Corruption("LoadIndex: bad table size in '" + path + "'");
    }
    std::vector<int64_t> buckets(count);
    std::vector<ObjectId> ids(count);
    if (!r.GetArray(buckets.data(), count) || !r.GetArray(ids.data(), count)) {
      return Status::Corruption("LoadIndex: truncated table in '" + path + "'");
    }
    std::vector<std::pair<BucketId, ObjectId>> pairs;
    pairs.reserve(count);
    for (uint64_t j = 0; j < count; ++j) {
      pairs.emplace_back(buckets[j], ids[j]);
    }
    tables.push_back(BucketTable::Build(std::move(pairs)));
  }

  if (!r.VerifyChecksum()) {
    return Status::Corruption("LoadIndex: checksum mismatch in '" + path +
                              "' (truncated or corrupted file)");
  }
  return C2lshIndex::FromParts(opt, d, std::move(family), std::move(tables),
                               static_cast<size_t>(num_objects), dim32, radius_cap);
}

}  // namespace c2lsh
