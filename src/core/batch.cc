// The batched, shard-parallel query engine behind C2lshIndex::QueryBatch.
// See src/core/batch.h for the architecture and the determinism contract.

#include "src/core/batch.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "src/core/counter.h"
#include "src/core/virtual_rehash.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/storage/page_model.h"
#include "src/util/timer.h"
#include "src/vector/distance.h"
#include "src/vector/matrix.h"

namespace c2lsh {
namespace batch {
namespace {

// Registry handles resolved once per process. The core c2lsh_* names are the
// SAME instruments RunQuery flushes through (the registry deduplicates by
// name), so serial and batched queries land in one set of counters; the
// batch_* names instrument the engine itself.
struct BatchMetrics {
  obs::Counter* queries;
  obs::Counter* rounds;
  obs::Counter* collision_increments;
  obs::Counter* candidates_verified;
  obs::Counter* buckets_scanned;
  obs::Counter* t1;
  obs::Counter* t2;
  obs::Counter* exhausted;
  obs::Counter* deadline;
  obs::Counter* cancelled;
  obs::Histogram* latency;
  obs::Counter* batch_queries;
  obs::Counter* batch_blocks;
  obs::Counter* scan_groups;
  obs::Counter* shared_scan_hits;
  obs::Gauge* batch_size;
  obs::Gauge* num_shards;
  obs::Gauge* pool_threads;
  obs::Histogram* batch_query_millis;
};

const BatchMetrics& Metrics() {
  static const BatchMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    return BatchMetrics{
        r.GetCounter("c2lsh_queries_total", "In-memory C2LSH queries answered"),
        r.GetCounter("c2lsh_rounds_total",
                     "Virtual-rehashing rounds executed by in-memory queries"),
        r.GetCounter("c2lsh_collision_increments_total",
                     "Collision-counter increments (in-memory queries)"),
        r.GetCounter("c2lsh_candidates_verified_total",
                     "Exact distance verifications (in-memory queries)"),
        r.GetCounter("c2lsh_buckets_scanned_total",
                     "Hash buckets visited (in-memory queries)"),
        r.GetCounter("c2lsh_queries_t1_total",
                     "Queries terminated by T1 (k verified within c*R)"),
        r.GetCounter("c2lsh_queries_t2_total",
                     "Queries terminated by T2 (k + beta*n candidate budget)"),
        r.GetCounter("c2lsh_queries_exhausted_total",
                     "Queries that covered every bucket of every table"),
        r.GetCounter("c2lsh_queries_deadline_total",
                     "Queries stopped by a deadline or page budget (partial results)"),
        r.GetCounter("c2lsh_queries_cancelled_total",
                     "Queries cooperatively cancelled (partial results)"),
        r.GetHistogram("c2lsh_query_millis",
                       "In-memory C2LSH query latency in milliseconds"),
        r.GetCounter("c2lsh_batch_queries_total",
                     "Queries answered through the batched engine (QueryBatch)"),
        r.GetCounter("c2lsh_batch_blocks_total",
                     "Co-resident execution blocks run by QueryBatch"),
        r.GetCounter("c2lsh_batch_scan_groups_total",
                     "Distinct (table, bucket-run) scans performed by the batch engine"),
        r.GetCounter("c2lsh_batch_shared_scan_hits_total",
                     "Bucket-run scans saved by sharing (group members beyond the first)"),
        r.GetGauge("c2lsh_batch_size",
                   "Co-resident queries per execution block (last QueryBatch)"),
        r.GetGauge("c2lsh_batch_num_shards",
                   "Table shards per execution block (last QueryBatch)"),
        r.GetGauge("c2lsh_thread_pool_threads",
                   "Worker threads in the pool serving QueryBatch"),
        r.GetHistogram("c2lsh_batch_query_millis",
                       "Per-query completion latency within a batch block (ms)"),
    };
  }();
  return m;
}

// Flushes one finished batch query into the shared core instruments plus the
// per-query batch latency histogram. Identical accounting to RunQuery's
// flush, so dashboards see one stream of query metrics.
void FlushBatchQuery(const C2lshQueryStats& st, double millis) {
  const BatchMetrics& m = Metrics();
  m.queries->Increment();
  m.rounds->Increment(st.rounds);
  m.collision_increments->Increment(st.collision_increments);
  m.candidates_verified->Increment(st.candidates_verified);
  m.buckets_scanned->Increment(st.buckets_scanned);
  switch (st.termination) {
    case Termination::kT1:
      m.t1->Increment();
      break;
    case Termination::kT2:
      m.t2->Increment();
      break;
    case Termination::kExhausted:
      m.exhausted->Increment();
      break;
    case Termination::kDeadline:
      m.deadline->Increment();
      break;
    case Termination::kCancelled:
      m.cancelled->Increment();
      break;
    case Termination::kNone:
      break;
  }
  m.latency->Observe(millis);
  m.batch_queries->Increment();
  m.batch_query_millis->Observe(millis);
}

// The probe interval at radius R with the exhaustive fallback past the
// radius schedule. Must match C2lshIndex::IntervalForRadius exactly — the
// bitwise-equality tests (batch_engine_test.cc) pin the two together.
BucketRange IntervalForRadiusCapped(BucketId query_bucket, long long R,
                                    long long radius_cap) {
  if (R > radius_cap) {
    constexpr BucketId kLo = std::numeric_limits<BucketId>::min() / 4;
    constexpr BucketId kHi = std::numeric_limits<BucketId>::max() / 4;
    return BucketRange{kLo, kHi};
  }
  return QueryIntervalAtRadius(query_bucket, R);
}

/// One co-resident query's execution state across rounds.
///
/// Collision counts are a plain zero-initialized array rather than
/// CollisionCounter: the epoch trick buys O(1) reset for a long-lived
/// scratch, but a block state is built fresh per query, so a single memset
/// is cheaper than paying an extra 4-byte epoch load on every one of the
/// ~10^5..10^6 random-access increments a query performs. RunQuery's
/// `verified` bitmap is dropped for the same reason: counts are monotone
/// (+1 per collision), so `++counts[id] == l` fires exactly once per id —
/// letting counts run past l instead of freezing them changes no
/// observable output (found set, stats, termination), and it removes a
/// second random byte-load from the hot loop.
struct QueryState {
  std::vector<uint32_t> counts;    ///< per-id collision count this query
  std::vector<BucketRange> prev;   ///< per-table interval already scanned
  /// 1 once this query's interval covers every entry the table holds.
  /// Coverage is monotone (intervals only grow over a pinned snapshot), so
  /// a covered table contributes nothing in any later round — its delta
  /// ranges hold zero entries and charge zero pages — and Phase A skips it
  /// entirely instead of re-deriving an empty delta, which is where the
  /// exhaustive-fallback rounds of easy profiles spend most of their
  /// per-table bookkeeping.
  std::vector<uint8_t> table_covered;
  NeighborList found;
  C2lshQueryStats stats;
  Termination early_stop = Termination::kNone;
};

/// One shared scan: a distinct (table, bucket-run) some subset of the active
/// queries probes this round. The run is scanned exactly once; every member
/// query consumes the same id buffer by reference in Phase B (no per-member
/// copies), while the I/O it represents is charged to each member
/// individually, as a serial Query would charge it.
struct GroupScan {
  std::vector<ObjectId> ids;   ///< id<n entries, in scan order
  uint64_t index_pages = 0;    ///< per-member page charge for this run
  uint64_t buckets_scanned = 0;  ///< live entries enumerated (incl. id>=n)
};

/// What one shard hands one query at the round barrier: the indices (into
/// the shard's GroupScan pool, in deterministic sorted-range order) of the
/// runs this query is a member of, plus the coverage AND over the shard's
/// tables. Written by exactly one shard in Phase A, read by exactly one
/// query in Phase B — the ParallelFor barrier between the phases is the
/// only synchronization needed.
struct ShardDelta {
  std::vector<uint32_t> group_ixs;
  bool covered = true;
};

}  // namespace

void RunBatchBlock(const C2lshIndex& index, const Dataset& data,
                   const float* queries, size_t num_queries, size_t qstride,
                   size_t k, const QueryContext* const* ctxs,
                   size_t num_shards, ThreadPool* pool,
                   NeighborList* results, C2lshQueryStats* stats) {
  // Block-level sampling (kAlways / kEveryNth); per-query opt-in contexts
  // still get their pool/page spans via the instrumented lower layers.
  const bool sampled = obs::Tracer::Global().SampleQuery(nullptr);
  const uint64_t block_id =
      sampled ? obs::Tracer::Global().NextQueryId() : 0;
  obs::ScopedSpan block_span(obs::SpanSubsystem::kBatch, "batch_block",
                             block_id, sampled);
  Timer block_timer;
  // The block's frozen view, same scheme as RunQuery: the object count is
  // read once and every table is pinned once, up front, shared by all
  // co-resident queries.
  const size_t n = index.num_objects();
  const size_t m = index.num_tables();
  const size_t dim = index.dim();
  const uint32_t l = static_cast<uint32_t>(index.derived().l);
  const double c = index.derived().model.c;
  const long long c_int = static_cast<long long>(std::llround(c));
  const long long radius_cap = index.radius_cap();
  const size_t t2_threshold = std::min<size_t>(
      n, k + static_cast<size_t>(
                 std::ceil(index.derived().beta * static_cast<double>(n))));
  const PageModel page_model(index.options().page_bytes);
  const uint64_t vector_pages = page_model.PagesPerVector(dim);

  std::vector<BucketTable::Snapshot> snaps;
  snaps.reserve(m);
  for (size_t i = 0; i < m; ++i) snaps.push_back(index.table(i).snapshot());

  // Layer 1: one query-major GEMM-style projection pass buckets the whole
  // block — qbuckets[q * m + i] is bit-identical to per-query BucketAll.
  std::vector<BucketId> qbuckets;
  index.family().BucketAllMulti(queries, num_queries, qstride, &qbuckets);

  const size_t S = std::max<size_t>(1, std::min(num_shards, std::max<size_t>(m, 1)));
  std::vector<QueryState> states(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    QueryState& qs = states[q];
    qs.counts.assign(n, 0);
    qs.prev.assign(m, BucketRange{});
    qs.table_covered.assign(m, 0);
    qs.found.reserve(t2_threshold + m);
    // Per-table descent charge, once per query (RunQuery's I/O model).
    qs.stats.index_pages += m;
  }

  // deltas[s][q]: shard s's round contribution to query q (indices into
  // groups_pool[s]). The pools keep their buffers across rounds so the
  // steady state allocates nothing.
  std::vector<std::vector<ShardDelta>> deltas(S, std::vector<ShardDelta>(num_queries));
  std::vector<std::vector<GroupScan>> groups_pool(S);
  std::vector<uint64_t> shard_scan_groups(S, 0);
  std::vector<uint64_t> shard_shared_hits(S, 0);

  std::vector<uint32_t> active;
  active.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) active.push_back(static_cast<uint32_t>(q));

  const BatchMetrics& bm = Metrics();
  auto finalize = [&](uint32_t q) {
    QueryState& qs = states[q];
    // Only the k nearest survive — identical finalization to RunQuery, and
    // NeighborLess is a total order (distance, then id), so the ranking is
    // unique regardless of verification order.
    if (qs.found.size() > k) {
      std::partial_sort(qs.found.begin(),
                        qs.found.begin() + static_cast<std::ptrdiff_t>(k),
                        qs.found.end(), NeighborLess());
      qs.found.resize(k);
    } else {
      std::sort(qs.found.begin(), qs.found.end(), NeighborLess());
    }
    results[q] = std::move(qs.found);
    stats[q] = qs.stats;
    FlushBatchQuery(qs.stats, block_timer.ElapsedMillis());
  };

  long long R = 1;
  while (!active.empty()) {
    // Round boundary: the full context check (deadline, cancellation, page
    // budget) per query. A pre-expired context runs zero rounds and returns
    // empty, exactly as in RunQuery; its batchmates are untouched.
    {
      size_t w = 0;
      for (uint32_t q : active) {
        QueryState& qs = states[q];
        const QueryContext* ctx = (ctxs != nullptr) ? ctxs[q] : nullptr;
        if (ctx != nullptr && qs.early_stop == Termination::kNone) {
          qs.early_stop = ctx->Check(qs.stats.total_pages());
        }
        if (qs.early_stop != Termination::kNone) {
          qs.stats.termination = qs.early_stop;
          finalize(q);
        } else {
          active[w++] = q;
        }
      }
      active.resize(w);
    }
    if (active.empty()) break;
    obs::ScopedSpan round_span(obs::SpanSubsystem::kRound, "batch_round",
                               block_id, sampled);
    for (uint32_t q : active) {
      ++states[q].stats.rounds;
      states[q].stats.final_radius = R;
    }

    // Phase A — sharded shared scans. Shard s owns tables i % S == s; for
    // each owned table it groups the active queries by identical delta
    // range and scans each distinct range ONCE, into a single group-owned
    // id buffer every member consumes by reference in Phase B. Writes are
    // confined to the shard's own deltas[s] row and groups_pool[s], each
    // query's own prev elements of the shard's tables, and the shard's own
    // metric slots — disjoint by construction (the thread_pool.h
    // ParallelFor contract).
    obs::ScopedSpan phase_a_span(obs::SpanSubsystem::kBatch, "phase_a_scan",
                                 block_id, sampled);
    pool->ParallelFor(S, [&](size_t s) {
      std::vector<GroupScan>& pool_s = groups_pool[s];
      size_t used = 0;     // GroupScan slots consumed this round
      uint64_t refs = 0;   // (query, run) memberships this round
      for (uint32_t q : active) {
        ShardDelta& d = deltas[s][q];
        d.group_ixs.clear();
        d.covered = true;
      }
      // Per-table grouping scratch, reused across the shard's tables: one
      // slot per non-empty delta side, in (active query, left, right)
      // order. Sort-based grouping over these flat arrays replaces a keyed
      // map — no node allocations on the per-round hot path.
      std::vector<std::pair<BucketId, BucketId>> side_keys;
      std::vector<uint32_t> side_q;    // owning query of each side
      std::vector<uint32_t> side_ix;   // resolved GroupScan index
      std::vector<uint32_t> order;     // sort permutation over sides
      // analyze-ok(cancellation-cadence): Phase A only groups and scans one round's bounded delta ranges; the consuming Phase B merge polls cancellation every increment and the clock at the mask cadence, and the driver runs the full ctx Check at every round boundary.
      for (size_t i = s; i < m; i += S) {
        const BucketTable::Snapshot& snap = snaps[i];
        side_keys.clear();
        side_q.clear();
        // analyze-ok(cancellation-cadence): one bounded pass over this round's active queries — grouping plus at most one shared scan per distinct delta range; per-query polls happen in the Phase B merge (every increment / mask cadence) and at the round boundary.
        for (uint32_t q : active) {
          QueryState& qs = states[q];
          // A covered table stays covered (the interval only grows over the
          // pinned snapshot): no new entries, no pages, nothing to do.
          if (qs.table_covered[i] != 0) continue;
          const BucketRange next =
              IntervalForRadiusCapped(qbuckets[q * m + i], R, radius_cap);
          const RangeDelta delta = ComputeRangeDelta(qs.prev[i], next);
          qs.prev[i] = next;
          if (!delta.left.empty()) {
            side_keys.emplace_back(delta.left.lo, delta.left.hi);
            side_q.push_back(q);
          }
          if (!delta.right.empty()) {
            side_keys.emplace_back(delta.right.lo, delta.right.hi);
            side_q.push_back(q);
          }
          // Coverage test, per query: once the interval spans every bucket
          // the table holds, further rounds cannot add collisions from it.
          if (snap.num_buckets() > 0 &&
              snap.EntriesInRange(next.lo, next.hi) < snap.num_entries()) {
            deltas[s][q].covered = false;
          } else {
            qs.table_covered[i] = 1;
          }
        }
        const size_t num_sides = side_keys.size();
        refs += num_sides;
        order.resize(num_sides);
        for (size_t e = 0; e < num_sides; ++e) order[e] = static_cast<uint32_t>(e);
        std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
          return side_keys[a] < side_keys[b];
        });
        side_ix.resize(num_sides);
        // Walk the sorted runs: the first side of each distinct (lo, hi)
        // scans the run once; the rest just take its index. Which side of a
        // tied run scans is irrelevant — every member consumes the same
        // buffer, and each query's own group order is fixed below.
        // analyze-ok(cancellation-cadence): at most one bounded shared scan per distinct delta range this round; per-query ctx polls happen in the Phase B merge and at the round boundary.
        for (size_t e = 0; e < num_sides;) {
          const std::pair<BucketId, BucketId> key = side_keys[order[e]];
          const uint32_t ix = static_cast<uint32_t>(used++);
          if (pool_s.size() <= ix) pool_s.emplace_back();
          GroupScan& g = pool_s[ix];
          g.ids.clear();
          // I/O is charged per member even though the scan is shared — the
          // paper's cost model (and RunQuery) charges every query for the
          // entry pages its interval covers.
          const size_t range_entries = snap.EntriesInRange(key.first, key.second);
          g.index_pages =
              range_entries > 0
                  ? page_model.PagesForEntries(range_entries, sizeof(ObjectId))
                  : 0;
          // buckets_scanned counts every live entry enumerated (including
          // ids inserted after the block pinned its view); only id < n
          // entries feed the collision counters — both exactly as in
          // RunQuery. The bulk append is one sequential copy of the flat
          // run's contiguous slice in the common no-deletes case.
          g.buckets_scanned = snap.AppendRangeTo(key.first, key.second, n, &g.ids);
          for (; e < num_sides && side_keys[order[e]] == key; ++e) {
            side_ix[order[e]] = ix;
          }
        }
        // Fan the indices back out in the original (query, left, right)
        // order, so each query consumes its groups exactly as a serial
        // Query would scan its own delta ranges.
        for (size_t e = 0; e < num_sides; ++e) {
          deltas[s][side_q[e]].group_ixs.push_back(side_ix[e]);
        }
      }
      shard_scan_groups[s] += used;
      shard_shared_hits[s] += refs - used;
    });
    phase_a_span.End();

    // Phase B — per-query merge. Each query (one owner per counter, no
    // atomics) consumes every shard's buffer with the full serial cadence:
    // cancellation polled every increment, the clock every
    // kCheckIntervalMask+1 increments. The round-end verified set is
    // increment-order-independent, so the merge order (shard 0..S-1, scan
    // order within) yields the same state as any serial interleaving.
    obs::ScopedSpan phase_b_span(obs::SpanSubsystem::kBatch, "phase_b_merge",
                                 block_id, sampled);
    pool->ParallelFor(active.size(), [&](size_t a) {
      const uint32_t q = active[a];
      QueryState& qs = states[q];
      const QueryContext* ctx = (ctxs != nullptr) ? ctxs[q] : nullptr;
      const float* query = queries + q * qstride;
      bool all_covered = true;
      // analyze-ok(cancellation-cadence): O(S + groups) bookkeeping sweep over this round's group indices; the increment loop just below polls cancellation every increment and the clock at the mask cadence.
      for (size_t s = 0; s < S; ++s) {
        const ShardDelta& d = deltas[s][q];
        all_covered = all_covered && d.covered;
        for (uint32_t ix : d.group_ixs) {
          const GroupScan& g = groups_pool[s][ix];
          qs.stats.index_pages += g.index_pages;
          qs.stats.buckets_scanned += g.buckets_scanned;
        }
      }
      uint32_t* const counts = qs.counts.data();
      if (ctx == nullptr) {
        // Fast path — no context, so nothing can stop the merge mid-stream:
        // the increment tally is hoisted per group and the inner loop is
        // just the count update and the ==l transition. This is the loop
        // the >= 2x aggregate-throughput criterion rides on; keep it lean.
        // analyze-ok(cancellation-cadence): this query has no QueryContext — there is nothing to poll; the ctx != nullptr branch below keeps the full serial cadence.
        for (size_t s = 0; s < S; ++s) {
          // analyze-ok(cancellation-cadence): same no-context fast path as the enclosing loop — nothing to poll.
          for (uint32_t ix : deltas[s][q].group_ixs) {
            const GroupScan& g = groups_pool[s][ix];
            qs.stats.collision_increments += g.ids.size();
            for (ObjectId id : g.ids) {
              if (++counts[id] == l) {
                const double dist = L2(query, data.object(id), dim);
                qs.found.push_back(Neighbor{id, static_cast<float>(dist)});
                ++qs.stats.candidates_verified;
                qs.stats.data_pages += vector_pages;
              }
            }
          }
        }
      } else {
        for (size_t s = 0; s < S && qs.early_stop == Termination::kNone; ++s) {
          for (uint32_t ix : deltas[s][q].group_ixs) {
            if (qs.early_stop != Termination::kNone) break;
            for (ObjectId id : groups_pool[s][ix].ids) {
              ++qs.stats.collision_increments;
              if (ctx->cancelled()) {
                qs.early_stop = Termination::kCancelled;
                break;
              }
              if ((qs.stats.collision_increments &
                   QueryContext::kCheckIntervalMask) == 0 &&
                  ctx->deadline.Expired()) {
                qs.early_stop = Termination::kDeadline;
                break;
              }
              if (++counts[id] == l) {
                const double dist = L2(query, data.object(id), dim);
                qs.found.push_back(Neighbor{id, static_cast<float>(dist)});
                ++qs.stats.candidates_verified;
                qs.stats.data_pages += vector_pages;
              }
            }
          }
        }
      }
      // Round end, merged counts: T1 > T2 > early stop > exhausted — the
      // exact RunQuery precedence. T1 is evaluated even after an early stop
      // so a query whose partial merge already proved the answer gets the
      // full-quality termination.
      const double cr = c * static_cast<double>(R);
      size_t within = 0;
      for (const Neighbor& nb : qs.found) {
        if (nb.dist <= cr) ++within;
        if (within >= k) break;
      }
      if (within >= k) {
        qs.stats.termination = Termination::kT1;
      } else if (qs.found.size() >= t2_threshold) {
        qs.stats.termination = Termination::kT2;
      } else if (qs.early_stop != Termination::kNone) {
        qs.stats.termination = qs.early_stop;
      } else if (all_covered) {
        qs.stats.termination = Termination::kExhausted;
      }
    });

    // Retire finished queries (sequential, so metric flush order is
    // deterministic) and advance the radius schedule.
    size_t w = 0;
    // analyze-ok(cancellation-cadence): O(active) bookkeeping at the round boundary — the boundary immediately rechecks every remaining query's ctx at the top of the next iteration.
    for (uint32_t q : active) {
      if (states[q].stats.termination != Termination::kNone) {
        finalize(q);
      } else {
        active[w++] = q;
      }
    }
    active.resize(w);
    R *= c_int;
  }

  uint64_t scan_groups = 0;
  uint64_t shared_hits = 0;
  for (size_t s = 0; s < S; ++s) {
    scan_groups += shard_scan_groups[s];
    shared_hits += shard_shared_hits[s];
  }
  bm.scan_groups->Increment(scan_groups);
  bm.shared_scan_hits->Increment(shared_hits);
  bm.batch_blocks->Increment();
}

}  // namespace batch

Result<std::vector<NeighborList>> C2lshIndex::QueryBatch(
    const Dataset& data, const FloatMatrix& queries, size_t k,
    const BatchQueryOptions& options, std::vector<C2lshQueryStats>* stats) const {
  if (k == 0) return Status::InvalidArgument("C2LSH query: k must be positive");
  if (queries.dim() != dim_) {
    return Status::InvalidArgument("QueryBatch: query dim mismatch");
  }
  if (data.dim() != dim_) {
    return Status::InvalidArgument("C2LSH query: dataset dim mismatch");
  }
  if (data.size() < num_objects()) {
    return Status::InvalidArgument(
        "C2LSH query: dataset has fewer objects than the index — pass the dataset the "
        "index was built on (plus any inserted rows)");
  }
  const size_t nq = queries.num_rows();
  if (!options.contexts.empty() && options.contexts.size() != nq) {
    return Status::InvalidArgument(
        "QueryBatch: contexts must be empty or hold one (nullable) pointer per query row");
  }
  std::vector<NeighborList> results(nq);
  std::vector<C2lshQueryStats> local_stats;
  std::vector<C2lshQueryStats>* st = (stats != nullptr) ? stats : &local_stats;
  st->assign(nq, C2lshQueryStats());
  if (nq == 0) return results;

  ThreadPool* pool = (options.pool != nullptr) ? options.pool : &ThreadPool::Shared();
  const size_t m = tables_.size();
  size_t num_shards = (options.num_shards != 0) ? options.num_shards : pool->num_threads();
  num_shards = std::max<size_t>(1, std::min(num_shards, std::max<size_t>(m, 1)));
  const size_t block = (options.batch_size != 0) ? options.batch_size : nq;

  const batch::BatchMetrics& bm = batch::Metrics();
  bm.batch_size->Set(static_cast<double>(std::min(block, nq)));
  bm.num_shards->Set(static_cast<double>(num_shards));
  bm.pool_threads->Set(static_cast<double>(pool->num_threads()));

  for (size_t start = 0; start < nq; start += block) {
    const size_t count = std::min(block, nq - start);
    const QueryContext* const* ctxs =
        options.contexts.empty() ? nullptr : options.contexts.data() + start;
    batch::RunBatchBlock(*this, data, queries.row(start), count, queries.dim(), k,
                         ctxs, num_shards, pool, results.data() + start,
                         st->data() + start);
  }
  return results;
}

Result<std::vector<NeighborList>> C2lshIndex::BatchQuery(const Dataset& data,
                                                         const FloatMatrix& queries,
                                                         size_t k,
                                                         size_t num_threads) const {
  // Thin wrapper over the batch engine: num_threads bounds the table
  // sharding. Results are bitwise-invariant under the value (determinism
  // contract), so callers migrating from the old thread-per-query loop see
  // identical answers for every setting.
  BatchQueryOptions options;
  options.num_shards = num_threads;
  return QueryBatch(data, queries, k, options);
}

}  // namespace c2lsh
