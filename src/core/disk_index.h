// DiskC2lshIndex: the external-memory deployment the paper describes —
// hash tables resident in a PageFile, queried through an LRU BufferPool
// whose misses ARE the I/O cost (no simulation).
//
// File layout (one PageFile):
//   page 0   PageFile header
//   page 1   superblock: [meta blob root: u64]
//   ...      per-table entry pages + directory blobs (DiskBucketTable)
//   ...      meta blob: options, derived params, hash functions, table roots
//
// The query algorithm is identical to C2lshIndex (incremental virtual
// rehashing, T1/T2 termination); candidate vectors live with the caller's
// Dataset, and their fetch cost is charged via the analytic model as in the
// in-memory index (the paper likewise separates index I/O from the one
// random data access per candidate).
//
// Mutability & crash safety: Insert/Delete append an LSN-stamped record to a
// write-ahead log beside the index file (<path>.wal) and acknowledge only
// after the log syncs; the in-memory effect is a per-table overlay entry or
// tombstone (storage/disk_bucket_table.h). Open() replays the log — records
// at or below the durably published applied-LSN watermark are skipped, a
// torn or corrupt tail is truncated, never applied — so every acknowledged
// mutation is visible exactly once after any crash. Compact() folds overlays
// and tombstones into freshly appended bucket runs (and a rewritten data
// segment), publishes the new meta root atomically through the PageFile
// header's user_root, then truncates the log; a crash at any point recovers
// either the pre- or post-compaction image, both complete.

#pragma once
#ifndef C2LSH_CORE_DISK_INDEX_H_
#define C2LSH_CORE_DISK_INDEX_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/counter.h"
#include "src/core/index.h"
#include "src/core/params.h"
#include "src/lsh/pstable.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_bucket_table.h"
#include "src/storage/page_file.h"
#include "src/storage/wal.h"
#include "src/util/query_context.h"
#include "src/util/result.h"
#include "src/vector/dataset.h"

namespace c2lsh {

/// Query statistics with measured pool I/O.
struct DiskQueryStats {
  C2lshQueryStats base;   ///< rounds, candidates, etc. index_pages here is
                          ///< the MEASURED pool-miss count.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;

  /// Degraded-query accounting: when an index or data page fails its
  /// checksum mid-query, the query drops the affected table (or candidate)
  /// instead of aborting — the results are still genuine neighbors with
  /// exact distances, but possibly fewer of them. `degraded` is the signal
  /// that the answer may be incomplete; it is NEVER silently wrong.
  bool degraded = false;
  uint64_t tables_skipped = 0;      ///< hash tables dropped on a corrupt page
  uint64_t candidates_skipped = 0;  ///< candidates dropped on a corrupt data page
};

/// The disk-resident C2LSH index.
class DiskC2lshIndex {
 public:
  /// Builds the index over `data` into a fresh page file at `path`.
  /// `pool_pages` is the buffer-pool capacity used for both build and
  /// queries (the paper's experiments fix a small constant buffer).
  /// When `store_vectors` is true (the default) the raw vectors are written
  /// into a data segment of the same file, making the index fully
  /// self-contained: queries need no external Dataset and every candidate
  /// verification is a *measured* page access — the complete external-memory
  /// deployment of the paper.
  /// `env` (nullptr = Env::Default()) is the filesystem the index lives in;
  /// tests pass a FaultInjectionEnv to exercise crash and corruption paths.
  static Result<DiskC2lshIndex> Build(const Dataset& data, const C2lshOptions& options,
                                      const std::string& path, size_t pool_pages = 256,
                                      bool store_vectors = true, Env* env = nullptr);

  /// Reopens an index built by Build. After a crash during Build or Sync
  /// this either recovers a fully consistent index or fails with
  /// Corruption (never a partially-applied one). Surviving WAL records are
  /// replayed into the tables' overlays, so every acknowledged Insert/Delete
  /// is visible — exactly once — no matter where the crash landed.
  static Result<DiskC2lshIndex> Open(const std::string& path, size_t pool_pages = 256,
                                     Env* env = nullptr);

  /// Dynamic insert: logs (id, vector) to the WAL, syncs, and only then
  /// applies the mutation to the per-table overlays — a return of OK means
  /// the insert survives any crash. The id becomes the new high-water when
  /// it extends the id space. Mutators and queries on a DiskC2lshIndex share
  /// per-query scratch and the single WAL cursor: callers must serialize
  /// Insert/Delete/Compact/Query externally (single-writer, single-reader;
  /// the in-memory C2lshIndex is the concurrent-query engine).
  Status Insert(ObjectId id, const float* v);

  /// Dynamic delete: logs a tombstone, syncs, then hides `id` from every
  /// table. NotFound if `id` was never registered. Same durability and
  /// serialization contract as Insert.
  Status Delete(ObjectId id);

  /// Folds overlays, tombstones, and overlay vectors into freshly written
  /// bucket runs (and data segment), atomically publishes the new meta root
  /// via the PageFile header, then truncates the WAL. Old pages stay in the
  /// file as dead space until the next full rebuild — crash safety over
  /// space reuse. A crash anywhere during compaction recovers either the old
  /// image (plus WAL replay) or the new one, never a mix.
  Status Compact();

  /// Forces everything to durable storage without changing the image: syncs
  /// the WAL (a no-op for already-acked mutations, which sync before ack)
  /// and the PageFile (publishing its current header generation). The
  /// serving layer calls this per index during graceful drain so a
  /// post-drain kill -9 loses nothing. Same external-serialization contract
  /// as Insert.
  Status Flush();

  /// c-k-ANN query against the stored data segment. Requires the index to
  /// have been built with store_vectors = true. `trace`, when non-null,
  /// receives one span per rehashing round plus measured pool hit/miss
  /// counts (src/obs/trace.h). `ctx` (nullable) bounds the query: on
  /// deadline expiry, cancellation, or an exceeded I/O-page budget
  /// (measured pool misses) the query returns best-effort partial results
  /// with termination kDeadline / kCancelled — never an error; an expired
  /// context also stops in-flight transient-fault retries (util/retry.h).
  /// Single-threaded: queries share one scratch and must also be serialized
  /// against Insert/Delete/Compact (see Insert).
  Result<NeighborList> Query(const float* query, size_t k,
                             DiskQueryStats* stats = nullptr,
                             obs::QueryTrace* trace = nullptr,
                             const QueryContext* ctx = nullptr) const;

  /// c-k-ANN query verifying against the caller's dataset (works with or
  /// without a stored data segment); identical answers to the in-memory
  /// C2lshIndex built with the same options/seed. Single-threaded: same
  /// serialization contract as the stored-vector Query above.
  Result<NeighborList> Query(const Dataset& data, const float* query, size_t k,
                             DiskQueryStats* stats = nullptr,
                             obs::QueryTrace* trace = nullptr,
                             const QueryContext* ctx = nullptr) const;

  /// Batched c-k-ANN against the stored data segment: one query per row of
  /// `queries`, answers identical to looping Query(). The projection layer is
  /// batched — all rows are bucketed in one query-major GEMM-style pass
  /// (PStableFamily::BucketAllMulti, bit-identical to per-query bucketing) —
  /// but the scan/verify rounds run sequentially per query: the disk index
  /// is documented single-reader (one scratch, one WAL cursor, one buffer
  /// pool), so unlike C2lshIndex::QueryBatch there is no shard parallelism
  /// here. `contexts`, when non-empty, holds one (nullable) QueryContext per
  /// row with the usual per-query deadline/cancellation/budget semantics —
  /// one query expiring never perturbs its batchmates. `stats`, when
  /// non-null, is resized to one entry per query.
  Result<std::vector<NeighborList>> QueryBatch(
      const FloatMatrix& queries, size_t k,
      std::vector<DiskQueryStats>* stats = nullptr,
      const std::vector<const QueryContext*>& contexts = {}) const;

  /// QueryBatch verifying against the caller's dataset (works with or
  /// without a stored data segment). Same contract as the stored-vector
  /// QueryBatch above.
  Result<std::vector<NeighborList>> QueryBatch(
      const Dataset& data, const FloatMatrix& queries, size_t k,
      std::vector<DiskQueryStats>* stats = nullptr,
      const std::vector<const QueryContext*>& contexts = {}) const;

  bool has_stored_vectors() const { return first_data_page_ != 0; }

  const C2lshOptions& options() const { return options_; }
  const C2lshDerived& derived() const { return derived_; }
  size_t num_objects() const { return num_objects_; }
  size_t dim() const { return dim_; }
  size_t num_tables() const { return tables_.size(); }

  /// Dynamic inserts awaiting Compact, summed over tables.
  size_t OverlayEntries() const;
  /// Objects deleted but not yet compacted away.
  size_t NumTombstones() const { return deleted_ids_.size(); }
  /// LSN of the last WAL record folded into the published base image.
  uint64_t applied_lsn() const { return applied_lsn_; }
  /// LSN of the last record appended to (or replayed from) the WAL.
  uint64_t wal_last_lsn() const { return wal_ != nullptr ? wal_->last_lsn() : 0; }

  /// Pages in the file — the on-disk index size.
  uint64_t FilePages() const { return file_->num_pages(); }

  /// Cumulative pool statistics (reset by ResetPoolStats). By value: the
  /// pool hands out a snapshot, not a reference into mutex-guarded state.
  BufferPoolStats pool_stats() const { return pool_->stats(); }
  void ResetPoolStats() { pool_->ResetStats(); }

  /// Transient-failure retry counters of the underlying PageFile.
  const RetryStats& retry_stats() const { return file_->retry_stats(); }

  /// Retry behavior of the underlying PageFile for transient env failures.
  /// Tests install sleepy policies here to race cancellation against an
  /// in-flight retry loop.
  void SetRetryPolicy(const RetryPolicy& policy) { file_->SetRetryPolicy(policy); }

  /// Buffer-pool frames currently pinned. Zero between queries — the
  /// cancellation tests assert an early-stopped query leaks no pins.
  size_t PinnedPoolFrames() const { return pool_->PinnedFrames(); }

 private:
  DiskC2lshIndex() = default;

  /// Shared query loop. `data` may be null when vectors are stored.
  /// `qbuckets`, when non-null, holds the query's num_tables() precomputed
  /// bucket ids (QueryBatch's batched projection); null recomputes them.
  Result<NeighborList> RunDiskQuery(const Dataset* data, const float* query, size_t k,
                                    DiskQueryStats* stats, obs::QueryTrace* trace,
                                    const QueryContext* ctx,
                                    const BucketId* qbuckets = nullptr) const;

  /// Shared validation + projection + sequential loop behind both QueryBatch
  /// overloads.
  Result<std::vector<NeighborList>> RunDiskBatch(
      const Dataset* data, const FloatMatrix& queries, size_t k,
      std::vector<DiskQueryStats>* stats,
      const std::vector<const QueryContext*>& contexts) const;

  /// Reads object `id`'s vector from the data segment into `out`
  /// (dim_ floats), charging the pool. `ctx` bounds the retry loop of the
  /// underlying page reads.
  Status ReadStoredVector(ObjectId id, float* out, const QueryContext* ctx) const;

  /// Vector lookup that sees mutations: overlay vectors first (free — they
  /// are resident), then the data segment. `id` must be live.
  Status LoadVector(ObjectId id, float* out, const QueryContext* ctx) const;

  /// Applies one WAL record to the in-memory overlays (shared by the live
  /// mutation path and Open's replay, so replayed and acked mutations cannot
  /// diverge).
  Status ApplyRecord(const WriteAheadLog::Record& rec);

  /// Refreshes the disk-side overlay/tombstone gauges.
  void UpdateMutationGauges() const;

  C2lshOptions options_;
  C2lshDerived derived_;
  size_t num_objects_ = 0;
  size_t dim_ = 0;
  long long radius_cap_ = 1;
  PageId first_data_page_ = 0;  ///< 0 = no data segment
  size_t stored_objects_ = 0;   ///< vectors resident in the data segment
  std::string path_;
  Env* env_ = nullptr;  ///< not owned; the filesystem the index lives in

  /// Durability state. applied_lsn_ is the watermark baked into the meta
  /// blob: records at or below it are already part of the base image and are
  /// skipped at replay.
  std::unique_ptr<WriteAheadLog> wal_;
  uint64_t applied_lsn_ = 0;

  /// The mutation delta mirrored by the WAL: vectors of dynamic inserts
  /// (resident until a compaction moves them into the data segment) and the
  /// sorted set of deleted ids (every table tombstones the same set).
  std::map<ObjectId, std::vector<float>> overlay_vectors_;
  std::vector<ObjectId> deleted_ids_;

  // Order matters: tables_ hold raw pool pointers, pool_ holds a raw file
  // pointer; destruction must run tables -> pool -> file.
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<PStableFamily> family_;
  std::vector<DiskBucketTable> tables_;

  // Per-query scratch.
  mutable CollisionCounter counter_{0};
  mutable std::vector<uint8_t> verified_;
  mutable std::vector<ObjectId> touched_;
  mutable std::vector<float> vector_buf_;
  mutable std::vector<uint8_t> table_bad_;  ///< tables dropped this query
};

}  // namespace c2lsh

#endif  // C2LSH_CORE_DISK_INDEX_H_
