#include "src/core/params.h"

#include <cmath>
#include <sstream>

namespace c2lsh {

std::string C2lshDerived::ToString() const {
  std::ostringstream os;
  os << "w=" << model.w << " c=" << model.c << " p1=" << model.p1 << " p2=" << model.p2
     << " beta=" << beta << " z=" << z << " alpha=" << alpha << " m=" << m << " l=" << l;
  return os.str();
}

Result<C2lshDerived> ComputeDerivedParams(const C2lshOptions& options, size_t n) {
  if (n == 0) {
    return Status::InvalidArgument("C2LSH: dataset must be non-empty");
  }
  const double c_rounded = std::round(options.c);
  if (options.c < 2.0 || std::fabs(options.c - c_rounded) > 1e-9) {
    return Status::InvalidArgument(
        "C2LSH: approximation ratio c must be an integer >= 2 (virtual rehashing "
        "widens buckets by integer factors); got c=" +
        std::to_string(options.c));
  }
  if (!(options.delta > 0.0 && options.delta < 1.0)) {
    return Status::InvalidArgument("C2LSH: delta must lie in (0, 1), got " +
                                   std::to_string(options.delta));
  }
  if (options.max_radius_exponent < 1 || options.max_radius_exponent > 40) {
    return Status::InvalidArgument("C2LSH: max_radius_exponent must be in [1, 40]");
  }
  C2lshDerived d;
  C2LSH_ASSIGN_OR_RETURN(d.model, MakeCollisionModel(options.w, c_rounded));

  d.beta = (options.beta > 0.0) ? options.beta : 100.0 / static_cast<double>(n);
  if (d.beta * static_cast<double>(n) < 1.0) {
    return Status::InvalidArgument("C2LSH: the false-positive budget beta*n must be >= 1");
  }
  if (d.beta >= 1.0) {
    // A budget of n false positives makes property P2 vacuous; clamp just
    // below so z stays finite (tiny datasets with the 100/n default).
    d.beta = 0.999;
  }

  C2LSH_ASSIGN_OR_RETURN(CountingParams counting,
                         ComputeCountingParams(d.model.p1, d.model.p2, options.delta,
                                               d.beta));
  d.z = counting.z;
  d.alpha = counting.alpha;
  d.m = counting.m;
  d.l = counting.l;
  return d;
}

Result<CountingParams> ComputeCountingParams(double p1, double p2, double delta,
                                             double beta) {
  if (!(p1 > p2 && p2 > 0.0 && p1 < 1.0)) {
    return Status::InvalidArgument("counting params: need 0 < p2 < p1 < 1");
  }
  if (!(delta > 0.0 && delta < 1.0) || !(beta > 0.0 && beta < 1.0)) {
    return Status::InvalidArgument("counting params: delta and beta must lie in (0, 1)");
  }
  CountingParams p;
  const double ln_inv_delta = std::log(1.0 / delta);
  const double ln_2_beta = std::log(2.0 / beta);
  p.z = std::sqrt(ln_2_beta / ln_inv_delta);
  p.alpha = (p.z * p1 + p2) / (1.0 + p.z);

  // By construction of alpha the two Hoeffding requirements coincide; take
  // the max of both ceilings anyway so rounding can only strengthen the
  // guarantee.
  const double m1 = ln_inv_delta / (2.0 * (p1 - p.alpha) * (p1 - p.alpha));
  const double m2 = ln_2_beta / (2.0 * (p.alpha - p2) * (p.alpha - p2));
  p.m = static_cast<size_t>(std::ceil(std::max(m1, m2)));
  if (p.m > 100000) {
    return Status::InvalidArgument(
        "counting params: derived m = " + std::to_string(p.m) +
        " hash functions — the (p1, p2) gap is too small; rescale the data so "
        "nearest-neighbor distances are a few data units, or widen the buckets");
  }
  p.l = static_cast<size_t>(std::ceil(p.alpha * static_cast<double>(p.m)));
  if (p.l > p.m) p.l = p.m;
  if (p.l == 0) p.l = 1;
  return p;
}

}  // namespace c2lsh
