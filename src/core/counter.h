// CollisionCounter: per-query collision counts over all object ids with
// O(1) reset between queries (epoch trick — no O(n) clear).

#pragma once
#ifndef C2LSH_CORE_COUNTER_H_
#define C2LSH_CORE_COUNTER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/vector/types.h"

namespace c2lsh {

/// Counts, per object, how many of the m hash tables currently collide with
/// the query. Counts are monotone within a query (intervals only grow) and
/// reset lazily between queries.
class CollisionCounter {
 public:
  explicit CollisionCounter(size_t n) : counts_(n, 0), epochs_(n, 0) {}

  /// Grows capacity to cover ids < n (dynamic inserts).
  void EnsureCapacity(size_t n) {
    if (n > counts_.size()) {
      counts_.resize(n, 0);
      epochs_.resize(n, 0);
    }
  }

  /// Starts a new query: all counts read as zero afterwards, O(1).
  void NewQuery() {
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: do the rare O(n) clear
      std::fill(epochs_.begin(), epochs_.end(), 0);
      std::fill(counts_.begin(), counts_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Adds one collision for `id`; returns the new count.
  uint32_t Increment(ObjectId id) {
    if (epochs_[id] != epoch_) {
      epochs_[id] = epoch_;
      counts_[id] = 0;
    }
    return ++counts_[id];
  }

  /// Current count for `id` in this query.
  uint32_t Count(ObjectId id) const { return epochs_[id] == epoch_ ? counts_[id] : 0; }

  size_t capacity() const { return counts_.size(); }

 private:
  std::vector<uint32_t> counts_;
  std::vector<uint32_t> epochs_;
  uint32_t epoch_ = 0;
};

}  // namespace c2lsh

#endif  // C2LSH_CORE_COUNTER_H_
