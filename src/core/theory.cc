#include "src/core/theory.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/util/math.h"

namespace c2lsh {

double LogBinomialCoeff(int m, int k) {
  if (k < 0 || k > m) return -std::numeric_limits<double>::infinity();
  return std::lgamma(m + 1.0) - std::lgamma(k + 1.0) - std::lgamma(m - k + 1.0);
}

double BinomialTailGE(int m, int l, double p) {
  if (l <= 0) return 1.0;
  if (l > m) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  // Sum the smaller tail in log space with the log-sum-exp trick.
  double max_term = -std::numeric_limits<double>::infinity();
  std::vector<double> terms;
  terms.reserve(m - l + 1);
  for (int k = l; k <= m; ++k) {
    const double t = LogBinomialCoeff(m, k) + k * log_p + (m - k) * log_q;
    terms.push_back(t);
    max_term = std::max(max_term, t);
  }
  if (!std::isfinite(max_term)) return 0.0;
  double sum = 0.0;
  for (double t : terms) sum += std::exp(t - max_term);
  return std::min(1.0, std::exp(max_term) * sum);
}

double ProbFrequent(const C2lshDerived& d, double s, double R) {
  const double p = PStableCollisionProbability(s, d.model.w * R);
  return BinomialTailGE(static_cast<int>(d.m), static_cast<int>(d.l), p);
}

double P1FailureBound(const C2lshDerived& d) {
  return HoeffdingLowerTailBound(d.model.p1 - d.alpha, static_cast<int>(d.m));
}

double ExpectedFalsePositives(const C2lshDerived& d, double n_far) {
  return n_far * BinomialTailGE(static_cast<int>(d.m), static_cast<int>(d.l), d.model.p2);
}

}  // namespace c2lsh
