#include "src/core/index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "src/obs/flight_recorder.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/vector/distance.h"

namespace c2lsh {
namespace {

// Registry handles resolved once per process; RunQuery flushes its local
// C2lshQueryStats through these at query end, so the hot round loop never
// touches an atomic (see docs/ARCHITECTURE.md, "Observability").
struct CoreMetrics {
  obs::Counter* queries;
  obs::Counter* rounds;
  obs::Counter* collision_increments;
  obs::Counter* candidates_verified;
  obs::Counter* buckets_scanned;
  obs::Counter* t1;
  obs::Counter* t2;
  obs::Counter* exhausted;
  obs::Counter* deadline;
  obs::Counter* cancelled;
  obs::Histogram* latency;
  obs::Counter* compaction_runs;
  obs::Histogram* compaction_millis;
  obs::Gauge* overlay_entries;
  obs::Gauge* tombstones;
};

const CoreMetrics& Metrics() {
  static const CoreMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    return CoreMetrics{
        r.GetCounter("c2lsh_queries_total", "In-memory C2LSH queries answered"),
        r.GetCounter("c2lsh_rounds_total",
                     "Virtual-rehashing rounds executed by in-memory queries"),
        r.GetCounter("c2lsh_collision_increments_total",
                     "Collision-counter increments (in-memory queries)"),
        r.GetCounter("c2lsh_candidates_verified_total",
                     "Exact distance verifications (in-memory queries)"),
        r.GetCounter("c2lsh_buckets_scanned_total",
                     "Hash buckets visited (in-memory queries)"),
        r.GetCounter("c2lsh_queries_t1_total",
                     "Queries terminated by T1 (k verified within c*R)"),
        r.GetCounter("c2lsh_queries_t2_total",
                     "Queries terminated by T2 (k + beta*n candidate budget)"),
        r.GetCounter("c2lsh_queries_exhausted_total",
                     "Queries that covered every bucket of every table"),
        r.GetCounter("c2lsh_queries_deadline_total",
                     "Queries stopped by a deadline or page budget (partial results)"),
        r.GetCounter("c2lsh_queries_cancelled_total",
                     "Queries cooperatively cancelled (partial results)"),
        r.GetHistogram("c2lsh_query_millis",
                       "In-memory C2LSH query latency in milliseconds"),
        r.GetCounter("c2lsh_compaction_runs_total",
                     "In-memory index compactions completed"),
        r.GetHistogram("c2lsh_compaction_millis",
                       "In-memory index compaction duration in milliseconds"),
        r.GetGauge("c2lsh_overlay_entries",
                   "Dynamic inserts awaiting compaction, summed over tables"),
        r.GetGauge("c2lsh_tombstones",
                   "Objects deleted but not yet compacted away"),
    };
  }();
  return m;
}

void FlushQueryMetrics(const C2lshQueryStats& st, double millis,
                       uint64_t exemplar_id) {
  const CoreMetrics& m = Metrics();
  m.queries->Increment();
  m.rounds->Increment(st.rounds);
  m.collision_increments->Increment(st.collision_increments);
  m.candidates_verified->Increment(st.candidates_verified);
  m.buckets_scanned->Increment(st.buckets_scanned);
  switch (st.termination) {
    case Termination::kT1:
      m.t1->Increment();
      break;
    case Termination::kT2:
      m.t2->Increment();
      break;
    case Termination::kExhausted:
      m.exhausted->Increment();
      break;
    case Termination::kDeadline:
      m.deadline->Increment();
      break;
    case Termination::kCancelled:
      m.cancelled->Increment();
      break;
    case Termination::kNone:
      break;
  }
  m.latency->Observe(millis, exemplar_id);
}

}  // namespace

C2lshIndex::C2lshIndex(C2lshOptions options, C2lshDerived derived, PStableFamily family,
                       std::vector<BucketTable> tables, size_t num_objects, size_t dim,
                       long long radius_cap)
    : options_(options),
      derived_(derived),
      family_(std::move(family)),
      tables_(std::move(tables)),
      num_objects_(num_objects),
      dim_(dim),
      radius_cap_(radius_cap),
      page_model_(options.page_bytes) {}

// Moves exist for factory returns only (the atomic and the writer Mutex are
// not movable themselves); the contract that no other thread touches either
// object during a move makes the relaxed load/fresh-Mutex exchange safe.
C2lshIndex::C2lshIndex(C2lshIndex&& other) noexcept
    : options_(std::move(other.options_)),
      derived_(other.derived_),
      family_(std::move(other.family_)),
      tables_(std::move(other.tables_)),
      num_objects_(other.num_objects_.load(std::memory_order_relaxed)),
      dim_(other.dim_),
      radius_cap_(other.radius_cap_),
      page_model_(other.page_model_),
      scratch_(std::move(other.scratch_)) {}

C2lshIndex& C2lshIndex::operator=(C2lshIndex&& other) noexcept {
  if (this != &other) {
    options_ = std::move(other.options_);
    derived_ = other.derived_;
    family_ = std::move(other.family_);
    tables_ = std::move(other.tables_);
    num_objects_.store(other.num_objects_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    dim_ = other.dim_;
    radius_cap_ = other.radius_cap_;
    page_model_ = other.page_model_;
    scratch_ = std::move(other.scratch_);
  }
  return *this;
}

BucketRange C2lshIndex::IntervalForRadius(BucketId query_bucket, long long R) const {
  if (R > radius_cap_) {
    // Exhaustive fallback round: past the radius schedule the offsets no
    // longer randomize the grid anchor, so probe everything. This round
    // raises every object's count to m, which terminates the query.
    constexpr BucketId kLo = std::numeric_limits<BucketId>::min() / 4;
    constexpr BucketId kHi = std::numeric_limits<BucketId>::max() / 4;
    return BucketRange{kLo, kHi};
  }
  return QueryIntervalAtRadius(query_bucket, R);
}

Result<C2lshIndex> C2lshIndex::Build(const Dataset& data, const C2lshOptions& options,
                                     size_t num_threads) {
  C2LSH_ASSIGN_OR_RETURN(C2lshDerived derived, ComputeDerivedParams(options, data.size()));
  // Offsets span the whole radius schedule (see C2lshOptions::
  // max_radius_exponent): b* ~ U[0, w * c^{t*}).
  long long radius_cap = 1;
  const long long c_int = static_cast<long long>(std::llround(options.c));
  for (int i = 0; i < options.max_radius_exponent; ++i) radius_cap *= c_int;
  C2LSH_ASSIGN_OR_RETURN(
      PStableFamily family,
      PStableFamily::Sample(derived.m, data.dim(), options.w, options.seed,
                            static_cast<double>(radius_cap)));

  // Parallel build on the shared worker pool (no per-call thread creation).
  // `tables` is shared across pool lanes without a mutex because the sharing
  // is disjoint by construction: lane t writes only slots i with
  // i % lanes == t, the vector is never resized while the ParallelFor runs,
  // and ParallelFor's completion barrier publishes every slot to this thread
  // (the src/util/thread_pool.h determinism contract). `family` and `data`
  // are read-only. The race lane (race_stress_test.cc,
  // ParallelBuildMatchesSerialReference) re-checks this partitioning under
  // TSan. `num_threads` bounds concurrency by bounding the lane count; the
  // pool itself is clamped to hardware concurrency.
  std::vector<BucketTable> tables(derived.m);
  auto build_table = [&](size_t i) {
    const std::vector<BucketId> buckets = family.BucketColumn(data.vectors(), i);
    std::vector<std::pair<BucketId, ObjectId>> pairs;
    pairs.reserve(buckets.size());
    for (size_t r = 0; r < buckets.size(); ++r) {
      pairs.emplace_back(buckets[r], static_cast<ObjectId>(r));
    }
    tables[i] = BucketTable::Build(std::move(pairs));
  };
  const size_t lanes =
      std::min(num_threads == 0 ? derived.m : num_threads, derived.m);
  if (lanes <= 1) {
    for (size_t i = 0; i < derived.m; ++i) build_table(i);
  } else {
    ThreadPool::Shared().ParallelFor(lanes, [&](size_t t) {
      for (size_t i = t; i < derived.m; i += lanes) build_table(i);
    });
  }

  return C2lshIndex(options, derived, std::move(family), std::move(tables), data.size(),
                    data.dim(), radius_cap);
}

Result<C2lshIndex> C2lshIndex::FromParts(const C2lshOptions& options,
                                         const C2lshDerived& derived,
                                         PStableFamily family,
                                         std::vector<BucketTable> tables,
                                         size_t num_objects, size_t dim,
                                         long long radius_cap) {
  if (tables.size() != family.size() || tables.size() != derived.m) {
    return Status::InvalidArgument("C2lshIndex::FromParts: table/function count mismatch");
  }
  if (dim != family.dim()) {
    return Status::InvalidArgument("C2lshIndex::FromParts: dim mismatch");
  }
  if (radius_cap < 1) {
    return Status::InvalidArgument("C2lshIndex::FromParts: radius_cap must be >= 1");
  }
  return C2lshIndex(options, derived, std::move(family), std::move(tables), num_objects,
                    dim, radius_cap);
}

Result<NeighborList> C2lshIndex::Query(const Dataset& data, const float* query, size_t k,
                                       C2lshQueryStats* stats, obs::QueryTrace* trace,
                                       const QueryContext* ctx) const {
  return RunQuery(data, query, k, /*max_radius=*/0, stats, &scratch_,
                  /*filter=*/nullptr, trace, ctx);
}

Result<NeighborList> C2lshIndex::FilteredQuery(
    const Dataset& data, const float* query, size_t k,
    const std::function<bool(ObjectId)>& filter, C2lshQueryStats* stats) const {
  if (!filter) {
    return Status::InvalidArgument("FilteredQuery: filter must be callable");
  }
  return RunQuery(data, query, k, /*max_radius=*/0, stats, &scratch_, &filter);
}

Result<NeighborList> C2lshIndex::RunQuery(const Dataset& data, const float* query, size_t k,
                                          long long max_radius, C2lshQueryStats* stats,
                                          C2lshQueryScratch* scratch,
                                          const std::function<bool(ObjectId)>* filter,
                                          obs::QueryTrace* trace,
                                          const QueryContext* ctx) const {
  if (k == 0) return Status::InvalidArgument("C2LSH query: k must be positive");
  if (data.dim() != dim_) {
    return Status::InvalidArgument("C2LSH query: dataset dim mismatch");
  }
  // The query's frozen view of the index: the object count is read once and
  // every table is pinned once, up front. A concurrent Insert publishes its
  // table versions *before* raising the count, so an id admitted by `id < n`
  // here always has counter/verified capacity — entries from newer table
  // versions with id >= n are simply skipped until a later query picks up
  // the larger n.
  const size_t n = num_objects();
  if (data.size() < n) {
    return Status::InvalidArgument(
        "C2LSH query: dataset has fewer objects than the index — pass the dataset the "
        "index was built on (plus any inserted rows)");
  }
  std::vector<BucketTable::Snapshot> snaps;
  snaps.reserve(tables_.size());
  for (const BucketTable& table : tables_) snaps.push_back(table.snapshot());

  C2lshQueryStats local_stats;
  C2lshQueryStats* st = (stats != nullptr) ? stats : &local_stats;
  *st = C2lshQueryStats();
  const bool tracing = trace != nullptr;
  if (tracing) trace->Clear();
  // Span sampling is independent of the caller's QueryTrace: the tracer
  // decides per its mode, and the id attributes this query's spans, its
  // latency exemplar, and any anomaly dump to one timeline.
  const bool sampled = obs::Tracer::Global().SampleQuery(ctx);
  const uint64_t span_query_id =
      ctx != nullptr && ctx->trace_id != 0
          ? ctx->trace_id
          : (sampled ? obs::Tracer::Global().NextQueryId() : 0);
  obs::ScopedSpan query_span(obs::SpanSubsystem::kQuery, "c2lsh_query",
                             span_query_id, sampled);
  Timer query_timer;

  CollisionCounter& counter = scratch->counter;
  std::vector<uint8_t>& verified = scratch->verified;
  std::vector<ObjectId>& touched = scratch->touched;
  counter.NewQuery();
  counter.EnsureCapacity(n);
  if (verified.size() < n) verified.resize(n, 0);
  for (ObjectId id : touched) verified[id] = 0;
  touched.clear();

  const size_t m = tables_.size();
  const uint32_t l = static_cast<uint32_t>(derived_.l);
  const double c = derived_.model.c;
  const long long c_int = static_cast<long long>(std::llround(c));
  // T2 threshold: k + beta*n candidates, capped at the live object count so
  // the loop always terminates (full coverage verifies everyone).
  const size_t t2_threshold = std::min<size_t>(
      n, k + static_cast<size_t>(std::ceil(derived_.beta * static_cast<double>(n))));

  std::vector<BucketId> qbuckets;
  family_.BucketAll(query, &qbuckets);

  std::vector<BucketRange> prev(m);  // default-constructed = empty
  NeighborList found;
  found.reserve(t2_threshold + m);

  const uint64_t vector_pages = page_model_.PagesPerVector(dim_);

  // I/O model: the per-table bucket directories are memory-resident (they
  // are tiny — the paper keeps them cached the same way), so a round charges
  // only the entry pages it actually reads; the one-time descent into each
  // table is charged below, once per query.
  st->index_pages += tables_.size();

  // Cooperative-stop state: kNone while running, kDeadline/kCancelled once
  // the context expires. Checked inside the scan (cancellation every
  // increment — an acquire load; the clock only every kCheckIntervalMask+1
  // increments) and at every round boundary.
  Termination early_stop = Termination::kNone;

  auto scan_range = [&](const BucketTable::Snapshot& table, const BucketRange& range) {
    if (range.empty() || early_stop != Termination::kNone) return;
    const size_t range_entries = table.EntriesInRange(range.lo, range.hi);
    if (range_entries > 0) {
      st->index_pages += page_model_.PagesForEntries(range_entries, sizeof(ObjectId));
    }
    const size_t visited = table.ForEachInRange(range.lo, range.hi, [&](ObjectId id) {
      if (static_cast<size_t>(id) >= n) return;  // inserted after this query started
      if (early_stop != Termination::kNone) return;
      ++st->collision_increments;
      if (ctx != nullptr) {
        if (ctx->cancelled()) {
          early_stop = Termination::kCancelled;
          return;
        }
        if ((st->collision_increments & QueryContext::kCheckIntervalMask) == 0 &&
            ctx->deadline.Expired()) {
          early_stop = Termination::kDeadline;
          return;
        }
      }
      if (verified[id] != 0) return;  // already a verified candidate
      if (counter.Increment(id) == l) {
        verified[id] = 1;
        touched.push_back(id);
        if (filter != nullptr && !(*filter)(id)) {
          return;  // rejected at the verification gate: no distance computed
        }
        const double dist = L2(query, data.object(id), dim_);
        found.push_back(Neighbor{id, static_cast<float>(dist)});
        ++st->candidates_verified;
        st->data_pages += vector_pages;
      }
    });
    st->buckets_scanned += visited;
  };

  long long R = 1;
  Timer round_timer;
  while (true) {
    // Round boundary: the full context check (deadline, cancellation, page
    // budget). A pre-expired context runs zero rounds and returns empty.
    if (ctx != nullptr && early_stop == Termination::kNone) {
      early_stop = ctx->Check(st->total_pages());
    }
    if (early_stop != Termination::kNone) {
      st->termination = early_stop;
      break;
    }
    ++st->rounds;
    st->final_radius = R;
    obs::ScopedSpan round_span(obs::SpanSubsystem::kRound, "round",
                               span_query_id, sampled);
    // Trace spans are deltas of the running stats, so tracing adds no work
    // inside scan_range.
    C2lshQueryStats before;
    if (tracing) {
      round_timer.Reset();
      before = *st;
    }

    bool all_covered = true;
    for (size_t i = 0; i < m; ++i) {
      if (early_stop != Termination::kNone) break;
      const BucketRange next = IntervalForRadius(qbuckets[i], R);
      const RangeDelta delta = ComputeRangeDelta(prev[i], next);
      scan_range(snaps[i], delta.left);
      scan_range(snaps[i], delta.right);
      prev[i] = next;
      // Coverage test: once the interval spans every bucket the table holds,
      // further rounds cannot add collisions from this table.
      if (snaps[i].num_buckets() > 0 &&
          snaps[i].EntriesInRange(next.lo, next.hi) < snaps[i].num_entries()) {
        all_covered = false;
      }
    }

    // T1: enough verified candidates within distance c*R. Evaluated even
    // after an early stop — if the partial scan already proved the answer,
    // the query gets the full-quality termination, not kDeadline.
    const double cr = c * static_cast<double>(R);
    size_t within = 0;
    for (const Neighbor& nb : found) {
      if (nb.dist <= cr) ++within;
      if (within >= k) break;
    }
    if (within >= k) {
      st->termination = Termination::kT1;
    } else if (found.size() >= t2_threshold) {
      // T2: the false-positive budget is exhausted.
      st->termination = Termination::kT2;
    } else if (early_stop != Termination::kNone) {
      // The context expired mid-round: partial results. Takes precedence
      // over kExhausted because an interrupted round never evaluated the
      // remaining tables' coverage.
      st->termination = early_stop;
    } else if (all_covered) {
      // Every object has been counted in every table.
      st->termination = Termination::kExhausted;
    }
    if (tracing) {
      obs::QueryRoundSpan span;
      span.radius = R;
      span.buckets_scanned = st->buckets_scanned - before.buckets_scanned;
      span.collision_increments =
          st->collision_increments - before.collision_increments;
      span.candidates_verified =
          st->candidates_verified - before.candidates_verified;
      span.index_pages = st->index_pages - before.index_pages;
      span.t1_fired = st->termination == Termination::kT1;
      span.t2_fired = st->termination == Termination::kT2;
      span.millis = round_timer.ElapsedMillis();
      trace->rounds.push_back(span);
    }
    if (st->termination != Termination::kNone) break;
    if (max_radius > 0 && R >= max_radius) break;
    R *= c_int;
  }

  // Only the k nearest survive, so a partial sort suffices when more
  // candidates were verified than requested.
  if (found.size() > k) {
    std::partial_sort(found.begin(), found.begin() + static_cast<std::ptrdiff_t>(k),
                      found.end(), NeighborLess());
    found.resize(k);
  } else {
    std::sort(found.begin(), found.end(), NeighborLess());
  }
  const double total_millis = query_timer.ElapsedMillis();
  if (tracing) {
    trace->termination = st->termination;
    trace->total_millis = total_millis;
  }
  FlushQueryMetrics(*st, total_millis, span_query_id);
  // End the query span before the anomaly hook: a flight dump snapshots the
  // rings, and an open span has not reached its ring yet.
  query_span.End();
  if (obs::FlightRecorder::Global().enabled()) {
    if (tracing) {
      obs::MaybeRecordQueryAnomaly("c2lsh_query", span_query_id, *trace);
    } else {
      obs::QueryTrace anomaly_trace;
      anomaly_trace.termination = st->termination;
      anomaly_trace.total_millis = total_millis;
      obs::MaybeRecordQueryAnomaly("c2lsh_query", span_query_id, anomaly_trace);
    }
  }
  return found;
}

Result<NeighborList> C2lshIndex::RangeQuery(const Dataset& data, const float* query,
                                            double radius, C2lshQueryStats* stats,
                                            const QueryContext* ctx) const {
  if (!(radius > 0.0)) {
    return Status::InvalidArgument("RangeQuery: radius must be positive");
  }
  if (data.dim() != dim_) {
    return Status::InvalidArgument("RangeQuery: dataset dim mismatch");
  }
  // Frozen view, same scheme as RunQuery: count first, then pin each table.
  const size_t n = num_objects();
  if (data.size() < n) {
    return Status::InvalidArgument("RangeQuery: dataset smaller than the index");
  }
  std::vector<BucketTable::Snapshot> snaps;
  snaps.reserve(tables_.size());
  for (const BucketTable& table : tables_) snaps.push_back(table.snapshot());

  C2lshQueryStats local_stats;
  C2lshQueryStats* st = (stats != nullptr) ? stats : &local_stats;
  *st = C2lshQueryStats();

  C2lshQueryScratch* scratch = &scratch_;
  CollisionCounter& counter = scratch->counter;
  std::vector<uint8_t>& verified = scratch->verified;
  std::vector<ObjectId>& touched = scratch->touched;
  counter.NewQuery();
  counter.EnsureCapacity(n);
  if (verified.size() < n) verified.resize(n, 0);
  for (ObjectId id : touched) verified[id] = 0;
  touched.clear();

  const size_t m = tables_.size();
  const uint32_t l = static_cast<uint32_t>(derived_.l);
  const long long c_int = static_cast<long long>(std::llround(derived_.model.c));

  std::vector<BucketId> qbuckets;
  family_.BucketAll(query, &qbuckets);
  std::vector<BucketRange> prev(m);
  NeighborList found;
  // Verified in-range candidates are bounded by the same k-free budget shape
  // as RunQuery's T2 threshold: the beta*n false-positive allowance plus the
  // per-table slack.
  found.reserve(std::min<size_t>(
      n, static_cast<size_t>(std::ceil(derived_.beta * static_cast<double>(n))) + m));
  const uint64_t vector_pages = page_model_.PagesPerVector(dim_);
  st->index_pages += tables_.size();

  // Same cooperative-stop shape as RunQuery: cancellation is an acquire load
  // polled every increment, the clock only every kCheckIntervalMask+1.
  Termination early_stop = Termination::kNone;

  auto scan_range = [&](const BucketTable::Snapshot& table, const BucketRange& range) {
    if (range.empty() || early_stop != Termination::kNone) return;
    const size_t range_entries = table.EntriesInRange(range.lo, range.hi);
    if (range_entries > 0) {
      st->index_pages += page_model_.PagesForEntries(range_entries, sizeof(ObjectId));
    }
    const size_t visited = table.ForEachInRange(range.lo, range.hi, [&](ObjectId id) {
      if (static_cast<size_t>(id) >= n) return;  // inserted after this query started
      if (early_stop != Termination::kNone) return;
      ++st->collision_increments;
      if (ctx != nullptr) {
        if (ctx->cancelled()) {
          early_stop = Termination::kCancelled;
          return;
        }
        if ((st->collision_increments & QueryContext::kCheckIntervalMask) == 0 &&
            ctx->deadline.Expired()) {
          early_stop = Termination::kDeadline;
          return;
        }
      }
      if (verified[id] != 0) return;
      if (counter.Increment(id) == l) {
        verified[id] = 1;
        touched.push_back(id);
        const double dist = L2(query, data.object(id), dim_);
        ++st->candidates_verified;
        st->data_pages += vector_pages;
        if (dist <= radius) {
          found.push_back(Neighbor{id, static_cast<float>(dist)});
        }
      }
    });
    st->buckets_scanned += visited;
  };

  // Run every round up to the first scheduled R >= radius: at that level an
  // in-range object's collision probability is >= p1 per table, so P1's
  // recall bound applies.
  long long R = 1;
  while (true) {
    ++st->rounds;
    st->final_radius = R;
    for (size_t i = 0; i < m; ++i) {
      const BucketRange next = IntervalForRadius(qbuckets[i], R);
      const RangeDelta delta = ComputeRangeDelta(prev[i], next);
      scan_range(snaps[i], delta.left);
      scan_range(snaps[i], delta.right);
      prev[i] = next;
    }
    // Round boundary: also the page-budget checkpoint.
    if (ctx != nullptr && early_stop == Termination::kNone) {
      early_stop = ctx->Check(st->total_pages());
    }
    if (early_stop != Termination::kNone) {
      st->termination = early_stop;
      break;
    }
    if (static_cast<double>(R) >= radius || R > radius_cap_) break;
    R *= c_int;
  }

  std::sort(found.begin(), found.end(), NeighborLess());
  return found;
}

// BatchQuery is defined in src/core/batch.cc as a thin wrapper over the
// batched, shard-parallel QueryBatch engine.

Result<Neighbor> C2lshIndex::DecisionQuery(const Dataset& data, const float* query,
                                           long long R, C2lshQueryStats* stats,
                                           const QueryContext* ctx) const {
  if (R <= 0) return Status::InvalidArgument("DecisionQuery: R must be positive");
  if (data.dim() != dim_) {
    return Status::InvalidArgument("DecisionQuery: dataset dim mismatch");
  }
  C2lshQueryStats local_stats;
  C2lshQueryStats* st = (stats != nullptr) ? stats : &local_stats;
  *st = C2lshQueryStats();
  st->rounds = 1;
  st->final_radius = R;

  // Frozen view, same scheme as RunQuery: count first, then pin each table.
  const size_t n = num_objects();
  std::vector<BucketTable::Snapshot> snaps;
  snaps.reserve(tables_.size());
  for (const BucketTable& table : tables_) snaps.push_back(table.snapshot());

  CollisionCounter& counter = scratch_.counter;
  counter.NewQuery();
  counter.EnsureCapacity(n);

  std::vector<BucketId> qbuckets;
  family_.BucketAll(query, &qbuckets);

  const uint32_t l = static_cast<uint32_t>(derived_.l);
  const double cr = derived_.model.c * static_cast<double>(R);
  const size_t fp_budget =
      1 + static_cast<size_t>(std::ceil(derived_.beta * static_cast<double>(n)));
  const uint64_t vector_pages = page_model_.PagesPerVector(dim_);

  Neighbor best{0, std::numeric_limits<float>::infinity()};
  bool have_hit = false;
  size_t verified = 0;
  Termination early_stop = Termination::kNone;

  for (size_t i = 0; i < tables_.size() && !have_hit && verified < fp_budget &&
                     early_stop == Termination::kNone;
       ++i) {
    const BucketRange range = IntervalForRadius(qbuckets[i], R);
    ++st->index_pages;  // per-table descent
    const size_t range_entries = snaps[i].EntriesInRange(range.lo, range.hi);
    if (range_entries > 0) {
      st->index_pages += page_model_.PagesForEntries(range_entries, sizeof(ObjectId));
    }
    snaps[i].ForEachInRange(range.lo, range.hi, [&](ObjectId id) {
      if (static_cast<size_t>(id) >= n) return;  // inserted after this query started
      ++st->collision_increments;
      if (ctx != nullptr && early_stop == Termination::kNone) {
        if (ctx->cancelled()) {
          early_stop = Termination::kCancelled;
        } else if ((st->collision_increments & QueryContext::kCheckIntervalMask) == 0 &&
                   ctx->deadline.Expired()) {
          early_stop = Termination::kDeadline;
        }
      }
      if (have_hit || verified >= fp_budget || early_stop != Termination::kNone) return;
      if (counter.Increment(id) == l) {
        const double dist = L2(query, data.object(id), dim_);
        ++verified;
        ++st->candidates_verified;
        st->data_pages += vector_pages;
        if (dist <= cr) {
          best = Neighbor{id, static_cast<float>(dist)};
          have_hit = true;
        }
      }
    });
  }
  st->buckets_scanned = st->collision_increments;
  if (early_stop != Termination::kNone) st->termination = early_stop;
  if (have_hit) return best;
  if (IsEarlyStop(early_stop)) {
    // Interrupted before a hit surfaced: NOT a verified "no" — the stats
    // carry kDeadline/kCancelled so callers can tell the two apart.
    return Status::NotFound("decision query stopped early (deadline/cancel) at radius " +
                            std::to_string(R));
  }
  return Status::NotFound("no object within distance c*R surfaced at radius " +
                          std::to_string(R));
}

std::vector<uint32_t> C2lshIndex::CollisionCountsAtRadius(const float* query,
                                                          long long R) const {
  std::vector<uint32_t> counts(num_objects(), 0);
  std::vector<BucketId> qbuckets;
  family_.BucketAll(query, &qbuckets);
  for (size_t i = 0; i < tables_.size(); ++i) {
    const BucketRange range = IntervalForRadius(qbuckets[i], R);
    tables_[i].ForEachInRange(range.lo, range.hi, [&](ObjectId id) {
      if (id < counts.size()) ++counts[id];
    });
  }
  return counts;
}

Status C2lshIndex::Insert(ObjectId id, const float* v) {
  std::vector<BucketId> buckets;
  family_.BucketAll(v, &buckets);
  MutexLock lock(&writer_mu_);
  for (size_t i = 0; i < tables_.size(); ++i) {
    tables_[i].Insert(buckets[i], id);
  }
  // Publication order matters: the release-store of the count happens after
  // every table published its new version, so a query that admits `id` by
  // `id < num_objects()` is guaranteed to find its entries (see num_objects()).
  if (static_cast<size_t>(id) + 1 > num_objects()) {
    num_objects_.store(static_cast<size_t>(id) + 1, std::memory_order_release);
  }
  UpdateMutationGauges();
  return Status::OK();
}

Status C2lshIndex::Delete(ObjectId id) {
  MutexLock lock(&writer_mu_);
  if (static_cast<size_t>(id) >= num_objects()) {
    return Status::NotFound("Delete: object id " + std::to_string(id) +
                            " was never registered with this index");
  }
  for (BucketTable& table : tables_) {
    table.Delete(id);
  }
  UpdateMutationGauges();
  return Status::OK();
}

void C2lshIndex::Compact() {
  obs::ScopedSpan compact_span(obs::SpanSubsystem::kCompaction, "compact");
  MutexLock lock(&writer_mu_);
  Timer timer;
  for (BucketTable& table : tables_) {
    table.Compact();
  }
  // Trailing deletes lower the high-water: every table holds the same id
  // set, so the front table's largest live id is the index's.
  if (!tables_.empty()) {
    const long long max_live = tables_.front().snapshot().MaxLiveId();
    num_objects_.store(static_cast<size_t>(max_live + 1), std::memory_order_release);
  }
  const CoreMetrics& m = Metrics();
  m.compaction_runs->Increment();
  m.compaction_millis->Observe(timer.ElapsedMillis());
  UpdateMutationGauges();
}

void C2lshIndex::UpdateMutationGauges() const {
  size_t overlay = 0;
  for (const BucketTable& table : tables_) overlay += table.OverlayEntries();
  const CoreMetrics& m = Metrics();
  m.overlay_entries->Set(static_cast<double>(overlay));
  // Every table tombstones the same id set; the front table's count is the
  // index-wide number of pending deletes.
  m.tombstones->Set(tables_.empty()
                        ? 0.0
                        : static_cast<double>(tables_.front().NumTombstones()));
}

C2lshIndex::IndexStats C2lshIndex::ComputeStats() const {
  IndexStats s;
  s.num_tables = tables_.size();
  if (tables_.empty()) return s;
  s.min_buckets = std::numeric_limits<size_t>::max();
  double bucket_sum = 0.0;
  double mean_size_sum = 0.0;
  for (size_t i = 0; i < tables_.size(); ++i) {
    // One snapshot per table so each table's figures are internally
    // consistent even while mutators run.
    const BucketTable::Snapshot snap = tables_[i].snapshot();
    if (i == 0) s.entries_per_table = snap.num_entries();
    const size_t buckets = snap.num_buckets();
    bucket_sum += static_cast<double>(buckets);
    s.min_buckets = std::min(s.min_buckets, buckets);
    s.max_buckets = std::max(s.max_buckets, buckets);
    if (buckets > 0) {
      mean_size_sum +=
          static_cast<double>(snap.num_entries()) / static_cast<double>(buckets);
    }
    s.max_bucket_size = std::max(s.max_bucket_size, snap.MaxBucketSize());
    s.overlay_entries += snap.OverlayEntries();
  }
  s.mean_buckets_per_table = bucket_sum / static_cast<double>(tables_.size());
  s.mean_bucket_size = mean_size_sum / static_cast<double>(tables_.size());
  return s;
}

size_t C2lshIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const BucketTable& table : tables_) {
    bytes += table.MemoryBytes();
  }
  // Hash functions, including the packed (aligned, padded) projection
  // matrix behind BucketAll/BucketColumn.
  bytes += family_.MemoryBytes();
  return bytes;
}

}  // namespace c2lsh
