#include "src/core/disk_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/core/virtual_rehash.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/storage/blob.h"
#include "src/util/timer.h"
#include "src/vector/distance.h"

namespace c2lsh {

namespace {
// v1 meta blobs predate online mutability; v2 adds [applied_lsn u64]
// [stored_objects u64] after first_data_page. Open reads both (a v1 blob
// implies applied_lsn = 0 and stored_objects = n).
constexpr uint32_t kMetaMagic = 0xC25D1234;
constexpr uint32_t kMetaMagicV2 = 0xC25D1235;

// Registry handles for the disk query path, resolved once; RunDiskQuery
// flushes its per-query stats through these at the end of each query.
struct DiskMetrics {
  obs::Counter* queries;
  obs::Counter* rounds;
  obs::Counter* collision_increments;
  obs::Counter* candidates_verified;
  obs::Counter* buckets_scanned;
  obs::Counter* t1;
  obs::Counter* t2;
  obs::Counter* exhausted;
  obs::Counter* deadline;
  obs::Counter* cancelled;
  obs::Counter* degraded_queries;
  obs::Counter* tables_skipped;
  obs::Counter* candidates_skipped;
  obs::Histogram* latency;
  obs::Counter* compaction_runs;
  obs::Histogram* compaction_millis;
  obs::Gauge* overlay_entries;
  obs::Gauge* tombstones;
};

const DiskMetrics& Metrics() {
  static const DiskMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    return DiskMetrics{
        r.GetCounter("disk_c2lsh_queries_total", "Disk C2LSH queries answered"),
        r.GetCounter("disk_c2lsh_rounds_total",
                     "Virtual-rehashing rounds executed by disk queries"),
        r.GetCounter("disk_c2lsh_collision_increments_total",
                     "Collision-counter increments (disk queries)"),
        r.GetCounter("disk_c2lsh_candidates_verified_total",
                     "Exact distance verifications (disk queries)"),
        r.GetCounter("disk_c2lsh_buckets_scanned_total",
                     "Hash buckets visited (disk queries)"),
        r.GetCounter("disk_c2lsh_queries_t1_total",
                     "Disk queries terminated by T1"),
        r.GetCounter("disk_c2lsh_queries_t2_total",
                     "Disk queries terminated by T2"),
        r.GetCounter("disk_c2lsh_queries_exhausted_total",
                     "Disk queries that covered every readable bucket"),
        r.GetCounter("disk_c2lsh_queries_deadline_total",
                     "Disk queries stopped by a deadline or page budget "
                     "(partial results)"),
        r.GetCounter("disk_c2lsh_queries_cancelled_total",
                     "Disk queries cooperatively cancelled (partial results)"),
        r.GetCounter("disk_c2lsh_degraded_queries_total",
                     "Disk queries answered while skipping corrupt pages"),
        r.GetCounter("disk_c2lsh_tables_skipped_total",
                     "Hash tables dropped mid-query on a corrupt index page"),
        r.GetCounter("disk_c2lsh_candidates_skipped_total",
                     "Candidates dropped mid-query on a corrupt data page"),
        r.GetHistogram("disk_c2lsh_query_millis",
                       "Disk C2LSH query latency in milliseconds"),
        r.GetCounter("disk_c2lsh_compaction_runs_total",
                     "Disk index compactions completed (WAL truncated)"),
        r.GetHistogram("disk_c2lsh_compaction_millis",
                       "Disk index compaction duration in milliseconds"),
        r.GetGauge("disk_c2lsh_overlay_entries",
                   "Disk-index dynamic inserts awaiting compaction, summed "
                   "over tables"),
        r.GetGauge("disk_c2lsh_tombstones",
                   "Disk-index objects deleted but not yet compacted away"),
    };
  }();
  return m;
}

void FlushDiskQueryMetrics(const DiskQueryStats& st, double millis,
                           uint64_t exemplar_id) {
  const DiskMetrics& m = Metrics();
  m.queries->Increment();
  m.rounds->Increment(st.base.rounds);
  m.collision_increments->Increment(st.base.collision_increments);
  m.candidates_verified->Increment(st.base.candidates_verified);
  m.buckets_scanned->Increment(st.base.buckets_scanned);
  switch (st.base.termination) {
    case Termination::kT1:
      m.t1->Increment();
      break;
    case Termination::kT2:
      m.t2->Increment();
      break;
    case Termination::kExhausted:
      m.exhausted->Increment();
      break;
    case Termination::kDeadline:
      m.deadline->Increment();
      break;
    case Termination::kCancelled:
      m.cancelled->Increment();
      break;
    case Termination::kNone:
      break;
  }
  if (st.degraded) m.degraded_queries->Increment();
  m.tables_skipped->Increment(st.tables_skipped);
  m.candidates_skipped->Increment(st.candidates_skipped);
  m.latency->Observe(millis, exemplar_id);
}

// Serializes the full index metadata (v2) and returns the blob's root page.
// Shared by Build and Compact so the two paths cannot drift.
Result<PageId> WriteMetaBlob(BufferPool* pool, const C2lshOptions& options,
                             const C2lshDerived& derived, size_t num_objects,
                             size_t dim, long long radius_cap,
                             PageId first_data_page, uint64_t applied_lsn,
                             size_t stored_objects, const PStableFamily& family,
                             const std::vector<PageId>& roots) {
  ByteBuffer meta;
  meta.Put(kMetaMagicV2);
  meta.Put(options.w);
  meta.Put(options.c);
  meta.Put(options.delta);
  meta.Put(options.beta);
  meta.Put(options.max_radius_exponent);
  meta.Put(options.seed);
  meta.Put(static_cast<uint64_t>(options.page_bytes));
  meta.Put(derived.model.w);
  meta.Put(derived.model.c);
  meta.Put(derived.model.p1);
  meta.Put(derived.model.p2);
  meta.Put(derived.model.rho);
  meta.Put(derived.beta);
  meta.Put(derived.z);
  meta.Put(derived.alpha);
  meta.Put(static_cast<uint64_t>(derived.m));
  meta.Put(static_cast<uint64_t>(derived.l));
  meta.Put(static_cast<uint64_t>(num_objects));
  meta.Put(static_cast<uint64_t>(dim));
  meta.Put(radius_cap);
  meta.Put(static_cast<uint64_t>(first_data_page));
  meta.Put(applied_lsn);
  meta.Put(static_cast<uint64_t>(stored_objects));
  for (size_t i = 0; i < derived.m; ++i) {
    const PStableHash& h = family.function(i);
    meta.PutArray(h.a().data(), h.a().size());
    meta.Put(h.b());
    meta.Put(h.w());
  }
  meta.PutArray(roots.data(), roots.size());
  return WriteBlob(pool, meta.bytes());
}

Status WriteSuperblock(BufferPool* pool, PageId meta_root) {
  C2LSH_ASSIGN_OR_RETURN(BufferPool::PageHandle page, pool->Fetch(1));
  std::memcpy(page.mutable_data(), &meta_root, sizeof(meta_root));
  return Status::OK();
}

Result<PageId> ReadSuperblock(BufferPool* pool) {
  Result<BufferPool::PageHandle> page = pool->Fetch(1);
  if (!page.ok()) {
    if (page.status().IsCorruption()) return page.status();
    // An out-of-range page 1 means the header was never published (e.g. a
    // crash before the first Sync): the file is not a usable index.
    return Status::Corruption("DiskC2lshIndex: cannot read superblock (" +
                              std::string(page.status().message()) + ")");
  }
  PageId meta_root = 0;
  std::memcpy(&meta_root, page->data(), sizeof(meta_root));
  if (meta_root == 0) {
    return Status::Corruption("DiskC2lshIndex: empty superblock");
  }
  return meta_root;
}

}  // namespace

Result<DiskC2lshIndex> DiskC2lshIndex::Build(const Dataset& data,
                                             const C2lshOptions& options,
                                             const std::string& path,
                                             size_t pool_pages, bool store_vectors,
                                             Env* env) {
  C2LSH_ASSIGN_OR_RETURN(C2lshDerived derived, ComputeDerivedParams(options, data.size()));
  long long radius_cap = 1;
  const long long c_int = static_cast<long long>(std::llround(options.c));
  for (int i = 0; i < options.max_radius_exponent; ++i) radius_cap *= c_int;
  C2LSH_ASSIGN_OR_RETURN(
      PStableFamily family,
      PStableFamily::Sample(derived.m, data.dim(), options.w, options.seed,
                            static_cast<double>(radius_cap)));

  DiskC2lshIndex index;
  C2LSH_ASSIGN_OR_RETURN(PageFile file,
                         PageFile::Create(path, options.page_bytes, env));
  index.file_ = std::make_unique<PageFile>(std::move(file));
  C2LSH_ASSIGN_OR_RETURN(BufferPool pool,
                         BufferPool::Create(index.file_.get(), pool_pages));
  index.pool_ = std::make_unique<BufferPool>(std::move(pool));

  // Reserve the superblock (page 1).
  {
    PageId sb = 0;
    C2LSH_ASSIGN_OR_RETURN(BufferPool::PageHandle page, index.pool_->NewPage(&sb));
    (void)page;
    if (sb != 1) {
      return Status::Internal("DiskC2lshIndex: superblock landed on page " +
                              std::to_string(sb));
    }
  }

  // Data segment: the raw vectors, packed back to back across a contiguous
  // run of pages, so the index file is self-contained and verification I/O
  // is measured through the pool.
  if (store_vectors) {
    const size_t total_bytes = data.size() * data.dim() * sizeof(float);
    const size_t page_bytes = index.pool_->page_bytes();
    const auto* src = reinterpret_cast<const uint8_t*>(data.vectors().data().data());
    size_t offset = 0;
    while (offset < total_bytes || index.first_data_page_ == 0) {
      PageId id = 0;
      C2LSH_ASSIGN_OR_RETURN(BufferPool::PageHandle page, index.pool_->NewPage(&id));
      if (index.first_data_page_ == 0) {
        index.first_data_page_ = id;
      } else if (id != index.first_data_page_ + offset / page_bytes) {
        return Status::Internal("DiskC2lshIndex: data pages not contiguous");
      }
      const size_t chunk = std::min(page_bytes, total_bytes - offset);
      std::memcpy(page.mutable_data(), src + offset, chunk);
      offset += chunk;
      if (offset >= total_bytes) break;
    }
  }

  // Tables.
  std::vector<PageId> roots;
  roots.reserve(derived.m);
  for (size_t i = 0; i < derived.m; ++i) {
    const std::vector<BucketId> buckets = family.BucketColumn(data.vectors(), i);
    std::vector<std::pair<BucketId, ObjectId>> pairs;
    pairs.reserve(buckets.size());
    for (size_t r = 0; r < buckets.size(); ++r) {
      pairs.emplace_back(buckets[r], static_cast<ObjectId>(r));
    }
    C2LSH_ASSIGN_OR_RETURN(DiskBucketTable table,
                           DiskBucketTable::Build(index.pool_.get(), std::move(pairs)));
    roots.push_back(table.root());
    index.tables_.push_back(std::move(table));
  }

  // Meta blob, published both through the superblock page (legacy location)
  // and the PageFile header's user_root (the atomic-publish primitive
  // Compact relies on; Open prefers it). Build is the only writer of the
  // superblock — everything here becomes durable in one FlushAll, so there
  // is no earlier image to protect; Compact must never rewrite it (see the
  // publish comment there).
  C2LSH_ASSIGN_OR_RETURN(
      PageId meta_root,
      WriteMetaBlob(index.pool_.get(), options, derived, data.size(), data.dim(),
                    radius_cap, index.first_data_page_, /*applied_lsn=*/0,
                    /*stored_objects=*/data.size(), family, roots));
  C2LSH_RETURN_IF_ERROR(WriteSuperblock(index.pool_.get(), meta_root));
  index.file_->SetUserRoot(meta_root);
  C2LSH_RETURN_IF_ERROR(index.pool_->FlushAll());

  // A fresh build owns a fresh WAL: a stale log left by a previous index at
  // the same path must not replay into this one.
  index.path_ = path;
  index.env_ = (env != nullptr) ? env : Env::Default();
  const std::string wal_path = path + ".wal";
  if (index.env_->FileExists(wal_path)) {
    C2LSH_RETURN_IF_ERROR(index.env_->DeleteFile(wal_path));
  }
  C2LSH_ASSIGN_OR_RETURN(WriteAheadLog wal, WriteAheadLog::Open(wal_path, index.env_));
  index.wal_ = std::make_unique<WriteAheadLog>(std::move(wal));

  index.options_ = options;
  index.derived_ = derived;
  index.num_objects_ = data.size();
  index.stored_objects_ = data.size();
  index.dim_ = data.dim();
  index.radius_cap_ = radius_cap;
  index.family_ = std::make_unique<PStableFamily>(std::move(family));
  index.counter_.EnsureCapacity(index.num_objects_);
  index.verified_.assign(index.num_objects_, 0);
  index.pool_->ResetStats();
  return index;
}

Result<DiskC2lshIndex> DiskC2lshIndex::Open(const std::string& path, size_t pool_pages,
                                            Env* env) {
  DiskC2lshIndex index;
  C2LSH_ASSIGN_OR_RETURN(PageFile file, PageFile::Open(path, env));
  index.file_ = std::make_unique<PageFile>(std::move(file));
  C2LSH_ASSIGN_OR_RETURN(BufferPool pool,
                         BufferPool::Create(index.file_.get(), pool_pages));
  index.pool_ = std::make_unique<BufferPool>(std::move(pool));

  // The durably published meta root: the PageFile header's user_root when
  // set (v3 files — this is the pointer Compact swings atomically), falling
  // back to the legacy superblock page for files written before user_root
  // existed.
  PageId meta_root = static_cast<PageId>(index.file_->user_root());
  if (meta_root == 0) {
    C2LSH_ASSIGN_OR_RETURN(meta_root, ReadSuperblock(index.pool_.get()));
  }
  C2LSH_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                         ReadBlob(index.pool_.get(), meta_root));
  ByteReader r(&bytes);
  uint32_t magic = 0;
  uint64_t page_bytes = 0, m64 = 0, l64 = 0, n64 = 0, dim64 = 0;
  bool ok = r.Get(&magic) && (magic == kMetaMagic || magic == kMetaMagicV2);
  ok = ok && r.Get(&index.options_.w) && r.Get(&index.options_.c) &&
       r.Get(&index.options_.delta) && r.Get(&index.options_.beta) &&
       r.Get(&index.options_.max_radius_exponent) && r.Get(&index.options_.seed) &&
       r.Get(&page_bytes);
  uint64_t first_data_page = 0;
  ok = ok && r.Get(&index.derived_.model.w) && r.Get(&index.derived_.model.c) &&
       r.Get(&index.derived_.model.p1) && r.Get(&index.derived_.model.p2) &&
       r.Get(&index.derived_.model.rho) && r.Get(&index.derived_.beta) &&
       r.Get(&index.derived_.z) && r.Get(&index.derived_.alpha) && r.Get(&m64) &&
       r.Get(&l64) && r.Get(&n64) && r.Get(&dim64) && r.Get(&index.radius_cap_) &&
       r.Get(&first_data_page);
  uint64_t applied_lsn = 0;
  uint64_t stored_objects = n64;
  if (ok && magic == kMetaMagicV2) {
    ok = r.Get(&applied_lsn) && r.Get(&stored_objects);
  }
  if (!ok) {
    return Status::Corruption("DiskC2lshIndex: bad meta blob in '" + path + "'");
  }
  index.options_.page_bytes = static_cast<size_t>(page_bytes);
  index.derived_.m = static_cast<size_t>(m64);
  index.derived_.l = static_cast<size_t>(l64);
  index.num_objects_ = static_cast<size_t>(n64);
  index.dim_ = static_cast<size_t>(dim64);
  index.first_data_page_ = static_cast<PageId>(first_data_page);
  index.applied_lsn_ = applied_lsn;
  index.stored_objects_ = static_cast<size_t>(stored_objects);

  std::vector<PStableHash> funcs;
  funcs.reserve(index.derived_.m);
  for (size_t i = 0; i < index.derived_.m; ++i) {
    std::vector<float> a(index.dim_);
    double b = 0, w = 0;
    if (!r.GetArray(a.data(), a.size()) || !r.Get(&b) || !r.Get(&w)) {
      return Status::Corruption("DiskC2lshIndex: truncated hash functions");
    }
    C2LSH_ASSIGN_OR_RETURN(PStableHash h, PStableHash::FromParts(std::move(a), b, w));
    funcs.push_back(std::move(h));
  }
  C2LSH_ASSIGN_OR_RETURN(PStableFamily family,
                         PStableFamily::FromFunctions(std::move(funcs)));
  index.family_ = std::make_unique<PStableFamily>(std::move(family));

  std::vector<PageId> roots(index.derived_.m);
  if (!r.GetArray(roots.data(), roots.size()) || !r.exhausted()) {
    return Status::Corruption("DiskC2lshIndex: truncated table roots");
  }
  for (PageId root : roots) {
    C2LSH_ASSIGN_OR_RETURN(DiskBucketTable table,
                           DiskBucketTable::Load(index.pool_.get(), root));
    index.tables_.push_back(std::move(table));
  }

  // Recovery: replay every acknowledged mutation the base image has not yet
  // folded in. Records at or below applied_lsn_ are skipped (idempotence), a
  // torn tail is truncated — a crashed, unacknowledged append can never
  // surface.
  index.path_ = path;
  index.env_ = (env != nullptr) ? env : Env::Default();
  C2LSH_ASSIGN_OR_RETURN(WriteAheadLog wal,
                         WriteAheadLog::Open(path + ".wal", index.env_));
  index.wal_ = std::make_unique<WriteAheadLog>(std::move(wal));
  C2LSH_RETURN_IF_ERROR(
      index.wal_
          ->Replay(index.applied_lsn_,
                   [&index](const WriteAheadLog::Record& rec) {
                     return index.ApplyRecord(rec);
                   })
          .status());
  index.UpdateMutationGauges();

  index.counter_.EnsureCapacity(index.num_objects_);
  index.verified_.assign(index.num_objects_, 0);
  index.pool_->ResetStats();
  return index;
}

Status DiskC2lshIndex::ApplyRecord(const WriteAheadLog::Record& rec) {
  if (rec.type == WriteAheadLog::RecordType::kInsert) {
    if (rec.vec.size() != dim_) {
      return Status::Corruption("DiskC2lshIndex: WAL insert for id " +
                                std::to_string(rec.id) + " has dim " +
                                std::to_string(rec.vec.size()) + ", index has " +
                                std::to_string(dim_));
    }
    std::vector<BucketId> buckets;
    family_->BucketAll(rec.vec.data(), &buckets);
    for (size_t i = 0; i < tables_.size(); ++i) {
      tables_[i].OverlayInsert(buckets[i], rec.id);
    }
    overlay_vectors_[rec.id] = rec.vec;
    // An insert supersedes any earlier delete of the same id: without this
    // erase a delete-then-reinsert would stay invisible (the tombstone
    // gauge would report it) and Compact would drop the acknowledged
    // insert. The per-table tombstones are lifted inside OverlayInsert.
    const auto it = std::lower_bound(deleted_ids_.begin(), deleted_ids_.end(), rec.id);
    if (it != deleted_ids_.end() && *it == rec.id) {
      deleted_ids_.erase(it);
    }
    if (static_cast<size_t>(rec.id) + 1 > num_objects_) {
      num_objects_ = static_cast<size_t>(rec.id) + 1;
    }
  } else {
    for (DiskBucketTable& table : tables_) {
      table.OverlayDelete(rec.id);
    }
    const auto it = std::lower_bound(deleted_ids_.begin(), deleted_ids_.end(), rec.id);
    if (it == deleted_ids_.end() || *it != rec.id) {
      deleted_ids_.insert(it, rec.id);
    }
  }
  return Status::OK();
}

Status DiskC2lshIndex::Insert(ObjectId id, const float* v) {
  if (wal_ == nullptr) {
    return Status::Internal("DiskC2lshIndex: no WAL attached");
  }
  WriteAheadLog::Record rec;
  // Past both the WAL cursor and the folded watermark: after a compaction
  // truncated the log and the index reopened, the cursor restarts at 0 while
  // applied_lsn_ stays high — an LSN at or below it would be skipped at the
  // next replay, silently dropping an acknowledged mutation.
  rec.lsn = std::max(wal_->last_lsn(), applied_lsn_) + 1;
  rec.type = WriteAheadLog::RecordType::kInsert;
  rec.id = id;
  rec.vec.assign(v, v + dim_);
  // WAL first, sync second, apply third: the mutation is acknowledged only
  // once it would survive a crash, and the in-memory state never runs ahead
  // of the log.
  C2LSH_RETURN_IF_ERROR(wal_->Append(rec));
  C2LSH_RETURN_IF_ERROR(wal_->Sync());
  C2LSH_RETURN_IF_ERROR(ApplyRecord(rec));
  UpdateMutationGauges();
  return Status::OK();
}

Status DiskC2lshIndex::Delete(ObjectId id) {
  if (wal_ == nullptr) {
    return Status::Internal("DiskC2lshIndex: no WAL attached");
  }
  if (static_cast<size_t>(id) >= num_objects_) {
    return Status::NotFound("Delete: object id " + std::to_string(id) +
                            " was never registered with this index");
  }
  WriteAheadLog::Record rec;
  rec.lsn = std::max(wal_->last_lsn(), applied_lsn_) + 1;  // see Insert
  rec.type = WriteAheadLog::RecordType::kDelete;
  rec.id = id;
  C2LSH_RETURN_IF_ERROR(wal_->Append(rec));
  C2LSH_RETURN_IF_ERROR(wal_->Sync());
  C2LSH_RETURN_IF_ERROR(ApplyRecord(rec));
  UpdateMutationGauges();
  return Status::OK();
}

Status DiskC2lshIndex::Flush() {
  if (wal_ != nullptr) C2LSH_RETURN_IF_ERROR(wal_->Sync());
  return file_->Sync();
}

size_t DiskC2lshIndex::OverlayEntries() const {
  size_t total = 0;
  for (const DiskBucketTable& table : tables_) total += table.OverlayEntries();
  return total;
}

void DiskC2lshIndex::UpdateMutationGauges() const {
  const DiskMetrics& m = Metrics();
  m.overlay_entries->Set(static_cast<double>(OverlayEntries()));
  m.tombstones->Set(static_cast<double>(deleted_ids_.size()));
}

Status DiskC2lshIndex::Compact() {
  obs::ScopedSpan compact_span(obs::SpanSubsystem::kCompaction, "disk_compact");
  if (wal_ == nullptr) {
    return Status::Internal("DiskC2lshIndex: no WAL attached");
  }
  Timer timer;

  // 1. Gather every table's live entries off the current image. All tables
  // hold the same id set; the first table determines the new high-water.
  std::vector<std::vector<std::pair<BucketId, ObjectId>>> live(tables_.size());
  long long max_live = -1;
  for (size_t t = 0; t < tables_.size(); ++t) {
    live[t].reserve(tables_[t].num_entries());
    C2LSH_RETURN_IF_ERROR(tables_[t].ForEachEntry(
        [&live, &max_live, t](BucketId bucket, ObjectId id) {
          live[t].emplace_back(bucket, id);
          if (t == 0) max_live = std::max(max_live, static_cast<long long>(id));
        }));
  }
  const size_t new_n = static_cast<size_t>(max_live + 1);

  // 2. Rewrite the data segment (when one exists) for ids [0, new_n): old
  // segment bytes for ids it stored, resident overlay vectors for dynamic
  // inserts, zeros for holes left by deletes (their table entries are gone,
  // so the bytes are never read). Everything is appended — the old segment
  // stays valid until the header publish below.
  PageId new_first_data_page = 0;
  if (first_data_page_ != 0) {
    const size_t page_bytes = pool_->page_bytes();
    const size_t vec_bytes = dim_ * sizeof(float);
    std::vector<uint8_t> segment(new_n * vec_bytes, 0);
    std::vector<float> vec(dim_);
    for (size_t id = 0; id < new_n; ++id) {
      const auto ov = overlay_vectors_.find(static_cast<ObjectId>(id));
      if (ov != overlay_vectors_.end()) {
        std::memcpy(segment.data() + id * vec_bytes, ov->second.data(), vec_bytes);
      } else if (id < stored_objects_) {
        C2LSH_RETURN_IF_ERROR(ReadStoredVector(static_cast<ObjectId>(id),
                                               vec.data(), nullptr));
        std::memcpy(segment.data() + id * vec_bytes, vec.data(), vec_bytes);
      }
    }
    size_t offset = 0;
    while (offset < segment.size() || new_first_data_page == 0) {
      PageId pid = 0;
      C2LSH_ASSIGN_OR_RETURN(BufferPool::PageHandle page, pool_->NewPage(&pid));
      if (new_first_data_page == 0) {
        new_first_data_page = pid;
      } else if (pid != new_first_data_page + offset / page_bytes) {
        return Status::Internal("DiskC2lshIndex: compacted data pages not contiguous");
      }
      const size_t chunk = std::min(page_bytes, segment.size() - offset);
      std::memcpy(page.mutable_data(), segment.data() + offset, chunk);
      offset += chunk;
      if (offset >= segment.size()) break;
    }
  }

  // 3. Fresh bucket runs from the gathered entries.
  std::vector<DiskBucketTable> new_tables;
  std::vector<PageId> roots;
  new_tables.reserve(tables_.size());
  roots.reserve(tables_.size());
  for (size_t t = 0; t < tables_.size(); ++t) {
    C2LSH_ASSIGN_OR_RETURN(DiskBucketTable table,
                           DiskBucketTable::Build(pool_.get(), std::move(live[t])));
    roots.push_back(table.root());
    new_tables.push_back(std::move(table));
  }

  // 4. New meta blob with the folded watermark, then the atomic publish:
  // user_root swings to the new blob in the same header write that makes the
  // new pages durable. A crash before FlushAll completes recovers the old
  // root (the WAL still covers the delta); after it, the new image.
  // user_root is the ONLY publish channel here: the legacy superblock (page
  // 1) is deliberately left untouched. Rewriting it would destroy the old
  // meta root's last pointer before the header publish — on a pre-v3 file
  // (durable user_root == 0) a crash between page 1's writeback and Sync
  // would leave Open's superblock fallback pointing at pages beyond the
  // durable num_pages, making the index permanently unopenable. Stale is
  // safe: Open only consults the superblock while user_root is 0, and a
  // successful publish makes user_root nonzero forever after.
  // max() and not just the WAL cursor: with no mutations since open the
  // cursor can sit below the watermark already baked into the meta blob, and
  // the watermark must never move backwards.
  const uint64_t folded_lsn = std::max(wal_->last_lsn(), applied_lsn_);
  C2LSH_ASSIGN_OR_RETURN(
      PageId meta_root,
      WriteMetaBlob(pool_.get(), options_, derived_, new_n, dim_, radius_cap_,
                    new_first_data_page, folded_lsn, new_n, *family_, roots));
  file_->SetUserRoot(meta_root);
  C2LSH_RETURN_IF_ERROR(pool_->FlushAll());

  // 5. The new image is durable: swap it in and truncate the log. A failure
  // in Reset leaves a log whose records are all <= applied_lsn_ — replay
  // skips them, so recovery stays exact.
  tables_ = std::move(new_tables);
  first_data_page_ = new_first_data_page;
  num_objects_ = new_n;
  stored_objects_ = new_n;
  applied_lsn_ = folded_lsn;
  overlay_vectors_.clear();
  deleted_ids_.clear();
  C2LSH_RETURN_IF_ERROR(wal_->Reset());

  const DiskMetrics& m = Metrics();
  m.compaction_runs->Increment();
  m.compaction_millis->Observe(timer.ElapsedMillis());
  UpdateMutationGauges();
  return Status::OK();
}

Status DiskC2lshIndex::ReadStoredVector(ObjectId id, float* out,
                                        const QueryContext* ctx) const {
  const size_t page_bytes = pool_->page_bytes();
  const size_t vec_bytes = dim_ * sizeof(float);
  size_t byte_off = static_cast<size_t>(id) * vec_bytes;
  auto* dst = reinterpret_cast<uint8_t*>(out);
  size_t copied = 0;
  while (copied < vec_bytes) {
    const PageId page_id = first_data_page_ + (byte_off / page_bytes);
    const size_t in_page = byte_off % page_bytes;
    const size_t chunk = std::min(page_bytes - in_page, vec_bytes - copied);
    C2LSH_ASSIGN_OR_RETURN(BufferPool::PageHandle page, pool_->Fetch(page_id, ctx));
    std::memcpy(dst + copied, page.data() + in_page, chunk);
    copied += chunk;
    byte_off += chunk;
  }
  return Status::OK();
}

Status DiskC2lshIndex::LoadVector(ObjectId id, float* out,
                                  const QueryContext* ctx) const {
  // Dynamic inserts live in the resident overlay until a compaction moves
  // them into the data segment; their reads cost no I/O.
  const auto it = overlay_vectors_.find(id);
  if (it != overlay_vectors_.end()) {
    std::memcpy(out, it->second.data(), dim_ * sizeof(float));
    return Status::OK();
  }
  if (static_cast<size_t>(id) >= stored_objects_) {
    return Status::Corruption("DiskC2lshIndex: object " + std::to_string(id) +
                              " has no stored vector");
  }
  return ReadStoredVector(id, out, ctx);
}

Result<NeighborList> DiskC2lshIndex::Query(const float* query, size_t k,
                                           DiskQueryStats* stats,
                                           obs::QueryTrace* trace,
                                           const QueryContext* ctx) const {
  if (first_data_page_ == 0) {
    return Status::NotSupported(
        "DiskC2LSH: this index was built without a data segment; pass the Dataset "
        "to Query or rebuild with store_vectors = true");
  }
  return RunDiskQuery(nullptr, query, k, stats, trace, ctx);
}

Result<NeighborList> DiskC2lshIndex::Query(const Dataset& data, const float* query,
                                           size_t k, DiskQueryStats* stats,
                                           obs::QueryTrace* trace,
                                           const QueryContext* ctx) const {
  if (data.dim() != dim_) {
    return Status::InvalidArgument("DiskC2LSH query: dataset dim mismatch");
  }
  if (data.size() < num_objects_) {
    return Status::InvalidArgument("DiskC2LSH query: dataset smaller than the index");
  }
  return RunDiskQuery(&data, query, k, stats, trace, ctx);
}

Result<std::vector<NeighborList>> DiskC2lshIndex::QueryBatch(
    const FloatMatrix& queries, size_t k, std::vector<DiskQueryStats>* stats,
    const std::vector<const QueryContext*>& contexts) const {
  if (first_data_page_ == 0) {
    return Status::NotSupported(
        "DiskC2LSH: this index was built without a data segment; pass the Dataset "
        "to QueryBatch or rebuild with store_vectors = true");
  }
  return RunDiskBatch(nullptr, queries, k, stats, contexts);
}

Result<std::vector<NeighborList>> DiskC2lshIndex::QueryBatch(
    const Dataset& data, const FloatMatrix& queries, size_t k,
    std::vector<DiskQueryStats>* stats,
    const std::vector<const QueryContext*>& contexts) const {
  if (data.dim() != dim_) {
    return Status::InvalidArgument("DiskC2LSH query: dataset dim mismatch");
  }
  if (data.size() < num_objects_) {
    return Status::InvalidArgument("DiskC2LSH query: dataset smaller than the index");
  }
  return RunDiskBatch(&data, queries, k, stats, contexts);
}

Result<std::vector<NeighborList>> DiskC2lshIndex::RunDiskBatch(
    const Dataset* data, const FloatMatrix& queries, size_t k,
    std::vector<DiskQueryStats>* stats,
    const std::vector<const QueryContext*>& contexts) const {
  if (k == 0) return Status::InvalidArgument("DiskC2LSH query: k must be positive");
  if (queries.dim() != dim_) {
    return Status::InvalidArgument("DiskC2LSH QueryBatch: query dim mismatch");
  }
  const size_t nq = queries.num_rows();
  if (!contexts.empty() && contexts.size() != nq) {
    return Status::InvalidArgument(
        "DiskC2LSH QueryBatch: contexts must be empty or hold one (nullable) pointer "
        "per query row");
  }
  std::vector<NeighborList> results(nq);
  std::vector<DiskQueryStats> local_stats;
  std::vector<DiskQueryStats>* st = (stats != nullptr) ? stats : &local_stats;
  st->assign(nq, DiskQueryStats());
  if (nq == 0) return results;

  // Layer 1 only: the whole batch is bucketed in one query-major blocked
  // projection pass. The scan/verify rounds stay sequential per query — the
  // disk index is single-reader by contract (one scratch, one buffer pool,
  // one WAL cursor), so the in-memory engine's shard parallelism does not
  // apply here.
  const size_t m = tables_.size();
  std::vector<BucketId> qbuckets;
  family_->BucketAllMulti(queries.row(0), nq, queries.dim(), &qbuckets);

  for (size_t q = 0; q < nq; ++q) {
    const QueryContext* ctx = contexts.empty() ? nullptr : contexts[q];
    Result<NeighborList> r =
        RunDiskQuery(data, queries.row(q), k, &(*st)[q], /*trace=*/nullptr, ctx,
                     qbuckets.data() + q * m);
    if (!r.ok()) return r.status();
    results[q] = std::move(r).value();
  }
  return results;
}

Result<NeighborList> DiskC2lshIndex::RunDiskQuery(const Dataset* data, const float* query,
                                                  size_t k, DiskQueryStats* stats,
                                                  obs::QueryTrace* trace,
                                                  const QueryContext* ctx,
                                                  const BucketId* qbuckets_in) const {
  if (k == 0) return Status::InvalidArgument("DiskC2LSH query: k must be positive");
  DiskQueryStats local;
  DiskQueryStats* st = (stats != nullptr) ? stats : &local;
  *st = DiskQueryStats();
  const bool tracing = trace != nullptr;
  if (tracing) trace->Clear();
  // Same sampling contract as the in-memory RunQuery: one id ties this
  // query's spans, latency exemplar, and any flight-recorder dump together.
  const bool sampled = obs::Tracer::Global().SampleQuery(ctx);
  const uint64_t span_query_id =
      ctx != nullptr && ctx->trace_id != 0
          ? ctx->trace_id
          : (sampled ? obs::Tracer::Global().NextQueryId() : 0);
  obs::ScopedSpan query_span(obs::SpanSubsystem::kQuery, "disk_c2lsh_query",
                             span_query_id, sampled);
  Timer query_timer;
  const BufferPoolStats pool_before = pool_->stats();

  counter_.NewQuery();
  counter_.EnsureCapacity(num_objects_);
  if (verified_.size() < num_objects_) verified_.resize(num_objects_, 0);
  for (ObjectId id : touched_) verified_[id] = 0;
  touched_.clear();
  table_bad_.assign(tables_.size(), 0);

  const size_t m = tables_.size();
  const uint32_t l = static_cast<uint32_t>(derived_.l);
  const long long c_int = static_cast<long long>(std::llround(derived_.model.c));
  const size_t t2_threshold = std::min<size_t>(
      num_objects_,
      k + static_cast<size_t>(
              std::ceil(derived_.beta * static_cast<double>(num_objects_))));

  // QueryBatch hands in the buckets from its batched projection pass
  // (bit-identical to BucketAll by the dot_rows_multi exactness contract);
  // a lone query computes its own.
  std::vector<BucketId> qbuckets_storage;
  if (qbuckets_in == nullptr) {
    family_->BucketAll(query, &qbuckets_storage);
    qbuckets_in = qbuckets_storage.data();
  }
  const BucketId* qbuckets = qbuckets_in;

  std::vector<BucketRange> prev(m);
  NeighborList found;
  found.reserve(t2_threshold + m);
  const PageModel data_model(options_.page_bytes);
  const uint64_t vector_pages = data_model.PagesPerVector(dim_);
  vector_buf_.resize(dim_);
  uint64_t data_misses = 0;

  auto interval = [&](BucketId qb, long long R) -> BucketRange {
    if (R > radius_cap_) {
      constexpr BucketId kLo = std::numeric_limits<BucketId>::min() / 4;
      constexpr BucketId kHi = std::numeric_limits<BucketId>::max() / 4;
      return BucketRange{kLo, kHi};
    }
    return QueryIntervalAtRadius(qb, R);
  };

  // Cooperative-stop state, same contract as the in-memory RunQuery: kNone
  // while running; once set, every remaining scan is skipped and the query
  // returns its partial results under that Termination.
  Termination early_stop = Termination::kNone;

  Status scan_status;
  auto scan_range = [&](size_t table_idx, const BucketRange& range) {
    if (range.empty() || !scan_status.ok() || table_bad_[table_idx] != 0) return;
    if (ctx != nullptr && early_stop == Termination::kNone) {
      early_stop = ctx->CheckNow();
    }
    if (early_stop != Termination::kNone) return;
    Result<size_t> visited = tables_[table_idx].ForEachInRange(
        range.lo, range.hi,
        [&](ObjectId id) {
          if (early_stop != Termination::kNone) return;
          ++st->base.collision_increments;
          if (ctx != nullptr && ctx->cancelled()) {
            early_stop = Termination::kCancelled;
            return;
          }
          if (verified_[id] != 0) return;
          if (counter_.Increment(id) == l) {
            verified_[id] = 1;
            touched_.push_back(id);
            const float* vec = nullptr;
            if (data != nullptr) {
              vec = data->object(id);
              st->base.data_pages += vector_pages;  // modelled (external data)
            } else {
              const uint64_t misses_before = pool_->stats().misses;
              if (Status s = LoadVector(id, vector_buf_.data(), ctx); !s.ok()) {
                if (s.IsCorruption()) {
                  // The candidate's stored vector is unreadable: drop it and
                  // flag the answer as degraded rather than returning a
                  // distance computed from garbage bytes.
                  st->degraded = true;
                  ++st->candidates_skipped;
                  return;
                }
                if (ctx != nullptr &&
                    (ctx->CheckNow() != Termination::kNone || s.IsUnavailable())) {
                  // The retry layer gave up because the query's budget ended,
                  // not because the device failed hard: stop with partial
                  // results instead of surfacing an error. A still-transient
                  // Unavailable under a context can only mean abandonment —
                  // possibly *before* the deadline strictly expires, when the
                  // remaining budget cannot cover the next backoff — so it
                  // converts even while CheckNow() is still kNone.
                  const Termination now = ctx->CheckNow();
                  early_stop = now != Termination::kNone ? now : Termination::kDeadline;
                  return;
                }
                scan_status = s;
                return;
              }
              data_misses += pool_->stats().misses - misses_before;
              vec = vector_buf_.data();
            }
            const double dist = L2(query, vec, dim_);
            found.push_back(Neighbor{id, static_cast<float>(dist)});
            ++st->base.candidates_verified;
          }
        },
        ctx);
    if (!visited.ok()) {
      if (visited.status().IsCorruption()) {
        // A table page failed its checksum: drop this table for the rest of
        // the query. Collision counts only ever come from verified page
        // reads, so skipping can under-count (fewer candidates, flagged
        // below) but never mis-count.
        st->degraded = true;
        ++st->tables_skipped;
        table_bad_[table_idx] = 1;
        return;
      }
      if (ctx != nullptr && (ctx->CheckNow() != Termination::kNone ||
                             visited.status().IsUnavailable())) {
        // As above: an abandoned retry under the query's context is an early
        // stop, not an error.
        const Termination now = ctx->CheckNow();
        early_stop = now != Termination::kNone ? now : Termination::kDeadline;
        return;
      }
      scan_status = visited.status();
      return;
    }
    st->base.buckets_scanned += visited.value();
  };

  long long R = 1;
  Timer round_timer;
  while (true) {
    // Round boundary: the full context check — deadline, cancellation, and
    // the I/O-page budget against *measured* pool misses so far. A
    // pre-expired context runs zero rounds and returns empty.
    if (ctx != nullptr && early_stop == Termination::kNone) {
      early_stop = ctx->Check(pool_->stats().misses - pool_before.misses);
    }
    if (early_stop != Termination::kNone) {
      st->base.termination = early_stop;
      break;
    }
    ++st->base.rounds;
    st->base.final_radius = R;
    obs::ScopedSpan round_span(obs::SpanSubsystem::kRound, "round",
                               span_query_id, sampled);
    C2lshQueryStats before;
    uint64_t misses_at_round_start = 0;
    uint64_t data_misses_at_round_start = 0;
    if (tracing) {
      round_timer.Reset();
      before = st->base;
      misses_at_round_start = pool_->stats().misses;
      data_misses_at_round_start = data_misses;
    }
    bool all_covered = true;
    for (size_t i = 0; i < m; ++i) {
      if (early_stop != Termination::kNone) break;
      const BucketRange next = interval(qbuckets[i], R);
      const RangeDelta delta = ComputeRangeDelta(prev[i], next);
      scan_range(i, delta.left);
      scan_range(i, delta.right);
      if (!scan_status.ok()) return scan_status;
      prev[i] = next;
      if (table_bad_[i] == 0 && tables_[i].num_buckets() > 0 &&
          tables_[i].EntriesInRange(next.lo, next.hi) < tables_[i].num_entries()) {
        all_covered = false;
      }
    }

    // T1 is evaluated even after an early stop: if the partial scan already
    // proved the answer, the query keeps the full-quality termination.
    const double cr = derived_.model.c * static_cast<double>(R);
    size_t within = 0;
    for (const Neighbor& nb : found) {
      if (nb.dist <= cr) ++within;
      if (within >= k) break;
    }
    if (within >= k) {
      st->base.termination = Termination::kT1;
    } else if (found.size() >= t2_threshold) {
      st->base.termination = Termination::kT2;
    } else if (early_stop != Termination::kNone) {
      // Partial results; beats kExhausted because an interrupted round never
      // evaluated the remaining tables' coverage.
      st->base.termination = early_stop;
    } else if (all_covered) {
      st->base.termination = Termination::kExhausted;
    }
    if (tracing) {
      obs::QueryRoundSpan span;
      span.radius = R;
      span.buckets_scanned = st->base.buckets_scanned - before.buckets_scanned;
      span.collision_increments =
          st->base.collision_increments - before.collision_increments;
      span.candidates_verified =
          st->base.candidates_verified - before.candidates_verified;
      // Index pages this round: measured pool misses minus the misses
      // attributed to data-segment vector reads.
      const uint64_t round_misses =
          pool_->stats().misses - misses_at_round_start;
      const uint64_t round_data_misses =
          data_misses - data_misses_at_round_start;
      span.index_pages = round_misses - round_data_misses;
      span.t1_fired = st->base.termination == Termination::kT1;
      span.t2_fired = st->base.termination == Termination::kT2;
      span.millis = round_timer.ElapsedMillis();
      trace->rounds.push_back(span);
    }
    if (st->base.termination != Termination::kNone) break;
    R *= c_int;
  }

  const BufferPoolStats pool_after = pool_->stats();
  st->pool_hits = pool_after.hits - pool_before.hits;
  st->pool_misses = pool_after.misses - pool_before.misses;
  // Measured, not simulated: pool misses split into index probes and (when
  // the data segment serves verification) vector reads.
  st->base.index_pages = st->pool_misses - data_misses;
  if (data == nullptr) {
    st->base.data_pages = data_misses;
  }

  std::sort(found.begin(), found.end(), NeighborLess());
  if (found.size() > k) found.resize(k);
  const double total_millis = query_timer.ElapsedMillis();
  if (tracing) {
    trace->termination = st->base.termination;
    trace->total_millis = total_millis;
    trace->pool_hits = st->pool_hits;
    trace->pool_misses = st->pool_misses;
    trace->degraded = st->degraded;
  }
  FlushDiskQueryMetrics(*st, total_millis, span_query_id);
  // End the query span before the anomaly hook: a flight dump snapshots the
  // rings, and an open span has not reached its ring yet.
  query_span.End();
  if (obs::FlightRecorder::Global().enabled()) {
    if (tracing) {
      obs::MaybeRecordQueryAnomaly("disk_c2lsh_query", span_query_id, *trace);
    } else {
      obs::QueryTrace anomaly_trace;
      anomaly_trace.termination = st->base.termination;
      anomaly_trace.total_millis = total_millis;
      anomaly_trace.pool_hits = st->pool_hits;
      anomaly_trace.pool_misses = st->pool_misses;
      anomaly_trace.degraded = st->degraded;
      obs::MaybeRecordQueryAnomaly("disk_c2lsh_query", span_query_id,
                                   anomaly_trace);
    }
  }
  return found;
}

}  // namespace c2lsh
