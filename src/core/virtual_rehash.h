// Virtual rehashing: mapping base buckets to level-R buckets without
// rebuilding anything.
//
// A base function hashes to h(o) = floor((a.o + b)/w). For an integer radius
// R, the level-R hash is h^R(o) = floor(h(o) / R) — exact by the nested-floor
// identity floor(floor(x/w) / R) = floor(x / (wR)) — so the level-R bucket of
// a query is the run of R consecutive base buckets
//
//     [ t*R , t*R + R - 1 ],   t = floor(h(q) / R).
//
// Because R grows by integer factors c, level intervals are *nested* across
// rounds, which is what makes C2LSH's incremental collision counting exact:
// a round at radius R only has to count the base buckets newly uncovered on
// each side of the previous round's interval.
//
// Fidelity note: with b drawn from [0, w), the level-R grid offset is uniform
// only modulo w rather than modulo wR; this matches the authors' released
// implementation, and the paper's analysis treats h^R as (R, cR, p1, p2)-
// sensitive under exactly this construction.

#pragma once
#ifndef C2LSH_CORE_VIRTUAL_REHASH_H_
#define C2LSH_CORE_VIRTUAL_REHASH_H_

#include "src/storage/bucket_table.h"
#include "src/util/math.h"

namespace c2lsh {

/// An inclusive range of base bucket ids.
struct BucketRange {
  BucketId lo = 0;
  BucketId hi = -1;  // default-constructed range is empty

  bool empty() const { return lo > hi; }
  long long width() const { return empty() ? 0 : hi - lo + 1; }

  bool Contains(const BucketRange& inner) const {
    return inner.empty() || (lo <= inner.lo && inner.hi <= hi);
  }

  friend bool operator==(const BucketRange& a, const BucketRange& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Level-R bucket id of a base bucket.
inline BucketId LevelBucket(BucketId base, long long R) { return FloorDiv(base, R); }

/// The run of base buckets forming the query's level-R bucket.
inline BucketRange QueryIntervalAtRadius(BucketId query_base_bucket, long long R) {
  const BucketId t = LevelBucket(query_base_bucket, R);
  return BucketRange{t * R, t * R + R - 1};
}

/// The two side-ranges uncovered when the interval grows from `prev` to
/// `next` (both centered on the same query bucket, `next` containing `prev`).
struct RangeDelta {
  BucketRange left;   // [next.lo, prev.lo - 1], possibly empty
  BucketRange right;  // [prev.hi + 1, next.hi], possibly empty
};

inline RangeDelta ComputeRangeDelta(const BucketRange& prev, const BucketRange& next) {
  RangeDelta d;
  if (prev.empty()) {
    d.left = next;
    d.right = BucketRange{};  // everything is "left"; right stays empty
    return d;
  }
  d.left = BucketRange{next.lo, prev.lo - 1};
  d.right = BucketRange{prev.hi + 1, next.hi};
  return d;
}

}  // namespace c2lsh

#endif  // C2LSH_CORE_VIRTUAL_REHASH_H_
