// Binary serialization of a C2lshIndex.
//
// Building an index costs O(m * n * d) projection work; persisting it makes
// the paper's "index once, query forever" deployment story real. The format
// is a single file (version 2):
//
//   [magic u64][version u32][options][derived scalars]
//   [m u32][dim u32][num_objects u64][radius_cap i64]
//   per function: [a: dim f32][b f64][w f64]
//   per table:    [num raw (bucket,id) pairs u64][pairs...]
//   [crc32c of everything above]
//
// Tables are persisted compacted (overlays folded, tombstones dropped).
// Loading validates the magic, version, and checksum and returns Corruption
// on any mismatch — truncated or bit-flipped files never produce a silently
// wrong index. Version 1 (crc64, pre-Env) files are rejected with
// NotSupported; rebuild and re-save to migrate.
//
// All file I/O goes through the same Env layer as the page-file stack
// (util/env.h), so IOErrors carry errno context and fault-injection tests
// can exercise this path too.

#pragma once
#ifndef C2LSH_CORE_SERIALIZE_H_
#define C2LSH_CORE_SERIALIZE_H_

#include <string>

#include "src/core/index.h"
#include "src/util/env.h"
#include "src/util/result.h"

namespace c2lsh {

/// Writes `index` to `path`. The index is logically const but its delta
/// overlays are folded into the flat tables first (same result set).
/// `env` defaults to Env::Default().
Status SaveIndex(const std::string& path, C2lshIndex* index, Env* env = nullptr);

/// Reads an index previously written by SaveIndex.
Result<C2lshIndex> LoadIndex(const std::string& path, Env* env = nullptr);

}  // namespace c2lsh

#endif  // C2LSH_CORE_SERIALIZE_H_
