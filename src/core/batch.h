// Batched, shard-parallel query execution for C2lshIndex.
//
// C2LSH's dynamic collision counting makes the rehash round the natural
// synchronization boundary: a query's verified set at the end of a round is
// {id : cumulative collision count >= l}, which does not depend on the order
// the increments arrived in, and the T1/T2 termination tests are evaluated
// only at round end over that set. The batch engine exploits this twice:
//
//  * Shared scans. All co-resident queries advance through the radii
//    R = 1, c, c^2, ... in lockstep. Within a round, queries whose delta
//    interval lands on the same bucket run of the same table are grouped,
//    and each distinct run is scanned ONCE — the single pass feeds every
//    grouped query's collision buffer. Per-query I/O accounting (index
//    pages, buckets scanned) is still charged per query, exactly as a
//    serial Query would charge it.
//
//  * Table sharding. The m tables are partitioned across N shards (shard s
//    owns tables i with i % N == s) and scanned by a reusable worker pool
//    (src/util/thread_pool.h). Phase A: each shard scans its tables and
//    appends (query, id) increments into shard-private per-query buffers —
//    no shared counters, no atomics in the hot path. Phase B: each query
//    (one owner per counter) merges all shards' buffers, increments its
//    counter, and verifies candidates crossing l. T1/T2/exhausted decisions
//    are made on the merged counts at the round barrier.
//
// Determinism contract: because the verified set is increment-order-
// independent, the merged per-round state — counters, verified set, found
// set, stats totals — is identical for every shard count, pool size, and
// scan order, and the final ranking is fixed by the total order
// NeighborLess (distance, then id). QueryBatch results and stats are
// therefore bitwise-identical to a serial loop of Query() calls, for every
// batch_size/num_shards/pool configuration (tested in batch_engine_test.cc,
// including under TSan).
//
// Per-query QueryContext semantics match Query: the full deadline/
// cancellation/page-budget check runs at every round boundary, the
// cancellation token is polled on every collision increment (during the
// Phase B merge), and the clock is read every kCheckIntervalMask+1
// increments. A query that expires goes inactive with its partial results
// and the usual kDeadline/kCancelled termination — its batchmates are
// unaffected. (Mid-flight wall-clock expiry is inherently not reproducible
// against a serial run; deterministic context states — pre-cancelled
// tokens, pre-expired deadlines, page budgets — terminate identically, as
// the budget is checked only at round boundaries on order-independent page
// totals.)

#pragma once
#ifndef C2LSH_CORE_BATCH_H_
#define C2LSH_CORE_BATCH_H_

#include <cstddef>
#include <vector>

#include "src/core/index.h"
#include "src/util/query_context.h"
#include "src/util/thread_pool.h"
#include "src/vector/dataset.h"
#include "src/vector/types.h"

namespace c2lsh {
namespace batch {

/// Runs one co-resident block of queries to completion through the shared-
/// scan, sharded round loop described above. `queries` holds num_queries
/// row-major vectors of index.dim() floats, `qstride` floats apart; `ctxs`
/// is either nullptr (no contexts) or an array of num_queries nullable
/// context pointers. `num_shards` must be in [1, index.num_tables()].
/// Writes results[i] and stats[i] for every block query i. Called by
/// C2lshIndex::QueryBatch; exposed for white-box tests.
void RunBatchBlock(const C2lshIndex& index, const Dataset& data,
                   const float* queries, size_t num_queries, size_t qstride,
                   size_t k, const QueryContext* const* ctxs,
                   size_t num_shards, ThreadPool* pool,
                   NeighborList* results, C2lshQueryStats* stats);

}  // namespace batch
}  // namespace c2lsh

#endif  // C2LSH_CORE_BATCH_H_
