// C2lshIndex — the paper's primary contribution.
//
// Indexing: sample m i.i.d. p-stable functions and build one BucketTable per
// function over the base buckets h_i(o).
//
// Query (c-k-ANN): run rounds at radii R = 1, c, c^2, ... Each round widens
// every table's probe interval to the query's level-R bucket (virtual
// rehashing; the widening is incremental because intervals nest) and
// increments per-object collision counters. An object whose count reaches
// the threshold l becomes a *candidate* and its exact distance is verified
// immediately. The round ends with the paper's two termination tests:
//   T1: >= k verified candidates lie within distance c*R  -> answer found;
//   T2: >= k + beta*n candidates were verified in total    -> answer found.
// Otherwise R <- c*R. Returns the k closest verified candidates.
//
// The index is decoupled from vector storage: it maps ids to buckets only,
// and verification distances are computed against the Dataset passed to
// Query. Dynamic inserts/deletes go through the tables' delta overlays.
//
// Concurrency model: queries pin per-table snapshots (storage/bucket_table.h)
// and run lock-free against them, so any number of Searcher queries may run
// concurrently with Insert/Delete/Compact — readers never block on a
// mutation, not even a full compaction. Mutators serialize on an internal
// writer lock; a mutation is visible to every query that *starts* after the
// mutating call returns, while in-flight queries keep the versions they
// pinned.

#pragma once
#ifndef C2LSH_CORE_INDEX_H_
#define C2LSH_CORE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/counter.h"
#include "src/core/params.h"
#include "src/core/virtual_rehash.h"
#include "src/lsh/pstable.h"
#include "src/obs/trace.h"
#include "src/storage/bucket_table.h"
#include "src/storage/page_model.h"
#include "src/util/mutex.h"
#include "src/util/query_context.h"
#include "src/util/thread_annotations.h"
#include "src/util/result.h"
#include "src/vector/dataset.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Per-query execution statistics, the raw material of every figure in the
/// evaluation.
struct C2lshQueryStats {
  uint64_t rounds = 0;                 ///< virtual-rehashing rounds executed
  long long final_radius = 0;          ///< R of the terminating round
  uint64_t collision_increments = 0;   ///< counter updates performed
  uint64_t candidates_verified = 0;    ///< exact distance computations
  uint64_t buckets_scanned = 0;        ///< base buckets visited
  uint64_t index_pages = 0;            ///< simulated index I/O (pages)
  uint64_t data_pages = 0;             ///< simulated verification I/O (pages)
  /// Which condition ended the query: kT1 / kT2 / kExhausted (full
  /// coverage), kDeadline / kCancelled (a QueryContext stopped it with
  /// partial results), or kNone when an external bound stopped it first
  /// (max_radius probes, RangeQuery's radius schedule, DecisionQuery's
  /// single round).
  Termination termination = Termination::kNone;

  uint64_t total_pages() const { return index_pages + data_pages; }
};

/// Reusable per-query scratch space. One instance per thread; see
/// C2lshIndex::Searcher for the thread-safe query API.
struct C2lshQueryScratch {
  CollisionCounter counter{0};
  std::vector<uint8_t> verified;
  std::vector<ObjectId> touched;
  std::vector<BucketId> qbuckets;
};

/// The C2LSH index.
class C2lshIndex {
 public:
  /// Builds the index over `data` (only ids and hashes are retained — keep
  /// the dataset alive and pass it to Query for verification).
  /// `num_threads = 0` builds tables in parallel with hardware concurrency.
  static Result<C2lshIndex> Build(const Dataset& data, const C2lshOptions& options,
                                  size_t num_threads = 0);

  /// c-k-ANN query. Returns up to k neighbors sorted by ascending exact
  /// distance. `stats` may be null. `trace`, when non-null, receives one
  /// span per virtual-rehashing round (cleared first; see src/obs/trace.h).
  /// `ctx` (nullable) bounds the query: on deadline expiry, cancellation, or
  /// an exceeded I/O-page budget the query returns its best-effort partial
  /// results with stats->termination = kDeadline / kCancelled — never an
  /// error (see util/query_context.h).
  /// Safe to call concurrently with Insert/Delete/Compact (the query runs on
  /// pinned table snapshots), but this convenience entry point reuses one
  /// internal scratch shared with FilteredQuery/RangeQuery/DecisionQuery —
  /// at most one of those four may run at a time. Concurrent query callers
  /// must each use their own Searcher instead.
  Result<NeighborList> Query(const Dataset& data, const float* query, size_t k,
                             C2lshQueryStats* stats = nullptr,
                             obs::QueryTrace* trace = nullptr,
                             const QueryContext* ctx = nullptr) const;

  /// A lightweight per-thread query handle. Any number of Searchers may run
  /// concurrently — each owns its scratch, and every query pins immutable
  /// table snapshots, so Searchers are also safe against concurrent
  /// Insert/Delete/Compact. The Searcher must not outlive the index.
  class Searcher {
   public:
    explicit Searcher(const C2lshIndex* index) : index_(index) {}

    /// Same contract as C2lshIndex::Query, safe to call concurrently with
    /// other Searchers.
    Result<NeighborList> Query(const Dataset& data, const float* query, size_t k,
                               C2lshQueryStats* stats = nullptr,
                               obs::QueryTrace* trace = nullptr,
                               const QueryContext* ctx = nullptr) {
      return index_->RunQuery(data, query, k, /*max_radius=*/0, stats, &scratch_,
                              /*filter=*/nullptr, trace, ctx);
    }

   private:
    const C2lshIndex* index_;
    C2lshQueryScratch scratch_;
  };

  /// Options for QueryBatch (src/core/batch.cc).
  struct BatchQueryOptions {
    /// Queries co-resident per execution block. Larger blocks share more
    /// bucket-run scans but hold more per-query counter state (O(n) per
    /// co-resident query). 0 = the whole batch in one block.
    size_t batch_size = 0;
    /// N-way table sharding inside a block: shard s owns tables i with
    /// i % num_shards == s. 0 = min(pool threads, num_tables()). Results are
    /// bitwise-invariant under this knob (see the determinism contract in
    /// docs/ARCHITECTURE.md).
    size_t num_shards = 0;
    /// Worker pool; nullptr = ThreadPool::Shared().
    class ThreadPool* pool = nullptr;
    /// Per-query contexts (deadline/cancellation/page budget), same contract
    /// as Query's ctx. Empty = no context for any query; otherwise must hold
    /// one (nullable) pointer per query row. One query expiring never
    /// perturbs its batchmates' results.
    std::vector<const QueryContext*> contexts;
  };

  /// Batched c-k-ANN over every row of `queries`: the round-synchronized
  /// shared-scan engine (src/core/batch.cc). All co-resident queries advance
  /// through the virtual-rehashing radii in lockstep; per round, queries
  /// probing the same bucket run of the same table share one scan, and the
  /// tables are sharded across the worker pool with per-shard collision
  /// buffers merged at the round barrier. Results (and per-query stats) are
  /// bitwise-identical to a serial loop of Query() calls for every
  /// batch_size/num_shards/pool configuration; per-query T1/T2/exhausted/
  /// deadline/cancelled precedence matches Query exactly. `stats`, when
  /// non-null, is resized to one entry per query.
  Result<std::vector<NeighborList>> QueryBatch(
      const Dataset& data, const FloatMatrix& queries, size_t k,
      const BatchQueryOptions& options,
      std::vector<C2lshQueryStats>* stats = nullptr) const;

  /// QueryBatch with default options (whole batch in one block, shared pool,
  /// pool-width sharding, no per-query contexts). An overload rather than a
  /// default argument: a nested struct's member initializers are only parsed
  /// at the end of the enclosing class, so `= {}` is ill-formed here.
  Result<std::vector<NeighborList>> QueryBatch(const Dataset& data,
                                               const FloatMatrix& queries,
                                               size_t k) const {
    return QueryBatch(data, queries, k, BatchQueryOptions());
  }

  /// Convenience wrapper over QueryBatch: runs one query per row of
  /// `queries` on the shared worker pool. `num_threads` bounds the table
  /// sharding (0 = pool width); results are identical for every value.
  /// Returns one NeighborList per query row, in order.
  Result<std::vector<NeighborList>> BatchQuery(const Dataset& data,
                                               const FloatMatrix& queries, size_t k,
                                               size_t num_threads = 0) const;

  /// Filtered c-k-ANN: like Query, but only objects for which
  /// `filter(id)` returns true may be verified or returned (predicate
  /// push-down — deleted-but-not-compacted rows, tenant isolation, time
  /// windows). Filtered-out objects still participate in collision counting
  /// (their hashes are in the tables) but are skipped at the verification
  /// gate, so the filter adds no distance computations for rejected ids.
  /// The k+beta*n candidate budget counts only accepted objects. Shares the
  /// convenience scratch (see Query for the concurrency contract).
  Result<NeighborList> FilteredQuery(const Dataset& data, const float* query, size_t k,
                                     const std::function<bool(ObjectId)>& filter,
                                     C2lshQueryStats* stats = nullptr) const;

  /// Approximate range query: returns every object within distance `radius`
  /// of the query that becomes frequent by the round at R >= radius —
  /// per-object recall >= 1 - delta by property P1 (an object at distance
  /// <= radius collides >= l times once R >= radius w.h.p.). Results are
  /// sorted ascending by exact distance; false positives are filtered by
  /// verification, so precision is exact. Shares the convenience scratch
  /// (see Query for the concurrency contract). `ctx`, when non-null, applies
  /// the deadline/cancellation contract: the scan polls at the standard
  /// cadence and stops with partial results, recording
  /// stats->termination = kDeadline / kCancelled.
  Result<NeighborList> RangeQuery(const Dataset& data, const float* query, double radius,
                                  C2lshQueryStats* stats = nullptr,
                                  const QueryContext* ctx = nullptr) const;

  /// The (R, c)-NN decision primitive (Definition 2.2 of the LSH
  /// literature): a single round at fixed radius R. Returns a verified
  /// object within distance c*R if the round surfaces one, NotFound
  /// otherwise (which is a correct answer whenever no object lies within R).
  /// `ctx`, when non-null, applies the deadline/cancellation contract: an
  /// interrupted scan records stats->termination = kDeadline / kCancelled,
  /// and a NotFound returned after an interruption is *not* a verified "no"
  /// — callers that care must check the stats.
  Result<Neighbor> DecisionQuery(const Dataset& data, const float* query, long long R,
                                 C2lshQueryStats* stats = nullptr,
                                 const QueryContext* ctx = nullptr) const;

  /// Collision counts of every object against `query` at exactly radius R —
  /// the quantity properties P1/P2 speak about. For property tests and the
  /// threshold-ablation bench. Costs one pass over the query's intervals.
  std::vector<uint32_t> CollisionCountsAtRadius(const float* query, long long R) const;

  /// Dynamic insert: registers object `id` with vector `v` (d floats) in all
  /// m tables' delta overlays. The caller's dataset must expose `id` by the
  /// time a query that should see it runs. Mutators serialize on the writer
  /// lock and are safe against concurrent queries; the insert is visible to
  /// every query that starts after this returns.
  Status Insert(ObjectId id, const float* v) EXCLUDES(writer_mu_);

  /// Dynamic delete: tombstones `id` in all tables. Same concurrency
  /// contract as Insert.
  Status Delete(ObjectId id) EXCLUDES(writer_mu_);

  /// Folds overlays and tombstones back into the flat tables and shrinks the
  /// object-count high-water past trailing deletes. Runs off to the side on
  /// pinned snapshots; concurrent queries never block on it — they keep the
  /// versions they pinned until the compacted tables publish.
  void Compact() EXCLUDES(writer_mu_);

  /// Reassembles an index from its serialized parts (core/serialize.h).
  /// The parts must be mutually consistent (m tables matching the family's
  /// size); basic consistency is validated.
  static Result<C2lshIndex> FromParts(const C2lshOptions& options,
                                      const C2lshDerived& derived, PStableFamily family,
                                      std::vector<BucketTable> tables, size_t num_objects,
                                      size_t dim, long long radius_cap);

  const C2lshOptions& options() const { return options_; }
  const C2lshDerived& derived() const { return derived_; }
  size_t num_tables() const { return tables_.size(); }
  /// Object-count high-water (1 + largest id ever inserted, until a Compact
  /// after trailing deletes lowers it). Acquire-load so a query thread that
  /// reads the new count also sees the table versions published before it.
  size_t num_objects() const { return num_objects_.load(std::memory_order_acquire); }
  size_t dim() const { return dim_; }
  long long radius_cap() const { return radius_cap_; }
  const PStableFamily& family() const { return family_; }
  const BucketTable& table(size_t i) const { return tables_[i]; }

  /// Resident index bytes (tables + hash functions), for the T2 experiment.
  size_t MemoryBytes() const;

  /// Structural diagnostics over the m hash tables — bucket-occupancy
  /// distribution and overlay pressure. Cheap (directory metadata only);
  /// used by operators to sanity-check a build (a pathological w shows up
  /// as a single giant bucket per table here long before query latency
  /// reveals it).
  struct IndexStats {
    size_t num_tables = 0;
    size_t entries_per_table = 0;       ///< live entries (same for all tables)
    double mean_buckets_per_table = 0;  ///< distinct buckets, averaged
    size_t min_buckets = 0;             ///< worst (most skewed) table
    size_t max_buckets = 0;
    double mean_bucket_size = 0;        ///< entries / buckets, averaged
    size_t max_bucket_size = 0;         ///< largest single bucket anywhere
    size_t overlay_entries = 0;         ///< dynamic inserts awaiting Compact
  };
  IndexStats ComputeStats() const;

  // Movable (for Result<C2lshIndex> and factory returns); moves must not
  // race with any other use of either index — the writer Mutex and atomic
  // count pin the object in place otherwise.
  C2lshIndex(C2lshIndex&& other) noexcept;
  C2lshIndex& operator=(C2lshIndex&& other) noexcept;
  C2lshIndex(const C2lshIndex&) = delete;
  C2lshIndex& operator=(const C2lshIndex&) = delete;

 private:
  C2lshIndex(C2lshOptions options, C2lshDerived derived, PStableFamily family,
             std::vector<BucketTable> tables, size_t num_objects, size_t dim,
             long long radius_cap);

  /// Shared round loop. `max_radius`: stop after the round at this radius
  /// (0 = unbounded, run to termination). `scratch` holds the per-query
  /// state; distinct scratches make concurrent queries safe. `filter`, when
  /// non-null, gates verification (see FilteredQuery). `trace`, when
  /// non-null, records one QueryRoundSpan per round. `ctx`, when non-null,
  /// is checked at every round boundary (deadline, cancellation, page
  /// budget) and inside the bucket scan (cancellation every increment, the
  /// clock every kCheckIntervalMask+1 increments); expiry stops the query
  /// cooperatively with partial results.
  Result<NeighborList> RunQuery(const Dataset& data, const float* query, size_t k,
                                long long max_radius, C2lshQueryStats* stats,
                                C2lshQueryScratch* scratch,
                                const std::function<bool(ObjectId)>* filter = nullptr,
                                obs::QueryTrace* trace = nullptr,
                                const QueryContext* ctx = nullptr) const;

  /// The probe interval at radius R, falling back to a full-table range once
  /// R exceeds the radius schedule cap (guarantees termination).
  BucketRange IntervalForRadius(BucketId query_bucket, long long R) const;

  /// Refreshes the overlay/tombstone gauges after a mutation. Called with
  /// writer_mu_ held (tables are quiescent, so per-table snapshots agree).
  void UpdateMutationGauges() const;

  C2lshOptions options_;
  C2lshDerived derived_;
  PStableFamily family_;
  std::vector<BucketTable> tables_;
  /// Store-release by mutators after their table versions publish; see
  /// num_objects().
  std::atomic<size_t> num_objects_{0};
  size_t dim_ = 0;
  long long radius_cap_ = 1;  ///< c^max_radius_exponent
  PageModel page_model_;
  /// Serializes Insert/Delete/Compact against each other (never held while a
  /// query scans — queries run on pinned snapshots).
  mutable Mutex writer_mu_;

  // Scratch behind the convenience Query()/DecisionQuery() entry points
  // (those are documented non-concurrent; Searcher owns its own).
  mutable C2lshQueryScratch scratch_;
};

}  // namespace c2lsh

#endif  // C2LSH_CORE_INDEX_H_
