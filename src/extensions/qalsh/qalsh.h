// QALSH — query-aware LSH (Huang et al., PVLDB 2015 / VLDBJ 2017), the
// direct successor of C2LSH's dynamic collision counting framework,
// implemented here as the paper's "future work" extension.
//
// Differences from C2LSH:
//   * The hash is the raw projection h_a(o) = a.o — no quantization and no
//     random offset. Buckets are *query-centric*: at radius R, object o
//     collides with query q under function a iff
//         |a.o - a.q| <= w * R / 2.
//   * The collision probability at distance s is therefore
//         p_qa(s; w) = P[|N(0, s^2)| <= w/2] = 2*Phi(w / (2s)) - 1,
//     which is strictly larger than the offset-quantized probability at the
//     same (s, w) — query-aware buckets waste no probability mass on grid
//     misalignment.
//   * Virtual rehashing widens the window around the query's own projection,
//     so the radius schedule R in {1, c, c^2, ...} works for ANY real c > 1
//     (C2LSH needs integer c for its aligned integer buckets). c = 1.5 or
//     even 1.2 are valid here.
//
// The parameterization (z, alpha, m, l from Hoeffding bounds) and the
// T1/T2 termination rules are shared with C2LSH (core/params.h).
//
// Storage: one sorted projection array per function (the in-memory
// equivalent of the paper's B+-tree per projection); a query keeps a
// [left, right) cursor pair per function and each round extends both ends to
// the new window — incremental, like C2LSH's side-run scans.

#pragma once
#ifndef C2LSH_EXTENSIONS_QALSH_QALSH_H_
#define C2LSH_EXTENSIONS_QALSH_QALSH_H_

#include <cstdint>
#include <vector>

#include "src/core/params.h"
#include "src/obs/trace.h"
#include "src/storage/page_model.h"
#include "src/util/query_context.h"
#include "src/util/result.h"
#include "src/vector/aligned.h"
#include "src/vector/dataset.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Configuration of a QALSH index.
struct QalshOptions {
  /// The l_p metric served: 2.0 (Euclidean, Gaussian projections) or
  /// 1.0 (Manhattan, Cauchy projections). Collision probabilities, parameter
  /// derivation and candidate verification all follow the chosen p — the
  /// multi-metric capability the collision-counting framework enables.
  double p = 2.0;

  /// Bucket width of the query-centric window (|proj diff| <= w*R/2).
  double w = 1.0;
  /// Approximation ratio — any real value > 1 (the headline flexibility of
  /// the query-aware scheme).
  double c = 2.0;
  /// Per-query error probability of property P1.
  double delta = 0.1;
  /// False-positive frequency; 0 = the 100/n default shared with C2LSH.
  double beta = 0.0;
  /// Rounds in the radius schedule before the exhaustive fallback.
  int max_rounds = 48;
  uint64_t seed = 1;
  size_t page_bytes = 4096;
};

/// Derived QALSH parameters.
struct QalshDerived {
  double p1 = 0.0;  ///< 2*Phi(w/2) - 1, collision prob. at distance R
  double p2 = 0.0;  ///< 2*Phi(w/(2c)) - 1, collision prob. at distance cR
  double beta = 0.0;
  CountingParams counting;  ///< z, alpha, m, l
};

/// Query-aware collision probability for two points at l_p distance s under
/// a window of total width w:
///   p = 2:  2*Phi(w/(2s)) - 1                (projection diff ~ N(0, s^2))
///   p = 1:  (2/pi) * arctan(w/(2s))          (projection diff ~ Cauchy(s))
/// Both are 1 at s = 0 and strictly decreasing in s.
double QalshCollisionProbability(double s, double w, double p = 2.0);

/// Validates options and derives (p1, p2, z, alpha, m, l) for cardinality n.
Result<QalshDerived> ComputeQalshParams(const QalshOptions& options, size_t n);

/// Per-query statistics, same currency as C2lshQueryStats.
struct QalshQueryStats {
  uint64_t rounds = 0;
  double final_radius = 0.0;
  uint64_t collision_increments = 0;
  uint64_t candidates_verified = 0;
  uint64_t index_pages = 0;
  uint64_t data_pages = 0;
  /// How the round loop stopped: kT1, kT2, kExhausted (every projection
  /// column fully scanned), kDeadline / kCancelled (a QueryContext stopped
  /// it with partial results), or kNone if the loop never ran.
  Termination termination = Termination::kNone;

  uint64_t total_pages() const { return index_pages + data_pages; }
};

/// The QALSH index.
class QalshIndex {
 public:
  static Result<QalshIndex> Build(const Dataset& data, const QalshOptions& options);

  /// c-k-ANN query; up to k neighbors ascending by exact distance. `ctx`
  /// (nullable) bounds the query — deadline / cancellation / page budget
  /// expiry returns best-effort partial results under kDeadline /
  /// kCancelled, never an error. Not thread-safe (per-query scratch reused).
  Result<NeighborList> Query(const Dataset& data, const float* query, size_t k,
                             QalshQueryStats* stats = nullptr,
                             const QueryContext* ctx = nullptr) const;

  const QalshOptions& options() const { return options_; }
  const QalshDerived& derived() const { return derived_; }
  size_t num_objects() const { return num_objects_; }
  size_t MemoryBytes() const;

 private:
  /// One projection's sorted (value, id) column.
  struct ProjectionColumn {
    std::vector<float> values;  // sorted ascending
    std::vector<ObjectId> ids;  // aligned with values
  };

  QalshIndex(QalshOptions options, QalshDerived derived,
             std::vector<std::vector<float>> projections,
             std::vector<ProjectionColumn> columns, size_t num_objects, size_t dim);

  QalshOptions options_;
  QalshDerived derived_;
  std::vector<std::vector<float>> projections_;  // the m projection vectors a_i
  // The same m vectors packed into one aligned row-major matrix (rows padded
  // to packed_stride_), so the query's m projections run as one blocked
  // matrix-vector pass through the SIMD kernel layer.
  AlignedVector<float> packed_;
  size_t packed_stride_ = 0;
  std::vector<ProjectionColumn> columns_;
  size_t num_objects_ = 0;
  size_t dim_ = 0;
  PageModel page_model_;

  // Per-query scratch (documented non-concurrent).
  struct Cursor {
    size_t left;   // first index already counted
    size_t right;  // one past the last index already counted
  };
  mutable std::vector<Cursor> cursors_;
  mutable std::vector<uint32_t> counts_;
  mutable std::vector<uint32_t> epochs_;
  mutable uint32_t epoch_ = 0;
  mutable std::vector<uint8_t> verified_;
  mutable std::vector<ObjectId> touched_;
};

}  // namespace c2lsh

#endif  // C2LSH_EXTENSIONS_QALSH_QALSH_H_
