#include "src/extensions/qalsh/qalsh.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "src/obs/registry.h"
#include "src/util/math.h"
#include "src/util/random.h"
#include "src/util/timer.h"
#include "src/vector/distance.h"
#include "src/vector/simd.h"

namespace c2lsh {

namespace {
// Chunk size bounding the stack scratch of blocked projection passes.
constexpr size_t kProjectionChunk = 256;

// Registry handles resolved once; per-query stats are flushed in one pass at
// query end so the scan loops never touch an atomic.
struct QalshMetrics {
  obs::Counter* queries;
  obs::Counter* rounds;
  obs::Counter* collision_increments;
  obs::Counter* candidates_verified;
  obs::Counter* t1;
  obs::Counter* t2;
  obs::Counter* exhausted;
  obs::Counter* deadline;
  obs::Counter* cancelled;
  obs::Histogram* latency;
};

const QalshMetrics& Metrics() {
  static const QalshMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    QalshMetrics mm;
    mm.queries = r.GetCounter("qalsh_queries_total", "QALSH queries answered");
    mm.rounds = r.GetCounter("qalsh_rounds_total", "QALSH virtual-rehashing rounds run");
    mm.collision_increments = r.GetCounter("qalsh_collision_increments_total",
                                           "QALSH collision-counter increments");
    mm.candidates_verified = r.GetCounter("qalsh_candidates_verified_total",
                                          "QALSH candidates verified by exact distance");
    mm.t1 = r.GetCounter("qalsh_queries_t1_total", "QALSH queries terminated by T1");
    mm.t2 = r.GetCounter("qalsh_queries_t2_total", "QALSH queries terminated by T2");
    mm.exhausted = r.GetCounter("qalsh_queries_exhausted_total",
                                "QALSH queries that scanned every projection column");
    mm.deadline = r.GetCounter(
        "qalsh_queries_deadline_total",
        "QALSH queries stopped by a deadline or page budget (partial results)");
    mm.cancelled = r.GetCounter("qalsh_queries_cancelled_total",
                                "QALSH queries cooperatively cancelled (partial results)");
    mm.latency = r.GetHistogram("qalsh_query_millis", "QALSH query latency (ms)");
    return mm;
  }();
  return m;
}

void FlushQueryMetrics(const QalshQueryStats& st, double millis) {
  const QalshMetrics& m = Metrics();
  m.queries->Increment();
  m.rounds->Increment(st.rounds);
  m.collision_increments->Increment(st.collision_increments);
  m.candidates_verified->Increment(st.candidates_verified);
  switch (st.termination) {
    case Termination::kT1: m.t1->Increment(); break;
    case Termination::kT2: m.t2->Increment(); break;
    case Termination::kExhausted: m.exhausted->Increment(); break;
    case Termination::kDeadline: m.deadline->Increment(); break;
    case Termination::kCancelled: m.cancelled->Increment(); break;
    case Termination::kNone: break;
  }
  m.latency->Observe(millis);
}
}  // namespace

double QalshCollisionProbability(double s, double w, double p) {
  if (s <= 0.0) return 1.0;
  if (p == 1.0) {
    // Cauchy 1-stable: projection difference ~ Cauchy(0, s).
    return (2.0 / M_PI) * std::atan(w / (2.0 * s));
  }
  return 2.0 * NormalCdf(w / (2.0 * s)) - 1.0;
}

Result<QalshDerived> ComputeQalshParams(const QalshOptions& options, size_t n) {
  if (n == 0) return Status::InvalidArgument("QALSH: dataset must be non-empty");
  if (!(options.w > 0.0)) {
    return Status::InvalidArgument("QALSH: w must be positive");
  }
  if (!(options.c > 1.0)) {
    return Status::InvalidArgument("QALSH: c must exceed 1 (any real value), got " +
                                   std::to_string(options.c));
  }
  if (options.p != 1.0 && options.p != 2.0) {
    return Status::InvalidArgument("QALSH: p must be 1 (Manhattan) or 2 (Euclidean)");
  }
  if (options.max_rounds < 1) {
    return Status::InvalidArgument("QALSH: max_rounds must be positive");
  }
  QalshDerived d;
  d.p1 = QalshCollisionProbability(1.0, options.w, options.p);
  d.p2 = QalshCollisionProbability(options.c, options.w, options.p);
  d.beta = (options.beta > 0.0) ? options.beta : 100.0 / static_cast<double>(n);
  if (d.beta * static_cast<double>(n) < 1.0) {
    return Status::InvalidArgument("QALSH: the false-positive budget beta*n must be >= 1");
  }
  if (d.beta >= 1.0) d.beta = 0.999;
  C2LSH_ASSIGN_OR_RETURN(d.counting,
                         ComputeCountingParams(d.p1, d.p2, options.delta, d.beta));
  return d;
}

QalshIndex::QalshIndex(QalshOptions options, QalshDerived derived,
                       std::vector<std::vector<float>> projections,
                       std::vector<ProjectionColumn> columns, size_t num_objects,
                       size_t dim)
    : options_(options),
      derived_(derived),
      projections_(std::move(projections)),
      packed_stride_(AlignedStride<float>(dim)),
      columns_(std::move(columns)),
      num_objects_(num_objects),
      dim_(dim),
      page_model_(options.page_bytes),
      counts_(num_objects, 0),
      epochs_(num_objects, 0),
      verified_(num_objects, 0) {
  packed_.assign(projections_.size() * packed_stride_, 0.0f);
  for (size_t i = 0; i < projections_.size(); ++i) {
    std::copy(projections_[i].begin(), projections_[i].end(),
              packed_.begin() + i * packed_stride_);
  }
}

Result<QalshIndex> QalshIndex::Build(const Dataset& data, const QalshOptions& options) {
  C2LSH_ASSIGN_OR_RETURN(QalshDerived derived, ComputeQalshParams(options, data.size()));
  const size_t m = derived.counting.m;
  const size_t n = data.size();
  const size_t dim = data.dim();

  Rng rng(options.seed);
  std::vector<std::vector<float>> projections(m);
  std::vector<ProjectionColumn> columns(m);
  for (size_t i = 0; i < m; ++i) {
    if (options.p == 1.0) {
      // Cauchy samples via the inverse CDF: tan(pi * (U - 1/2)).
      projections[i].resize(dim);
      for (size_t j = 0; j < dim; ++j) {
        projections[i][j] =
            static_cast<float>(std::tan(M_PI * (rng.Uniform(0.0, 1.0) - 0.5)));
      }
    } else {
      rng.GaussianVector(dim, &projections[i]);
    }
    ProjectionColumn& col = columns[i];
    col.values.resize(n);
    col.ids.resize(n);
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::vector<float> raw(n);
    double proj[kProjectionChunk];
    for (size_t start = 0; start < n; start += kProjectionChunk) {
      const size_t count = std::min(kProjectionChunk, n - start);
      simd::Active().dot_rows(data.vectors().row(start), count, dim, dim,
                              projections[i].data(), proj);
      for (size_t r = 0; r < count; ++r) {
        raw[start + r] = static_cast<float>(proj[r]);
      }
    }
    std::sort(order.begin(), order.end(),
              [&raw](size_t a, size_t b) { return raw[a] < raw[b]; });
    for (size_t r = 0; r < n; ++r) {
      col.values[r] = raw[order[r]];
      col.ids[r] = static_cast<ObjectId>(order[r]);
    }
  }
  return QalshIndex(options, derived, std::move(projections), std::move(columns), n, dim);
}

Result<NeighborList> QalshIndex::Query(const Dataset& data, const float* query, size_t k,
                                       QalshQueryStats* stats,
                                       const QueryContext* ctx) const {
  if (k == 0) return Status::InvalidArgument("QALSH query: k must be positive");
  if (data.dim() != dim_) {
    return Status::InvalidArgument("QALSH query: dataset dim mismatch");
  }
  if (data.size() < num_objects_) {
    return Status::InvalidArgument("QALSH query: dataset smaller than the index");
  }
  QalshQueryStats local;
  QalshQueryStats* st = (stats != nullptr) ? stats : &local;
  *st = QalshQueryStats();
  Timer query_timer;

  const size_t m = columns_.size();
  const uint32_t l = static_cast<uint32_t>(derived_.counting.l);
  const double c = options_.c;
  const double w = options_.w;
  const size_t t2_threshold = std::min<size_t>(
      num_objects_,
      k + static_cast<size_t>(std::ceil(derived_.beta * static_cast<double>(num_objects_))));

  // Per-query lazy-reset scratch.
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(epochs_.begin(), epochs_.end(), 0);
    std::fill(counts_.begin(), counts_.end(), 0);
    epoch_ = 1;
  }
  for (ObjectId id : touched_) verified_[id] = 0;
  touched_.clear();

  // Query projections — one blocked matrix-vector pass over the packed
  // projection matrix — then initial cursors at the query's insertion point.
  std::vector<double> qproj(m);
  for (size_t start = 0; start < m; start += kProjectionChunk) {
    const size_t count = std::min(kProjectionChunk, m - start);
    simd::Active().dot_rows(packed_.data() + start * packed_stride_, count,
                            packed_stride_, dim_, query, qproj.data() + start);
  }
  cursors_.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const auto& vals = columns_[i].values;
    const size_t pos = static_cast<size_t>(
        std::lower_bound(vals.begin(), vals.end(), static_cast<float>(qproj[i])) -
        vals.begin());
    cursors_[i] = Cursor{pos, pos};
    ++st->index_pages;  // per-column descent to the query's position
  }

  NeighborList found;
  found.reserve(t2_threshold + m);
  const uint64_t vector_pages = page_model_.PagesPerVector(dim_);
  const size_t entries_per_page = std::max<size_t>(
      1, page_model_.EntriesPerPage(sizeof(float) + sizeof(ObjectId)));

  // Cooperative-stop state, same contract as C2lshIndex::RunQuery:
  // cancellation polled every increment (an acquire load), the clock only
  // every kCheckIntervalMask+1 increments.
  Termination early_stop = Termination::kNone;

  auto count_one = [&](ObjectId id) {
    ++st->collision_increments;
    if (ctx != nullptr) {
      if (ctx->cancelled()) {
        early_stop = Termination::kCancelled;
        return;
      }
      if ((st->collision_increments & QueryContext::kCheckIntervalMask) == 0 &&
          ctx->deadline.Expired()) {
        early_stop = Termination::kDeadline;
        return;
      }
    }
    if (verified_[id] != 0) return;
    if (epochs_[id] != epoch_) {
      epochs_[id] = epoch_;
      counts_[id] = 0;
    }
    if (++counts_[id] == l) {
      verified_[id] = 1;
      touched_.push_back(id);
      const double dist = options_.p == 1.0 ? L1(query, data.object(id), dim_)
                                            : L2(query, data.object(id), dim_);
      found.push_back(Neighbor{id, static_cast<float>(dist)});
      ++st->candidates_verified;
      st->data_pages += vector_pages;
    }
  };

  double R = 1.0;
  int round = 0;
  while (true) {
    // Round boundary: the full context check (deadline, cancellation, page
    // budget against the modelled page count). A pre-expired context runs
    // zero rounds and returns empty.
    if (ctx != nullptr && early_stop == Termination::kNone) {
      early_stop = ctx->Check(st->total_pages());
    }
    if (early_stop != Termination::kNone) {
      st->termination = early_stop;
      break;
    }
    ++st->rounds;
    st->final_radius = R;
    const bool exhaustive = round >= options_.max_rounds;
    const double half_window = exhaustive ? std::numeric_limits<double>::infinity()
                                          : w * R / 2.0;

    bool all_covered = true;
    for (size_t i = 0; i < m; ++i) {
      if (early_stop != Termination::kNone) break;
      const auto& col = columns_[i];
      Cursor& cur = cursors_[i];
      const double lo = qproj[i] - half_window;
      const double hi = qproj[i] + half_window;
      size_t scanned = 0;
      while (early_stop == Termination::kNone && cur.left > 0 &&
             static_cast<double>(col.values[cur.left - 1]) >= lo) {
        --cur.left;
        count_one(col.ids[cur.left]);
        ++scanned;
      }
      while (early_stop == Termination::kNone && cur.right < col.values.size() &&
             static_cast<double>(col.values[cur.right]) <= hi) {
        count_one(col.ids[cur.right]);
        ++cur.right;
        ++scanned;
      }
      if (scanned > 0) {
        st->index_pages += (scanned + entries_per_page - 1) / entries_per_page;
      }
      if (cur.left > 0 || cur.right < col.values.size()) {
        all_covered = false;
      }
    }

    // T1: k verified candidates within c*R. Evaluated even after an early
    // stop — a partial scan that already proved the answer keeps the
    // full-quality termination.
    const double cr = c * R;
    size_t within = 0;
    for (const Neighbor& nb : found) {
      if (nb.dist <= cr) ++within;
      if (within >= k) break;
    }
    if (within >= k) {
      st->termination = Termination::kT1;
      break;
    }
    // T2: false-positive budget exhausted.
    if (found.size() >= t2_threshold) {
      st->termination = Termination::kT2;
      break;
    }
    if (early_stop != Termination::kNone) {
      // Partial results; beats kExhausted because an interrupted round never
      // examined the remaining columns' coverage.
      st->termination = early_stop;
      break;
    }
    if (all_covered) {
      st->termination = Termination::kExhausted;
      break;
    }
    R *= c;
    ++round;
  }

  std::sort(found.begin(), found.end(), NeighborLess());
  if (found.size() > k) found.resize(k);
  FlushQueryMetrics(*st, query_timer.ElapsedMillis());
  return found;
}

size_t QalshIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const ProjectionColumn& col : columns_) {
    bytes += col.values.size() * sizeof(float) + col.ids.size() * sizeof(ObjectId);
  }
  for (const auto& a : projections_) bytes += a.size() * sizeof(float);
  bytes += packed_.size() * sizeof(float);
  return bytes;
}

}  // namespace c2lsh
