// The experiment harness: runs a method over a query workload, aggregates
// accuracy and cost against exact ground truth, and reports the averages the
// paper's tables and figures are made of.

#pragma once
#ifndef C2LSH_EVAL_HARNESS_H_
#define C2LSH_EVAL_HARNESS_H_

#include <array>
#include <string>
#include <vector>

#include "src/eval/method.h"
#include "src/obs/trace.h"
#include "src/util/result.h"
#include "src/vector/dataset.h"
#include "src/vector/matrix.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Aggregates over a query workload.
struct WorkloadResult {
  std::string method_name;
  size_t k = 0;
  size_t num_queries = 0;

  double mean_recall = 0.0;
  double mean_ratio = 0.0;

  double mean_query_millis = 0.0;
  double p50_query_millis = 0.0;
  double p95_query_millis = 0.0;
  double p99_query_millis = 0.0;
  double mean_index_pages = 0.0;
  double mean_data_pages = 0.0;
  double mean_total_pages = 0.0;
  double mean_candidates = 0.0;

  size_t index_bytes = 0;
  double build_seconds = 0.0;

  /// How many queries ended with each obs::Termination kind, indexed by the
  /// enum value (kNone counts methods without termination accounting). With
  /// a deadline-bounded workload this is the breakdown of how many answers
  /// were full-quality (t1/t2) vs. best-effort partial (deadline/cancelled).
  std::array<uint64_t, obs::kNumTerminationKinds> termination_counts{};

  /// Wall latency of every individual query, in workload order. Always
  /// filled — the percentiles above are computed from it.
  std::vector<double> query_millis;

  /// One trace per query, filled only when WorkloadOptions::collect_traces
  /// is set and the method supports tracing (empty otherwise).
  std::vector<obs::QueryTrace> traces;
};

/// Knobs for RunWorkload beyond the workload itself.
struct WorkloadOptions {
  /// Ask the method for a per-round QueryTrace of every query (methods
  /// without tracing support run unchanged and yield no traces).
  bool collect_traces = false;
};

/// Runs every query through `method` and aggregates. Ground truth must hold
/// at least k neighbors per query.
Result<WorkloadResult> RunWorkload(AnnMethod* method, const Dataset& data,
                                   const FloatMatrix& queries,
                                   const std::vector<NeighborList>& ground_truth,
                                   size_t k);

/// As above, with options (trace collection).
Result<WorkloadResult> RunWorkload(AnnMethod* method, const Dataset& data,
                                   const FloatMatrix& queries,
                                   const std::vector<NeighborList>& ground_truth,
                                   size_t k, const WorkloadOptions& options);

/// Runs the workload for each k in `ks`.
Result<std::vector<WorkloadResult>> RunWorkloadSweep(
    AnnMethod* method, const Dataset& data, const FloatMatrix& queries,
    const std::vector<NeighborList>& ground_truth, const std::vector<size_t>& ks);

}  // namespace c2lsh

#endif  // C2LSH_EVAL_HARNESS_H_
