#include "src/eval/harness.h"

#include "src/eval/metrics.h"
#include "src/util/timer.h"

namespace c2lsh {

Result<WorkloadResult> RunWorkload(AnnMethod* method, const Dataset& data,
                                   const FloatMatrix& queries,
                                   const std::vector<NeighborList>& ground_truth,
                                   size_t k) {
  if (method == nullptr) {
    return Status::InvalidArgument("RunWorkload: method is null");
  }
  if (ground_truth.size() < queries.num_rows()) {
    return Status::InvalidArgument("RunWorkload: ground truth covers " +
                                   std::to_string(ground_truth.size()) + " of " +
                                   std::to_string(queries.num_rows()) + " queries");
  }
  WorkloadResult agg;
  agg.method_name = method->name();
  agg.k = k;
  agg.num_queries = queries.num_rows();
  agg.index_bytes = method->MemoryBytes();
  agg.build_seconds = method->build_seconds();

  double recall_sum = 0.0;
  double ratio_sum = 0.0;
  double millis_sum = 0.0;
  double index_pages_sum = 0.0;
  double data_pages_sum = 0.0;
  double candidates_sum = 0.0;

  for (size_t i = 0; i < queries.num_rows(); ++i) {
    SearchCost cost;
    Timer timer;
    C2LSH_ASSIGN_OR_RETURN(NeighborList result,
                           method->Search(data, queries.row(i), k, &cost));
    millis_sum += timer.ElapsedMillis();
    recall_sum += Recall(result, ground_truth[i], k);
    ratio_sum += OverallRatio(result, ground_truth[i], k);
    index_pages_sum += static_cast<double>(cost.index_pages);
    data_pages_sum += static_cast<double>(cost.data_pages);
    candidates_sum += static_cast<double>(cost.candidates_verified);
  }

  const double nq = static_cast<double>(queries.num_rows());
  agg.mean_recall = recall_sum / nq;
  agg.mean_ratio = ratio_sum / nq;
  agg.mean_query_millis = millis_sum / nq;
  agg.mean_index_pages = index_pages_sum / nq;
  agg.mean_data_pages = data_pages_sum / nq;
  agg.mean_total_pages = agg.mean_index_pages + agg.mean_data_pages;
  agg.mean_candidates = candidates_sum / nq;
  return agg;
}

Result<std::vector<WorkloadResult>> RunWorkloadSweep(
    AnnMethod* method, const Dataset& data, const FloatMatrix& queries,
    const std::vector<NeighborList>& ground_truth, const std::vector<size_t>& ks) {
  std::vector<WorkloadResult> out;
  out.reserve(ks.size());
  for (size_t k : ks) {
    C2LSH_ASSIGN_OR_RETURN(WorkloadResult r,
                           RunWorkload(method, data, queries, ground_truth, k));
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace c2lsh
