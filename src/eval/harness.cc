#include "src/eval/harness.h"

#include <utility>

#include "src/eval/metrics.h"
#include "src/obs/registry.h"
#include "src/util/math.h"
#include "src/util/timer.h"

namespace c2lsh {
namespace {

struct HarnessMetrics {
  obs::Counter* queries;
  obs::Histogram* latency;
};

const HarnessMetrics& Metrics() {
  static const HarnessMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    return HarnessMetrics{
        r.GetCounter("eval_queries_total",
                     "Queries executed by the evaluation harness"),
        r.GetHistogram("eval_query_millis",
                       "End-to-end harness query latency in milliseconds"),
    };
  }();
  return m;
}

}  // namespace

Result<WorkloadResult> RunWorkload(AnnMethod* method, const Dataset& data,
                                   const FloatMatrix& queries,
                                   const std::vector<NeighborList>& ground_truth,
                                   size_t k) {
  return RunWorkload(method, data, queries, ground_truth, k, WorkloadOptions());
}

Result<WorkloadResult> RunWorkload(AnnMethod* method, const Dataset& data,
                                   const FloatMatrix& queries,
                                   const std::vector<NeighborList>& ground_truth,
                                   size_t k, const WorkloadOptions& options) {
  if (method == nullptr) {
    return Status::InvalidArgument("RunWorkload: method is null");
  }
  if (ground_truth.size() < queries.num_rows()) {
    return Status::InvalidArgument("RunWorkload: ground truth covers " +
                                   std::to_string(ground_truth.size()) + " of " +
                                   std::to_string(queries.num_rows()) + " queries");
  }
  WorkloadResult agg;
  agg.method_name = method->name();
  agg.k = k;
  agg.num_queries = queries.num_rows();
  agg.index_bytes = method->MemoryBytes();
  agg.build_seconds = method->build_seconds();
  agg.query_millis.reserve(queries.num_rows());

  const bool tracing = options.collect_traces && method->SupportsTracing();
  if (tracing) {
    method->set_collect_traces(true);
    agg.traces.reserve(queries.num_rows());
  }

  double recall_sum = 0.0;
  double ratio_sum = 0.0;
  double index_pages_sum = 0.0;
  double data_pages_sum = 0.0;
  double candidates_sum = 0.0;

  for (size_t i = 0; i < queries.num_rows(); ++i) {
    SearchCost cost;
    Timer timer;
    C2LSH_ASSIGN_OR_RETURN(NeighborList result,
                           method->Search(data, queries.row(i), k, &cost));
    const double millis = timer.ElapsedMillis();
    agg.query_millis.push_back(millis);
    Metrics().queries->Increment();
    Metrics().latency->Observe(millis);
    if (tracing) {
      const obs::QueryTrace* trace = method->last_trace();
      if (trace != nullptr) agg.traces.push_back(*trace);
    }
    const size_t term = static_cast<size_t>(cost.termination);
    if (term < agg.termination_counts.size()) ++agg.termination_counts[term];
    recall_sum += Recall(result, ground_truth[i], k);
    ratio_sum += OverallRatio(result, ground_truth[i], k);
    index_pages_sum += static_cast<double>(cost.index_pages);
    data_pages_sum += static_cast<double>(cost.data_pages);
    candidates_sum += static_cast<double>(cost.candidates_verified);
  }
  if (tracing) method->set_collect_traces(false);

  const double nq = static_cast<double>(queries.num_rows());
  double millis_sum = 0.0;
  for (double millis : agg.query_millis) millis_sum += millis;
  agg.mean_recall = recall_sum / nq;
  agg.mean_ratio = ratio_sum / nq;
  agg.mean_query_millis = millis_sum / nq;
  agg.p50_query_millis = Percentile(agg.query_millis, 50.0);
  agg.p95_query_millis = Percentile(agg.query_millis, 95.0);
  agg.p99_query_millis = Percentile(agg.query_millis, 99.0);
  agg.mean_index_pages = index_pages_sum / nq;
  agg.mean_data_pages = data_pages_sum / nq;
  agg.mean_total_pages = agg.mean_index_pages + agg.mean_data_pages;
  agg.mean_candidates = candidates_sum / nq;
  return agg;
}

Result<std::vector<WorkloadResult>> RunWorkloadSweep(
    AnnMethod* method, const Dataset& data, const FloatMatrix& queries,
    const std::vector<NeighborList>& ground_truth, const std::vector<size_t>& ks) {
  std::vector<WorkloadResult> out;
  out.reserve(ks.size());
  for (size_t k : ks) {
    C2LSH_ASSIGN_OR_RETURN(WorkloadResult r,
                           RunWorkload(method, data, queries, ground_truth, k));
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace c2lsh
