#include "src/eval/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace c2lsh {

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::FmtInt(long long v) { return std::to_string(v); }

std::string TablePrinter::FmtBytes(size_t bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (bytes >= (1ULL << 30)) {
    os << static_cast<double>(bytes) / (1ULL << 30) << " GiB";
  } else if (bytes >= (1ULL << 20)) {
    os << static_cast<double>(bytes) / (1ULL << 20) << " MiB";
  } else if (bytes >= (1ULL << 10)) {
    os << static_cast<double>(bytes) / (1ULL << 10) << " KiB";
  } else {
    os << bytes << " B";
  }
  return os.str();
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << cells[i];
      if (i + 1 < cells.size()) os << "   ";
    }
    os << "\n";
  };
  emit_row(headers_);
  std::vector<std::string> rule(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) rule[i] = std::string(widths[i], '-');
  emit_row(rule);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ",";
      os << cells[i];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace c2lsh
