#include "src/eval/report.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/obs/export.h"
#include "src/obs/registry.h"

namespace c2lsh {
namespace {

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void AppendWorkload(std::string* out, const WorkloadResult& r) {
  *out += "    {\"method\": \"" + EscapeJson(r.method_name) + "\",\n";
  *out += "     \"k\": " + std::to_string(r.k) + ",\n";
  *out += "     \"num_queries\": " + std::to_string(r.num_queries) + ",\n";
  *out += "     \"mean_recall\": " + Fmt(r.mean_recall) + ",\n";
  *out += "     \"mean_ratio\": " + Fmt(r.mean_ratio) + ",\n";
  *out += "     \"mean_query_millis\": " + Fmt(r.mean_query_millis) + ",\n";
  *out += "     \"p50_query_millis\": " + Fmt(r.p50_query_millis) + ",\n";
  *out += "     \"p95_query_millis\": " + Fmt(r.p95_query_millis) + ",\n";
  *out += "     \"p99_query_millis\": " + Fmt(r.p99_query_millis) + ",\n";
  *out += "     \"mean_index_pages\": " + Fmt(r.mean_index_pages) + ",\n";
  *out += "     \"mean_data_pages\": " + Fmt(r.mean_data_pages) + ",\n";
  *out += "     \"mean_candidates\": " + Fmt(r.mean_candidates) + ",\n";
  *out += "     \"index_bytes\": " + std::to_string(r.index_bytes) + ",\n";
  *out += "     \"build_seconds\": " + Fmt(r.build_seconds) + ",\n";
  *out += "     \"termination_counts\": {";
  for (size_t t = 0; t < r.termination_counts.size(); ++t) {
    if (t > 0) *out += ", ";
    *out += "\"" +
            std::string(obs::TerminationName(static_cast<obs::Termination>(t))) +
            "\": " + std::to_string(r.termination_counts[t]);
  }
  *out += "},\n";
  *out += "     \"traces\": [";
  for (size_t i = 0; i < r.traces.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "\n       " + r.traces[i].ToJson();
  }
  if (!r.traces.empty()) *out += "\n     ";
  *out += "]}";
}

}  // namespace

std::string RenderMetricsReport(const std::vector<WorkloadResult>& results) {
  auto& registry = obs::MetricsRegistry::Global();

  // Hit rate straight from the pool counters so the report carries it as a
  // first-class field (it is also derivable from the registry section).
  double hit_rate = 0.0;
  const obs::Counter* hits = registry.FindCounter("buffer_pool_hits_total");
  const obs::Counter* misses = registry.FindCounter("buffer_pool_misses_total");
  if (hits != nullptr && misses != nullptr) {
    const double accesses =
        static_cast<double>(hits->value()) + static_cast<double>(misses->value());
    if (accesses > 0.0) hit_rate = static_cast<double>(hits->value()) / accesses;
  }

  std::string out = "{\n  \"workloads\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    AppendWorkload(&out, results[i]);
    if (i + 1 < results.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"buffer_pool_hit_rate\": " + Fmt(hit_rate) + ",\n";
  out += "  \"registry\": " + obs::FormatJson(registry.Snapshot());
  out += "}\n";
  return out;
}

Status WriteMetricsReport(const std::string& path,
                          const std::vector<WorkloadResult>& results) {
  const std::string body = RenderMetricsReport(results);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("WriteMetricsReport: cannot open " + path + ": " +
                           std::strerror(errno));
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::IOError("WriteMetricsReport: short write to " + path);
  }
  return Status::OK();
}

}  // namespace c2lsh
