#include "src/eval/method.h"

#include <sstream>
#include <utility>

#include "src/util/timer.h"

namespace c2lsh {

namespace {

class C2lshMethod : public AnnMethod {
 public:
  explicit C2lshMethod(C2lshIndex index) : index_(std::move(index)) {}

  std::string name() const override {
    std::ostringstream os;
    os << "C2LSH(m=" << index_.derived().m << ",l=" << index_.derived().l
       << ",c=" << index_.options().c << ")";
    return os.str();
  }

  Result<NeighborList> Search(const Dataset& data, const float* query, size_t k,
                              SearchCost* cost) override {
    C2lshQueryStats stats;
    obs::QueryTrace* trace = collect_traces_ ? &trace_ : nullptr;
    C2LSH_ASSIGN_OR_RETURN(NeighborList result,
                           index_.Query(data, query, k, &stats, trace));
    if (cost != nullptr) {
      cost->index_pages = stats.index_pages;
      cost->data_pages = stats.data_pages;
      cost->candidates_verified = stats.candidates_verified;
      cost->termination = stats.termination;
    }
    return result;
  }

  size_t MemoryBytes() const override { return index_.MemoryBytes(); }

  bool SupportsTracing() const override { return true; }
  void set_collect_traces(bool enabled) override { collect_traces_ = enabled; }
  const obs::QueryTrace* last_trace() const override {
    return collect_traces_ ? &trace_ : nullptr;
  }

 private:
  C2lshIndex index_;
  bool collect_traces_ = false;
  obs::QueryTrace trace_;
};

class E2lshMethod : public AnnMethod {
 public:
  explicit E2lshMethod(E2lshIndex index) : index_(std::move(index)) {}

  std::string name() const override {
    std::ostringstream os;
    os << "E2LSH(K=" << index_.options().K << ",L=" << index_.options().L << ")";
    return os.str();
  }

  Result<NeighborList> Search(const Dataset& data, const float* query, size_t k,
                              SearchCost* cost) override {
    E2lshQueryStats stats;
    C2LSH_ASSIGN_OR_RETURN(NeighborList result, index_.Query(data, query, k, &stats));
    if (cost != nullptr) {
      cost->index_pages = stats.index_pages;
      cost->data_pages = stats.data_pages;
      cost->candidates_verified = stats.candidates_verified;
    }
    return result;
  }

  size_t MemoryBytes() const override { return index_.MemoryBytes(); }

 private:
  E2lshIndex index_;
};

class LsbForestMethod : public AnnMethod {
 public:
  explicit LsbForestMethod(LsbForest index) : index_(std::move(index)) {}

  std::string name() const override {
    std::ostringstream os;
    os << "LSB-forest(L=" << index_.num_trees() << ",u=" << index_.options().tree.u << ")";
    return os.str();
  }

  Result<NeighborList> Search(const Dataset& data, const float* query, size_t k,
                              SearchCost* cost) override {
    LsbQueryStats stats;
    C2LSH_ASSIGN_OR_RETURN(NeighborList result, index_.Query(data, query, k, &stats));
    if (cost != nullptr) {
      cost->index_pages = stats.index_pages;
      cost->data_pages = stats.data_pages;
      cost->candidates_verified = stats.candidates_verified;
    }
    return result;
  }

  size_t MemoryBytes() const override { return index_.MemoryBytes(); }

 private:
  LsbForest index_;
};

class MultiProbeMethod : public AnnMethod {
 public:
  explicit MultiProbeMethod(MultiProbeIndex index) : index_(std::move(index)) {}

  std::string name() const override {
    std::ostringstream os;
    os << "MultiProbe(K=" << index_.options().K << ",L=" << index_.options().L
       << ",T=" << index_.options().num_probes << ")";
    return os.str();
  }

  Result<NeighborList> Search(const Dataset& data, const float* query, size_t k,
                              SearchCost* cost) override {
    MultiProbeQueryStats stats;
    C2LSH_ASSIGN_OR_RETURN(NeighborList result, index_.Query(data, query, k, &stats));
    if (cost != nullptr) {
      cost->index_pages = stats.index_pages;
      cost->data_pages = stats.data_pages;
      cost->candidates_verified = stats.candidates_verified;
    }
    return result;
  }

  size_t MemoryBytes() const override { return index_.MemoryBytes(); }

 private:
  MultiProbeIndex index_;
};

class SrsMethod : public AnnMethod {
 public:
  explicit SrsMethod(SrsIndex index) : index_(std::move(index)) {}

  std::string name() const override {
    std::ostringstream os;
    os << "SRS(m'=" << index_.options().projected_dim << ",c=" << index_.options().c
       << ",tau=" << index_.options().threshold << ")";
    return os.str();
  }

  Result<NeighborList> Search(const Dataset& data, const float* query, size_t k,
                              SearchCost* cost) override {
    SrsQueryStats stats;
    C2LSH_ASSIGN_OR_RETURN(NeighborList result, index_.Query(data, query, k, &stats));
    if (cost != nullptr) {
      cost->index_pages = stats.index_pages;
      cost->data_pages = stats.data_pages;
      cost->candidates_verified = stats.candidates_verified;
    }
    return result;
  }

  size_t MemoryBytes() const override { return index_.MemoryBytes(); }

 private:
  SrsIndex index_;
};

class LinearScanMethod : public AnnMethod {
 public:
  LinearScanMethod() = default;

  std::string name() const override { return "LinearScan"; }

  Result<NeighborList> Search(const Dataset& data, const float* query, size_t k,
                              SearchCost* cost) override {
    LinearScanStats stats;
    C2LSH_ASSIGN_OR_RETURN(NeighborList result, scan_.Search(data, query, k, &stats));
    if (cost != nullptr) {
      cost->index_pages = 0;
      cost->data_pages = stats.data_pages;
      cost->candidates_verified = stats.distance_computations;
    }
    return result;
  }

  size_t MemoryBytes() const override { return 0; }  // scan needs no index

 private:
  LinearScan scan_;
};

}  // namespace

Result<std::unique_ptr<AnnMethod>> MakeC2lshMethod(const Dataset& data,
                                                   const C2lshOptions& options) {
  Timer timer;
  C2LSH_ASSIGN_OR_RETURN(C2lshIndex index, C2lshIndex::Build(data, options));
  auto method = std::make_unique<C2lshMethod>(std::move(index));
  method->set_build_seconds(timer.ElapsedSeconds());
  return std::unique_ptr<AnnMethod>(std::move(method));
}

Result<std::unique_ptr<AnnMethod>> MakeE2lshMethod(const Dataset& data,
                                                   const E2lshOptions& options) {
  Timer timer;
  C2LSH_ASSIGN_OR_RETURN(E2lshIndex index, E2lshIndex::Build(data, options));
  auto method = std::make_unique<E2lshMethod>(std::move(index));
  method->set_build_seconds(timer.ElapsedSeconds());
  return std::unique_ptr<AnnMethod>(std::move(method));
}

Result<std::unique_ptr<AnnMethod>> MakeLsbForestMethod(const Dataset& data,
                                                       const LsbForestOptions& options) {
  Timer timer;
  C2LSH_ASSIGN_OR_RETURN(LsbForest index, LsbForest::Build(data, options));
  auto method = std::make_unique<LsbForestMethod>(std::move(index));
  method->set_build_seconds(timer.ElapsedSeconds());
  return std::unique_ptr<AnnMethod>(std::move(method));
}

Result<std::unique_ptr<AnnMethod>> MakeMultiProbeMethod(const Dataset& data,
                                                        const MultiProbeOptions& options) {
  Timer timer;
  C2LSH_ASSIGN_OR_RETURN(MultiProbeIndex index, MultiProbeIndex::Build(data, options));
  auto method = std::make_unique<MultiProbeMethod>(std::move(index));
  method->set_build_seconds(timer.ElapsedSeconds());
  return std::unique_ptr<AnnMethod>(std::move(method));
}

Result<std::unique_ptr<AnnMethod>> MakeSrsMethod(const Dataset& data,
                                                 const SrsOptions& options) {
  Timer timer;
  C2LSH_ASSIGN_OR_RETURN(SrsIndex index, SrsIndex::Build(data, options));
  auto method = std::make_unique<SrsMethod>(std::move(index));
  method->set_build_seconds(timer.ElapsedSeconds());
  return std::unique_ptr<AnnMethod>(std::move(method));
}

Result<std::unique_ptr<AnnMethod>> MakeLinearScanMethod(const Dataset& data) {
  (void)data;
  return std::unique_ptr<AnnMethod>(std::make_unique<LinearScanMethod>());
}

}  // namespace c2lsh
