// Plain-text table printer shared by every bench binary, so all regenerated
// tables and figure series have one consistent, paper-style rendering.

#pragma once
#ifndef C2LSH_EVAL_TABLE_H_
#define C2LSH_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace c2lsh {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Fmt(double v, int precision = 3);
  static std::string FmtInt(long long v);
  static std::string FmtBytes(size_t bytes);

  /// Renders with a header rule, e.g.:
  ///   dataset   k    ratio   io
  ///   -------   --   -----   ----
  ///   Audio     10   1.02    512
  std::string ToString() const;

  /// Renders as CSV (for plotting scripts).
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace c2lsh

#endif  // C2LSH_EVAL_TABLE_H_
