// A uniform interface over every index in the library so the experiment
// harness and bench binaries treat C2LSH and its baselines identically.

#pragma once
#ifndef C2LSH_EVAL_METHOD_H_
#define C2LSH_EVAL_METHOD_H_

#include <memory>
#include <string>

#include "src/baselines/e2lsh.h"
#include "src/baselines/linear_scan.h"
#include "src/baselines/lsb/lsb_forest.h"
#include "src/baselines/multiprobe.h"
#include "src/baselines/srs/srs.h"
#include "src/core/index.h"
#include "src/obs/trace.h"
#include "src/util/result.h"
#include "src/vector/dataset.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Per-query cost in the shared currency of the evaluation.
struct SearchCost {
  uint64_t index_pages = 0;
  uint64_t data_pages = 0;
  uint64_t candidates_verified = 0;

  /// How the query ended (see src/obs/trace.h). Methods without termination
  /// accounting leave it kNone; C2LSH fills it so workload aggregates can
  /// break latency down by deadline/cancellation vs. full completion.
  obs::Termination termination = obs::Termination::kNone;

  uint64_t total_pages() const { return index_pages + data_pages; }
};

/// Type-erased ANN method.
class AnnMethod {
 public:
  virtual ~AnnMethod() = default;

  virtual std::string name() const = 0;

  /// c-k-ANN search. `cost` may be null.
  virtual Result<NeighborList> Search(const Dataset& data, const float* query, size_t k,
                                      SearchCost* cost) = 0;

  /// Resident index size in bytes.
  virtual size_t MemoryBytes() const = 0;

  /// Per-query tracing (see src/obs/trace.h). Methods that can narrate
  /// their virtual-rehashing rounds override these three; the defaults make
  /// tracing a silent no-op for everything else.
  virtual bool SupportsTracing() const { return false; }
  /// When enabled, each Search() call records a trace retrievable (until
  /// the next Search) via last_trace().
  virtual void set_collect_traces(bool enabled) { (void)enabled; }
  virtual const obs::QueryTrace* last_trace() const { return nullptr; }

  /// Wall seconds spent building the index.
  double build_seconds() const { return build_seconds_; }
  void set_build_seconds(double s) { build_seconds_ = s; }

 private:
  double build_seconds_ = 0.0;
};

/// Factories — each builds the index (timing the build) and wraps it.
Result<std::unique_ptr<AnnMethod>> MakeC2lshMethod(const Dataset& data,
                                                   const C2lshOptions& options);
Result<std::unique_ptr<AnnMethod>> MakeE2lshMethod(const Dataset& data,
                                                   const E2lshOptions& options);
Result<std::unique_ptr<AnnMethod>> MakeLsbForestMethod(const Dataset& data,
                                                       const LsbForestOptions& options);
Result<std::unique_ptr<AnnMethod>> MakeMultiProbeMethod(const Dataset& data,
                                                        const MultiProbeOptions& options);
Result<std::unique_ptr<AnnMethod>> MakeSrsMethod(const Dataset& data,
                                                 const SrsOptions& options);
Result<std::unique_ptr<AnnMethod>> MakeLinearScanMethod(const Dataset& data);

}  // namespace c2lsh

#endif  // C2LSH_EVAL_METHOD_H_
