// JSON metrics report for eval/bench runs (--metrics_out): per-workload
// aggregates with latency percentiles, per-query round traces when
// collected, the BufferPool hit rate, and a full snapshot of the global
// metrics registry.

#pragma once
#ifndef C2LSH_EVAL_REPORT_H_
#define C2LSH_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "src/eval/harness.h"
#include "src/util/status.h"

namespace c2lsh {

/// Renders the report as a JSON string. Pulls the registry snapshot and
/// BufferPool hit rate from obs::MetricsRegistry::Global() at call time.
std::string RenderMetricsReport(const std::vector<WorkloadResult>& results);

/// Writes RenderMetricsReport(results) to `path` (IOError on failure).
Status WriteMetricsReport(const std::string& path,
                          const std::vector<WorkloadResult>& results);

}  // namespace c2lsh

#endif  // C2LSH_EVAL_REPORT_H_
