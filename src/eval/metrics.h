// Accuracy metrics of the paper's evaluation: overall (distance) ratio and
// recall against exact ground truth.

#pragma once
#ifndef C2LSH_EVAL_METRICS_H_
#define C2LSH_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "src/vector/types.h"

namespace c2lsh {

/// Overall ratio for one query (the paper's primary accuracy metric):
///   (1/k) * sum_i dist(o_i, q) / dist(o*_i, q)
/// where o_i is the i-th returned object and o*_i the exact i-th NN. Always
/// >= 1; 1 means exact. When the method returned fewer than k objects the
/// missing positions are charged the worst observed ratio of that query
/// (a conservative penalty). Ground-truth distances of zero are skipped.
double OverallRatio(const NeighborList& result, const NeighborList& ground_truth, size_t k);

/// Recall@k: |result ∩ exact top-k| / k.
double Recall(const NeighborList& result, const NeighborList& ground_truth, size_t k);

/// Averages a metric over queries.
double MeanOverQueries(const std::vector<NeighborList>& results,
                       const std::vector<NeighborList>& ground_truth, size_t k,
                       double (*metric)(const NeighborList&, const NeighborList&, size_t));

}  // namespace c2lsh

#endif  // C2LSH_EVAL_METRICS_H_
