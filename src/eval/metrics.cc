#include "src/eval/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace c2lsh {

double OverallRatio(const NeighborList& result, const NeighborList& ground_truth,
                    size_t k) {
  k = std::min(k, ground_truth.size());
  if (k == 0) return 1.0;
  double sum = 0.0;
  double worst = 1.0;
  size_t counted = 0;
  const size_t have = std::min(result.size(), k);
  for (size_t i = 0; i < have; ++i) {
    const double exact = ground_truth[i].dist;
    if (exact <= 0.0) continue;  // query coincides with a data point
    const double ratio = result[i].dist / exact;
    sum += ratio;
    worst = std::max(worst, ratio);
    ++counted;
  }
  // Positions the method failed to fill are charged the worst observed
  // ratio — missing answers must not make the metric look better.
  for (size_t i = have; i < k; ++i) {
    if (ground_truth[i].dist <= 0.0) continue;
    sum += worst;
    ++counted;
  }
  return counted == 0 ? 1.0 : sum / static_cast<double>(counted);
}

double Recall(const NeighborList& result, const NeighborList& ground_truth, size_t k) {
  k = std::min(k, ground_truth.size());
  if (k == 0) return 1.0;
  std::unordered_set<ObjectId> truth;
  truth.reserve(k * 2);
  for (size_t i = 0; i < k; ++i) truth.insert(ground_truth[i].id);
  size_t hits = 0;
  const size_t have = std::min(result.size(), k);
  for (size_t i = 0; i < have; ++i) {
    if (truth.count(result[i].id) != 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double MeanOverQueries(const std::vector<NeighborList>& results,
                       const std::vector<NeighborList>& ground_truth, size_t k,
                       double (*metric)(const NeighborList&, const NeighborList&, size_t)) {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  const size_t n = std::min(results.size(), ground_truth.size());
  for (size_t i = 0; i < n; ++i) {
    sum += metric(results[i], ground_truth[i], k);
  }
  return sum / static_cast<double>(n);
}

}  // namespace c2lsh
