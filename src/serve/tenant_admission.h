// TenantAdmission: per-tenant partitions over AdmissionController.
//
// One controller per tenant gives each tenant a private quota — a noisy
// tenant saturates its own partition and sheds there, while everyone else's
// slots stay free. On top of the partitions sits one shared overflow pool:
// a tenant that exhausts its quota may borrow from the overflow before it is
// finally shed, so idle capacity is not stranded when one tenant bursts.
//
// Admission order for a request from tenant T:
//   1. T's partition (created lazily from `per_tenant` on first sight);
//   2. on a partition shed, the shared overflow pool;
//   3. on an overflow shed too, reject with Unavailable — counted in T's
//      per-tenant shed metric and recorded as a kTenantShed anomaly with
//      `tenant=<id>` in the dump's otherData.
//
// The partition map is capped at `max_tenants`: beyond the cap, new tenants
// are not given partitions and compete in the overflow pool only (a remote
// peer choosing tenant strings must not grow server memory without bound).
//
// Per-tenant observability: each partition registers
// `c2lsh_serve_tenant_<sanitized>_admitted_total` / `_shed_total` counters,
// labeled `tenant="<id>"` — the registry keys by name, so the sanitized
// tenant is embedded in the name and the label carries the raw id.
//
// Thread-safety: all methods safe from any thread. Admit never holds the
// map mutex while waiting in a partition's queue.

#pragma once
#ifndef C2LSH_SERVE_TENANT_ADMISSION_H_
#define C2LSH_SERVE_TENANT_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/serve/admission.h"
#include "src/util/mutex.h"
#include "src/util/query_context.h"
#include "src/util/result.h"

namespace c2lsh {
namespace serve {

struct TenantAdmissionOptions {
  /// Quota for each tenant's private partition.
  AdmissionOptions per_tenant;

  /// The shared overflow pool every tenant may borrow from after its own
  /// partition sheds.
  AdmissionOptions overflow;

  /// Partition-map cap: tenants beyond this many distinct ids get no
  /// private partition and use the overflow pool only. Clamped to >= 1.
  size_t max_tenants = 64;
};

/// Point-in-time view of one tenant's partition (plus its cumulative
/// admission outcomes including overflow borrows and final sheds).
struct TenantStats {
  AdmissionStats partition;     ///< the tenant's private controller
  uint64_t overflow_admits = 0;  ///< admissions that borrowed the overflow pool
  uint64_t shed_final = 0;       ///< rejections after partition AND overflow shed
};

class TenantAdmission {
 public:
  explicit TenantAdmission(const TenantAdmissionOptions& options);

  /// Out of line: Partition is incomplete here.
  ~TenantAdmission();

  TenantAdmission(const TenantAdmission&) = delete;
  TenantAdmission& operator=(const TenantAdmission&) = delete;

  /// Admits a request from `tenant` (partition first, then overflow).
  /// Returns the ticket holding whichever controller granted the slot;
  /// Unavailable when both shed, the controllers are draining, or `ctx`
  /// expired while queued.
  Result<AdmissionController::Ticket> Admit(const std::string& tenant,
                                            const QueryContext* ctx = nullptr);

  /// Drains every partition and the overflow pool: a fast first pass flips
  /// every controller into draining (waking all queued waiters everywhere at
  /// once), then a second pass waits for in-flight tickets until `deadline`.
  /// Returns OK when everything emptied in time; the FIRST controller's
  /// Unavailable otherwise (the rest still flipped — stragglers release
  /// safely either way).
  Status Drain(const Deadline& deadline);

  /// Leaves draining mode on every controller.
  void Resume();

  /// Stats for one tenant. A tenant never seen (or beyond the partition
  /// cap) reports zeros.
  TenantStats StatsFor(const std::string& tenant) const;

  /// The overflow pool's own stats.
  AdmissionStats overflow_stats() const { return overflow_.stats(); }

  /// Distinct tenants currently holding partitions.
  size_t tenant_count() const;

  /// Sum of in-flight tickets across every partition and the overflow pool
  /// — the drain assertion "zero leaked tickets" reads this.
  size_t total_in_flight() const;

 private:
  struct Partition;

  /// Finds or (below the cap) creates `tenant`'s partition. nullptr when the
  /// tenant is over the cap — overflow-only.
  Partition* GetPartition(const std::string& tenant) EXCLUDES(mu_);

  TenantAdmissionOptions options_;
  AdmissionController overflow_;

  mutable Mutex mu_;
  /// unique_ptr values: partition addresses must survive map rehash/insert,
  /// since Admit waits inside a partition with mu_ released.
  std::map<std::string, std::unique_ptr<Partition>> partitions_ GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace c2lsh

#endif  // C2LSH_SERVE_TENANT_ADMISSION_H_
