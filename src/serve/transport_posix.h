// PosixTransport: the production TCP implementation of the socket seam
// (src/util/socket.h).
//
// This header is syscall-free; every socket(2)/accept(2)/recv(2) lives in
// transport_posix.cc, the ONE translation unit lint's socket-header and
// raw-socket rules allow them in — so the rest of the tree (server, tools,
// tests) stays portable across transports and fault-injectable through
// InprocTransport.
//
// Addresses are "host:port" with a NUMERIC IPv4 host ("127.0.0.1:9042");
// "0.0.0.0" binds all interfaces, port 0 binds an ephemeral port (the
// resolved one comes back from Listener::address()). No DNS by design: a
// serving process resolves names at config time, not per connect.
//
// Interruptibility: blocking calls poll in bounded slices (kPollSliceMillis)
// re-checking their deadline and close flags, so Shutdown()/Close() from
// another thread unblocks them within one slice — the property graceful
// drain leans on.

#pragma once
#ifndef C2LSH_SERVE_TRANSPORT_POSIX_H_
#define C2LSH_SERVE_TRANSPORT_POSIX_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/socket.h"

namespace c2lsh {
namespace serve {

class PosixTransport final : public Transport {
 public:
  Result<std::unique_ptr<Listener>> Listen(const std::string& address) override;

  Result<std::unique_ptr<Connection>> Connect(const std::string& address,
                                              const Deadline& deadline) override;

  /// Socket fds currently open (listeners + connections, process-wide).
  /// The "zero leaked fds" drain assertion reads this.
  static uint64_t open_fds();
  /// Cumulative socket fds ever opened.
  static uint64_t total_fds();
};

}  // namespace serve
}  // namespace c2lsh

#endif  // C2LSH_SERVE_TRANSPORT_POSIX_H_
