// AdmissionController: overload protection for the query path.
//
// A deadline keeps one query from running too long; admission control keeps
// too many queries from running at once. The controller enforces a bounded
// number of in-flight queries plus a bounded wait queue:
//
//   * a free slot admits immediately;
//   * a full slot set parks the caller in the queue, where it waits until a
//     slot frees, its queue timeout elapses, or its QueryContext expires
//     (deadline or cancellation — the admission wait is part of the query's
//     deadline budget, as the paper's end-to-end latency accounting demands);
//   * a full queue sheds the request immediately.
//
// Every rejection is Status::Unavailable — the transient "back off and
// retry" code, never an internal error: overload is an expected operating
// regime, and shedding early is what keeps the admitted queries' latencies
// bounded. Outcomes are observable both per-controller (stats()) and
// process-wide through the metrics registry (admission_* series).
//
// Thread-safety: Admit/stats and Ticket release are safe from any thread.
// The returned Ticket is the RAII slot: run the query while holding it and
// let it drop (or call Release) when done.

#pragma once
#ifndef C2LSH_SERVE_ADMISSION_H_
#define C2LSH_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "src/util/mutex.h"
#include "src/util/query_context.h"
#include "src/util/result.h"

namespace c2lsh {

/// Capacity limits of an AdmissionController.
struct AdmissionOptions {
  /// Queries allowed to execute concurrently. Clamped to >= 1.
  size_t max_in_flight = 4;

  /// Callers allowed to wait for a slot; an arrival beyond this is shed
  /// immediately. 0 = no queue (every arrival beyond max_in_flight sheds).
  size_t max_queue = 16;

  /// Longest a caller may wait in the queue before being shed; <= 0 disables
  /// the timeout (the wait is then bounded only by the caller's
  /// QueryContext, if any).
  double queue_timeout_millis = 50.0;
};

/// Point-in-time controller statistics (cumulative sheds/admissions plus the
/// current occupancy).
struct AdmissionStats {
  uint64_t admitted = 0;         ///< tickets granted
  uint64_t shed_queue_full = 0;  ///< arrivals rejected with the queue full
  uint64_t shed_timeout = 0;     ///< waiters rejected by the queue timeout
  uint64_t shed_deadline = 0;    ///< waiters whose context expired (deadline
                                 ///< or cancellation) before admission
  uint64_t shed_draining = 0;    ///< arrivals/waiters rejected while draining
  size_t in_flight = 0;          ///< tickets currently outstanding
  size_t queued = 0;             ///< callers currently waiting
};

/// A bounded-concurrency gate with a bounded, timeout-guarded wait queue.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII in-flight slot: the query runs while the ticket is alive; the slot
  /// frees (waking one queued caller) when it is released or destroyed.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool valid() const { return controller_ != nullptr; }

    /// Frees the slot now (idempotent; the destructor calls it too).
    void Release() {
      if (controller_ != nullptr) {
        controller_->ReleaseSlot();
        controller_ = nullptr;
      }
    }

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller) : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  /// Acquires an in-flight slot, waiting in the bounded queue if necessary.
  /// Returns Status::Unavailable (transient — the caller may back off and
  /// retry) when the queue is full, the queue timeout elapses, or `ctx`
  /// (nullable) expires while waiting. Cancellation is polled, so an
  /// external Cancel() unblocks a queued caller within a poll interval even
  /// if no slot ever frees.
  Result<Ticket> Admit(const QueryContext* ctx = nullptr);

  /// Flips the controller into draining mode and waits for it to empty:
  /// new arrivals shed immediately with Unavailable, queued waiters wake
  /// and shed fast (within one poll interval) instead of waiting out their
  /// timeouts, and in-flight tickets are waited for until `deadline`.
  /// Returns OK once in_flight == 0; Unavailable when the deadline expires
  /// with tickets still out (the controller STAYS draining — stragglers
  /// still release safely, they just can't be waited for any longer).
  /// Idempotent; concurrent Drain calls both wait.
  Status Drain(const Deadline& deadline) EXCLUDES(mu_);

  /// Leaves draining mode (a restart without reconstruction). No-op when
  /// not draining.
  void Resume() EXCLUDES(mu_);

  /// True after Drain() until Resume().
  bool draining() const EXCLUDES(mu_);

  /// Snapshot of the counters and current occupancy.
  AdmissionStats stats() const EXCLUDES(mu_);

  const AdmissionOptions& options() const { return options_; }

 private:
  void ReleaseSlot() EXCLUDES(mu_);

  AdmissionOptions options_;
  mutable Mutex mu_;
  std::condition_variable_any cv_;
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  size_t queued_ GUARDED_BY(mu_) = 0;
  bool draining_ GUARDED_BY(mu_) = false;
  AdmissionStats totals_ GUARDED_BY(mu_);  ///< cumulative counters only
};

}  // namespace c2lsh

#endif  // C2LSH_SERVE_ADMISSION_H_
