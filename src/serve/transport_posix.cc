// The one translation unit where socket syscalls are legal (see lint's
// socket-header / raw-socket rules). Everything here is plain POSIX IPv4;
// portability quirks stay behind the seam.

#include "src/serve/transport_posix.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

namespace c2lsh {
namespace serve {

namespace {

// One poll slice: the longest a blocked call goes without re-checking its
// deadline and close flags. Short enough that drain sees an interrupt
// "immediately" at human scale, long enough to keep idle polling cheap.
constexpr int kPollSliceMillis = 50;

std::atomic<uint64_t> g_open_fds{0};
std::atomic<uint64_t> g_total_fds{0};

void TrackFd() {
  g_open_fds.fetch_add(1, std::memory_order_relaxed);
  g_total_fds.fetch_add(1, std::memory_order_relaxed);
}

void UntrackFd() { g_open_fds.fetch_sub(1, std::memory_order_relaxed); }

std::string ErrnoMessage(const char* op, int err) {
  return std::string("posix transport: ") + op + ": " + std::strerror(err) +
         " (errno " + std::to_string(err) + ")";
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(ErrnoMessage("fcntl(O_NONBLOCK)", errno));
  }
  return Status::OK();
}

/// "host:port" with a numeric IPv4 host. Empty host = 0.0.0.0.
Status ParseHostPort(const std::string& address, sockaddr_in* out) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("posix transport: address '" + address +
                                   "' is not host:port");
  }
  const std::string host = address.substr(0, colon);
  const std::string port_str = address.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port < 0 || port > 65535) {
    return Status::InvalidArgument("posix transport: bad port in '" + address +
                                   "'");
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  if (host.empty() || host == "0.0.0.0") {
    out->sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return Status::InvalidArgument("posix transport: host '" + host +
                                   "' is not a numeric IPv4 address (no DNS "
                                   "at this seam)");
  }
  return Status::OK();
}

std::string RenderAddress(const sockaddr_in& sa) {
  char host[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &sa.sin_addr, host, sizeof(host));
  return std::string(host) + ":" + std::to_string(ntohs(sa.sin_port));
}

/// One poll slice on `fd` for `events`; bounded by the deadline. Returns
/// +1 ready, 0 not yet (caller re-checks flags and loops), or an error.
Result<int> PollSlice(int fd, short events, const Deadline& deadline) {
  int timeout = kPollSliceMillis;
  const double remaining_us = deadline.RemainingMicros();
  if (remaining_us <= 0.0) return 0;  // expired; caller's check reports it
  if (remaining_us / 1000.0 < timeout) {
    timeout = static_cast<int>(remaining_us / 1000.0) + 1;
  }
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const int r = ::poll(&pfd, 1, timeout);
  if (r < 0) {
    if (errno == EINTR) return 0;
    return Status::IOError(ErrnoMessage("poll", errno));
  }
  return r > 0 ? 1 : 0;
}

class PosixConnection final : public Connection {
 public:
  explicit PosixConnection(int fd) : fd_(fd) { TrackFd(); }

  ~PosixConnection() override {
    ::close(fd_);
    UntrackFd();
  }

  Status Read(void* buf, size_t n, size_t* bytes_read,
              const Deadline& deadline) override {
    *bytes_read = 0;
    if (n == 0) return Status::OK();
    for (;;) {
      if (shutdown_.load(std::memory_order_acquire)) {
        return Status::Unavailable("posix transport: connection shut down");
      }
      if (deadline.Expired()) {
        return Status::Unavailable("posix transport: read deadline expired");
      }
      const ssize_t r = ::recv(fd_, buf, n, 0);
      if (r > 0) {
        *bytes_read = static_cast<size_t>(r);
        return Status::OK();
      }
      if (r == 0) {
        // A cross-thread Shutdown() also surfaces as recv()==0; report it
        // as the interrupt it is, not as peer EOF.
        if (shutdown_.load(std::memory_order_acquire)) {
          return Status::Unavailable("posix transport: connection shut down");
        }
        return Status::OK();  // clean EOF
      }
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        return Status::IOError(ErrnoMessage("recv", errno));
      }
      C2LSH_ASSIGN_OR_RETURN(int ready, PollSlice(fd_, POLLIN, deadline));
      (void)ready;  // 0 or 1 — either way, loop and re-check the flags
    }
  }

  Status Write(const void* buf, size_t n, const Deadline& deadline) override {
    const auto* p = static_cast<const uint8_t*>(buf);
    size_t done = 0;
    while (done < n) {
      if (shutdown_.load(std::memory_order_acquire)) {
        return Status::Unavailable("posix transport: connection shut down");
      }
      if (deadline.Expired()) {
        return Status::Unavailable("posix transport: write deadline expired");
      }
      // MSG_NOSIGNAL: a peer that went away must surface as EPIPE, not kill
      // the process with SIGPIPE.
      const ssize_t w = ::send(fd_, p + done, n - done, MSG_NOSIGNAL);
      if (w > 0) {
        done += static_cast<size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        return Status::IOError(ErrnoMessage("send", errno));
      }
      C2LSH_ASSIGN_OR_RETURN(int ready, PollSlice(fd_, POLLOUT, deadline));
      (void)ready;
    }
    return Status::OK();
  }

  void Shutdown() override {
    shutdown_.store(true, std::memory_order_release);
    // Wakes a reader blocked in poll/recv on this fd from another thread.
    // The fd stays open until the destructor, so the descriptor number
    // cannot be reused while a racing call still holds it.
    ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  const int fd_;
  std::atomic<bool> shutdown_{false};
};

class PosixListener final : public Listener {
 public:
  PosixListener(int fd, std::string address)
      : fd_(fd), address_(std::move(address)) {
    TrackFd();
  }

  ~PosixListener() override {
    ::close(fd_);
    UntrackFd();
  }

  Result<std::unique_ptr<Connection>> Accept() override {
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) {
        return Status::Unavailable("posix transport: listener closed");
      }
      const int fd = ::accept(fd_, nullptr, nullptr);
      if (fd >= 0) {
        const Status nb = SetNonBlocking(fd);
        if (!nb.ok()) {
          ::close(fd);
          return nb;
        }
        return std::unique_ptr<Connection>(
            std::make_unique<PosixConnection>(fd));
      }
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        return Status::IOError(ErrnoMessage("accept", errno));
      }
      C2LSH_ASSIGN_OR_RETURN(
          int ready, PollSlice(fd_, POLLIN, Deadline::Infinite()));
      (void)ready;
    }
  }

  void Close() override {
    // The accept loop re-checks this flag every poll slice; no syscall
    // reliably wakes a poller on a listening socket portably, so Close
    // costs at most one slice of latency.
    closed_.store(true, std::memory_order_release);
  }

  std::string address() const override { return address_; }

 private:
  const int fd_;
  const std::string address_;
  std::atomic<bool> closed_{false};
};

}  // namespace

Result<std::unique_ptr<Listener>> PosixTransport::Listen(
    const std::string& address) {
  sockaddr_in sa;
  C2LSH_RETURN_IF_ERROR(ParseHostPort(address, &sa));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoMessage("socket", errno));
  auto fail = [fd](Status s) {
    ::close(fd);
    return s;
  };
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return fail(Status::IOError(ErrnoMessage("setsockopt(SO_REUSEADDR)", errno)));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
    return fail(Status::IOError(ErrnoMessage("bind", errno)));
  }
  if (::listen(fd, 128) < 0) {
    return fail(Status::IOError(ErrnoMessage("listen", errno)));
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) return fail(std::move(nb));
  // Resolve the bound address (the ephemeral port when the caller asked
  // for :0) so clients can be pointed at Listener::address() directly.
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return fail(Status::IOError(ErrnoMessage("getsockname", errno)));
  }
  return std::unique_ptr<Listener>(
      std::make_unique<PosixListener>(fd, RenderAddress(bound)));
}

Result<std::unique_ptr<Connection>> PosixTransport::Connect(
    const std::string& address, const Deadline& deadline) {
  sockaddr_in sa;
  C2LSH_RETURN_IF_ERROR(ParseHostPort(address, &sa));
  if (sa.sin_addr.s_addr == htonl(INADDR_ANY)) {
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // connect-to-0.0.0.0 means localhost
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoMessage("socket", errno));
  auto fail = [fd](Status s) {
    ::close(fd);
    return s;
  };
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) return fail(std::move(nb));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0 &&
      errno != EINPROGRESS) {
    return fail(Status::IOError(ErrnoMessage("connect", errno)));
  }
  // Wait for the handshake, slice by slice, bounded by the deadline.
  for (;;) {
    if (deadline.Expired()) {
      return fail(Status::Unavailable("posix transport: connect deadline expired"));
    }
    Result<int> ready = PollSlice(fd, POLLOUT, deadline);
    if (!ready.ok()) return fail(ready.status());
    if (*ready == 0) continue;
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return fail(Status::IOError(ErrnoMessage("getsockopt(SO_ERROR)", errno)));
    }
    if (err != 0) {
      // Connection refused / reset during handshake: the transient flavor —
      // the server may just be draining or restarting.
      return fail(Status::Unavailable(ErrnoMessage("connect", err)));
    }
    return std::unique_ptr<Connection>(std::make_unique<PosixConnection>(fd));
  }
}

uint64_t PosixTransport::open_fds() {
  return g_open_fds.load(std::memory_order_relaxed);
}

uint64_t PosixTransport::total_fds() {
  return g_total_fds.load(std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace c2lsh
