// The wire protocol of the serving front end: length-prefixed binary frames
// over a Connection (src/util/socket.h).
//
// Frame:   u32 LE body length, then the body. Bodies above kMaxFrameBytes
//          are rejected before allocation — a forged length must not let one
//          client reserve gigabytes.
// Request: u8 type | u8 tenant_len + tenant | u8 index_len + index |
//          u64 deadline_micros (relative to receipt; 0 = none) |
//          u64 page_budget (0 = unlimited) | type-specific payload:
//            kQuery:  u32 k, u32 dim, dim x f32
//            kInsert: u32 id, u32 dim, dim x f32
//            kDelete: u32 id
//            kHealth / kReady: empty
// Response: u8 type (echo) | u8 status code | u8 termination |
//           u16 msg_len + message | payload (only when the code is OK):
//            kQuery:  u32 n, n x (u32 id, f32 dist)
//            kHealth / kReady: u8 flag
//
// The contract that makes degraded results safe on the wire: a response is
// either an error (nonzero code, client may retry iff code == kUnavailable
// using the decorrelated-jitter backoff of util/retry.h) or a success whose
// `termination` tag says exactly how complete it is — kDeadline/kCancelled
// mark best-effort partial results, never silently-wrong ones.
//
// All integers little-endian, matching the storage layer's serialization.

#pragma once
#ifndef C2LSH_SERVE_PROTOCOL_H_
#define C2LSH_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/util/socket.h"
#include "src/util/status.h"
#include "src/vector/types.h"

namespace c2lsh {
namespace serve {

/// Hard cap on one frame body. Large enough for a 1M-dim vector or ~1M
/// neighbors, small enough that a forged length cannot exhaust memory.
inline constexpr size_t kMaxFrameBytes = 16u << 20;

/// Caps on the variable-length request fields.
inline constexpr size_t kMaxTenantBytes = 64;
inline constexpr size_t kMaxIndexNameBytes = 64;
inline constexpr size_t kMaxMessageBytes = 512;

enum class MsgType : uint8_t {
  kQuery = 1,
  kInsert = 2,
  kDelete = 3,
  kHealth = 4,  ///< liveness: the process answers frames
  kReady = 5,   ///< readiness: accepting query traffic (false while draining)
};

/// True for the types DecodeRequest accepts.
bool ValidMsgType(uint8_t t);

/// True when a termination tag marks a best-effort PARTIAL result (deadline
/// or budget expiry, cooperative cancellation) — the tags clients must honor
/// before treating a result set as complete.
inline bool IsEarlyStop(Termination t) {
  return t == Termination::kDeadline || t == Termination::kCancelled;
}

struct Request {
  MsgType type = MsgType::kHealth;
  std::string tenant;
  std::string index;
  uint64_t deadline_micros = 0;  ///< relative budget; 0 = no deadline
  uint64_t page_budget = 0;      ///< 0 = unlimited
  uint32_t k = 0;                ///< kQuery
  uint32_t id = 0;               ///< kInsert / kDelete
  std::vector<float> vector;     ///< kQuery / kInsert payload
};

struct Response {
  MsgType type = MsgType::kHealth;
  StatusCode code = StatusCode::kOk;
  Termination termination = Termination::kNone;
  std::string message;               ///< truncated to kMaxMessageBytes
  std::vector<Neighbor> neighbors;   ///< kQuery payload
  uint8_t flag = 0;                  ///< kHealth / kReady payload
};

/// Serializes a request (resp. response) BODY — no length prefix; that is
/// WriteFrame's job. Encoders trust their caller (sizes beyond the wire
/// caps are the caller's bug and are clamped or rejected at decode).
std::string EncodeRequest(const Request& req);
std::string EncodeResponse(const Response& resp);

/// Parses a body. InvalidArgument on malformed input (bad type, trailing
/// bytes, truncated fields, over-cap strings) — decoders never trust the
/// peer.
Status DecodeRequest(const uint8_t* data, size_t n, Request* out);
Status DecodeResponse(const uint8_t* data, size_t n, Response* out);

/// Writes one frame (length prefix + body) to `conn`.
Status WriteFrame(Connection& conn, const std::string& body,
                  const Deadline& deadline);

/// Reads one frame body. `*eof` is true (with OK) when the peer closed
/// cleanly on a frame boundary; a mid-frame close is Corruption, a body
/// length above kMaxFrameBytes is InvalidArgument.
Status ReadFrame(Connection& conn, std::string* body, bool* eof,
                 const Deadline& deadline);

}  // namespace serve
}  // namespace c2lsh

#endif  // C2LSH_SERVE_PROTOCOL_H_
