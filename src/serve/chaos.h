// ChaosSoak: the deterministic end-to-end torture test of the serving
// stack — FaultInjectionEnv under the storage, InprocTransport under the
// wire, churn + overload + drain/restart + crash-restart on top, with a
// client-side ledger checking the only promises that matter:
//
//   * acked mutations are durable — an insert/delete acknowledged with OK
//     survives drain, restart, and a mid-write crash (WAL-synced-before-ack);
//   * results are correct or tagged — a response either carries an error
//     code, or a Termination tag admitting it is partial; an
//     acked-deleted id NEVER appears in any result, and on a clean (fault-
//     free) index an exact-duplicate query finds its point at distance ~0;
//   * drain is graceful — it meets its deadline when queries cooperate,
//     records kDrainDeadlineExceeded and cancels stragglers when they
//     don't, and leaks zero admission tickets and zero connections either
//     way.
//
// Phases (all driven by one seeded Rng, so a failing seed replays):
//   1. warmup        — clean queries against the freshly built index;
//   2. fault churn   — insert/delete/query under transient read faults,
//                      storage AND transport short reads, read corruption,
//                      and mid-frame connection kills;
//   3. overload      — a deterministic per-tenant shed (quota + overflow
//                      pinned by held tickets) plus a concurrent client
//                      wave into tiny admission quotas;
//   4. drain/restart — graceful drain mid-soak, index reopen, ledger
//                      verification; then a FORCED drain-deadline overrun
//                      (a held ticket) asserting the anomaly + cancellation
//                      path;
//   5. crash-restart — inserts into an armed crash point, "process
//                      restart" (ClearCrash + Open), WAL replay, and
//                      exactly-once ledger verification.
//
// The harness lives in src/serve (not tests/) so tools/chaos_soak can run
// long soaks from the command line and the acceptance test can run the
// short mode under TSan in CI.

#pragma once
#ifndef C2LSH_SERVE_CHAOS_H_
#define C2LSH_SERVE_CHAOS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace c2lsh {
namespace serve {

struct ChaosOptions {
  /// Seed of every random choice the soak makes.
  uint64_t seed = 1;

  /// Existing scratch directory: the index file, its WAL, and the flight-
  /// recorder dumps (flight-*.json) land here. Required.
  std::string dir;

  size_t dim = 16;
  size_t initial_objects = 256;
  size_t k = 5;

  /// Concurrent client workers in the overload wave.
  size_t clients = 4;

  /// Scales every phase (requests per phase ~ ops); the short CI mode uses
  /// the default, `tools/chaos_soak --long` multiplies it.
  size_t ops = 48;

  /// Drain deadline of the long-lived servers (the forced-overrun phase
  /// uses its own, shorter one).
  double drain_deadline_millis = 2000.0;
};

struct ChaosReport {
  uint64_t requests = 0;        ///< frames sent (retries included)
  uint64_t queries_ok = 0;
  uint64_t partial_results = 0;  ///< OK responses tagged kDeadline/kCancelled
  uint64_t unavailable = 0;      ///< sheds + transport failures surfaced
  uint64_t other_errors = 0;     ///< IOError/Corruption/... (allowed, counted)
  uint64_t inserts_acked = 0;
  uint64_t deletes_acked = 0;
  uint64_t transport_kills = 0;
  uint64_t anomaly_dumps = 0;    ///< flight-recorder dumps written by the soak

  bool drain_met_deadline = false;     ///< the cooperative mid-soak drain
  bool forced_overrun_recorded = false;  ///< kDrainDeadlineExceeded observed
  size_t leaked_tickets = 0;     ///< admission in-flight after final drain
  size_t leaked_connections = 0; ///< transport endpoints alive at the end

  /// Invariant violations, empty when the soak passed. Run() returns OK
  /// with a non-empty list — an infrastructure failure (cannot build the
  /// index at all) is the error case, a violated invariant is a *finding*.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

class ChaosSoak {
 public:
  explicit ChaosSoak(const ChaosOptions& options);

  /// Runs every phase once. Deterministic given options (up to thread
  /// interleaving — the invariants are interleaving-independent).
  Result<ChaosReport> Run();

 private:
  ChaosOptions options_;
};

}  // namespace serve
}  // namespace c2lsh

#endif  // C2LSH_SERVE_CHAOS_H_
