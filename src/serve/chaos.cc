#include "src/serve/chaos.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/disk_index.h"
#include "src/obs/flight_recorder.h"
#include "src/serve/inproc_transport.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/util/fault_env.h"
#include "src/util/random.h"
#include "src/util/retry.h"
#include "src/util/thread_pool.h"
#include "src/vector/dataset.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace serve {

namespace {

// Distance at which an exact-duplicate query "found its point".
constexpr float kExactEps = 1e-3f;

/// A minimal wire client: one cached connection, reconnect on any transport
/// failure, protocol encode/decode. Retries go through util/retry.h's
/// decorrelated-jitter backoff — the same policy the README prescribes for
/// kUnavailable responses.
class ChaosClient {
 public:
  ChaosClient(Transport* transport, std::string address)
      : transport_(transport), address_(std::move(address)) {}

  /// One attempt: transport or decode failures surface as a non-OK Status
  /// (and drop the cached connection); an application error arrives as OK
  /// with `out->code` nonzero.
  Status CallOnce(const Request& req, Response* out) {
    ++calls_;
    if (conn_ == nullptr) {
      auto r = transport_->Connect(address_, Deadline::AfterMillis(1000));
      if (!r.ok()) return r.status();
      conn_ = std::move(r).value();
    }
    const Deadline io = Deadline::AfterMillis(2000);
    Status s = WriteFrame(*conn_, EncodeRequest(req), io);
    if (!s.ok()) {
      conn_.reset();
      // A dead/reset connection is transient from the client's view: the
      // next attempt reconnects.
      return Status::Unavailable("chaos client: write failed: " +
                                 std::string(s.message()));
    }
    std::string body;
    bool eof = false;
    s = ReadFrame(*conn_, &body, &eof, io);
    if (!s.ok() || eof) {
      conn_.reset();
      return Status::Unavailable(
          s.ok() ? "chaos client: server closed the connection"
                 : "chaos client: read failed: " + std::string(s.message()));
    }
    return DecodeResponse(reinterpret_cast<const uint8_t*>(body.data()),
                          body.size(), out);
  }

  /// Retrying call: transport failures AND kUnavailable responses (sheds,
  /// drain rejections) are transient under `policy`. On success `out` holds
  /// a response whose code is anything but kUnavailable; on exhaustion the
  /// last shed response (if any) is left in `out` so the caller still sees
  /// what the server said.
  Status Call(const Request& req, Response* out, const RetryPolicy& policy) {
    return RetryTransient(policy, &retry_stats_, [&]() -> Status {
      Response resp;
      Status s = CallOnce(req, &resp);
      if (!s.ok()) return s;
      if (resp.code == StatusCode::kUnavailable) {
        *out = resp;  // keep the shed visible even if retries exhaust
        return Status::Unavailable(resp.message);
      }
      *out = std::move(resp);
      return Status::OK();
    });
  }

  void Reset() { conn_.reset(); }

  uint64_t calls() const { return calls_; }

 private:
  Transport* transport_;
  const std::string address_;
  std::unique_ptr<Connection> conn_;
  RetryStats retry_stats_;
  uint64_t calls_ = 0;
};

Request MakeQuery(const std::vector<float>& vec, size_t k,
                  const std::string& tenant, uint64_t deadline_micros = 0) {
  Request req;
  req.type = MsgType::kQuery;
  req.tenant = tenant;
  req.index = "main";
  req.k = static_cast<uint32_t>(k);
  req.vector = vec;
  req.deadline_micros = deadline_micros;
  return req;
}

/// The whole soak's mutable state, so phases read like the scenario list in
/// chaos.h instead of threading a dozen parameters around.
class SoakRun {
 public:
  explicit SoakRun(const ChaosOptions& options)
      : options_(options), rng_(options.seed), fault_env_(Env::Default()) {}

  Result<ChaosReport> Run();

 private:
  Result<std::unique_ptr<Server>> StartServer(DiskC2lshIndex index,
                                              double drain_millis);

  void Violation(std::string what) {
    if (report_.violations.size() < 32) {
      report_.violations.push_back(std::move(what));
    }
  }

  /// Checks one OK query response against the ledger: unique ids, no
  /// acked-deleted id, and (when `expect_id` >= 0 on a fault-free index)
  /// the exact duplicate present at ~zero distance unless the result is
  /// tagged partial.
  void CheckQueryResult(const Response& resp, int64_t expect_id,
                        const std::set<ObjectId>& deleted,
                        const char* phase) {
    std::vector<ObjectId> ids;
    ids.reserve(resp.neighbors.size());
    for (const Neighbor& nb : resp.neighbors) ids.push_back(nb.id);
    std::sort(ids.begin(), ids.end());
    if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
      Violation(std::string(phase) + ": duplicate id in one result");
    }
    for (ObjectId id : ids) {
      if (deleted.count(id) != 0) {
        Violation(std::string(phase) + ": acked-deleted id " +
                  std::to_string(id) + " returned");
      }
    }
    if (expect_id >= 0 && !IsEarlyStop(resp.termination)) {
      bool found = false;
      for (const Neighbor& nb : resp.neighbors) {
        if (nb.id == static_cast<ObjectId>(expect_id) && nb.dist <= kExactEps) {
          found = true;
          break;
        }
      }
      if (!found) {
        Violation(std::string(phase) + ": exact duplicate of id " +
                  std::to_string(expect_id) +
                  " missing from a complete (non-partial) result");
      }
    }
  }

  /// Issues one query through `client`; classifies the outcome into the
  /// report and runs the ledger checks. `expect_id` < 0 disables the
  /// exact-duplicate assertion (fault phases, where degraded-but-genuine
  /// results are legal).
  void DoQuery(ChaosClient& client, const std::vector<float>& vec,
               int64_t expect_id, const RetryPolicy& policy,
               const char* phase) {
    Response resp;
    Status s = client.Call(MakeQuery(vec, options_.k, "churn"), &resp, policy);
    if (!s.ok()) {
      ++report_.unavailable;
      return;
    }
    if (resp.code == StatusCode::kOk) {
      ++report_.queries_ok;
      if (IsEarlyStop(resp.termination)) ++report_.partial_results;
      CheckQueryResult(resp, expect_id, deleted_, phase);
    } else if (resp.code == StatusCode::kUnavailable) {
      ++report_.unavailable;
    } else {
      ++report_.other_errors;
    }
  }

  /// Inserts a fresh id with a vector jittered off a random live one.
  /// OK ack => the ledger counts it durable; anything else => unknown.
  void DoInsert(ChaosClient& client, const RetryPolicy& policy) {
    if (live_.empty()) return;
    const ObjectId id = next_id_++;
    std::vector<float> vec = RandomLiveVector();
    for (float& v : vec) {
      v += static_cast<float>(rng_.Gaussian(0.0, 0.1));
    }
    Request req;
    req.type = MsgType::kInsert;
    req.tenant = "churn";
    req.index = "main";
    req.id = id;
    req.vector = vec;
    Response resp;
    Status s = client.Call(req, &resp, policy);
    if (s.ok() && resp.code == StatusCode::kOk) {
      live_.emplace(id, std::move(vec));
      ++report_.inserts_acked;
    } else {
      // Unacked: the mutation may or may not have reached the WAL before
      // the failure — the ledger asserts nothing about this id.
      unknown_.insert(id);
      if (!s.ok() || resp.code == StatusCode::kUnavailable) {
        ++report_.unavailable;
      } else {
        ++report_.other_errors;
      }
    }
  }

  void DoDelete(ChaosClient& client, const RetryPolicy& policy) {
    if (live_.size() <= options_.initial_objects / 4) return;  // keep data
    auto it = live_.begin();
    std::advance(it, static_cast<long>(rng_.Index(live_.size())));
    const ObjectId id = it->first;
    Request req;
    req.type = MsgType::kDelete;
    req.tenant = "churn";
    req.index = "main";
    req.id = id;
    Response resp;
    Status s = client.Call(req, &resp, policy);
    // NotFound after a retry means an earlier attempt already deleted it —
    // we only ever delete ids the ledger believes live.
    if (s.ok() &&
        (resp.code == StatusCode::kOk || resp.code == StatusCode::kNotFound)) {
      live_.erase(id);
      deleted_.insert(id);
      ++report_.deletes_acked;
    } else {
      live_.erase(id);  // state unknown: assert nothing about this id
      unknown_.insert(id);
      if (!s.ok() || resp.code == StatusCode::kUnavailable) {
        ++report_.unavailable;
      } else {
        ++report_.other_errors;
      }
    }
  }

  const std::vector<float>& RandomLiveVector() {
    auto it = live_.begin();
    std::advance(it, static_cast<long>(rng_.Index(live_.size())));
    return it->second;
  }

  /// Clean-index ledger verification: a sample of acked-live ids must each
  /// be found at distance ~0 by their exact vector (no faults armed).
  void VerifyLedger(ChaosClient& client, const char* phase) {
    const size_t sample = std::min<size_t>(16, live_.size());
    for (size_t i = 0; i < sample; ++i) {
      auto it = live_.begin();
      std::advance(it, static_cast<long>(rng_.Index(live_.size())));
      DoQuery(client, it->second, static_cast<int64_t>(it->first),
              retry_policy_, phase);
    }
  }

  ChaosOptions options_;
  ChaosReport report_;
  Rng rng_;
  FaultInjectionEnv fault_env_;
  InprocTransport transport_;
  RetryPolicy retry_policy_;

  std::string path_;
  ObjectId next_id_ = 0;
  std::map<ObjectId, std::vector<float>> live_;  ///< acked-live id -> vector
  std::set<ObjectId> deleted_;                   ///< acked-deleted ids
  std::set<ObjectId> unknown_;  ///< mutation outcome unknown: assert nothing
};

Result<std::unique_ptr<Server>> SoakRun::StartServer(DiskC2lshIndex index,
                                                     double drain_millis) {
  ServerOptions so;
  so.address = "chaos";
  so.transport = &transport_;
  so.max_connections = options_.clients + 4;
  so.drain_deadline_millis = drain_millis;
  // Tiny quotas on purpose: the soak WANTS admission to shed.
  so.admission.per_tenant.max_in_flight = 2;
  so.admission.per_tenant.max_queue = 2;
  so.admission.per_tenant.queue_timeout_millis = 25.0;
  so.admission.overflow.max_in_flight = 2;
  so.admission.overflow.max_queue = 2;
  so.admission.overflow.queue_timeout_millis = 25.0;
  C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<Server> server, Server::Start(so));
  C2LSH_RETURN_IF_ERROR(server->AddIndex("main", std::move(index)));
  return server;
}

Result<ChaosReport> SoakRun::Run() {
  retry_policy_.max_attempts = 4;
  retry_policy_.backoff_initial_us = 200;
  retry_policy_.backoff_max_us = 5'000;
  retry_policy_.jitter_seed = options_.seed;
  RetryPolicy no_retry;
  no_retry.max_attempts = 1;

  // --- arm the flight recorder (dumps land in the scratch dir) -------------
  obs::FlightRecorderOptions fr;
  fr.dir = options_.dir;
  fr.max_dumps = 32;
  fr.max_dump_bytes = 1u << 20;
  C2LSH_RETURN_IF_ERROR(obs::FlightRecorder::Global().Configure(fr));
  const uint64_t dumps_start = obs::FlightRecorder::Global().dumps_written();

  // --- build the seed index ------------------------------------------------
  MixtureConfig mc;
  mc.n = options_.initial_objects;
  mc.dim = options_.dim;
  mc.num_clusters = 8;
  mc.center_spread = 4.0;
  mc.cluster_stddev = 0.5;
  mc.seed = options_.seed;
  C2LSH_ASSIGN_OR_RETURN(FloatMatrix m, GenerateGaussianMixture(mc));
  RescaleToTargetNN(&m, 8.0, options_.seed);
  for (size_t i = 0; i < m.num_rows(); ++i) {
    live_.emplace(static_cast<ObjectId>(i),
                  std::vector<float>(m.row(i), m.row(i) + m.dim()));
  }
  next_id_ = static_cast<ObjectId>(m.num_rows());
  C2LSH_ASSIGN_OR_RETURN(Dataset data, Dataset::Create("chaos", std::move(m)));
  C2lshOptions io;
  io.seed = options_.seed;
  path_ = options_.dir + "/chaos.pf";
  C2LSH_ASSIGN_OR_RETURN(
      DiskC2lshIndex index,
      DiskC2lshIndex::Build(data, io, path_, /*pool_pages=*/128,
                            /*store_vectors=*/true, &fault_env_));

  C2LSH_ASSIGN_OR_RETURN(
      std::unique_ptr<Server> server,
      StartServer(std::move(index), options_.drain_deadline_millis));
  ChaosClient client(&transport_, "chaos");

  // --- phase 1: warmup — clean queries find their exact duplicates ---------
  for (size_t i = 0; i < options_.ops / 2; ++i) {
    auto it = live_.begin();
    std::advance(it, static_cast<long>(rng_.Index(live_.size())));
    DoQuery(client, it->second, static_cast<int64_t>(it->first),
            retry_policy_, "warmup");
  }

  // --- phase 2: churn under fault bursts -----------------------------------
  bool corruption_armed = false;
  for (size_t i = 0; i < options_.ops; ++i) {
    if (i % 7 == 3) fault_env_.SetTransientReadFaults(2);
    if (i % 11 == 5) {
      fault_env_.SetShortReads(3);
      transport_.SetShortReads(4);
    }
    if (i % 13 == 7) {
      transport_.KillAllConnections();
      ++report_.transport_kills;
    }
    if (i % 17 == 9) {
      fault_env_.SetReadCorruption(4096 + rng_.Index(16 * 4096),
                                   static_cast<uint8_t>(0x40));
      corruption_armed = true;
    } else if (corruption_armed && i % 17 == 11) {
      fault_env_.ClearReadCorruption();
      corruption_armed = false;
    }
    switch (rng_.Index(4)) {
      case 0:
        DoInsert(client, retry_policy_);
        break;
      case 1:
        DoDelete(client, retry_policy_);
        break;
      default:
        // Faults may legally degrade recall, so no exact-duplicate
        // assertion here — only "never wrong" (no deleted ids, no dups).
        DoQuery(client, RandomLiveVector(), /*expect_id=*/-1, retry_policy_,
                "fault_churn");
        break;
    }
  }
  fault_env_.SetTransientReadFaults(0);
  fault_env_.SetShortReads(0);
  fault_env_.ClearReadCorruption();
  transport_.SetShortReads(0);

  // --- phase 3a: deterministic per-tenant shed -----------------------------
  {
    std::vector<AdmissionController::Ticket> hogs;
    for (int i = 0; i < 4; ++i) {
      // First two fill tenant "hog"'s partition; the next two overflow into
      // the shared pool (after the partition's 25 ms queue timeout).
      auto t = server->admission().Admit("hog");
      if (!t.ok()) {
        Violation("overload: pre-pinning ticket " + std::to_string(i) +
                  " unexpectedly shed: " + std::string(t.status().message()));
        break;
      }
      hogs.push_back(std::move(t).value());
    }
    Request q = MakeQuery(RandomLiveVector(), options_.k, "hog");
    Response resp;
    Status s = client.CallOnce(q, &resp);
    if (s.ok() && resp.code != StatusCode::kUnavailable) {
      Violation("overload: request from a saturated tenant was not shed "
                "(code " + std::to_string(static_cast<int>(resp.code)) + ")");
    }
    if (server->admission().StatsFor("hog").shed_final == 0) {
      Violation("overload: per-tenant shed_final counter stayed 0");
    }
  }  // hogs release here

  // --- phase 3b: concurrent overload wave ----------------------------------
  {
    std::vector<std::pair<ObjectId, std::vector<float>>> snapshot(
        live_.begin(), live_.end());
    const std::set<ObjectId> deleted_snapshot = deleted_;
    const size_t per_client =
        std::max<size_t>(1, options_.ops / std::max<size_t>(1, options_.clients));
    std::vector<Rng> rngs;
    for (size_t c = 0; c < options_.clients; ++c) {
      rngs.push_back(rng_.Fork(1000 + c));
    }
    struct WaveCounts {
      uint64_t ok = 0, partial = 0, unavailable = 0, other = 0, calls = 0;
      std::vector<std::string> violations;
    };
    std::vector<WaveCounts> counts(options_.clients);
    ThreadPool wave_pool(options_.clients, /*clamp_to_hardware=*/false);
    wave_pool.ParallelFor(options_.clients, [&](size_t c) {
      ChaosClient wc(&transport_, "chaos");
      WaveCounts& wcnt = counts[c];
      for (size_t i = 0; i < per_client; ++i) {
        const auto& [id, vec] = snapshot[rngs[c].Index(snapshot.size())];
        Request q = MakeQuery(vec, options_.k,
                              "wave" + std::to_string(c % 3),
                              /*deadline_micros=*/20'000);
        Response resp;
        Status s = wc.CallOnce(q, &resp);  // no retry: observe raw sheds
        if (!s.ok()) {
          ++wcnt.unavailable;
          continue;
        }
        if (resp.code == StatusCode::kOk) {
          ++wcnt.ok;
          if (IsEarlyStop(resp.termination)) ++wcnt.partial;
          for (const Neighbor& nb : resp.neighbors) {
            if (deleted_snapshot.count(nb.id) != 0) {
              wcnt.violations.push_back("overload wave: acked-deleted id " +
                                        std::to_string(nb.id) + " returned");
            }
          }
        } else if (resp.code == StatusCode::kUnavailable) {
          ++wcnt.unavailable;
        } else {
          ++wcnt.other;
        }
      }
      wcnt.calls = wc.calls();
    });
    for (const WaveCounts& wcnt : counts) {
      report_.queries_ok += wcnt.ok;
      report_.partial_results += wcnt.partial;
      report_.unavailable += wcnt.unavailable;
      report_.other_errors += wcnt.other;
      report_.requests += wcnt.calls;
      for (const std::string& v : wcnt.violations) Violation(v);
    }
  }

  // --- phase 4: graceful drain, reopen, verify -----------------------------
  {
    DrainReport dr = server->Drain();
    report_.drain_met_deadline = dr.met_deadline;
    if (!dr.met_deadline) {
      Violation("drain: cooperative mid-soak drain missed its deadline: " +
                std::string(dr.admission_status.message()));
    }
    if (dr.leaked_tickets != 0) {
      Violation("drain: " + std::to_string(dr.leaked_tickets) +
                " admission tickets leaked");
    }
    if (!dr.flush_status.ok()) {
      Violation("drain: index flush failed: " +
                std::string(dr.flush_status.message()));
    }
    client.Reset();
    server.reset();
    if (transport_.live_connections() != 0) {
      Violation("drain: " + std::to_string(transport_.live_connections()) +
                " transport endpoints alive after server teardown");
    }

    // Reopen ("rolling restart") and verify the ledger on a clean index.
    C2LSH_ASSIGN_OR_RETURN(DiskC2lshIndex reopened,
                           DiskC2lshIndex::Open(path_, 128, &fault_env_));
    C2LSH_ASSIGN_OR_RETURN(server,
                           StartServer(std::move(reopened),
                                       /*drain_millis=*/150.0));
    VerifyLedger(client, "post_drain_restart");
  }

  // --- phase 4b: forced drain-deadline overrun -----------------------------
  {
    const uint64_t dumps_before = obs::FlightRecorder::Global().dumps_written();
    auto straggler = server->admission().Admit("straggler");
    if (!straggler.ok()) {
      Violation("forced overrun: could not pin a straggler ticket");
    } else {
      DrainReport fr = server->Drain();
      if (fr.met_deadline) {
        Violation("forced overrun: drain claimed to meet its deadline with a "
                  "ticket pinned");
      }
      if (fr.leaked_tickets != 1) {
        Violation("forced overrun: expected exactly the pinned ticket leaked, "
                  "got " + std::to_string(fr.leaked_tickets));
      }
      straggler.value().Release();
      if (server->admission().total_in_flight() != 0) {
        Violation("forced overrun: in-flight count nonzero after release");
      }
    }
    report_.forced_overrun_recorded =
        obs::FlightRecorder::Global().dumps_written() > dumps_before;
    if (!report_.forced_overrun_recorded) {
      Violation("forced overrun: no kDrainDeadlineExceeded dump was written");
    }
    client.Reset();
    server.reset();
  }

  // --- phase 5: crash mid-insert, restart, replay, verify ------------------
  {
    C2LSH_ASSIGN_OR_RETURN(DiskC2lshIndex idx,
                           DiskC2lshIndex::Open(path_, 128, &fault_env_));
    C2LSH_ASSIGN_OR_RETURN(server,
                           StartServer(std::move(idx),
                                       options_.drain_deadline_millis));
    for (size_t i = 0; i < options_.ops / 4; ++i) {
      DoInsert(client, retry_policy_);  // clean acked inserts pre-crash
    }
    fault_env_.SetCrashAfterWrites(
        static_cast<int64_t>(3 + rng_.Index(6)));
    for (size_t i = 0; i < options_.ops / 2; ++i) {
      DoInsert(client, no_retry);  // no retry: the "device" is dying
      if (fault_env_.crashed()) break;
    }
    if (!fault_env_.crashed()) {
      Violation("crash phase: armed crash point never fired");
    }
    // "kill -9": tear the server down (its drain flush fails — the env is
    // crashed — which is exactly the point), then restart the process.
    client.Reset();
    server.reset();
    fault_env_.ClearCrash();
    auto reopened = DiskC2lshIndex::Open(path_, 128, &fault_env_);
    if (!reopened.ok()) {
      Violation("crash phase: reopen after crash failed: " +
                reopened.status().ToString());
    } else {
      C2LSH_ASSIGN_OR_RETURN(server,
                             StartServer(std::move(reopened).value(),
                                         options_.drain_deadline_millis));
      VerifyLedger(client, "post_crash_restart");
      DrainReport dr = server->Drain();
      if (!dr.met_deadline || dr.leaked_tickets != 0) {
        Violation("final drain: met_deadline=" +
                  std::to_string(dr.met_deadline) + " leaked=" +
                  std::to_string(dr.leaked_tickets));
      }
      if (!dr.flush_status.ok()) {
        Violation("final drain: flush failed: " +
                  std::string(dr.flush_status.message()));
      }
      client.Reset();
      server.reset();
    }
  }

  // --- final accounting ----------------------------------------------------
  report_.requests += client.calls();
  report_.leaked_connections = transport_.live_connections();
  if (report_.leaked_connections != 0) {
    Violation("teardown: " + std::to_string(report_.leaked_connections) +
              " transport endpoints leaked");
  }
  report_.leaked_tickets = 0;  // asserted per drain above
  report_.anomaly_dumps =
      obs::FlightRecorder::Global().dumps_written() - dumps_start;
  if (report_.anomaly_dumps == 0) {
    Violation("flight recorder: a full soak wrote zero anomaly dumps");
  }
  obs::FlightRecorder::Global().Disable();
  return report_;
}

}  // namespace

ChaosSoak::ChaosSoak(const ChaosOptions& options) : options_(options) {}

Result<ChaosReport> ChaosSoak::Run() {
  if (options_.dir.empty()) {
    return Status::InvalidArgument("chaos: options.dir is required");
  }
  if (options_.initial_objects < 16 || options_.dim < 2) {
    return Status::InvalidArgument("chaos: need >= 16 objects and dim >= 2");
  }
  SoakRun run(options_);
  return run.Run();
}

}  // namespace serve
}  // namespace c2lsh
