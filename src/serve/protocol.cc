#include "src/serve/protocol.h"

#include <cstring>

namespace c2lsh {
namespace serve {

namespace {

// --- little-endian append/parse helpers ------------------------------------

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v & 0xff));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutF32(std::string* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(out, bits);
}

/// Bounds-checked forward-only reader over one frame body.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t n) : p_(data), end_(data + n) {}

  bool U8(uint8_t* v) {
    if (end_ - p_ < 1) return false;
    *v = *p_++;
    return true;
  }
  bool U16(uint16_t* v) {
    if (end_ - p_ < 2) return false;
    *v = static_cast<uint16_t>(p_[0] | (p_[1] << 8));
    p_ += 2;
    return true;
  }
  bool U32(uint32_t* v) {
    if (end_ - p_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (end_ - p_ < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return true;
  }
  bool F32(float* v) {
    uint32_t bits;
    if (!U32(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }
  bool Bytes(std::string* out, size_t n) {
    if (static_cast<size_t>(end_ - p_) < n) return false;
    out->assign(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return true;
  }
  bool AtEnd() const { return p_ == end_; }
  size_t Remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("protocol: malformed frame: ") +
                                 what);
}

/// Shared tail of both vector-carrying requests: u32 dim + dim floats. The
/// dim is validated against the bytes actually present BEFORE the vector is
/// reserved, so a forged dim cannot drive a large allocation.
Status ParseVector(Cursor* c, std::vector<float>* out) {
  uint32_t dim = 0;
  if (!c->U32(&dim)) return Malformed("truncated dim");
  if (static_cast<size_t>(dim) * 4 != c->Remaining()) {
    return Malformed("vector length disagrees with dim");
  }
  out->resize(dim);
  for (uint32_t i = 0; i < dim; ++i) {
    if (!c->F32(&(*out)[i])) return Malformed("truncated vector");
  }
  return Status::OK();
}

}  // namespace

bool ValidMsgType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kQuery) &&
         t <= static_cast<uint8_t>(MsgType::kReady);
}

std::string EncodeRequest(const Request& req) {
  std::string out;
  out.reserve(32 + req.tenant.size() + req.index.size() +
              req.vector.size() * 4);
  PutU8(&out, static_cast<uint8_t>(req.type));
  const size_t tenant_len = std::min(req.tenant.size(), kMaxTenantBytes);
  PutU8(&out, static_cast<uint8_t>(tenant_len));
  out.append(req.tenant.data(), tenant_len);
  const size_t index_len = std::min(req.index.size(), kMaxIndexNameBytes);
  PutU8(&out, static_cast<uint8_t>(index_len));
  out.append(req.index.data(), index_len);
  PutU64(&out, req.deadline_micros);
  PutU64(&out, req.page_budget);
  switch (req.type) {
    case MsgType::kQuery:
      PutU32(&out, req.k);
      PutU32(&out, static_cast<uint32_t>(req.vector.size()));
      for (float v : req.vector) PutF32(&out, v);
      break;
    case MsgType::kInsert:
      PutU32(&out, req.id);
      PutU32(&out, static_cast<uint32_t>(req.vector.size()));
      for (float v : req.vector) PutF32(&out, v);
      break;
    case MsgType::kDelete:
      PutU32(&out, req.id);
      break;
    case MsgType::kHealth:
    case MsgType::kReady:
      break;
  }
  return out;
}

std::string EncodeResponse(const Response& resp) {
  std::string out;
  out.reserve(16 + resp.message.size() + resp.neighbors.size() * 8);
  PutU8(&out, static_cast<uint8_t>(resp.type));
  PutU8(&out, static_cast<uint8_t>(resp.code));
  PutU8(&out, static_cast<uint8_t>(resp.termination));
  const size_t msg_len = std::min(resp.message.size(), kMaxMessageBytes);
  PutU16(&out, static_cast<uint16_t>(msg_len));
  out.append(resp.message.data(), msg_len);
  if (resp.code != StatusCode::kOk) return out;
  switch (resp.type) {
    case MsgType::kQuery:
      PutU32(&out, static_cast<uint32_t>(resp.neighbors.size()));
      for (const Neighbor& nb : resp.neighbors) {
        PutU32(&out, nb.id);
        PutF32(&out, nb.dist);
      }
      break;
    case MsgType::kHealth:
    case MsgType::kReady:
      PutU8(&out, resp.flag);
      break;
    case MsgType::kInsert:
    case MsgType::kDelete:
      break;
  }
  return out;
}

Status DecodeRequest(const uint8_t* data, size_t n, Request* out) {
  *out = Request();
  Cursor c(data, n);
  uint8_t type = 0;
  if (!c.U8(&type)) return Malformed("empty request");
  if (!ValidMsgType(type)) return Malformed("unknown request type");
  out->type = static_cast<MsgType>(type);

  uint8_t tenant_len = 0;
  if (!c.U8(&tenant_len) || tenant_len > kMaxTenantBytes ||
      !c.Bytes(&out->tenant, tenant_len)) {
    return Malformed("bad tenant");
  }
  uint8_t index_len = 0;
  if (!c.U8(&index_len) || index_len > kMaxIndexNameBytes ||
      !c.Bytes(&out->index, index_len)) {
    return Malformed("bad index name");
  }
  if (!c.U64(&out->deadline_micros)) return Malformed("truncated deadline");
  if (!c.U64(&out->page_budget)) return Malformed("truncated page budget");

  switch (out->type) {
    case MsgType::kQuery:
      if (!c.U32(&out->k)) return Malformed("truncated k");
      C2LSH_RETURN_IF_ERROR(ParseVector(&c, &out->vector));
      break;
    case MsgType::kInsert:
      if (!c.U32(&out->id)) return Malformed("truncated id");
      C2LSH_RETURN_IF_ERROR(ParseVector(&c, &out->vector));
      break;
    case MsgType::kDelete:
      if (!c.U32(&out->id)) return Malformed("truncated id");
      break;
    case MsgType::kHealth:
    case MsgType::kReady:
      break;
  }
  if (!c.AtEnd()) return Malformed("trailing bytes");
  return Status::OK();
}

Status DecodeResponse(const uint8_t* data, size_t n, Response* out) {
  *out = Response();
  Cursor c(data, n);
  uint8_t type = 0, code = 0, term = 0;
  if (!c.U8(&type) || !c.U8(&code) || !c.U8(&term)) {
    return Malformed("truncated response header");
  }
  if (!ValidMsgType(type)) return Malformed("unknown response type");
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Malformed("unknown status code");
  }
  if (term > static_cast<uint8_t>(Termination::kCancelled)) {
    return Malformed("unknown termination");
  }
  out->type = static_cast<MsgType>(type);
  out->code = static_cast<StatusCode>(code);
  out->termination = static_cast<Termination>(term);

  uint16_t msg_len = 0;
  if (!c.U16(&msg_len) || msg_len > kMaxMessageBytes ||
      !c.Bytes(&out->message, msg_len)) {
    return Malformed("bad message");
  }
  if (out->code != StatusCode::kOk) {
    if (!c.AtEnd()) return Malformed("payload on an error response");
    return Status::OK();
  }
  switch (out->type) {
    case MsgType::kQuery: {
      uint32_t count = 0;
      if (!c.U32(&count)) return Malformed("truncated neighbor count");
      if (static_cast<size_t>(count) * 8 != c.Remaining()) {
        return Malformed("neighbor list disagrees with count");
      }
      out->neighbors.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!c.U32(&out->neighbors[i].id) || !c.F32(&out->neighbors[i].dist)) {
          return Malformed("truncated neighbor");
        }
      }
      break;
    }
    case MsgType::kHealth:
    case MsgType::kReady:
      if (!c.U8(&out->flag)) return Malformed("truncated flag");
      break;
    case MsgType::kInsert:
    case MsgType::kDelete:
      break;
  }
  if (!c.AtEnd()) return Malformed("trailing bytes");
  return Status::OK();
}

Status WriteFrame(Connection& conn, const std::string& body,
                  const Deadline& deadline) {
  if (body.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("protocol: frame body over kMaxFrameBytes");
  }
  std::string frame;
  frame.reserve(4 + body.size());
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  frame += body;
  // One Write for prefix + body: interleaved frames from two writer threads
  // are a caller bug, but a reader must never see a torn prefix from us.
  return conn.Write(frame.data(), frame.size(), deadline);
}

Status ReadFrame(Connection& conn, std::string* body, bool* eof,
                 const Deadline& deadline) {
  *eof = false;
  body->clear();
  uint8_t prefix[4];
  size_t got = 0;
  C2LSH_RETURN_IF_ERROR(ReadFull(conn, prefix, sizeof(prefix), &got, deadline));
  if (got == 0) {
    *eof = true;  // clean close between frames
    return Status::OK();
  }
  if (got < sizeof(prefix)) {
    return Status::Corruption("protocol: peer closed mid-length-prefix");
  }
  const uint32_t len = static_cast<uint32_t>(prefix[0]) |
                       static_cast<uint32_t>(prefix[1]) << 8 |
                       static_cast<uint32_t>(prefix[2]) << 16 |
                       static_cast<uint32_t>(prefix[3]) << 24;
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("protocol: frame length " +
                                   std::to_string(len) + " over cap");
  }
  body->resize(len);
  if (len == 0) return Status::OK();
  C2LSH_RETURN_IF_ERROR(ReadFull(
      conn, body->data(), body->size(), &got, deadline));
  if (got < len) {
    return Status::Corruption("protocol: peer closed mid-frame (" +
                              std::to_string(got) + " of " +
                              std::to_string(len) + " bytes)");
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace c2lsh
