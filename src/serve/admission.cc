#include "src/serve/admission.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "src/obs/flight_recorder.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/util/timer.h"

namespace c2lsh {

namespace {

// How often a queued caller re-checks its context and queue timeout. An
// external Cancel() cannot notify cv_, so the wait is sliced; slot releases
// still wake waiters immediately via notify_one.
constexpr int kQueuePollMicros = 1000;

// Registry handles resolved once per process; every controller instance
// also keeps its own AdmissionStats for per-controller tests/telemetry.
struct AdmissionMetrics {
  obs::Counter* admitted;
  obs::Counter* shed_queue_full;
  obs::Counter* shed_timeout;
  obs::Counter* shed_deadline;
  obs::Counter* shed_draining;
  obs::Gauge* in_flight;
  obs::Gauge* queued;
  obs::Histogram* queue_wait;
};

const AdmissionMetrics& Metrics() {
  static const AdmissionMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    AdmissionMetrics mm;
    mm.admitted =
        r.GetCounter("admission_admitted_total", "queries granted an in-flight slot");
    mm.shed_queue_full = r.GetCounter("admission_shed_queue_full_total",
                                      "arrivals shed with the wait queue full");
    mm.shed_timeout = r.GetCounter("admission_shed_timeout_total",
                                   "waiters shed by the queue timeout");
    mm.shed_deadline = r.GetCounter(
        "admission_shed_deadline_total",
        "waiters shed because their deadline expired or they were cancelled");
    mm.shed_draining = r.GetCounter(
        "admission_shed_draining_total",
        "arrivals and queued waiters rejected while the controller drained");
    mm.in_flight = r.GetGauge("admission_in_flight", "in-flight slots outstanding");
    mm.queued = r.GetGauge("admission_queued", "callers waiting for a slot");
    mm.queue_wait =
        r.GetHistogram("admission_queue_wait_millis", "admission queue wait (ms)");
    return mm;
  }();
  return m;
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  options_.max_in_flight = std::max<size_t>(1, options_.max_in_flight);
}

// The capability analysis cannot follow std::unique_lock or the
// condition_variable_any wait (both lock/unlock the Mutex inside library
// templates), so this function is excluded; the whole body runs under mu_
// held by `lock`, and the cv wait releases/reacquires it as usual.
Result<AdmissionController::Ticket> AdmissionController::Admit(const QueryContext* ctx)
    NO_THREAD_SAFETY_ANALYSIS {
  Timer wait_timer;
  const uint64_t trace_id = ctx != nullptr ? ctx->trace_id : 0;
  obs::ScopedSpan wait_span(obs::SpanSubsystem::kAdmission, "admit",
                            trace_id);
  std::unique_lock<Mutex> lock(mu_);

  // Every shed is an anomaly: the timeline leading up to overload is
  // exactly what the flight recorder exists to keep. Recorded after mu_ is
  // released (dump I/O must not serialize the admission path).
  auto record_shed = [trace_id](const char* why) {
    obs::TraceInstant(obs::SpanSubsystem::kAdmission, why, trace_id);
    obs::FlightRecorder::Global().RecordAnomaly(
        obs::AnomalyKind::kAdmissionShed, why, trace_id, /*trace=*/nullptr);
  };

  auto shed_expired = [&](Termination t) -> Status {
    ++totals_.shed_deadline;
    Metrics().shed_deadline->Increment();
    lock.unlock();
    record_shed("admission_shed_deadline");
    return Status::Unavailable(t == Termination::kCancelled
                                   ? "admission: query cancelled before admission"
                                   : "admission: deadline expired before admission");
  };

  auto shed_draining = [&]() -> Status {
    ++totals_.shed_draining;
    Metrics().shed_draining->Increment();
    lock.unlock();
    record_shed("admission_shed_draining");
    return Status::Unavailable(
        "admission: controller draining — rejecting; retry against another "
        "replica");
  };

  if (ctx != nullptr) {
    const Termination t = ctx->CheckNow();
    if (t != Termination::kNone) return shed_expired(t);
  }
  if (draining_) return shed_draining();

  // Fast path: a free slot and nobody queued ahead of us.
  if (in_flight_ < options_.max_in_flight && queued_ == 0) {
    ++in_flight_;
    ++totals_.admitted;
    Metrics().admitted->Increment();
    Metrics().in_flight->Set(static_cast<double>(in_flight_));
    Metrics().queue_wait->Observe(wait_timer.ElapsedMillis(), trace_id);
    return Ticket(this);
  }

  if (queued_ >= options_.max_queue) {
    ++totals_.shed_queue_full;
    Metrics().shed_queue_full->Increment();
    const size_t waiting = queued_;
    lock.unlock();
    record_shed("admission_shed_queue_full");
    return Status::Unavailable("admission: wait queue full (" +
                               std::to_string(waiting) + " waiting, max " +
                               std::to_string(options_.max_queue) +
                               ") — shedding; back off and retry");
  }
  ++queued_;
  Metrics().queued->Set(static_cast<double>(queued_));
  auto leave_queue = [&] {
    --queued_;
    Metrics().queued->Set(static_cast<double>(queued_));
  };

  while (in_flight_ >= options_.max_in_flight) {
    if (draining_) {
      // Fail queued waiters fast: drain must not wait out their timeouts.
      leave_queue();
      return shed_draining();
    }
    if (ctx != nullptr) {
      const Termination t = ctx->CheckNow();
      if (t != Termination::kNone) {
        leave_queue();
        return shed_expired(t);
      }
    }
    if (options_.queue_timeout_millis > 0 &&
        wait_timer.ElapsedMillis() >= options_.queue_timeout_millis) {
      leave_queue();
      ++totals_.shed_timeout;
      Metrics().shed_timeout->Increment();
      lock.unlock();
      record_shed("admission_shed_timeout");
      return Status::Unavailable("admission: no slot freed within the queue timeout — "
                                 "shedding; back off and retry");
    }
    cv_.wait_for(lock, std::chrono::microseconds(kQueuePollMicros));
  }

  leave_queue();
  ++in_flight_;
  ++totals_.admitted;
  Metrics().admitted->Increment();
  Metrics().in_flight->Set(static_cast<double>(in_flight_));
  Metrics().queue_wait->Observe(wait_timer.ElapsedMillis(), trace_id);
  return Ticket(this);
}

void AdmissionController::ReleaseSlot() {
  bool draining;
  {
    MutexLock lock(&mu_);
    if (in_flight_ > 0) --in_flight_;
    Metrics().in_flight->Set(static_cast<double>(in_flight_));
    draining = draining_;
  }
  // While draining, the interesting waiter is Drain() itself (plus every
  // queued caller, which must wake to shed) — notify_one could wake the
  // wrong one and cost a poll interval.
  if (draining) {
    cv_.notify_all();
  } else {
    cv_.notify_one();
  }
}

// Excluded from capability analysis for the same std::unique_lock /
// condition_variable_any reason as Admit; the body holds mu_ via `lock`.
Status AdmissionController::Drain(const Deadline& deadline)
    NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<Mutex> lock(mu_);
  draining_ = true;
  // Wake every queued waiter so it observes draining_ and sheds now.
  cv_.notify_all();
  while (in_flight_ > 0 || queued_ > 0) {
    if (deadline.Expired()) {
      const size_t in_flight = in_flight_;
      const size_t queued = queued_;
      lock.unlock();
      return Status::Unavailable(
          "admission: drain deadline expired with " +
          std::to_string(in_flight) + " in flight, " + std::to_string(queued) +
          " queued");
    }
    // Sliced like Admit's queue wait: queued waiters poll their own exit
    // condition, so the drainer must not rely on being notified.
    cv_.wait_for(lock, std::chrono::microseconds(kQueuePollMicros));
  }
  return Status::OK();
}

void AdmissionController::Resume() {
  MutexLock lock(&mu_);
  draining_ = false;
}

bool AdmissionController::draining() const {
  MutexLock lock(&mu_);
  return draining_;
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(&mu_);
  AdmissionStats s = totals_;
  s.in_flight = in_flight_;
  s.queued = queued_;
  return s;
}

}  // namespace c2lsh
