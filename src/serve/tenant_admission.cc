#include "src/serve/tenant_admission.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"

namespace c2lsh {
namespace serve {

namespace {

/// Metric-name-safe rendering of a tenant id: lower-cased, every character
/// outside [a-z0-9_] replaced with '_'. Two tenants that collide after
/// sanitization share a metric series (the raw id still distinguishes them
/// in the label); the registry keys by name, so this keeps external strings
/// out of the exposition-format name grammar.
std::string SanitizeTenant(const std::string& tenant) {
  if (tenant.empty()) return "_";
  std::string out;
  out.reserve(tenant.size());
  for (char c : tenant) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Pre-escaped label value (the registry stores labels as the rendered
/// `key="value"` body): backslash and double quote escaped, control bytes
/// replaced — tenant ids come straight off the wire.
std::string EscapeLabelValue(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back('_');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

struct TenantAdmission::Partition {
  Partition(const AdmissionOptions& options, const std::string& tenant)
      : controller(options) {
    const std::string san = SanitizeTenant(tenant);
    const std::string labels = "tenant=\"" + EscapeLabelValue(tenant) + "\"";
    auto& r = obs::MetricsRegistry::Global();
    admitted = r.GetCounterWithLabels(
        "c2lsh_serve_tenant_" + san + "_admitted_total",
        "requests admitted for this tenant (own partition or overflow)",
        labels);
    shed = r.GetCounterWithLabels(
        "c2lsh_serve_tenant_" + san + "_shed_total",
        "requests shed for this tenant after partition AND overflow rejected",
        labels);
  }

  AdmissionController controller;
  obs::Counter* admitted = nullptr;
  obs::Counter* shed = nullptr;
  std::atomic<uint64_t> overflow_admits{0};
  std::atomic<uint64_t> shed_final{0};
};

TenantAdmission::TenantAdmission(const TenantAdmissionOptions& options)
    : options_(options), overflow_(options.overflow) {
  options_.max_tenants = std::max<size_t>(1, options_.max_tenants);
}

TenantAdmission::~TenantAdmission() = default;

TenantAdmission::Partition* TenantAdmission::GetPartition(
    const std::string& tenant) {
  MutexLock lock(&mu_);
  auto it = partitions_.find(tenant);
  if (it != partitions_.end()) return it->second.get();
  if (partitions_.size() >= options_.max_tenants) return nullptr;
  auto partition = std::make_unique<Partition>(options_.per_tenant, tenant);
  Partition* raw = partition.get();
  partitions_.emplace(tenant, std::move(partition));
  return raw;
}

Result<AdmissionController::Ticket> TenantAdmission::Admit(
    const std::string& tenant, const QueryContext* ctx) {
  Partition* partition = GetPartition(tenant);

  if (partition != nullptr) {
    Result<AdmissionController::Ticket> r = partition->controller.Admit(ctx);
    if (r.ok()) {
      partition->admitted->Increment();
      return r;
    }
    // Partition shed — fall through to the shared overflow pool. (The
    // partition already counted the shed in its own admission_* series.)
  }

  Result<AdmissionController::Ticket> r = overflow_.Admit(ctx);
  if (r.ok()) {
    if (partition != nullptr) {
      partition->overflow_admits.fetch_add(1, std::memory_order_relaxed);
      partition->admitted->Increment();
    }
    return r;
  }

  // Final shed: quota and overflow both rejected. This is the per-tenant
  // anomaly — the partition-level sheds above are ordinary backpressure.
  if (partition != nullptr) {
    partition->shed_final.fetch_add(1, std::memory_order_relaxed);
    partition->shed->Increment();
  }
  const uint64_t trace_id = ctx != nullptr ? ctx->trace_id : 0;
  obs::TraceInstant(obs::SpanSubsystem::kServe, "tenant_shed", trace_id);
  obs::FlightRecorder::Global().RecordAnomaly(
      obs::AnomalyKind::kTenantShed, "tenant_admit", trace_id,
      /*trace=*/nullptr, "tenant=" + tenant);
  return Status::Unavailable(
      "admission: tenant quota and overflow pool both saturated — shedding; "
      "back off and retry (" + std::string(r.status().message()) + ")");
}

Status TenantAdmission::Drain(const Deadline& deadline) {
  std::vector<AdmissionController*> controllers;
  {
    MutexLock lock(&mu_);
    controllers.reserve(partitions_.size() + 1);
    for (auto& [tenant, partition] : partitions_) {
      controllers.push_back(&partition->controller);
    }
  }
  controllers.push_back(&overflow_);

  // Pass 1 — flip every controller into draining NOW (an already-expired
  // deadline makes Drain set the flag, wake all waiters, and return without
  // waiting). Were this one sequential pass with the real deadline, tenant
  // A's in-flight stragglers would delay even TELLING tenant Z's queued
  // waiters to go away.
  for (AdmissionController* c : controllers) {
    (void)c->Drain(Deadline::AfterMicros(0)).ok();
  }

  // Pass 2 — actually wait for in-flight tickets, all against the one
  // shared deadline.
  Status first_error = Status::OK();
  for (AdmissionController* c : controllers) {
    Status s = c->Drain(deadline);
    if (!s.ok() && first_error.ok()) first_error = std::move(s);
  }
  return first_error;
}

void TenantAdmission::Resume() {
  MutexLock lock(&mu_);
  for (auto& [tenant, partition] : partitions_) {
    partition->controller.Resume();
  }
  overflow_.Resume();
}

TenantStats TenantAdmission::StatsFor(const std::string& tenant) const {
  MutexLock lock(&mu_);
  auto it = partitions_.find(tenant);
  TenantStats stats;
  if (it == partitions_.end()) return stats;
  stats.partition = it->second->controller.stats();
  stats.overflow_admits =
      it->second->overflow_admits.load(std::memory_order_relaxed);
  stats.shed_final = it->second->shed_final.load(std::memory_order_relaxed);
  return stats;
}

size_t TenantAdmission::tenant_count() const {
  MutexLock lock(&mu_);
  return partitions_.size();
}

size_t TenantAdmission::total_in_flight() const {
  size_t total = overflow_.stats().in_flight;
  MutexLock lock(&mu_);
  for (const auto& [tenant, partition] : partitions_) {
    total += partition->controller.stats().in_flight;
  }
  return total;
}

}  // namespace serve
}  // namespace c2lsh
