// InprocTransport: an in-memory Transport for tests and the chaos soak —
// the FaultInjectionEnv of the network seam.
//
// Connections are pairs of mutex-guarded byte queues inside one process: no
// sockets, no ports, fully deterministic. On top of plain stream semantics
// it adds programmable faults, shared across everything the transport hands
// out (the same shape as FaultEnvState):
//
//   * short reads   — the next K reads deliver at most half the requested
//                     bytes even when more are buffered (exercises every
//                     framing loop);
//   * connect drops — the next K Connect calls fail with Unavailable before
//                     reaching a listener (exercises client retry);
//   * hard kills    — KillAllConnections() severs every live pipe at once:
//                     both ends see IOError, not clean EOF (a mid-frame
//                     disconnect, the case drain must tolerate).
//
// Leak accounting: live_connections() counts endpoint objects not yet
// destroyed — the in-process stand-in for "zero leaked fds" assertions.

#pragma once
#ifndef C2LSH_SERVE_INPROC_TRANSPORT_H_
#define C2LSH_SERVE_INPROC_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/socket.h"

namespace c2lsh {
namespace serve {

namespace internal {
struct InprocState;  // shared by the transport and everything it hands out
}  // namespace internal

class InprocTransport final : public Transport {
 public:
  InprocTransport();
  ~InprocTransport() override;

  // --- Transport interface -----------------------------------------------
  /// Registers a listener under `address` (any nonempty string). One
  /// listener per address; a second Listen on a live address fails.
  Result<std::unique_ptr<Listener>> Listen(const std::string& address) override;

  /// Connects to the listener registered under `address`. Unavailable when
  /// none is registered (or a connect-drop fault is armed), expired
  /// `deadline` included.
  Result<std::unique_ptr<Connection>> Connect(const std::string& address,
                                              const Deadline& deadline) override;

  // --- fault programming ---------------------------------------------------
  /// The next `n` reads across all connections deliver at most half the
  /// requested bytes (at least 1) even when more are queued.
  void SetShortReads(int n);

  /// The next `n` Connect calls fail with Unavailable.
  void SetConnectDrops(int n);

  /// Severs every live connection now: pending and future Read/Write on
  /// both ends return IOError ("connection reset"), never clean EOF.
  void KillAllConnections();

  // --- leak accounting -----------------------------------------------------
  /// Connection endpoints currently alive (each end of a pipe counts one).
  size_t live_connections() const;
  /// Cumulative endpoints ever created.
  uint64_t total_connections() const;

 private:
  std::shared_ptr<internal::InprocState> state_;
};

}  // namespace serve
}  // namespace c2lsh

#endif  // C2LSH_SERVE_INPROC_TRANSPORT_H_
