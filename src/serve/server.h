// Server: the serving front end — a multi-index catalog behind the wire
// protocol (src/serve/protocol.h) on the transport seam (src/util/socket.h).
//
// Threading model: one dedicated ThreadPool sized max_connections + 2 with
// clamp_to_hardware = false (handlers BLOCK in Read, so the right pool size
// is the connection cap, not the core count). One submitted task runs the
// accept loop; each accepted connection gets one submitted handler running
// read-frame -> dispatch -> write-frame until EOF, error, or drain. The
// accept loop stops pulling from the listener while the connection cap is
// reached — the kernel accept queue (or in-process equivalent) is the
// backpressure, not an unbounded handler pile.
//
// Request controls, end to end: the wire deadline (relative micros) becomes
// the QueryContext deadline MINUS deadline_margin_millis — the margin is the
// server's budget to encode and flush the response, so the client sees an
// answer before its own deadline, not a dead connection after it. The wire
// page budget flows into io_page_budget unchanged. Admission (per-tenant
// partitions + shared overflow, src/serve/tenant_admission.h) is taken
// BEFORE the per-index lock: a saturated index sheds in admission with
// Unavailable rather than queueing unboundedly on the mutex.
//
// The catalog holds DiskC2lshIndex instances, each behind its own Mutex:
// the disk index is documented single-writer single-reader (one scratch,
// one WAL cursor), so EVERY operation on one index — Query included — is
// serialized by that index's lock. Cross-index requests proceed in parallel.
//
// Graceful drain (Drain(), idempotent):
//   1. readiness flips false (kReady answers 0) and the listener closes —
//      no new connections;
//   2. admission drains: queued waiters everywhere shed immediately with
//      Unavailable, in-flight queries get until drain_deadline_millis;
//   3. on overrun: a kDrainDeadlineExceeded anomaly is recorded and the
//      server-wide CancellationToken fires, stopping stragglers at their
//      next checkpoint with partial results;
//   4. every connection is Shutdown() — handlers parked in Read unblock —
//      and the server waits for the accept loop and all handlers to exit;
//   5. every index Flushes (WAL + file sync) under its lock, so a kill -9
//      after drain loses nothing.
// The DrainReport says whether the deadline held, how many connections were
// yanked, and whether any admission tickets leaked (always 0 unless a
// handler leaked one — the chaos soak asserts this stays 0).

#pragma once
#ifndef C2LSH_SERVE_SERVER_H_
#define C2LSH_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/core/disk_index.h"
#include "src/serve/protocol.h"
#include "src/serve/tenant_admission.h"
#include "src/util/mutex.h"
#include "src/util/query_context.h"
#include "src/util/result.h"
#include "src/util/socket.h"
#include "src/util/thread_pool.h"

namespace c2lsh {
namespace serve {

struct ServerOptions {
  /// Address passed to Transport::Listen; the resolved one (ephemeral port
  /// filled in) comes back from Server::address().
  std::string address = "127.0.0.1:0";

  /// Concurrent connections served; the accept loop pauses at the cap.
  /// Clamped to >= 1.
  size_t max_connections = 64;

  /// Subtracted from every wire deadline before it reaches the query: the
  /// server's own budget to encode and flush the response.
  double deadline_margin_millis = 2.0;

  /// How long Drain() waits for in-flight requests before cancelling them.
  double drain_deadline_millis = 2000.0;

  /// Bound on writing one response frame (a stalled reader must not pin a
  /// handler forever).
  double write_timeout_millis = 5000.0;

  /// Per-tenant partitions + shared overflow pool.
  TenantAdmissionOptions admission;

  /// The network doorway. Required; NOT owned — must outlive the Server.
  /// Tests pass an InprocTransport, production a PosixTransport.
  Transport* transport = nullptr;
};

/// What Drain() observed. `leaked_tickets` is the post-drain in-flight sum
/// across every admission controller — nonzero means a handler lost a
/// Ticket, the invariant the chaos soak exists to catch.
struct DrainReport {
  bool met_deadline = true;
  size_t connections_aborted = 0;  ///< connections Shutdown() mid-drain
  size_t leaked_tickets = 0;
  Status admission_status;  ///< OK, or the drain-deadline Unavailable
  Status flush_status;      ///< first index Flush() failure, if any
};

class Server {
 public:
  /// Binds the listener and starts the accept loop. The options' transport
  /// must stay alive until the Server is destroyed.
  static Result<std::unique_ptr<Server>> Start(const ServerOptions& options);

  /// Drains first (with the configured deadline) if Drain() was never
  /// called, then joins the pool.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers `index` under `name` (what requests carry on the wire).
  /// InvalidArgument on an empty/over-cap name or a duplicate. Indexes can
  /// be added while serving; they are never removed (drain, then rebuild
  /// the server).
  Status AddIndex(const std::string& name, DiskC2lshIndex index);

  /// The resolved listen address — what clients pass to Connect.
  const std::string& address() const { return address_; }

  /// Readiness as reported to kReady probes: true from Start until Drain.
  bool ready() const { return ready_.load(std::memory_order_relaxed); }

  /// Graceful shutdown (see file comment). Idempotent: the first call
  /// drains, every later (or concurrent) call waits for it and returns the
  /// same report.
  DrainReport Drain();

  TenantAdmission& admission() { return admission_; }

  size_t active_connections() const;
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  /// One catalog slot. The Mutex serializes every operation on the index
  /// (single-writer single-reader contract); entries are unique_ptr so the
  /// address survives catalog growth while a handler holds the lock.
  struct IndexEntry {
    explicit IndexEntry(DiskC2lshIndex idx) : index(std::move(idx)) {}
    Mutex mu;
    DiskC2lshIndex index GUARDED_BY(mu);
  };

  explicit Server(const ServerOptions& options);

  void AcceptLoop();
  void HandleConnection(uint64_t id, std::shared_ptr<Connection> conn);
  Response Dispatch(const Request& req);
  IndexEntry* FindIndex(const std::string& name) EXCLUDES(catalog_mu_);

  ServerOptions options_;  ///< normalized (clamps applied)
  TenantAdmission admission_;
  std::unique_ptr<Listener> listener_;
  std::string address_;

  /// Fired when drain overruns its deadline: every in-flight query stops at
  /// its next checkpoint with partial results.
  CancellationToken cancel_;

  std::atomic<bool> ready_{false};
  std::atomic<uint64_t> requests_{0};

  mutable Mutex mu_;
  std::condition_variable_any cv_;  ///< handler exit, cap slack, drain done
  std::map<uint64_t, std::shared_ptr<Connection>> connections_ GUARDED_BY(mu_);
  uint64_t next_conn_id_ GUARDED_BY(mu_) = 0;
  size_t tasks_outstanding_ GUARDED_BY(mu_) = 0;  ///< accept loop + handlers
  bool stopping_ GUARDED_BY(mu_) = false;
  bool drained_ GUARDED_BY(mu_) = false;
  DrainReport drain_report_ GUARDED_BY(mu_);

  mutable Mutex catalog_mu_;
  std::map<std::string, std::unique_ptr<IndexEntry>> catalog_
      GUARDED_BY(catalog_mu_);

  /// Declared last: destroyed first, joining every worker while the members
  /// the handlers touch are still alive.
  ThreadPool pool_;
};

}  // namespace serve
}  // namespace c2lsh

#endif  // C2LSH_SERVE_SERVER_H_
