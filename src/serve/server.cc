#include "src/serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"

namespace c2lsh {
namespace serve {

namespace {

// Accept-loop backoff after a transient accept failure, and the slice at
// which waiters re-check drain progress.
constexpr int kRetryPollMicros = 1000;

struct ServerMetrics {
  obs::Counter* requests;
  obs::Counter* requests_error;
  obs::Gauge* connections;
  obs::Counter* drains;
};

const ServerMetrics& Metrics() {
  static const ServerMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    ServerMetrics mm;
    mm.requests = r.GetCounter("c2lsh_serve_requests_total",
                               "frames dispatched by the serving front end");
    mm.requests_error =
        r.GetCounter("c2lsh_serve_requests_error_total",
                     "dispatched frames answered with a nonzero status code");
    mm.connections = r.GetGauge("c2lsh_serve_connections",
                                "connections currently being served");
    mm.drains = r.GetCounter("c2lsh_serve_drains_total",
                             "graceful drains initiated");
    return mm;
  }();
  return m;
}

ServerOptions Normalize(ServerOptions options) {
  options.max_connections = std::max<size_t>(1, options.max_connections);
  return options;
}

Response ErrorResponse(MsgType type, const Status& s) {
  Response resp;
  resp.type = type;
  resp.code = s.code();
  resp.message = std::string(s.message().substr(0, kMaxMessageBytes));
  return resp;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(Normalize(options)),
      admission_(options_.admission),
      // +2: the accept loop occupies one worker for the server's lifetime,
      // and one spare keeps a cap-full pool from serializing accept + drain.
      pool_(options_.max_connections + 2, /*clamp_to_hardware=*/false) {}

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  if (options.transport == nullptr) {
    return Status::InvalidArgument("server: options.transport is required");
  }
  // The constructor is private (Start is the only entry), so make_unique
  // cannot reach it.
  auto server = std::unique_ptr<Server>(new Server(options));  // NOLINT(banned-function)
  C2LSH_ASSIGN_OR_RETURN(server->listener_,
                         options.transport->Listen(server->options_.address));
  server->address_ = server->listener_->address();
  server->ready_.store(true, std::memory_order_relaxed);
  {
    MutexLock lock(&server->mu_);
    server->tasks_outstanding_ = 1;  // the accept loop
  }
  Server* raw = server.get();
  server->pool_.Submit([raw] { raw->AcceptLoop(); });
  return server;
}

Server::~Server() {
  bool drained;
  {
    MutexLock lock(&mu_);
    drained = drained_;
  }
  if (!drained) (void)Drain();  // report already surfaced via Drain callers
  // pool_ (declared last) now destroys first, joining every worker.
}

Status Server::AddIndex(const std::string& name, DiskC2lshIndex index) {
  if (name.empty() || name.size() > kMaxIndexNameBytes) {
    return Status::InvalidArgument(
        "server: index name must be 1.." +
        std::to_string(kMaxIndexNameBytes) + " bytes");
  }
  MutexLock lock(&catalog_mu_);
  auto [it, inserted] =
      catalog_.emplace(name, std::make_unique<IndexEntry>(std::move(index)));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("server: index '" + name +
                                   "' already registered");
  }
  return Status::OK();
}

Server::IndexEntry* Server::FindIndex(const std::string& name) {
  MutexLock lock(&catalog_mu_);
  auto it = catalog_.find(name);
  return it != catalog_.end() ? it->second.get() : nullptr;
}

size_t Server::active_connections() const {
  MutexLock lock(&mu_);
  return connections_.size();
}

// Excluded from capability analysis: std::unique_lock + cv waits on the
// annotated Mutex (the AdmissionController::Admit idiom).
void Server::AcceptLoop() NO_THREAD_SAFETY_ANALYSIS {
  for (;;) {
    {
      std::unique_lock<Mutex> lock(mu_);
      // Cap backpressure: stop pulling from the listener — the transport's
      // accept queue absorbs the burst — until a handler exits.
      while (!stopping_ && connections_.size() >= options_.max_connections) {
        cv_.wait(lock);
      }
      if (stopping_) break;
    }
    Result<std::unique_ptr<Connection>> r = listener_->Accept();
    if (!r.ok()) {
      // Unavailable after Close() during drain — or a transient accept
      // failure, retried after a short backoff.
      std::unique_lock<Mutex> lock(mu_);
      if (stopping_) break;
      cv_.wait_for(lock, std::chrono::microseconds(kRetryPollMicros));
      continue;
    }
    std::shared_ptr<Connection> conn(std::move(r).value());
    uint64_t id = 0;
    {
      MutexLock lock(&mu_);
      if (stopping_) break;  // conn drops; its client sees EOF
      id = next_conn_id_++;
      connections_.emplace(id, conn);
      ++tasks_outstanding_;
      Metrics().connections->Set(static_cast<double>(connections_.size()));
    }
    pool_.Submit(
        [this, id, conn] { HandleConnection(id, std::move(conn)); });
  }
  MutexLock lock(&mu_);
  --tasks_outstanding_;
  cv_.notify_all();
}

void Server::HandleConnection(uint64_t id, std::shared_ptr<Connection> conn) {
  std::string body;
  for (;;) {
    bool eof = false;
    // Infinite read deadline: an idle keep-alive connection is fine, and
    // drain unblocks this via Shutdown().
    Status s = ReadFrame(*conn, &body, &eof, Deadline::Infinite());
    if (!s.ok() || eof) break;

    Request req;
    Response resp;
    bool close_after = false;
    Status d = DecodeRequest(reinterpret_cast<const uint8_t*>(body.data()),
                             body.size(), &req);
    if (!d.ok()) {
      // A malformed frame may leave the stream desynced: answer what we
      // can, then close so the client reconnects cleanly.
      resp = ErrorResponse(MsgType::kHealth, d);
      close_after = true;
    } else {
      resp = Dispatch(req);
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    Metrics().requests->Increment();
    if (resp.code != StatusCode::kOk) Metrics().requests_error->Increment();

    Status w = WriteFrame(*conn, EncodeResponse(resp),
                          Deadline::AfterMillis(options_.write_timeout_millis));
    if (!w.ok() || close_after) break;
  }
  conn->Shutdown();
  conn.reset();  // destroy before the exit is observable (fd accounting)
  MutexLock lock(&mu_);
  connections_.erase(id);
  Metrics().connections->Set(static_cast<double>(connections_.size()));
  --tasks_outstanding_;
  cv_.notify_all();
}

Response Server::Dispatch(const Request& req) {
  Response resp;
  resp.type = req.type;

  switch (req.type) {
    case MsgType::kHealth:
      resp.flag = 1;  // the process answered: alive by definition
      return resp;
    case MsgType::kReady:
      resp.flag = ready() ? 1 : 0;
      return resp;
    default:
      break;
  }

  // Wire controls -> QueryContext. The margin keeps the response inside the
  // CLIENT's deadline: the query gets deadline - margin, the server spends
  // the margin encoding and flushing. A deadline at or under the margin is
  // already hopeless and sheds in admission (AfterMicros(<=0) is expired).
  QueryContext ctx;
  if (req.deadline_micros > 0) {
    const int64_t margin =
        static_cast<int64_t>(std::llround(options_.deadline_margin_millis * 1e3));
    ctx.deadline = Deadline::AfterMicros(
        static_cast<int64_t>(req.deadline_micros) - margin);
  }
  ctx.cancel = &cancel_;
  ctx.io_page_budget = req.page_budget;

  auto ticket_or = admission_.Admit(req.tenant, &ctx);
  if (!ticket_or.ok()) return ErrorResponse(req.type, ticket_or.status());
  AdmissionController::Ticket ticket = std::move(ticket_or).value();

  IndexEntry* entry = FindIndex(req.index);
  if (entry == nullptr) {
    return ErrorResponse(
        req.type, Status::NotFound("server: no index '" + req.index + "'"));
  }

  obs::ScopedSpan span(obs::SpanSubsystem::kServe, "request", ctx.trace_id);

  // The per-index lock: DiskC2lshIndex is single-writer single-reader, so
  // queries serialize here too. Admission already bounded how many requests
  // can be waiting on it.
  MutexLock lock(&entry->mu);
  switch (req.type) {
    case MsgType::kQuery: {
      if (req.k == 0) {
        return ErrorResponse(
            req.type, Status::InvalidArgument("server: k must be >= 1"));
      }
      if (req.vector.size() != entry->index.dim()) {
        return ErrorResponse(
            req.type,
            Status::InvalidArgument(
                "server: query dim " + std::to_string(req.vector.size()) +
                " != index dim " + std::to_string(entry->index.dim())));
      }
      DiskQueryStats stats;
      Result<NeighborList> r = entry->index.Query(
          req.vector.data(), req.k, &stats, /*trace=*/nullptr, &ctx);
      if (!r.ok()) return ErrorResponse(req.type, r.status());
      resp.neighbors = std::move(r).value();
      // The contract on the wire: a partial answer is tagged, never silent.
      resp.termination = stats.base.termination;
      return resp;
    }
    case MsgType::kInsert: {
      if (req.vector.size() != entry->index.dim()) {
        return ErrorResponse(
            req.type,
            Status::InvalidArgument(
                "server: insert dim " + std::to_string(req.vector.size()) +
                " != index dim " + std::to_string(entry->index.dim())));
      }
      Status s = entry->index.Insert(req.id, req.vector.data());
      if (!s.ok()) return ErrorResponse(req.type, s);
      return resp;  // OK ack: the WAL synced — this insert is durable
    }
    case MsgType::kDelete: {
      Status s = entry->index.Delete(req.id);
      if (!s.ok()) return ErrorResponse(req.type, s);
      return resp;
    }
    case MsgType::kHealth:
    case MsgType::kReady:
      break;  // handled above
  }
  return ErrorResponse(
      req.type, Status::Internal("server: unreachable dispatch arm"));
}

// Excluded from capability analysis for the unique_lock/cv idiom; see
// AcceptLoop.
DrainReport Server::Drain() NO_THREAD_SAFETY_ANALYSIS {
  {
    std::unique_lock<Mutex> lock(mu_);
    if (stopping_) {
      // A drain is (or was) in progress: wait for it and share its report.
      while (!drained_) {
        cv_.wait_for(lock, std::chrono::microseconds(kRetryPollMicros));
      }
      return drain_report_;
    }
    stopping_ = true;
  }
  Metrics().drains->Increment();
  ready_.store(false, std::memory_order_relaxed);  // kReady now answers 0
  listener_->Close();
  cv_.notify_all();  // wake the accept loop off the cap wait

  DrainReport report;
  const Deadline deadline =
      Deadline::AfterMillis(options_.drain_deadline_millis);
  // Two-pass inside: every controller flips to draining first (queued
  // waiters shed immediately, everywhere), then in-flight tickets get the
  // shared deadline.
  report.admission_status = admission_.Drain(deadline);
  if (!report.admission_status.ok()) {
    report.met_deadline = false;
    obs::FlightRecorder::Global().RecordAnomaly(
        obs::AnomalyKind::kDrainDeadlineExceeded, "server_drain",
        /*query_id=*/0, /*trace=*/nullptr,
        report.admission_status.message());
    // Stragglers overran the deadline: stop them cooperatively — they
    // return tagged partial results, not wrong ones.
    cancel_.Cancel();
  }

  // Unblock every handler parked in ReadFrame (idle connections hold no
  // ticket, so admission drain never touches them).
  std::vector<std::shared_ptr<Connection>> conns;
  {
    MutexLock lock(&mu_);
    conns.reserve(connections_.size());
    for (auto& [id, c] : connections_) conns.push_back(c);
  }
  report.connections_aborted = conns.size();
  for (auto& c : conns) c->Shutdown();
  conns.clear();

  // Handlers exit promptly now (reads fail, queries are cancelled); wait
  // for them and the accept loop.
  {
    std::unique_lock<Mutex> lock(mu_);
    while (tasks_outstanding_ > 0) {
      cv_.wait_for(lock, std::chrono::microseconds(kRetryPollMicros));
    }
  }

  // Every handler exited, so every Ticket destructor ran: nonzero here
  // means a slot leaked — the invariant the chaos soak asserts on.
  report.leaked_tickets = admission_.total_in_flight();

  // Flush so a kill -9 after drain loses nothing: WAL sync (no-op for
  // acked mutations) + page-file sync, per index, under its own lock.
  // Snapshot the entry pointers first — entries are never removed, so the
  // addresses are stable and the catalog lock need not pin the fsyncs.
  std::vector<IndexEntry*> entries;
  {
    MutexLock lock(&catalog_mu_);
    entries.reserve(catalog_.size());
    for (auto& [name, entry] : catalog_) entries.push_back(entry.get());
  }
  for (IndexEntry* entry : entries) {
    MutexLock entry_lock(&entry->mu);
    // analyze-ok(lock-order): entry->mu is the index's required external serialization (DiskC2lshIndex is single-writer); every handler already exited, so nothing queues behind this drain-time fsync.
    Status s = entry->index.Flush();
    if (!s.ok() && report.flush_status.ok()) {
      report.flush_status = std::move(s);
    }
  }

  {
    MutexLock lock(&mu_);
    drain_report_ = report;
    drained_ = true;
  }
  cv_.notify_all();
  return report;
}

}  // namespace serve
}  // namespace c2lsh
