#include "src/serve/inproc_transport.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "src/util/mutex.h"

namespace c2lsh {
namespace serve {

namespace internal {

/// One pipe: two byte queues plus the close/kill flags, under one mutex.
struct Duplex {
  Mutex mu;
  std::condition_variable_any cv;
  std::deque<uint8_t> to[2];  ///< to[i]: bytes readable by endpoint i
  bool closed[2] = {false, false};  ///< endpoint i shut down or destroyed
  bool killed = false;              ///< hard kill: both ends error, no EOF
};

class InprocListener;

struct InprocState {
  Mutex mu;
  std::condition_variable_any cv;  ///< wakes Accept (new pipe, Close)
  std::map<std::string, InprocListener*> listeners GUARDED_BY(mu);
  int short_reads_remaining GUARDED_BY(mu) = 0;
  int connect_drops_remaining GUARDED_BY(mu) = 0;
  std::vector<std::weak_ptr<Duplex>> pipes GUARDED_BY(mu);

  std::atomic<size_t> live_endpoints{0};
  std::atomic<uint64_t> total_endpoints{0};

  /// Consumes one short-read token if armed: the permitted read size for a
  /// request of `want` bytes.
  size_t ApplyShortRead(size_t want) {
    MutexLock lock(&mu);
    if (short_reads_remaining > 0 && want > 1) {
      --short_reads_remaining;
      return std::max<size_t>(1, want / 2);
    }
    return want;
  }
};

// How often a blocked reader re-checks its deadline; writers and Shutdown
// notify the pipe's cv, so the slice only bounds deadline detection.
constexpr int kPollMicros = 1000;

class InprocConnection final : public Connection {
 public:
  InprocConnection(std::shared_ptr<InprocState> state,
                   std::shared_ptr<Duplex> pipe, int end)
      : state_(std::move(state)), pipe_(std::move(pipe)), end_(end) {
    state_->live_endpoints.fetch_add(1, std::memory_order_relaxed);
    state_->total_endpoints.fetch_add(1, std::memory_order_relaxed);
  }

  ~InprocConnection() override {
    Shutdown();
    state_->live_endpoints.fetch_sub(1, std::memory_order_relaxed);
  }

  Status Read(void* buf, size_t n, size_t* bytes_read,
              const Deadline& deadline) override {
    return ReadImpl(buf, n, bytes_read, deadline);
  }

  // Excluded from capability analysis: std::unique_lock + cv wait on the
  // annotated Mutex (same idiom as AdmissionController::Admit). A helper
  // rather than the override itself so the attribute does not have to share
  // a declarator with `override`.
  Status ReadImpl(void* buf, size_t n, size_t* bytes_read,
                  const Deadline& deadline) NO_THREAD_SAFETY_ANALYSIS {
    *bytes_read = 0;
    if (n == 0) return Status::OK();
    Duplex& d = *pipe_;
    std::unique_lock<Mutex> lock(d.mu);
    for (;;) {
      if (d.killed) {
        return Status::IOError("inproc: connection reset (fault injection)");
      }
      if (d.closed[end_]) {
        return Status::Unavailable("inproc: connection shut down");
      }
      std::deque<uint8_t>& q = d.to[end_];
      if (!q.empty()) {
        const size_t want = std::min(n, q.size());
        const size_t take = state_->ApplyShortRead(want);
        auto* out = static_cast<uint8_t*>(buf);
        for (size_t i = 0; i < take; ++i) {
          out[i] = q.front();
          q.pop_front();
        }
        *bytes_read = take;
        return Status::OK();
      }
      if (d.closed[1 - end_]) return Status::OK();  // clean EOF
      if (deadline.Expired()) {
        return Status::Unavailable("inproc: read deadline expired");
      }
      d.cv.wait_for(lock, std::chrono::microseconds(kPollMicros));
    }
  }

  Status Write(const void* buf, size_t n, const Deadline& deadline) override {
    if (deadline.Expired()) {
      return Status::Unavailable("inproc: write deadline expired");
    }
    Duplex& d = *pipe_;
    {
      MutexLock lock(&d.mu);
      if (d.killed) {
        return Status::IOError("inproc: connection reset (fault injection)");
      }
      if (d.closed[end_]) {
        return Status::Unavailable("inproc: connection shut down");
      }
      if (d.closed[1 - end_]) {
        return Status::IOError("inproc: peer closed (broken pipe)");
      }
      const auto* p = static_cast<const uint8_t*>(buf);
      d.to[1 - end_].insert(d.to[1 - end_].end(), p, p + n);
    }
    d.cv.notify_all();
    return Status::OK();
  }

  void Shutdown() override {
    {
      MutexLock lock(&pipe_->mu);
      pipe_->closed[end_] = true;
    }
    pipe_->cv.notify_all();
  }

 private:
  std::shared_ptr<InprocState> state_;
  std::shared_ptr<Duplex> pipe_;
  const int end_;  ///< 0 = client side, 1 = accepted side
};

class InprocListener final : public Listener {
 public:
  InprocListener(std::shared_ptr<InprocState> state, std::string address)
      : state_(std::move(state)), address_(std::move(address)) {}

  ~InprocListener() override {
    Close();
    MutexLock lock(&state_->mu);
    auto it = state_->listeners.find(address_);
    if (it != state_->listeners.end() && it->second == this) {
      state_->listeners.erase(it);
    }
  }

  Result<std::unique_ptr<Connection>> Accept() override {
    return AcceptImpl();
  }

  // Capability-analysis exclusion: same reasoning as ReadImpl above.
  Result<std::unique_ptr<Connection>> AcceptImpl() NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<Mutex> lock(state_->mu);
    for (;;) {
      if (!pending_.empty()) {
        std::unique_ptr<Connection> conn = std::move(pending_.front());
        pending_.pop_front();
        return conn;
      }
      if (closed_) return Status::Unavailable("inproc: listener closed");
      state_->cv.wait(lock);
    }
  }

  void Close() override {
    {
      MutexLock lock(&state_->mu);
      closed_ = true;
      // Dropping the queued server endpoints gives their clients clean EOF.
      pending_.clear();
    }
    state_->cv.notify_all();
  }

  std::string address() const override { return address_; }

 private:
  friend class c2lsh::serve::InprocTransport;

  std::shared_ptr<InprocState> state_;
  const std::string address_;
  std::deque<std::unique_ptr<Connection>> pending_ GUARDED_BY(state_->mu);
  bool closed_ GUARDED_BY(state_->mu) = false;
};

}  // namespace internal

using internal::InprocConnection;
using internal::InprocListener;

InprocTransport::InprocTransport()
    : state_(std::make_shared<internal::InprocState>()) {}

InprocTransport::~InprocTransport() = default;

Result<std::unique_ptr<Listener>> InprocTransport::Listen(
    const std::string& address) {
  if (address.empty()) {
    return Status::InvalidArgument("inproc: empty listen address");
  }
  auto listener = std::make_unique<InprocListener>(state_, address);
  MutexLock lock(&state_->mu);
  auto [it, inserted] = state_->listeners.emplace(address, listener.get());
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("inproc: address '" + address +
                                   "' already has a listener");
  }
  return std::unique_ptr<Listener>(std::move(listener));
}

Result<std::unique_ptr<Connection>> InprocTransport::Connect(
    const std::string& address, const Deadline& deadline) {
  if (deadline.Expired()) {
    return Status::Unavailable("inproc: connect deadline expired");
  }
  std::unique_ptr<Connection> client;
  {
    MutexLock lock(&state_->mu);
    if (state_->connect_drops_remaining > 0) {
      --state_->connect_drops_remaining;
      return Status::Unavailable("inproc: injected connect drop");
    }
    auto it = state_->listeners.find(address);
    if (it == state_->listeners.end() || it->second->closed_) {
      return Status::Unavailable("inproc: no listener at '" + address + "'");
    }
    auto pipe = std::make_shared<internal::Duplex>();
    client = std::make_unique<InprocConnection>(state_, pipe, 0);
    it->second->pending_.push_back(
        std::make_unique<InprocConnection>(state_, pipe, 1));
    // Track the pipe for KillAllConnections, pruning dead entries as we go.
    auto& pipes = state_->pipes;
    pipes.erase(std::remove_if(pipes.begin(), pipes.end(),
                               [](const std::weak_ptr<internal::Duplex>& w) {
                                 return w.expired();
                               }),
                pipes.end());
    pipes.push_back(pipe);
  }
  state_->cv.notify_all();
  return client;
}

void InprocTransport::SetShortReads(int n) {
  MutexLock lock(&state_->mu);
  state_->short_reads_remaining = n > 0 ? n : 0;
}

void InprocTransport::SetConnectDrops(int n) {
  MutexLock lock(&state_->mu);
  state_->connect_drops_remaining = n > 0 ? n : 0;
}

void InprocTransport::KillAllConnections() {
  // Copy under the state lock, kill outside it: a pipe's mutex is only ever
  // taken without state_->mu held (read/write paths), so taking them nested
  // here would invert that order.
  std::vector<std::shared_ptr<internal::Duplex>> pipes;
  {
    MutexLock lock(&state_->mu);
    for (const auto& w : state_->pipes) {
      if (auto p = w.lock()) pipes.push_back(std::move(p));
    }
    state_->pipes.clear();
  }
  for (const auto& p : pipes) {
    {
      MutexLock lock(&p->mu);
      p->killed = true;
    }
    p->cv.notify_all();
  }
}

size_t InprocTransport::live_connections() const {
  return state_->live_endpoints.load(std::memory_order_relaxed);
}

uint64_t InprocTransport::total_connections() const {
  return state_->total_endpoints.load(std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace c2lsh
