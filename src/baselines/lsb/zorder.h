// Z-order (Morton) encoding of compound LSH values — the key trick of the
// LSB-tree (Tao et al., SIGMOD 2009): interleave the bits of the u component
// hash values so that a long common key prefix implies closeness in *every*
// component simultaneously, then index the keys with a B+-tree.

#pragma once
#ifndef C2LSH_BASELINES_LSB_ZORDER_H_
#define C2LSH_BASELINES_LSB_ZORDER_H_

#include <cstdint>
#include <vector>

#include "src/storage/bucket_table.h"
#include "src/util/result.h"

namespace c2lsh {

/// Encodes u signed bucket ids, each quantized to v bits, into a
/// bit-interleaved key of u*v bits packed msb-first into 64-bit words.
class ZOrderEncoder {
 public:
  /// `bits_per_component` (v) must be in [1, 32]; `num_components` (u) >= 1.
  /// `bias` is added to every component before encoding so the working range
  /// is non-negative; the default recentres around 2^(v-1). LSB-tree fits
  /// (v, bias) to the observed bucket range at build time so every bit plane
  /// is discriminative.
  static Result<ZOrderEncoder> Create(size_t num_components, size_t bits_per_component,
                                      int64_t bias = kCenterBias);

  /// Sentinel for "recentre at 2^(v-1)".
  static constexpr int64_t kCenterBias = INT64_MIN;

  size_t num_components() const { return u_; }
  size_t bits_per_component() const { return v_; }
  size_t key_bits() const { return u_ * v_; }
  size_t key_words() const { return words_; }

  /// Encodes the component vector (size u). Signed ids are recentred by
  /// +2^(v-1) and clamped into [0, 2^v - 1]; clamping only affects points in
  /// the extreme tails of the projections. Writes `key_words()` words.
  void Encode(const std::vector<BucketId>& components, uint64_t* out) const;

  /// Lexicographic comparison of two keys (both `key_words()` long).
  static int Compare(const uint64_t* a, const uint64_t* b, size_t words);

  /// Length in bits of the longest common prefix of two keys.
  static size_t Llcp(const uint64_t* a, const uint64_t* b, size_t words, size_t key_bits);

  /// The LSB "level" of a common prefix: how many of the v bit-planes are
  /// fully agreed on by both keys. Level q means the two points fall in the
  /// same cell of the grid at side length w * 2^(v - q) in all u projections.
  size_t LevelForLlcp(size_t llcp_bits) const { return llcp_bits / u_; }

  int64_t bias() const { return bias_; }

 private:
  ZOrderEncoder(size_t u, size_t v, int64_t bias)
      : u_(u), v_(v), words_((u * v + 63) / 64), bias_(bias) {}

  size_t u_;
  size_t v_;
  size_t words_;
  int64_t bias_;
};

}  // namespace c2lsh

#endif  // C2LSH_BASELINES_LSB_ZORDER_H_
