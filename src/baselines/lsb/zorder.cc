#include "src/baselines/lsb/zorder.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>

namespace c2lsh {

Result<ZOrderEncoder> ZOrderEncoder::Create(size_t num_components,
                                            size_t bits_per_component, int64_t bias) {
  if (num_components == 0) {
    return Status::InvalidArgument("ZOrderEncoder: need at least one component");
  }
  if (bits_per_component == 0 || bits_per_component > 32) {
    return Status::InvalidArgument("ZOrderEncoder: bits_per_component must be in [1, 32], got " +
                                   std::to_string(bits_per_component));
  }
  if (bias == kCenterBias) {
    bias = static_cast<int64_t>(1) << (bits_per_component - 1);
  }
  return ZOrderEncoder(num_components, bits_per_component, bias);
}

void ZOrderEncoder::Encode(const std::vector<BucketId>& components, uint64_t* out) const {
  std::memset(out, 0, words_ * sizeof(uint64_t));
  const int64_t offset = bias_;
  const int64_t max_val = (static_cast<int64_t>(1) << v_) - 1;

  size_t bit_pos = 0;  // position from the msb of the whole key
  // Interleave msb-first: bit-plane v-1 of every component, then plane v-2...
  for (size_t plane = v_; plane-- > 0;) {
    for (size_t comp = 0; comp < u_; ++comp) {
      int64_t val = components[comp] + offset;
      val = std::clamp<int64_t>(val, 0, max_val);
      const uint64_t bit = (static_cast<uint64_t>(val) >> plane) & 1ULL;
      if (bit != 0) {
        out[bit_pos / 64] |= (1ULL << (63 - (bit_pos % 64)));
      }
      ++bit_pos;
    }
  }
}

int ZOrderEncoder::Compare(const uint64_t* a, const uint64_t* b, size_t words) {
  for (size_t i = 0; i < words; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

size_t ZOrderEncoder::Llcp(const uint64_t* a, const uint64_t* b, size_t words,
                           size_t key_bits) {
  size_t bits = 0;
  for (size_t i = 0; i < words; ++i) {
    const uint64_t diff = a[i] ^ b[i];
    if (diff == 0) {
      bits += 64;
      continue;
    }
    bits += static_cast<size_t>(std::countl_zero(diff));
    break;
  }
  return std::min(bits, key_bits);
}

}  // namespace c2lsh
