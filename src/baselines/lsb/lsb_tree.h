// One LSB-tree (Tao et al., SIGMOD 2009): u p-stable projections, z-order
// interleaving of the quantized projections, and a B+-tree over the keys.
// A query locates its own key and expands bidirectionally; candidates with
// longer LLCP against the query key come out first, and the LLCP *level*
// (number of fully-agreed bit planes) lower-bounds how coarse a grid cell
// the candidate shares with the query.

#pragma once
#ifndef C2LSH_BASELINES_LSB_LSB_TREE_H_
#define C2LSH_BASELINES_LSB_LSB_TREE_H_

#include <cstdint>
#include <vector>

#include "src/baselines/lsb/bptree.h"
#include "src/baselines/lsb/zorder.h"
#include "src/lsh/pstable.h"
#include "src/storage/page_model.h"
#include "src/util/result.h"
#include "src/vector/dataset.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Configuration of one LSB-tree (shared by all trees of a forest).
struct LsbTreeOptions {
  size_t u = 8;        ///< projections per tree (compound hash width)
  /// Bits per quantized projection. 0 (the default) fits v and the encoding
  /// bias to the observed bucket range at build time, so every bit plane of
  /// the z-order key is discriminative — the paper sizes its grid to the
  /// data domain the same way.
  size_t v = 0;
  double w = 1.0;      ///< projection bucket width
  uint64_t seed = 1;
  size_t page_bytes = 4096;
};

/// One LSB-tree.
class LsbTree {
 public:
  static Result<LsbTree> Build(const Dataset& data, const LsbTreeOptions& options);

  /// A bidirectional cursor around the query key's position, yielding
  /// entries in decreasing-LLCP order (the better side is advanced first).
  class Expansion {
   public:
    /// True while either direction still has entries.
    bool HasNext() const;

    /// Returns the next-best entry (object id) and its LLCP level against
    /// the query key; advances the cursor. Charges page I/O to `io`.
    struct Item {
      ObjectId id;
      size_t llcp_bits;
      size_t level;  ///< encoder.LevelForLlcp(llcp_bits)
      /// Side length of the grid cell this entry provably shares with the
      /// query in every projection: w * 2^(v - level). Smaller = closer
      /// (probabilistically); the forest's quality-termination rule compares
      /// found distances against the frontier's radius.
      double guarantee_radius;
    };
    Item Next(IoCounter* io);

   private:
    friend class LsbTree;
    const LsbTree* tree_ = nullptr;
    std::vector<uint64_t> query_key_;
    size_t left_ = 0;    // next candidate on the left (index + 1; 0 = done)
    size_t right_ = 0;   // next candidate on the right (size() = done)
  };

  /// Starts an expansion for `query`. Charges the B+-tree descent to `io`.
  Expansion StartExpansion(const float* query, IoCounter* io = nullptr) const;

  const ZOrderEncoder& encoder() const { return encoder_; }
  const LsbTreeOptions& options() const { return options_; }
  size_t size() const { return tree_.size(); }
  size_t MemoryBytes() const;

 private:
  LsbTree(LsbTreeOptions options, PStableFamily family, ZOrderEncoder encoder,
          ZOrderBPlusTree tree)
      : options_(options),
        family_(std::move(family)),
        encoder_(encoder),
        tree_(std::move(tree)) {}

  LsbTreeOptions options_;
  PStableFamily family_;
  ZOrderEncoder encoder_;
  ZOrderBPlusTree tree_;
};

}  // namespace c2lsh

#endif  // C2LSH_BASELINES_LSB_LSB_TREE_H_
