// A bulk-loaded B+-tree over fixed-width z-order keys.
//
// The LSB-tree stores its (z-order key, object id) pairs in a B+-tree so a
// query can locate its own key's leaf position and then expand to
// lexicographic neighbors. A bulk-loaded external B+-tree is, physically, a
// sorted leaf-level array plus a small separator hierarchy; this class keeps
// the leaf level as flat sorted arrays and models the separator hierarchy
// through its page-accurate geometry (fanout, leaf capacity, height), which
// every descent and sideways cursor move charges to the simulated page
// model.

#pragma once
#ifndef C2LSH_BASELINES_LSB_BPTREE_H_
#define C2LSH_BASELINES_LSB_BPTREE_H_

#include <cstdint>
#include <vector>

#include "src/storage/page_model.h"
#include "src/util/result.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Bulk-loaded B+-tree over keys of `key_words` 64-bit words each.
class ZOrderBPlusTree {
 public:
  /// One (key, id) entry used during construction.
  struct BuildEntry {
    std::vector<uint64_t> key;
    ObjectId id = 0;
  };

  /// Builds from entries (sorted internally; ties broken by id). All keys
  /// must have exactly `key_words` words.
  static Result<ZOrderBPlusTree> Build(size_t key_words, std::vector<BuildEntry> entries,
                                       size_t page_bytes = kDefaultPageBytes);

  size_t size() const { return ids_.size(); }
  size_t key_words() const { return key_words_; }

  /// Levels from root to leaves, inclusive (>= 1).
  size_t height() const { return height_; }

  /// Entries per leaf page under the page model.
  size_t leaf_capacity() const { return leaf_capacity_; }

  /// Key of the entry at `pos` (pointer into the flat key array).
  const uint64_t* key(size_t pos) const { return keys_.data() + pos * key_words_; }
  ObjectId id(size_t pos) const { return ids_[pos]; }

  /// Index of the first entry with key >= `probe`, in [0, size()]. Charges
  /// one page per tree level (root-to-leaf descent) to `io` when non-null.
  size_t LowerBound(const uint64_t* probe, IoCounter* io = nullptr) const;

  /// Charges the page cost of a cursor step from entry `from` to adjacent
  /// entry `to`: free within a leaf page, one page when crossing into the
  /// sibling leaf.
  void ChargeStep(size_t from, size_t to, IoCounter* io) const;

  size_t MemoryBytes() const;

 private:
  ZOrderBPlusTree(size_t key_words, size_t page_bytes)
      : key_words_(key_words), page_model_(page_bytes) {}

  int CompareKeys(const uint64_t* a, const uint64_t* b) const;

  size_t key_words_;
  PageModel page_model_;
  size_t leaf_capacity_ = 1;
  size_t fanout_ = 2;
  size_t height_ = 1;

  std::vector<uint64_t> keys_;  // size() * key_words_ words, sorted
  std::vector<ObjectId> ids_;
};

}  // namespace c2lsh

#endif  // C2LSH_BASELINES_LSB_BPTREE_H_
