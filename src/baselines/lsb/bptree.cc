#include "src/baselines/lsb/bptree.h"

#include <algorithm>
#include <string>

#include "src/baselines/lsb/zorder.h"

namespace c2lsh {

int ZOrderBPlusTree::CompareKeys(const uint64_t* a, const uint64_t* b) const {
  return ZOrderEncoder::Compare(a, b, key_words_);
}

Result<ZOrderBPlusTree> ZOrderBPlusTree::Build(size_t key_words,
                                               std::vector<BuildEntry> entries,
                                               size_t page_bytes) {
  if (key_words == 0) {
    return Status::InvalidArgument("ZOrderBPlusTree: key_words must be positive");
  }
  if (entries.empty()) {
    return Status::InvalidArgument("ZOrderBPlusTree: cannot build an empty tree");
  }
  for (const BuildEntry& e : entries) {
    if (e.key.size() != key_words) {
      return Status::InvalidArgument("ZOrderBPlusTree: inconsistent key width");
    }
  }
  std::sort(entries.begin(), entries.end(),
            [key_words](const BuildEntry& a, const BuildEntry& b) {
              const int c = ZOrderEncoder::Compare(a.key.data(), b.key.data(), key_words);
              if (c != 0) return c < 0;
              return a.id < b.id;
            });

  ZOrderBPlusTree t(key_words, page_bytes);
  t.keys_.reserve(entries.size() * key_words);
  t.ids_.reserve(entries.size());
  for (const BuildEntry& e : entries) {
    t.keys_.insert(t.keys_.end(), e.key.begin(), e.key.end());
    t.ids_.push_back(e.id);
  }

  const size_t entry_bytes = key_words * sizeof(uint64_t) + sizeof(ObjectId);
  PageModel model(page_bytes);
  t.leaf_capacity_ = std::max<size_t>(1, model.EntriesPerPage(entry_bytes));
  // Internal node: separator key + child pointer per slot.
  t.fanout_ = std::max<size_t>(
      2, model.EntriesPerPage(key_words * sizeof(uint64_t) + sizeof(uint64_t)));

  size_t nodes = (t.ids_.size() + t.leaf_capacity_ - 1) / t.leaf_capacity_;
  t.height_ = 1;
  while (nodes > 1) {
    nodes = (nodes + t.fanout_ - 1) / t.fanout_;
    ++t.height_;
  }
  return t;
}

size_t ZOrderBPlusTree::LowerBound(const uint64_t* probe, IoCounter* io) const {
  size_t lo = 0;
  size_t hi = size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (CompareKeys(key(mid), probe) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (io != nullptr) {
    io->AddIndexPages(height_);  // root-to-leaf descent
  }
  return lo;
}

void ZOrderBPlusTree::ChargeStep(size_t from, size_t to, IoCounter* io) const {
  if (io == nullptr) return;
  if (from / leaf_capacity_ != to / leaf_capacity_) {
    io->AddIndexPages(1);  // crossed into the sibling leaf page
  }
}

size_t ZOrderBPlusTree::MemoryBytes() const {
  size_t bytes = keys_.size() * sizeof(uint64_t) + ids_.size() * sizeof(ObjectId);
  // Separator hierarchy: roughly one key + pointer per leaf page, decaying
  // geometrically up the levels — bounded by 2x the level-0 separators.
  const size_t leaf_pages = (size() + leaf_capacity_ - 1) / leaf_capacity_;
  bytes += 2 * leaf_pages * (key_words_ * sizeof(uint64_t) + sizeof(uint64_t));
  return bytes;
}

}  // namespace c2lsh
