#include "src/baselines/lsb/lsb_tree.h"

#include <cmath>

namespace c2lsh {

Result<LsbTree> LsbTree::Build(const Dataset& data, const LsbTreeOptions& options) {
  C2LSH_ASSIGN_OR_RETURN(
      PStableFamily family,
      PStableFamily::Sample(options.u, data.dim(), options.w, options.seed));

  // Hash every object once; fit the grid to the observed range if v = 0.
  std::vector<std::vector<BucketId>> all_comps(data.size());
  BucketId min_b = 0;
  BucketId max_b = 0;
  bool first = true;
  for (size_t i = 0; i < data.size(); ++i) {
    family.BucketAll(data.object(static_cast<ObjectId>(i)), &all_comps[i]);
    for (BucketId b : all_comps[i]) {
      if (first || b < min_b) min_b = b;
      if (first || b > max_b) max_b = b;
      first = false;
    }
  }

  size_t v = options.v;
  int64_t bias = ZOrderEncoder::kCenterBias;
  if (v == 0) {
    // Fit: leave one grid cell of slack on each side for queries hashing
    // slightly outside the data's range.
    const int64_t range = max_b - min_b + 3;
    v = 1;
    while ((static_cast<int64_t>(1) << v) < range && v < 32) ++v;
    bias = -min_b + 1;
  }
  C2LSH_ASSIGN_OR_RETURN(ZOrderEncoder encoder,
                         ZOrderEncoder::Create(options.u, v, bias));

  std::vector<ZOrderBPlusTree::BuildEntry> entries;
  entries.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    ZOrderBPlusTree::BuildEntry e;
    e.key.resize(encoder.key_words());
    encoder.Encode(all_comps[i], e.key.data());
    e.id = static_cast<ObjectId>(i);
    entries.push_back(std::move(e));
  }
  C2LSH_ASSIGN_OR_RETURN(
      ZOrderBPlusTree tree,
      ZOrderBPlusTree::Build(encoder.key_words(), std::move(entries), options.page_bytes));
  return LsbTree(options, std::move(family), encoder, std::move(tree));
}

LsbTree::Expansion LsbTree::StartExpansion(const float* query, IoCounter* io) const {
  Expansion e;
  e.tree_ = this;
  std::vector<BucketId> comps;
  family_.BucketAll(query, &comps);
  e.query_key_.resize(encoder_.key_words());
  encoder_.Encode(comps, e.query_key_.data());

  const size_t pos = tree_.LowerBound(e.query_key_.data(), io);
  e.left_ = pos;             // entries [0, pos) to the left; next left is pos-1
  e.right_ = pos;            // next right candidate is pos
  return e;
}

bool LsbTree::Expansion::HasNext() const {
  return left_ > 0 || right_ < tree_->tree_.size();
}

LsbTree::Expansion::Item LsbTree::Expansion::Next(IoCounter* io) {
  const ZOrderBPlusTree& bt = tree_->tree_;
  const size_t words = bt.key_words();
  const size_t key_bits = tree_->encoder_.key_bits();

  size_t llcp_left = 0;
  size_t llcp_right = 0;
  const bool have_left = left_ > 0;
  const bool have_right = right_ < bt.size();
  if (have_left) {
    llcp_left = ZOrderEncoder::Llcp(query_key_.data(), bt.key(left_ - 1), words, key_bits);
  }
  if (have_right) {
    llcp_right = ZOrderEncoder::Llcp(query_key_.data(), bt.key(right_), words, key_bits);
  }

  Item item{};
  if (have_left && (!have_right || llcp_left >= llcp_right)) {
    item.id = bt.id(left_ - 1);
    item.llcp_bits = llcp_left;
    if (left_ >= 2) bt.ChargeStep(left_ - 1, left_ - 2, io);
    --left_;
  } else {
    item.id = bt.id(right_);
    item.llcp_bits = llcp_right;
    if (right_ + 1 < bt.size()) bt.ChargeStep(right_, right_ + 1, io);
    ++right_;
  }
  item.level = tree_->encoder_.LevelForLlcp(item.llcp_bits);
  const double v = static_cast<double>(tree_->encoder_.bits_per_component());
  item.guarantee_radius =
      tree_->options_.w * std::pow(2.0, v - static_cast<double>(item.level));
  return item;
}

size_t LsbTree::MemoryBytes() const {
  return tree_.MemoryBytes() +
         options_.u * (family_.dim() * sizeof(float) + 2 * sizeof(double));
}

}  // namespace c2lsh
