// LSB-forest (Tao et al., SIGMOD 2009) — the baseline the C2LSH paper
// compares against. L independent LSB-trees; a query expands all trees
// simultaneously, always advancing the tree whose next entry has the longest
// LLCP against that tree's query key, verifying candidates as they surface.
//
// Termination follows the paper's two rules, adapted to this page model:
//   E1 (quality):  the current k-th best distance is at most c * r(level),
//       where r(level) = w * 2^(v - level) is the grid side length the next
//       candidate is guaranteed to share with the query — expanding further
//       cannot beat it by more than the approximation ratio;
//   E2 (budget):   a fixed candidate budget (default 4B/entry * L, i.e. four
//       leaf pages per tree) has been verified.

#pragma once
#ifndef C2LSH_BASELINES_LSB_LSB_FOREST_H_
#define C2LSH_BASELINES_LSB_LSB_FOREST_H_

#include <cstdint>
#include <vector>

#include "src/baselines/lsb/lsb_tree.h"
#include "src/storage/page_model.h"
#include "src/util/result.h"
#include "src/vector/dataset.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Configuration of an LSB-forest.
struct LsbForestOptions {
  LsbTreeOptions tree;   ///< per-tree settings (u, v, w, page size)
  size_t L = 0;          ///< number of trees; 0 = sqrt(d*n/B) per the paper
  double c = 2.0;        ///< approximation ratio for the E1 rule
  size_t candidate_budget = 0;  ///< E2 rule; 0 = 4 leaf pages per tree
  uint64_t seed = 1;
};

/// Per-query statistics.
struct LsbQueryStats {
  uint64_t candidates_verified = 0;
  uint64_t expansions = 0;
  uint64_t index_pages = 0;
  uint64_t data_pages = 0;
  bool terminated_by_quality = false;  ///< E1 fired
  bool terminated_by_budget = false;   ///< E2 fired

  uint64_t total_pages() const { return index_pages + data_pages; }
};

/// The LSB-forest index.
class LsbForest {
 public:
  static Result<LsbForest> Build(const Dataset& data, const LsbForestOptions& options);

  /// c-k-ANN query; returns up to k verified neighbors ascending by exact
  /// distance. Not thread-safe (per-query dedup scratch is reused).
  Result<NeighborList> Query(const Dataset& data, const float* query, size_t k,
                             LsbQueryStats* stats = nullptr) const;

  const LsbForestOptions& options() const { return options_; }
  size_t num_trees() const { return trees_.size(); }
  size_t MemoryBytes() const;

 private:
  LsbForest(LsbForestOptions options, std::vector<LsbTree> trees, size_t num_objects,
            size_t dim)
      : options_(options),
        trees_(std::move(trees)),
        num_objects_(num_objects),
        dim_(dim),
        page_model_(options.tree.page_bytes),
        seen_(num_objects, 0) {}

  LsbForestOptions options_;
  std::vector<LsbTree> trees_;
  size_t num_objects_ = 0;
  size_t dim_ = 0;
  PageModel page_model_;

  mutable std::vector<uint8_t> seen_;
  mutable std::vector<ObjectId> touched_;
};

}  // namespace c2lsh

#endif  // C2LSH_BASELINES_LSB_LSB_FOREST_H_
