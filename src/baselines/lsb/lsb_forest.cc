#include "src/baselines/lsb/lsb_forest.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/util/random.h"
#include "src/vector/distance.h"

namespace c2lsh {

Result<LsbForest> LsbForest::Build(const Dataset& data, const LsbForestOptions& options) {
  LsbForestOptions resolved = options;
  if (resolved.L == 0) {
    // The paper's forest size: sqrt(d * n / B) trees.
    const double b_entries = static_cast<double>(resolved.tree.page_bytes) / sizeof(float);
    resolved.L = static_cast<size_t>(std::max(
        1.0, std::ceil(std::sqrt(static_cast<double>(data.dim()) *
                                 static_cast<double>(data.size()) / b_entries))));
  }
  if (resolved.c < 2.0) {
    return Status::InvalidArgument("LSB-forest: c must be >= 2, got " +
                                   std::to_string(resolved.c));
  }

  std::vector<LsbTree> trees;
  trees.reserve(resolved.L);
  for (size_t j = 0; j < resolved.L; ++j) {
    LsbTreeOptions tree_opts = resolved.tree;
    tree_opts.seed = SplitMix64(resolved.seed ^ (0xa0761d6478bd642fULL + j));
    C2LSH_ASSIGN_OR_RETURN(LsbTree tree, LsbTree::Build(data, tree_opts));
    trees.push_back(std::move(tree));
  }
  return LsbForest(resolved, std::move(trees), data.size(), data.dim());
}

Result<NeighborList> LsbForest::Query(const Dataset& data, const float* query, size_t k,
                                      LsbQueryStats* stats) const {
  if (k == 0) return Status::InvalidArgument("LSB-forest query: k must be positive");
  if (data.dim() != dim_) {
    return Status::InvalidArgument("LSB-forest query: dataset dim mismatch");
  }
  LsbQueryStats local;
  LsbQueryStats* st = (stats != nullptr) ? stats : &local;
  *st = LsbQueryStats();

  if (seen_.size() < num_objects_) seen_.resize(num_objects_, 0);
  for (ObjectId id : touched_) seen_[id] = 0;
  touched_.clear();

  IoCounter io;
  std::vector<LsbTree::Expansion> exps;
  exps.reserve(trees_.size());
  for (const LsbTree& tree : trees_) {
    exps.push_back(tree.StartExpansion(query, &io));
  }

  size_t budget = options_.candidate_budget;
  if (budget == 0) {
    // E2 default: four leaf pages of candidates per tree.
    size_t per_tree = 1;
    if (!trees_.empty()) {
      const size_t entry_bytes =
          trees_[0].encoder().key_words() * sizeof(uint64_t) + sizeof(ObjectId);
      per_tree = std::max<size_t>(1, 4 * page_model_.EntriesPerPage(entry_bytes));
    }
    budget = per_tree * trees_.size();
  }

  const uint64_t vector_pages = page_model_.PagesPerVector(dim_);

  NeighborList found;
  found.reserve(std::min(budget, num_objects_) + 1);

  while (true) {
    // Synchronized expansion: every round advances each tree's frontier by
    // one entry (the paper's expansion order, one probe per tree per round).
    // The round's tightest guarantee radius — the cell size the best frontier
    // entry provably shares with the query — drives the E1 rule.
    std::vector<LsbTree::Expansion::Item> sweep;
    sweep.reserve(trees_.size());
    for (auto& exp : exps) {
      if (!exp.HasNext()) continue;
      sweep.push_back(exp.Next(&io));
      ++st->expansions;
    }
    if (sweep.empty()) break;
    double frontier_radius = sweep.front().guarantee_radius;
    for (const auto& item : sweep) {
      frontier_radius = std::min(frontier_radius, item.guarantee_radius);
    }

    for (const auto& item : sweep) {
      if (seen_[item.id] != 0) continue;
      seen_[item.id] = 1;
      touched_.push_back(item.id);
      const double dist = L2(query, data.object(item.id), dim_);
      found.push_back(Neighbor{item.id, static_cast<float>(dist)});
      ++st->candidates_verified;
      io.AddDataPages(vector_pages);
    }

    // E2: candidate budget exhausted.
    if (found.size() >= budget) {
      st->terminated_by_budget = true;
      break;
    }
    // E1: the k-th best distance found is already inside the frontier's
    // certified cell — entries not yet expanded share at most a coarser cell
    // with the query, so deeper expansion is unlikely to improve the answer
    // beyond the approximation ratio.
    if (found.size() >= k) {
      std::nth_element(found.begin(), found.begin() + (k - 1), found.end(),
                       NeighborLess());
      const double kth = found[k - 1].dist;
      // The /2 keeps the rule conservative: the found answers must sit well
      // inside the frontier's certified cell before expansion stops.
      if (kth <= frontier_radius / 2.0) {
        st->terminated_by_quality = true;
        break;
      }
    }
  }

  st->index_pages = io.index_pages();
  st->data_pages = io.data_pages();

  std::sort(found.begin(), found.end(), NeighborLess());
  if (found.size() > k) found.resize(k);
  return found;
}

size_t LsbForest::MemoryBytes() const {
  size_t bytes = 0;
  for (const LsbTree& tree : trees_) bytes += tree.MemoryBytes();
  return bytes;
}

}  // namespace c2lsh
