// Multi-Probe LSH (Lv et al., VLDB 2007) — the static concatenating
// framework's answer to E2LSH's table blowup: instead of more tables, each
// query also probes the *perturbed* buckets most likely to hold neighbors.
//
// For a compound hash G = (h_1..h_K), the query's projection f_i(q) sits at
// known distances x_i(-1) (to the lower bucket boundary) and x_i(+1) (to the
// upper) in each component. A perturbation vector assigns {-1, 0, +1} per
// component; its score sum_i x_i(delta_i)^2 estimates how unlikely the
// perturbed bucket is. The classic heap-based generation (sorted boundary
// distances + shift/expand operations) enumerates perturbation sets in
// non-decreasing score order; each query probes the home bucket plus the
// T best perturbations per table.
//
// C2LSH's related-work comparison point: multi-probe cuts table count but
// keeps K fixed per radius — it has no radius schedule, so its quality is
// tied to a tuned w, whereas collision counting adapts R per query.

#pragma once
#ifndef C2LSH_BASELINES_MULTIPROBE_H_
#define C2LSH_BASELINES_MULTIPROBE_H_

#include <cstdint>
#include <vector>

#include "src/lsh/pstable.h"
#include "src/storage/page_model.h"
#include "src/util/result.h"
#include "src/vector/dataset.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Configuration of a Multi-Probe LSH index.
struct MultiProbeOptions {
  size_t K = 8;        ///< functions per compound hash
  size_t L = 8;        ///< tables (deliberately small; probes substitute)
  double w = 16.0;     ///< bucket width — tuned to the data's NN scale
  size_t num_probes = 16;  ///< extra buckets probed per table (T)
  uint64_t seed = 1;
  size_t page_bytes = 4096;
};

/// Per-query statistics.
struct MultiProbeQueryStats {
  uint64_t buckets_probed = 0;
  uint64_t candidates_verified = 0;
  uint64_t index_pages = 0;
  uint64_t data_pages = 0;

  uint64_t total_pages() const { return index_pages + data_pages; }
};

/// One entry of a probing sequence (exposed for tests).
struct Perturbation {
  double score = 0.0;
  /// delta per component in {-1, 0, +1}.
  std::vector<int8_t> deltas;
};

/// Generates the `count` best perturbation vectors (excluding the empty
/// one) for boundary distances `x_minus[i]` (to the lower boundary) and
/// `x_plus[i]` (to the upper), in non-decreasing score order. Exposed so the
/// generation algorithm is testable in isolation.
std::vector<Perturbation> GeneratePerturbations(const std::vector<double>& x_minus,
                                                const std::vector<double>& x_plus,
                                                size_t count);

/// The Multi-Probe LSH index.
class MultiProbeIndex {
 public:
  static Result<MultiProbeIndex> Build(const Dataset& data,
                                       const MultiProbeOptions& options);

  /// k-ANN query: home bucket + num_probes perturbed buckets per table,
  /// all colliders verified, top-k returned. Not thread-safe.
  Result<NeighborList> Query(const Dataset& data, const float* query, size_t k,
                             MultiProbeQueryStats* stats = nullptr) const;

  const MultiProbeOptions& options() const { return options_; }
  size_t MemoryBytes() const;

 private:
  using KeyTable = std::vector<std::pair<uint64_t, ObjectId>>;

  MultiProbeIndex(MultiProbeOptions options, std::vector<PStableFamily> families,
                  std::vector<std::vector<uint64_t>> mixers, std::vector<KeyTable> tables,
                  size_t num_objects, size_t dim);

  uint64_t KeyOf(size_t table, const std::vector<BucketId>& comps) const;

  MultiProbeOptions options_;
  std::vector<PStableFamily> families_;        // one K-function family per table
  std::vector<std::vector<uint64_t>> mixers_;  // per-table key-mixing constants
  std::vector<KeyTable> tables_;
  size_t num_objects_ = 0;
  size_t dim_ = 0;
  PageModel page_model_;

  mutable std::vector<uint8_t> seen_;
  mutable std::vector<ObjectId> touched_;
};

}  // namespace c2lsh

#endif  // C2LSH_BASELINES_MULTIPROBE_H_
