// Exact brute-force k-NN — the accuracy reference point and the cost
// ceiling every approximate method is compared against.

#pragma once
#ifndef C2LSH_BASELINES_LINEAR_SCAN_H_
#define C2LSH_BASELINES_LINEAR_SCAN_H_

#include "src/storage/page_model.h"
#include "src/util/result.h"
#include "src/vector/dataset.h"
#include "src/vector/distance.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Statistics of one linear-scan query (trivially n distance computations;
/// kept for symmetry with the approximate indexes).
struct LinearScanStats {
  uint64_t distance_computations = 0;
  uint64_t data_pages = 0;  ///< sequential scan of the data file
};

/// Stateless exact scanner.
class LinearScan {
 public:
  explicit LinearScan(Metric metric = Metric::kEuclidean,
                      size_t page_bytes = kDefaultPageBytes)
      : metric_(metric), page_model_(page_bytes) {}

  /// Exact top-k, ascending by distance.
  Result<NeighborList> Search(const Dataset& data, const float* query, size_t k,
                              LinearScanStats* stats = nullptr) const;

 private:
  Metric metric_;
  PageModel page_model_;
};

}  // namespace c2lsh

#endif  // C2LSH_BASELINES_LINEAR_SCAN_H_
