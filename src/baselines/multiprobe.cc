#include "src/baselines/multiprobe.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>

#include "src/util/math.h"
#include "src/util/random.h"
#include "src/vector/distance.h"

namespace c2lsh {

namespace {

/// One element of the sorted boundary-distance array: perturbing coordinate
/// `coord` by `delta` costs `score`.
struct ZEntry {
  double score;
  size_t coord;
  int8_t delta;
};

/// A candidate perturbation set: indices into the sorted z array.
struct HeapSet {
  double score;
  std::vector<uint32_t> members;  // sorted ascending; last is the max

  bool operator>(const HeapSet& other) const { return score > other.score; }
};

}  // namespace

std::vector<Perturbation> GeneratePerturbations(const std::vector<double>& x_minus,
                                                const std::vector<double>& x_plus,
                                                size_t count) {
  const size_t K = x_minus.size();
  std::vector<Perturbation> out;
  if (K == 0 || count == 0 || x_plus.size() != K) return out;

  // Sorted boundary distances (the z array of the paper).
  std::vector<ZEntry> z;
  z.reserve(2 * K);
  for (size_t i = 0; i < K; ++i) {
    z.push_back(ZEntry{x_minus[i] * x_minus[i], i, -1});
    z.push_back(ZEntry{x_plus[i] * x_plus[i], i, +1});
  }
  std::sort(z.begin(), z.end(),
            [](const ZEntry& a, const ZEntry& b) { return a.score < b.score; });

  auto set_score = [&](const std::vector<uint32_t>& members) {
    double s = 0.0;
    for (uint32_t idx : members) s += z[idx].score;
    return s;
  };
  auto is_valid = [&](const std::vector<uint32_t>& members) {
    // A set may not perturb the same coordinate twice (the +1 and -1 entries
    // of one coordinate are mutually exclusive).
    std::vector<uint8_t> used(K, 0);
    for (uint32_t idx : members) {
      if (used[z[idx].coord] != 0) return false;
      used[z[idx].coord] = 1;
    }
    return true;
  };

  // Min-heap over candidate sets, seeded with {z_0}; shift and expand
  // generate every set in non-decreasing score order (Lv et al., Sec. 4.2).
  std::priority_queue<HeapSet, std::vector<HeapSet>, std::greater<HeapSet>> heap;
  heap.push(HeapSet{z[0].score, {0}});
  size_t guard = 0;
  const size_t guard_limit = 64 * (count + 1) + 4 * K;

  while (!heap.empty() && out.size() < count && ++guard < guard_limit) {
    HeapSet top = heap.top();
    heap.pop();
    const uint32_t last = top.members.back();

    // Shift: replace the max element with its successor.
    if (last + 1 < z.size()) {
      HeapSet shifted = top;
      shifted.members.back() = last + 1;
      shifted.score = set_score(shifted.members);
      heap.push(std::move(shifted));
      // Expand: additionally include the successor.
      HeapSet expanded = top;
      expanded.members.push_back(last + 1);
      expanded.score = set_score(expanded.members);
      heap.push(std::move(expanded));
    }

    if (!is_valid(top.members)) continue;
    Perturbation p;
    p.score = top.score;
    p.deltas.assign(K, 0);
    for (uint32_t idx : top.members) {
      p.deltas[z[idx].coord] = z[idx].delta;
    }
    out.push_back(std::move(p));
  }
  return out;
}

MultiProbeIndex::MultiProbeIndex(MultiProbeOptions options,
                                 std::vector<PStableFamily> families,
                                 std::vector<std::vector<uint64_t>> mixers,
                                 std::vector<KeyTable> tables, size_t num_objects,
                                 size_t dim)
    : options_(options),
      families_(std::move(families)),
      mixers_(std::move(mixers)),
      tables_(std::move(tables)),
      num_objects_(num_objects),
      dim_(dim),
      page_model_(options.page_bytes),
      seen_(num_objects, 0) {}

uint64_t MultiProbeIndex::KeyOf(size_t table, const std::vector<BucketId>& comps) const {
  uint64_t h = mixers_[table].back();  // per-table salt
  for (size_t i = 0; i < comps.size(); ++i) {
    h = SplitMix64(h ^ (static_cast<uint64_t>(comps[i]) * mixers_[table][i]));
  }
  return h;
}

Result<MultiProbeIndex> MultiProbeIndex::Build(const Dataset& data,
                                               const MultiProbeOptions& options) {
  if (options.K == 0 || options.L == 0) {
    return Status::InvalidArgument("MultiProbe: K and L must be positive");
  }
  if (!(options.w > 0.0)) {
    return Status::InvalidArgument("MultiProbe: w must be positive");
  }

  std::vector<PStableFamily> families;
  std::vector<std::vector<uint64_t>> mixers;
  families.reserve(options.L);
  mixers.reserve(options.L);
  Rng mix_rng(SplitMix64(options.seed ^ 0x8e9d3ab11f5c7d23ULL));
  for (size_t j = 0; j < options.L; ++j) {
    C2LSH_ASSIGN_OR_RETURN(
        PStableFamily fam,
        PStableFamily::Sample(options.K, data.dim(), options.w,
                              SplitMix64(options.seed + 31 * j + 1)));
    families.push_back(std::move(fam));
    std::vector<uint64_t> mix(options.K + 1);
    for (auto& v : mix) v = mix_rng.Next64() | 1ULL;
    mixers.push_back(std::move(mix));
  }

  std::vector<KeyTable> tables(options.L);
  MultiProbeIndex probe_helper(options, std::move(families), std::move(mixers), {},
                               data.size(), data.dim());
  std::vector<BucketId> comps;
  for (size_t j = 0; j < options.L; ++j) {
    KeyTable& table = tables[j];
    table.reserve(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      probe_helper.families_[j].BucketAll(data.object(static_cast<ObjectId>(i)), &comps);
      table.emplace_back(probe_helper.KeyOf(j, comps), static_cast<ObjectId>(i));
    }
    std::sort(table.begin(), table.end());
  }
  probe_helper.tables_ = std::move(tables);
  return probe_helper;
}

Result<NeighborList> MultiProbeIndex::Query(const Dataset& data, const float* query,
                                            size_t k,
                                            MultiProbeQueryStats* stats) const {
  if (k == 0) return Status::InvalidArgument("MultiProbe query: k must be positive");
  if (data.dim() != dim_) {
    return Status::InvalidArgument("MultiProbe query: dataset dim mismatch");
  }
  MultiProbeQueryStats local;
  MultiProbeQueryStats* st = (stats != nullptr) ? stats : &local;
  *st = MultiProbeQueryStats();

  if (seen_.size() < num_objects_) seen_.resize(num_objects_, 0);
  for (ObjectId id : touched_) seen_[id] = 0;
  touched_.clear();

  const double w = options_.w;
  const uint64_t vector_pages = page_model_.PagesPerVector(dim_);
  NeighborList found;

  auto probe_key = [&](size_t table, uint64_t key) {
    const KeyTable& kt = tables_[table];
    auto lo = std::lower_bound(kt.begin(), kt.end(), std::make_pair(key, ObjectId{0}));
    ++st->buckets_probed;
    ++st->index_pages;
    size_t entries = 0;
    for (auto it = lo; it != kt.end() && it->first == key; ++it) {
      ++entries;
      const ObjectId id = it->second;
      if (seen_[id] != 0) continue;
      seen_[id] = 1;
      touched_.push_back(id);
      const double dist = L2(query, data.object(id), dim_);
      found.push_back(Neighbor{id, static_cast<float>(dist)});
      ++st->candidates_verified;
      st->data_pages += vector_pages;
    }
    if (entries > 0) {
      st->index_pages +=
          page_model_.PagesForEntries(entries, sizeof(uint64_t) + sizeof(ObjectId));
    }
  };

  std::vector<BucketId> comps;
  std::vector<BucketId> perturbed;
  for (size_t j = 0; j < tables_.size(); ++j) {
    const PStableFamily& fam = families_[j];
    fam.BucketAll(query, &comps);
    probe_key(j, KeyOf(j, comps));  // home bucket

    if (options_.num_probes == 0) continue;
    // Boundary distances of the query within each component bucket.
    std::vector<double> x_minus(options_.K), x_plus(options_.K);
    for (size_t i = 0; i < options_.K; ++i) {
      const double f = fam.function(i).Project(query);
      const double pos = f - std::floor(f / w) * w;  // in [0, w)
      x_minus[i] = pos;
      x_plus[i] = w - pos;
    }
    const auto probes = GeneratePerturbations(x_minus, x_plus, options_.num_probes);
    for (const Perturbation& p : probes) {
      perturbed = comps;
      for (size_t i = 0; i < options_.K; ++i) {
        perturbed[i] += p.deltas[i];
      }
      probe_key(j, KeyOf(j, perturbed));
    }
  }

  std::sort(found.begin(), found.end(), NeighborLess());
  if (found.size() > k) found.resize(k);
  return found;
}

size_t MultiProbeIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const KeyTable& t : tables_) {
    bytes += t.size() * sizeof(KeyTable::value_type);
  }
  bytes += families_.size() * options_.K * (dim_ * sizeof(float) + 2 * sizeof(double));
  return bytes;
}

}  // namespace c2lsh
