#include "src/baselines/e2lsh.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "src/util/math.h"
#include "src/util/random.h"
#include "src/vector/distance.h"

namespace c2lsh {

E2lshOptions SuggestE2lshOptions(size_t n, const CollisionModel& model, size_t max_l) {
  E2lshOptions o;
  o.w = model.w;
  o.c = model.c;
  o.K = static_cast<size_t>(
      std::max(1.0, std::ceil(std::log(static_cast<double>(n)) / std::log(1.0 / model.p2))));
  // Theoretical table count 1/p1^K; clamp at max_l (the blowup the paper
  // criticizes — at K chosen above this is typically in the hundreds).
  const double l_theory = std::pow(1.0 / model.p1, static_cast<double>(o.K));
  o.L = static_cast<size_t>(std::min(static_cast<double>(max_l), std::ceil(l_theory)));
  o.L = std::max<size_t>(o.L, 1);
  return o;
}

E2lshIndex::E2lshIndex(E2lshOptions options, std::vector<CompoundHash> hashes,
                       std::vector<std::vector<KeyTable>> tables, size_t num_objects,
                       size_t dim)
    : options_(options),
      hashes_(std::move(hashes)),
      tables_(std::move(tables)),
      num_objects_(num_objects),
      dim_(dim),
      page_model_(options.page_bytes),
      seen_(num_objects, 0) {
  radii_.reserve(options_.max_rounds);
  long long r = 1;
  const long long c = static_cast<long long>(std::llround(options_.c));
  for (size_t i = 0; i < options_.max_rounds; ++i) {
    radii_.push_back(r);
    r *= c;
  }
}

Result<E2lshIndex> E2lshIndex::Build(const Dataset& data, const E2lshOptions& options) {
  if (options.K == 0 || options.L == 0) {
    return Status::InvalidArgument("E2LSH: K and L must be positive");
  }
  if (options.max_rounds == 0) {
    return Status::InvalidArgument("E2LSH: max_rounds must be positive");
  }
  const double c_rounded = std::round(options.c);
  if (options.c < 2.0 || std::fabs(options.c - c_rounded) > 1e-9) {
    return Status::InvalidArgument("E2LSH: c must be an integer >= 2 to share C2LSH's "
                                   "radius schedule; got " + std::to_string(options.c));
  }

  std::vector<CompoundHash> hashes;
  hashes.reserve(options.L);
  for (size_t j = 0; j < options.L; ++j) {
    C2LSH_ASSIGN_OR_RETURN(
        CompoundHash g,
        CompoundHash::Sample(options.K, data.dim(), options.w,
                             SplitMix64(options.seed ^ (0x9d39247e33776d41ULL + j))));
    hashes.push_back(std::move(g));
  }

  // Physical tables: one per (round, compound hash). Component buckets are
  // computed once per object per hash; each round only re-floors them.
  std::vector<long long> radii;
  long long r = 1;
  const long long c_int = static_cast<long long>(c_rounded);
  for (size_t i = 0; i < options.max_rounds; ++i) {
    radii.push_back(r);
    r *= c_int;
  }

  std::vector<std::vector<KeyTable>> tables(options.max_rounds);
  for (auto& per_round : tables) per_round.resize(options.L);

  std::vector<BucketId> comps;
  std::vector<BucketId> floored;
  for (size_t j = 0; j < options.L; ++j) {
    for (size_t i = 0; i < data.size(); ++i) {
      hashes[j].Components(data.object(static_cast<ObjectId>(i)), &comps);
      for (size_t round = 0; round < radii.size(); ++round) {
        floored = comps;
        for (BucketId& b : floored) b = FloorDiv(b, radii[round]);
        uint64_t key = hashes[j].KeyFromComponents(floored);
        key = SplitMix64(key ^ static_cast<uint64_t>(radii[round]));
        tables[round][j].emplace_back(key, static_cast<ObjectId>(i));
      }
    }
  }
  for (auto& per_round : tables) {
    for (KeyTable& t : per_round) {
      std::sort(t.begin(), t.end());
    }
  }

  return E2lshIndex(options, std::move(hashes), std::move(tables), data.size(), data.dim());
}

Result<NeighborList> E2lshIndex::Query(const Dataset& data, const float* query, size_t k,
                                       E2lshQueryStats* stats) const {
  if (k == 0) return Status::InvalidArgument("E2LSH query: k must be positive");
  if (data.dim() != dim_) {
    return Status::InvalidArgument("E2LSH query: dataset dim mismatch");
  }
  E2lshQueryStats local;
  E2lshQueryStats* st = (stats != nullptr) ? stats : &local;
  *st = E2lshQueryStats();

  if (seen_.size() < num_objects_) seen_.resize(num_objects_, 0);
  for (ObjectId id : touched_) seen_[id] = 0;
  touched_.clear();

  const size_t budget = options_.verify_budget_per_table == 0
                            ? std::numeric_limits<size_t>::max()
                            : options_.verify_budget_per_table * options_.L + k;
  const uint64_t vector_pages = page_model_.PagesPerVector(dim_);

  NeighborList found;
  std::vector<BucketId> comps;
  std::vector<BucketId> floored;

  for (size_t round = 0; round < radii_.size(); ++round) {
    ++st->rounds;
    const long long R = radii_[round];
    st->final_radius = R;
    for (size_t j = 0; j < options_.L; ++j) {
      hashes_[j].Components(query, &comps);
      floored = comps;
      for (BucketId& b : floored) b = FloorDiv(b, R);
      uint64_t key = hashes_[j].KeyFromComponents(floored);
      key = SplitMix64(key ^ static_cast<uint64_t>(R));

      const KeyTable& table = tables_[round][j];
      auto lo = std::lower_bound(table.begin(), table.end(),
                                 std::make_pair(key, ObjectId{0}));
      ++st->buckets_probed;
      ++st->index_pages;  // the hash/array probe
      size_t bucket_entries = 0;
      for (auto it = lo; it != table.end() && it->first == key; ++it) {
        ++bucket_entries;
        const ObjectId id = it->second;
        if (seen_[id] != 0) continue;
        seen_[id] = 1;
        touched_.push_back(id);
        if (found.size() >= budget) continue;
        const double dist = L2(query, data.object(id), dim_);
        found.push_back(Neighbor{id, static_cast<float>(dist)});
        ++st->candidates_verified;
        st->data_pages += vector_pages;
      }
      if (bucket_entries > 0) {
        st->index_pages +=
            page_model_.PagesForEntries(bucket_entries, sizeof(uint64_t) + sizeof(ObjectId));
      }
    }
    // Stop when k verified candidates lie within c*R, the analog of C2LSH's
    // T1 under the shared radius schedule.
    const double cr = options_.c * static_cast<double>(R);
    size_t within = 0;
    for (const Neighbor& nb : found) {
      if (nb.dist <= cr) ++within;
      if (within >= k) break;
    }
    if (within >= k) break;
    if (found.size() >= budget) break;
  }

  std::sort(found.begin(), found.end(), NeighborLess());
  if (found.size() > k) found.resize(k);
  return found;
}

size_t E2lshIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& per_round : tables_) {
    for (const KeyTable& t : per_round) {
      bytes += t.size() * sizeof(KeyTable::value_type);
    }
  }
  bytes += hashes_.size() * options_.K * (dim_ * sizeof(float) + 2 * sizeof(double));
  return bytes;
}

}  // namespace c2lsh
