#include "src/baselines/linear_scan.h"

#include <algorithm>

namespace c2lsh {

Result<NeighborList> LinearScan::Search(const Dataset& data, const float* query, size_t k,
                                        LinearScanStats* stats) const {
  if (k == 0) return Status::InvalidArgument("LinearScan: k must be positive");
  const size_t n = data.size();
  const size_t d = data.dim();
  k = std::min(k, n);

  NeighborList heap;  // max-heap on distance, worst at front
  heap.reserve(k + 1);
  NeighborLess less;
  auto cmp = [&less](const Neighbor& a, const Neighbor& b) { return less(a, b); };
  for (size_t i = 0; i < n; ++i) {
    const double dist =
        ComputeDistance(metric_, query, data.object(static_cast<ObjectId>(i)), d);
    const Neighbor cand{static_cast<ObjectId>(i), static_cast<float>(dist)};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (less(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);

  if (stats != nullptr) {
    stats->distance_computations = n;
    // A scan reads the data file sequentially once.
    stats->data_pages = page_model_.PagesForBytes(n * d * sizeof(float));
  }
  return heap;
}

}  // namespace c2lsh
