// SRS (Sun, Wang, Qin, Zhang, Lin — PVLDB 2014): c-ANN with a *tiny* index.
//
// Project every object into m' ~ 6 dimensions with Gaussian projections.
// The squared projected distance of a pair at true distance d is
// d^2 * X with X ~ chi-squared(m'), so projected order statistics carry
// calibrated information about true distances. The index is just the m'-d
// points in a kd-tree — O(m' * n) space, an order of magnitude below any
// hash-table scheme.
//
// Query: stream the projected points in increasing projected distance
// (incremental kd-tree NN), verify each in the original space, and stop
// when either
//   (a) early-termination: the frontier's projected distance r satisfies
//       ChiSquaredCdf(r^2 / (d_best/c)^2, m') >= threshold  — i.e. any
//       unseen object closer than d_best/c would almost surely have
//       projected inside the frontier already; or
//   (b) the candidate budget t (a fraction of n) is exhausted.
//
// This is the evaluation-set baseline whose index is small and whose cost
// is verification-dominated — the opposite end of the design space from
// E2LSH, with C2LSH in between.

#pragma once
#ifndef C2LSH_BASELINES_SRS_SRS_H_
#define C2LSH_BASELINES_SRS_SRS_H_

#include <cstdint>
#include <vector>

#include "src/baselines/srs/kdtree.h"
#include "src/storage/page_model.h"
#include "src/util/result.h"
#include "src/vector/dataset.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Configuration of an SRS index.
struct SrsOptions {
  size_t projected_dim = 6;   ///< m' — the paper's default regime (6..10)
  double c = 2.0;             ///< approximation ratio for early termination
  double threshold = 0.9;     ///< early-termination confidence p_tau
  /// Candidate budget as a fraction of n (paper's t = O(n) with a small
  /// constant); 0.01 scans at most 1% of the data.
  double budget_fraction = 0.01;
  size_t min_budget = 100;    ///< absolute floor on the candidate budget
  uint64_t seed = 1;
  size_t page_bytes = 4096;
};

/// Per-query statistics.
struct SrsQueryStats {
  uint64_t candidates_verified = 0;
  uint64_t stream_steps = 0;
  uint64_t index_pages = 0;
  uint64_t data_pages = 0;
  bool terminated_early = false;   ///< the chi-squared test fired
  bool terminated_budget = false;  ///< the candidate budget fired

  uint64_t total_pages() const { return index_pages + data_pages; }
};

/// The SRS index.
class SrsIndex {
 public:
  static Result<SrsIndex> Build(const Dataset& data, const SrsOptions& options);

  /// c-k-ANN query; up to k neighbors ascending by exact distance.
  /// Not thread-safe.
  Result<NeighborList> Query(const Dataset& data, const float* query, size_t k,
                             SrsQueryStats* stats = nullptr) const;

  const SrsOptions& options() const { return options_; }
  size_t MemoryBytes() const;

 private:
  SrsIndex(SrsOptions options, std::vector<std::vector<float>> projections,
           KdTree tree, size_t num_objects, size_t dim)
      : options_(options),
        projections_(std::move(projections)),
        tree_(std::move(tree)),
        num_objects_(num_objects),
        dim_(dim),
        page_model_(options.page_bytes) {}

  SrsOptions options_;
  std::vector<std::vector<float>> projections_;  // m' Gaussian vectors
  KdTree tree_;
  size_t num_objects_ = 0;
  size_t dim_ = 0;
  PageModel page_model_;
};

}  // namespace c2lsh

#endif  // C2LSH_BASELINES_SRS_SRS_H_
