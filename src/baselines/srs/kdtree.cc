#include "src/baselines/srs/kdtree.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace c2lsh {

Result<KdTree> KdTree::Build(std::vector<float> points, size_t n, size_t dim) {
  if (n == 0 || dim == 0) {
    return Status::InvalidArgument("KdTree: n and dim must be positive");
  }
  if (points.size() != n * dim) {
    return Status::InvalidArgument("KdTree: buffer size mismatch");
  }
  KdTree tree(std::move(points), n, dim);
  tree.order_.resize(n);
  std::iota(tree.order_.begin(), tree.order_.end(), 0u);
  tree.nodes_.reserve(2 * (n / kLeafSize + 2));
  tree.root_ = tree.BuildNode(0, static_cast<uint32_t>(n));
  return tree;
}

int32_t KdTree::BuildNode(uint32_t begin, uint32_t end) {
  Node node;
  node.box_min.assign(dim_, std::numeric_limits<float>::max());
  node.box_max.assign(dim_, std::numeric_limits<float>::lowest());
  for (uint32_t i = begin; i < end; ++i) {
    const float* p = point(order_[i]);
    for (size_t j = 0; j < dim_; ++j) {
      node.box_min[j] = std::min(node.box_min[j], p[j]);
      node.box_max[j] = std::max(node.box_max[j], p[j]);
    }
  }

  if (end - begin <= kLeafSize) {
    node.begin = begin;
    node.count = end - begin;
    nodes_.push_back(std::move(node));
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  // Split at the median of the widest coordinate.
  size_t widest = 0;
  float width = -1.0f;
  for (size_t j = 0; j < dim_; ++j) {
    const float w = node.box_max[j] - node.box_min[j];
    if (w > width) {
      width = w;
      widest = j;
    }
  }
  const uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
                   [&](uint32_t a, uint32_t b) {
                     return point(a)[widest] < point(b)[widest];
                   });
  node.split_dim = static_cast<uint16_t>(widest);
  node.split_val = point(order_[mid])[widest];

  const int32_t self = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  const int32_t left = BuildNode(begin, mid);
  const int32_t right = BuildNode(mid, end);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

double KdTree::MinSquaredDist(const Node& node, const float* q) const {
  double acc = 0.0;
  for (size_t j = 0; j < dim_; ++j) {
    double d = 0.0;
    if (q[j] < node.box_min[j]) {
      d = static_cast<double>(node.box_min[j]) - q[j];
    } else if (q[j] > node.box_max[j]) {
      d = static_cast<double>(q[j]) - node.box_max[j];
    }
    acc += d * d;
  }
  return acc;
}

KdTree::Stream KdTree::StartStream(const float* query) const {
  Stream s(this, std::vector<float>(query, query + dim_));
  if (root_ >= 0) {
    s.PushNode(root_);
  }
  return s;
}

void KdTree::Stream::PushNode(int32_t node_idx) {
  const Node& node = tree_->nodes_[node_idx];
  heap_.push(Entry{tree_->MinSquaredDist(node, query_.data()), node_idx, 0});
}

KdTree::Stream::Item KdTree::Stream::Next() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    if (top.node < 0) {
      return Item{static_cast<ObjectId>(top.point), top.key};
    }
    const Node& node = tree_->nodes_[top.node];
    if (node.is_leaf()) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t id = tree_->order_[node.begin + i];
        const float* p = tree_->point(id);
        double d = 0.0;
        for (size_t j = 0; j < tree_->dim_; ++j) {
          const double diff = static_cast<double>(p[j]) - query_[j];
          d += diff * diff;
        }
        heap_.push(Entry{d, -1, id});
      }
    } else {
      PushNode(node.left);
      PushNode(node.right);
    }
  }
  return Item{0, std::numeric_limits<double>::infinity()};  // exhausted
}

}  // namespace c2lsh
