#include "src/baselines/srs/srs.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/util/math.h"
#include "src/util/random.h"
#include "src/vector/distance.h"

namespace c2lsh {

Result<SrsIndex> SrsIndex::Build(const Dataset& data, const SrsOptions& options) {
  if (options.projected_dim == 0 || options.projected_dim > 32) {
    return Status::InvalidArgument("SRS: projected_dim must be in [1, 32] (a kd-tree "
                                   "degrades beyond low dimensions)");
  }
  if (!(options.c > 1.0)) {
    return Status::InvalidArgument("SRS: c must exceed 1");
  }
  if (!(options.threshold > 0.0 && options.threshold < 1.0)) {
    return Status::InvalidArgument("SRS: threshold must lie in (0, 1)");
  }
  if (!(options.budget_fraction > 0.0 && options.budget_fraction <= 1.0)) {
    return Status::InvalidArgument("SRS: budget_fraction must lie in (0, 1]");
  }

  Rng rng(options.seed);
  std::vector<std::vector<float>> projections(options.projected_dim);
  for (auto& a : projections) {
    rng.GaussianVector(data.dim(), &a);
  }

  std::vector<float> projected(data.size() * options.projected_dim);
  for (size_t i = 0; i < data.size(); ++i) {
    const float* v = data.object(static_cast<ObjectId>(i));
    for (size_t j = 0; j < options.projected_dim; ++j) {
      projected[i * options.projected_dim + j] =
          static_cast<float>(Dot(projections[j].data(), v, data.dim()));
    }
  }
  C2LSH_ASSIGN_OR_RETURN(
      KdTree tree, KdTree::Build(std::move(projected), data.size(), options.projected_dim));
  return SrsIndex(options, std::move(projections), std::move(tree), data.size(),
                  data.dim());
}

Result<NeighborList> SrsIndex::Query(const Dataset& data, const float* query, size_t k,
                                     SrsQueryStats* stats) const {
  if (k == 0) return Status::InvalidArgument("SRS query: k must be positive");
  if (data.dim() != dim_) {
    return Status::InvalidArgument("SRS query: dataset dim mismatch");
  }
  if (data.size() < num_objects_) {
    return Status::InvalidArgument("SRS query: dataset smaller than the index");
  }
  SrsQueryStats local;
  SrsQueryStats* st = (stats != nullptr) ? stats : &local;
  *st = SrsQueryStats();

  const size_t m_proj = options_.projected_dim;
  std::vector<float> qproj(m_proj);
  for (size_t j = 0; j < m_proj; ++j) {
    qproj[j] = static_cast<float>(Dot(projections_[j].data(), query, dim_));
  }

  const size_t budget = std::max<size_t>(
      options_.min_budget,
      static_cast<size_t>(options_.budget_fraction * static_cast<double>(num_objects_)));
  const uint64_t vector_pages = page_model_.PagesPerVector(dim_);
  const int dof = static_cast<int>(m_proj);

  KdTree::Stream stream = tree_.StartStream(qproj.data());
  st->index_pages += 2;  // root descent of the (tiny) projected index

  // Max-heap over the best k exact distances found so far.
  NeighborList heap;
  NeighborLess less;
  auto cmp = [&less](const Neighbor& a, const Neighbor& b) { return less(a, b); };

  while (stream.HasNext()) {
    // Early termination: if even the k-th best so far is hard to beat by a
    // factor c given the projected frontier, stop.
    if (heap.size() >= k) {
      const double frontier_sq = stream.PeekSquaredDist();
      const double target = static_cast<double>(heap.front().dist) / options_.c;
      if (target > 0.0) {
        const double ratio = frontier_sq / (target * target);
        if (ChiSquaredCdf(ratio, dof) >= options_.threshold) {
          st->terminated_early = true;
          break;
        }
      }
    }
    if (st->candidates_verified >= budget) {
      st->terminated_budget = true;
      break;
    }

    const KdTree::Stream::Item item = stream.Next();
    ++st->stream_steps;
    if (!std::isfinite(item.squared_dist)) break;
    // One projected-index page per handful of stream steps (the kd-tree
    // stores points 16 to a leaf; charge conservatively per step batch).
    if (st->stream_steps % 16 == 1) ++st->index_pages;

    const double dist = L2(query, data.object(item.id), dim_);
    ++st->candidates_verified;
    st->data_pages += vector_pages;

    const Neighbor cand{item.id, static_cast<float>(dist)};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (less(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }

  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

size_t SrsIndex::MemoryBytes() const {
  // Projected points + kd-tree order array + node boxes, plus the m'
  // projection vectors. The dominant term is m' * n floats — the paper's
  // "tiny index".
  size_t bytes = num_objects_ * options_.projected_dim * sizeof(float);
  bytes += num_objects_ * sizeof(uint32_t);
  bytes += (num_objects_ / 8) * (2 * options_.projected_dim * sizeof(float) + 32);
  for (const auto& a : projections_) bytes += a.size() * sizeof(float);
  return bytes;
}

}  // namespace c2lsh
