// A kd-tree over low-dimensional points with *incremental* nearest-neighbor
// search (Hjaltason & Samet's best-first algorithm): the iterator yields
// points in strictly non-decreasing distance from the query, pausing between
// results. SRS projects high-dimensional data into ~6 dimensions, where a
// kd-tree is effective, and consumes exactly this ordered stream.

#pragma once
#ifndef C2LSH_BASELINES_SRS_KDTREE_H_
#define C2LSH_BASELINES_SRS_KDTREE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/util/result.h"
#include "src/vector/types.h"

namespace c2lsh {

/// kd-tree over n points of (low) dimension d, coordinates owned internally.
class KdTree {
 public:
  /// Builds from row-major points (n x dim). Median-split on the widest
  /// coordinate, leaves of <= kLeafSize points.
  static Result<KdTree> Build(std::vector<float> points, size_t n, size_t dim);

  size_t size() const { return n_; }
  size_t dim() const { return dim_; }

  /// Incremental NN stream for one query. Next() yields (id, squared
  /// distance) pairs in non-decreasing distance order until exhausted.
  class Stream {
   public:
    bool HasNext() const { return !heap_.empty(); }

    struct Item {
      ObjectId id;
      double squared_dist;
    };
    /// Pops the next-nearest point; expands internal nodes lazily.
    Item Next();

    /// Lower bound on the squared distance of every not-yet-yielded point
    /// (the frontier key — a node's min-distance or a pending point's exact
    /// distance). This is what SRS's early-termination test consumes.
    /// Requires HasNext().
    double PeekSquaredDist() const { return heap_.top().key; }

   private:
    friend class KdTree;
    struct Entry {
      double key;       // squared distance (point) or min squared dist (node)
      int32_t node;     // -1 for a concrete point
      uint32_t point;   // valid when node == -1
      bool operator>(const Entry& other) const { return key > other.key; }
    };

    Stream(const KdTree* tree, std::vector<float> query)
        : tree_(tree), query_(std::move(query)) {}

    void PushNode(int32_t node_idx);

    const KdTree* tree_ = nullptr;
    std::vector<float> query_;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  };

  /// Starts a stream for `query` (dim() floats, copied).
  Stream StartStream(const float* query) const;

 private:
  static constexpr size_t kLeafSize = 16;

  struct Node {
    // Internal: split coordinate/value and children. Leaf: point range.
    int32_t left = -1;
    int32_t right = -1;
    uint32_t begin = 0;   // leaf: first index into order_
    uint32_t count = 0;   // leaf: number of points
    uint16_t split_dim = 0;
    float split_val = 0;
    // Bounding box of the subtree, for mindist computation.
    std::vector<float> box_min;
    std::vector<float> box_max;

    bool is_leaf() const { return left < 0 && right < 0; }
  };

  KdTree(std::vector<float> points, size_t n, size_t dim)
      : points_(std::move(points)), n_(n), dim_(dim) {}

  const float* point(uint32_t id) const { return points_.data() + id * dim_; }
  int32_t BuildNode(uint32_t begin, uint32_t end);
  double MinSquaredDist(const Node& node, const float* q) const;

  std::vector<float> points_;
  size_t n_;
  size_t dim_;
  std::vector<uint32_t> order_;  // permutation of ids, leaf ranges contiguous
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace c2lsh

#endif  // C2LSH_BASELINES_SRS_KDTREE_H_
