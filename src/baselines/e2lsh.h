// E2LSH baseline: the static concatenating search framework (Indyk-Motwani
// 1998; Datar et al. 2004) that C2LSH's dynamic collision counting is
// measured against.
//
// Indexing: sample L compound functions G_j = (h_1 .. h_K) and, for each
// radius R in the schedule {1, c, c^2, ..., c^(max_rounds-1)}, build one
// physical hash table per G_j keyed by G_j's component buckets widened to
// level R. This is "rigorous LSH": one structure per radius, which is
// exactly the index-size blowup C2LSH was designed to remove — the T2
// experiment measures it.
//
// Query (c-k-ANN): walk the radius schedule; at radius R probe the L buckets
// G_1(q) .. G_L(q), verify every previously-unseen collider, and stop when k
// verified candidates lie within c*R (or the schedule or the verification
// budget is exhausted).

#pragma once
#ifndef C2LSH_BASELINES_E2LSH_H_
#define C2LSH_BASELINES_E2LSH_H_

#include <cstdint>
#include <vector>

#include "src/lsh/collision_model.h"
#include "src/lsh/compound.h"
#include "src/storage/page_model.h"
#include "src/util/result.h"
#include "src/vector/dataset.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Configuration of the E2LSH baseline.
struct E2lshOptions {
  size_t K = 8;            ///< functions per compound hash
  size_t L = 32;           ///< number of compound hash tables
  double w = 1.0;          ///< base bucket width (shared with C2LSH runs)
  double c = 2.0;          ///< approximation ratio / radius growth factor
  size_t max_rounds = 12;  ///< radii in the schedule: {1, c, ..., c^(max_rounds-1)}
  uint64_t seed = 1;
  size_t page_bytes = 4096;
  /// Verification budget per query, as a multiple of L (the classic E2LSH
  /// "3L" rule). 0 disables the cap.
  size_t verify_budget_per_table = 3;
};

/// Suggests (K, L) from the collision model: K = ceil(log_{1/p2} n) drives
/// the false-positive rate below 1/n per table; L = ceil(n^rho / p1^K-ish)
/// is clamped to `max_l` because the theoretical value is the impractical
/// number the paper criticizes.
E2lshOptions SuggestE2lshOptions(size_t n, const CollisionModel& model, size_t max_l = 256);

/// Per-query statistics (same currency as C2lshQueryStats).
struct E2lshQueryStats {
  uint64_t rounds = 0;
  long long final_radius = 0;
  uint64_t buckets_probed = 0;
  uint64_t candidates_verified = 0;
  uint64_t index_pages = 0;
  uint64_t data_pages = 0;

  uint64_t total_pages() const { return index_pages + data_pages; }
};

/// The E2LSH index.
class E2lshIndex {
 public:
  static Result<E2lshIndex> Build(const Dataset& data, const E2lshOptions& options);

  /// c-k-ANN query; returns up to k verified neighbors ascending by exact
  /// distance. Not thread-safe (per-query scratch is reused).
  Result<NeighborList> Query(const Dataset& data, const float* query, size_t k,
                             E2lshQueryStats* stats = nullptr) const;

  const E2lshOptions& options() const { return options_; }
  size_t MemoryBytes() const;

 private:
  /// One physical hash table: (key, object) pairs sorted by key.
  using KeyTable = std::vector<std::pair<uint64_t, ObjectId>>;

  E2lshIndex(E2lshOptions options, std::vector<CompoundHash> hashes,
             std::vector<std::vector<KeyTable>> tables, size_t num_objects, size_t dim);

  E2lshOptions options_;
  std::vector<CompoundHash> hashes_;              // L compound functions
  std::vector<std::vector<KeyTable>> tables_;     // [round][table] -> KeyTable
  std::vector<long long> radii_;                  // radius of each round
  size_t num_objects_ = 0;
  size_t dim_ = 0;
  PageModel page_model_;

  mutable std::vector<uint8_t> seen_;       // per-query dedup
  mutable std::vector<ObjectId> touched_;
};

}  // namespace c2lsh

#endif  // C2LSH_BASELINES_E2LSH_H_
