// WriteAheadLog: the delta log that makes online mutation of the disk index
// crash-safe. Every Insert/Delete is serialized into an LSN-stamped,
// CRC-framed record and appended here; the index acknowledges the mutation
// only after Sync() returns, so an acknowledged mutation is durable by
// definition. On reopen, Replay() walks the log and re-applies the surviving
// records into the in-memory overlays.
//
// On-disk layout (all little-endian host order, like the rest of the
// library):
//
//   [magic u64][version u32][reserved u32]                     16-byte header
//   [masked crc32c u32][body length u32][body] ...             record frames
//
// where body = [lsn u64][type u8][payload]. The CRC covers the whole body,
// so a torn append (the crash case) fails the frame check and Replay stops
// there: the torn tail is truncated — subsequent appends overwrite it — and
// is never applied. LSNs must be strictly increasing; a frame that breaks
// monotonicity is treated exactly like a corrupt one (stop and truncate).
// Records with lsn <= the caller's applied_lsn high-water (persisted in the
// index meta at compaction time) are parsed but skipped, which is what makes
// replay idempotent across repeated crash/reopen cycles.
//
// Reset() — called after compaction has durably folded the log's effects —
// deletes and recreates the file rather than rewinding a write offset, so a
// stale-but-valid old tail can never resurrect behind a shorter new log.
//
// All I/O goes through the Env seam (util/env.h); transient Unavailable
// failures are retried with the same bounded backoff as PageFile.

#pragma once
#ifndef C2LSH_STORAGE_WAL_H_
#define C2LSH_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/util/env.h"
#include "src/util/result.h"
#include "src/util/retry.h"
#include "src/vector/types.h"

namespace c2lsh {

/// A single append-only delta log. Move-only (owns the file handle).
class WriteAheadLog {
 public:
  enum class RecordType : uint8_t {
    kInsert = 1,  ///< payload: [id u32][dim u32][dim floats]
    kDelete = 2,  ///< payload: [id u32]
  };

  struct Record {
    uint64_t lsn = 0;
    RecordType type = RecordType::kInsert;
    ObjectId id = 0;
    std::vector<float> vec;  ///< empty for kDelete
  };

  /// Largest encoded record body Replay() accepts; anything larger in a
  /// frame's length field is treated as a torn tail and truncated. Append()
  /// therefore rejects records that would encode past this bound — an
  /// unreplayable record must never be written, let alone acknowledged.
  static constexpr size_t kMaxBodyBytes = 1u << 26;

  struct ReplayStats {
    uint64_t applied = 0;    ///< records delivered to the callback
    uint64_t skipped = 0;    ///< records with lsn <= applied_lsn (already folded)
    uint64_t truncated = 0;  ///< 1 if a torn/corrupt tail was cut off, else 0
  };

  /// Opens the log at `path`, creating an empty one if the file does not
  /// exist. An existing file's records are not validated here — call
  /// Replay() before the first Append (it both applies the survivors and
  /// positions the append offset at the end of the valid prefix).
  /// `env` defaults to Env::Default().
  static Result<WriteAheadLog> Open(std::string path, Env* env = nullptr);

  WriteAheadLog(WriteAheadLog&&) = default;
  WriteAheadLog& operator=(WriteAheadLog&&) = default;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Scans the log from the start. Frames that parse and carry
  /// lsn > applied_lsn are handed to `fn` in order; frames with
  /// lsn <= applied_lsn are skipped (already folded into the index by a
  /// compaction). The scan stops at the first torn, corrupt, or
  /// LSN-non-monotonic frame; everything from there on is truncated (the
  /// next Append overwrites it) and never delivered. An error from `fn`
  /// aborts the replay and is returned.
  Result<ReplayStats> Replay(uint64_t applied_lsn,
                             const std::function<Status(const Record&)>& fn);

  /// Appends one record frame at the end of the valid prefix. The record is
  /// NOT durable (and must not be acknowledged) until Sync() succeeds.
  /// `rec.lsn` must be strictly greater than every LSN already in the log.
  Status Append(const Record& rec);

  /// Makes all appended records durable (fsync through the Env seam).
  Status Sync();

  /// Empties the log by deleting and recreating the file. Call only after
  /// the log's effects are durably folded elsewhere (compaction publish).
  Status Reset();

  /// Highest LSN seen by Replay or Append (0 if the log is empty).
  uint64_t last_lsn() const { return last_lsn_; }

  /// Bytes of valid log (header + surviving frames).
  uint64_t size_bytes() const { return append_offset_; }

  void SetRetryPolicy(const RetryPolicy& policy) { retry_policy_ = policy; }

 private:
  WriteAheadLog(std::unique_ptr<RandomAccessFile> f, std::string path, Env* env,
                uint64_t append_offset)
      : file_(std::move(f)),
        path_(std::move(path)),
        env_(env),
        append_offset_(append_offset) {}

  std::unique_ptr<RandomAccessFile> file_;
  std::string path_;
  Env* env_;  // not owned
  uint64_t append_offset_ = 0;  ///< end of the valid prefix
  uint64_t last_lsn_ = 0;
  RetryPolicy retry_policy_;
  RetryStats retry_stats_;
  std::vector<uint8_t> scratch_;  ///< frame staging buffer
};

}  // namespace c2lsh

#endif  // C2LSH_STORAGE_WAL_H_
