// PageFile: a fixed-page-size file, the unit of persistence for the
// disk-resident index mode. C2LSH is presented as an external-memory index;
// this file plus the BufferPool on top of it make that mode real (the
// in-memory mode keeps the analytic PageModel).
//
// On-disk layout (format v3 — crash-safe and checksummed):
//
//   [header slot A: 256 B][header slot B: 256 B]   shadow header pair
//   [page 1][page 2]...                            data pages
//
// Each header slot holds [magic][version][page_bytes][num_pages][generation]
// [user_root][crc32c]. Sync() publishes state by writing the *inactive* slot
// with a higher generation; Open() picks the valid slot with the highest
// generation, so a crash that tears a header write loses at most the
// un-synced tail, never the file. `user_root` is an opaque u64 the caller
// owns (DiskC2lshIndex stores its meta-blob root there): because it rides in
// the header slot it flips atomically with the generation, giving layers
// above a single-pointer atomic-publish primitive — compaction writes a whole
// new page tree, then swings user_root in one Sync. v2 files (no user_root
// field) still open; their user_root reads as 0. Each data page is stored as
// page_bytes of payload plus an 8-byte footer [masked crc32c][page id], so
// ReadPage detects torn writes, bit flips, and misdirected writes and
// reports them as Status::Corruption with page-level context.
//
// All I/O goes through an Env (util/env.h); transient (Unavailable)
// failures are retried with bounded exponential backoff and the retry
// counts are observable via retry_stats(). The file is durable and
// consistent after Sync(); between Syncs, Open() recovers the last synced
// state.

#pragma once
#ifndef C2LSH_STORAGE_PAGE_FILE_H_
#define C2LSH_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/page_model.h"
#include "src/util/env.h"
#include "src/util/query_context.h"
#include "src/util/result.h"
#include "src/util/retry.h"

namespace c2lsh {

/// Identifier of a page within a PageFile. Page ids start at 1; 0 is
/// reserved as "no page" (the header region is not addressable).
using PageId = uint64_t;

/// A fixed-page file. Move-only (owns the file handle).
class PageFile {
 public:
  /// Creates a new file (truncating any existing one). `env` defaults to
  /// Env::Default().
  static Result<PageFile> Create(const std::string& path,
                                 size_t page_bytes = kDefaultPageBytes,
                                 Env* env = nullptr);

  /// Opens an existing file, validating the shadow headers. After a crash
  /// this either recovers the last synced state or returns Corruption
  /// (NotSupported for pre-checksum v1 files, which must be rebuilt).
  static Result<PageFile> Open(const std::string& path, Env* env = nullptr);

  PageFile(PageFile&&) = default;
  PageFile& operator=(PageFile&&) = default;
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  size_t page_bytes() const { return page_bytes_; }

  /// Number of allocated data pages.
  uint64_t num_pages() const { return num_pages_; }

  /// Appends a zeroed page; returns its id (>= 1).
  Result<PageId> AllocatePage();

  /// Reads page `id` into `buf` (page_bytes() bytes), verifying its
  /// checksum footer. Torn or corrupt pages fail with Corruption naming the
  /// page. `ctx` (nullable) makes transient-fault retries deadline-aware:
  /// once the query's remaining budget cannot cover the next backoff, the
  /// read gives up with the still-transient Unavailable (see util/retry.h).
  Status ReadPage(PageId id, void* buf, const QueryContext* ctx = nullptr) const;

  /// Writes `buf` (page_bytes() bytes) to page `id` with a fresh footer.
  Status WritePage(PageId id, const void* buf);

  /// Makes all writes durable, then atomically publishes the new header
  /// generation (data before metadata, shadow slot alternation).
  Status Sync();

  /// The caller-owned root pointer published with the header (0 until set).
  /// After Open this is the last *durably published* value.
  uint64_t user_root() const { return user_root_; }

  /// Stages a new user root. It becomes durable — atomically, together with
  /// the page count — at the next Sync(); a crash before that Sync recovers
  /// the previous value. This is the storage layer's only sanctioned way to
  /// re-point an index at a rewritten page tree (see lint rule
  /// `mutation-seam`).
  void SetUserRoot(uint64_t root) { user_root_ = root; }

  /// Retry behavior for transient (Unavailable) env failures.
  void SetRetryPolicy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryStats& retry_stats() const { return retry_stats_; }

 private:
  PageFile(std::unique_ptr<RandomAccessFile> f, std::string path, size_t page_bytes,
           uint64_t num_pages, uint64_t generation, int active_slot,
           uint64_t user_root)
      : file_(std::move(f)),
        path_(std::move(path)),
        page_bytes_(page_bytes),
        num_pages_(num_pages),
        generation_(generation),
        active_slot_(active_slot),
        user_root_(user_root) {}

  size_t PhysicalPageBytes() const;
  uint64_t PageOffset(PageId id) const;
  Status WriteHeaderSlot(int slot, uint64_t generation);
  Status CheckPageId(PageId id) const;

  std::unique_ptr<RandomAccessFile> file_;
  std::string path_;
  size_t page_bytes_ = kDefaultPageBytes;
  uint64_t num_pages_ = 0;
  uint64_t generation_ = 1;  ///< generation of the active header slot
  int active_slot_ = 0;      ///< slot holding the current durable header
  uint64_t user_root_ = 0;   ///< caller-owned root, published by Sync
  RetryPolicy retry_policy_;
  mutable RetryStats retry_stats_;
  mutable std::vector<uint8_t> scratch_;  ///< payload+footer staging buffer
};

}  // namespace c2lsh

#endif  // C2LSH_STORAGE_PAGE_FILE_H_
