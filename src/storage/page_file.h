// PageFile: a fixed-page-size file, the unit of persistence for the
// disk-resident index mode. C2LSH is presented as an external-memory index;
// this file plus the BufferPool on top of it make that mode real (the
// in-memory mode keeps the analytic PageModel). Layout:
//
//   page 0:  header [magic u64][page_bytes u32][num_pages u64][reserved]
//   page 1+: raw pages owned by higher layers
//
// All operations are Status-based; the file is always in a consistent state
// after Sync() (header rewritten on every allocation batch).

#ifndef C2LSH_STORAGE_PAGE_FILE_H_
#define C2LSH_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "src/storage/page_model.h"
#include "src/util/result.h"

namespace c2lsh {

/// Identifier of a page within a PageFile. Page 0 is the header and is never
/// handed out.
using PageId = uint64_t;

/// A fixed-page file. Move-only (owns the file handle).
class PageFile {
 public:
  /// Creates a new file (truncating any existing one).
  static Result<PageFile> Create(const std::string& path,
                                 size_t page_bytes = kDefaultPageBytes);

  /// Opens an existing file, validating the header.
  static Result<PageFile> Open(const std::string& path);

  PageFile(PageFile&&) = default;
  PageFile& operator=(PageFile&&) = default;
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  size_t page_bytes() const { return page_bytes_; }

  /// Number of allocated data pages (excluding the header page).
  uint64_t num_pages() const { return num_pages_; }

  /// Appends a zeroed page; returns its id (>= 1).
  Result<PageId> AllocatePage();

  /// Reads page `id` into `buf` (page_bytes() bytes).
  Status ReadPage(PageId id, void* buf) const;

  /// Writes `buf` (page_bytes() bytes) to page `id`.
  Status WritePage(PageId id, const void* buf);

  /// Flushes buffered writes and the header to the OS.
  Status Sync();

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  PageFile(std::unique_ptr<std::FILE, FileCloser> f, std::string path, size_t page_bytes,
           uint64_t num_pages)
      : file_(std::move(f)),
        path_(std::move(path)),
        page_bytes_(page_bytes),
        num_pages_(num_pages) {}

  Status WriteHeader();

  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string path_;
  size_t page_bytes_ = kDefaultPageBytes;
  uint64_t num_pages_ = 0;
};

}  // namespace c2lsh

#endif  // C2LSH_STORAGE_PAGE_FILE_H_
