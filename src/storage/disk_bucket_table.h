// DiskBucketTable: the external-memory counterpart of BucketTable.
//
// Layout inside a shared PageFile:
//   * entry pages — the bucket-contiguous ObjectId array, split across a
//     contiguous run of pages (ids packed page_bytes/4 per page);
//   * a directory blob — the sorted (bucket, offset, count) triples,
//     serialized via WriteBlob and cached in memory after open (per-table
//     directories are tiny; both the paper and the in-memory mode treat them
//     as resident).
//
// Range probes therefore cost exactly the entry pages they touch — the
// quantity the BufferPool measures and experiment D1 compares against the
// analytic model.

#pragma once
#ifndef C2LSH_STORAGE_DISK_BUCKET_TABLE_H_
#define C2LSH_STORAGE_DISK_BUCKET_TABLE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/storage/blob.h"
#include "src/storage/bucket_table.h"
#include "src/util/query_context.h"
#include "src/util/result.h"
#include "src/vector/types.h"

namespace c2lsh {

/// An immutable on-disk bucket table.
class DiskBucketTable {
 public:
  /// Builds the table from (bucket, object) pairs (sorted internally),
  /// writing entry pages and the directory blob through `pool`. Returns the
  /// table with its in-memory directory populated.
  static Result<DiskBucketTable> Build(BufferPool* pool,
                                       std::vector<std::pair<BucketId, ObjectId>> entries);

  /// Reopens a table from its root (the directory blob's first page).
  static Result<DiskBucketTable> Load(BufferPool* pool, PageId root);

  /// The directory blob's first page — persist this to find the table again.
  PageId root() const { return root_; }

  size_t num_entries() const { return num_entries_; }
  size_t num_buckets() const { return directory_.size(); }

  /// Calls `fn(ObjectId)` for every object with bucket in [lo, hi]; entry
  /// pages are fetched through the pool (so misses are measured I/O).
  /// Returns the number of objects visited, or an error if a page fetch
  /// fails. `ctx` (nullable) bounds the scan: the deadline/cancellation is
  /// checked at every entry-page boundary, and an expired context stops the
  /// scan early, returning the objects visited so far (not an error) —
  /// the caller decides how a partial scan terminates the query.
  Result<size_t> ForEachInRange(BucketId lo, BucketId hi,
                                const std::function<void(ObjectId)>& fn,
                                const QueryContext* ctx = nullptr) const;

  /// Entries in [lo, hi], answered from the resident directory (no I/O).
  size_t EntriesInRange(BucketId lo, BucketId hi) const;

 private:
  struct DirEntry {
    BucketId bucket;
    uint32_t offset;
    uint32_t count;
  };

  DiskBucketTable(BufferPool* pool, PageId root, PageId first_entry_page,
                  size_t num_entries, std::vector<DirEntry> directory)
      : pool_(pool),
        root_(root),
        first_entry_page_(first_entry_page),
        num_entries_(num_entries),
        directory_(std::move(directory)) {}

  std::pair<size_t, size_t> EntryRange(BucketId lo, BucketId hi) const;
  size_t EntriesPerPage() const { return pool_->page_bytes() / sizeof(ObjectId); }

  BufferPool* pool_;  // not owned
  PageId root_ = 0;
  PageId first_entry_page_ = 0;
  size_t num_entries_ = 0;
  std::vector<DirEntry> directory_;
};

}  // namespace c2lsh

#endif  // C2LSH_STORAGE_DISK_BUCKET_TABLE_H_
