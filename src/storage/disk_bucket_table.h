// DiskBucketTable: the external-memory counterpart of BucketTable.
//
// Layout inside a shared PageFile:
//   * entry pages — the bucket-contiguous ObjectId array, split across a
//     contiguous run of pages (ids packed page_bytes/4 per page);
//   * a directory blob — the sorted (bucket, offset, count) triples,
//     serialized via WriteBlob and cached in memory after open (per-table
//     directories are tiny; both the paper and the in-memory mode treat them
//     as resident).
//
// Range probes therefore cost exactly the entry pages they touch — the
// quantity the BufferPool measures and experiment D1 compares against the
// analytic model.
//
// Mutability: the on-disk run is immutable, but the table carries a small
// in-memory delta — a sorted insert overlay plus a tombstone set — that
// scans consult alongside the run. The delta is *not* persisted here: the
// owning DiskC2lshIndex makes each mutation durable in its write-ahead log
// first and rebuilds the deltas by replay at Open(); a compaction folds them
// into a freshly written run (see core/disk_index.h).

#pragma once
#ifndef C2LSH_STORAGE_DISK_BUCKET_TABLE_H_
#define C2LSH_STORAGE_DISK_BUCKET_TABLE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/storage/blob.h"
#include "src/storage/bucket_table.h"
#include "src/util/query_context.h"
#include "src/util/result.h"
#include "src/vector/types.h"

namespace c2lsh {

/// An on-disk bucket table: an immutable base run plus an in-memory,
/// WAL-recovered delta overlay.
class DiskBucketTable {
 public:
  /// Builds the table from (bucket, object) pairs (sorted internally),
  /// writing entry pages and the directory blob through `pool`. Returns the
  /// table with its in-memory directory populated.
  static Result<DiskBucketTable> Build(BufferPool* pool,
                                       std::vector<std::pair<BucketId, ObjectId>> entries);

  /// Reopens a table from its root (the directory blob's first page).
  static Result<DiskBucketTable> Load(BufferPool* pool, PageId root);

  /// The directory blob's first page — persist this to find the table again.
  PageId root() const { return root_; }

  /// Base-run plus overlay entries (tombstoned objects still occupy their
  /// slots until a compaction rewrites the run).
  size_t num_entries() const { return num_entries_ + overlay_.size(); }
  size_t num_buckets() const { return directory_.size(); }

  /// Calls `fn(ObjectId)` for every live object with bucket in [lo, hi] —
  /// base-run entries first (tombstoned ids skipped), then overlay inserts
  /// in bucket order. Entry pages are fetched through the pool (so misses
  /// are measured I/O). Returns the number of objects visited, or an error
  /// if a page fetch fails. `ctx` (nullable) bounds the scan: the
  /// deadline/cancellation is checked at every entry-page boundary, and an
  /// expired context stops the scan early, returning the objects visited so
  /// far (not an error) — the caller decides how a partial scan terminates
  /// the query.
  Result<size_t> ForEachInRange(BucketId lo, BucketId hi,
                                const std::function<void(ObjectId)>& fn,
                                const QueryContext* ctx = nullptr) const;

  /// Calls `fn(BucketId, ObjectId)` for every live entry (base run in
  /// directory order, then overlay), fetching entry pages through the pool.
  /// Compaction's input: the union of run and delta with tombstones applied.
  Status ForEachEntry(const std::function<void(BucketId, ObjectId)>& fn) const;

  /// Entries in [lo, hi] (base run + overlay), answered from resident state
  /// (no I/O). Tombstoned entries still count — see num_entries().
  size_t EntriesInRange(BucketId lo, BucketId hi) const;

  /// Records a dynamic insert in the overlay (kept sorted by bucket,
  /// insertion-ordered within a bucket — the same scan order the in-memory
  /// BucketTable produces). An insert is an upsert: it lifts any tombstone
  /// on `id`, drops stale overlay entries from an earlier insert of the
  /// same id, and hides the id's base-run entries (whose bucket came from
  /// the superseded vector) until a compaction rewrites the run — so a
  /// delete-then-reinsert is visible exactly once, never lost and never
  /// double-counted. Durability is the caller's job (WAL first).
  void OverlayInsert(BucketId bucket, ObjectId id);

  /// Tombstones `id`: every occurrence (run or overlay) disappears from
  /// scans. Idempotent; undone by a later OverlayInsert of the same id.
  void OverlayDelete(ObjectId id);

  size_t OverlayEntries() const { return overlay_.size(); }
  size_t NumTombstones() const { return tombstones_.size(); }

 private:
  struct DirEntry {
    BucketId bucket;
    uint32_t offset;
    uint32_t count;
  };

  DiskBucketTable(BufferPool* pool, PageId root, PageId first_entry_page,
                  size_t num_entries, std::vector<DirEntry> directory)
      : pool_(pool),
        root_(root),
        first_entry_page_(first_entry_page),
        num_entries_(num_entries),
        directory_(std::move(directory)) {}

  std::pair<size_t, size_t> EntryRange(BucketId lo, BucketId hi) const;
  size_t EntriesPerPage() const { return pool_->page_bytes() / sizeof(ObjectId); }
  bool IsDeleted(ObjectId id) const;
  bool IsDeadInRun(ObjectId id) const;

  BufferPool* pool_;  // not owned
  PageId root_ = 0;
  PageId first_entry_page_ = 0;
  size_t num_entries_ = 0;
  std::vector<DirEntry> directory_;
  /// The in-memory delta: overlay sorted by bucket, tombstones and run_dead
  /// sorted by id. Rebuilt from the WAL at open; emptied by compaction.
  /// tombstones_ holds currently-deleted ids (hides overlay entries and
  /// feeds NumTombstones); run_dead_ holds ids whose BASE-RUN entries are
  /// dead — every deleted id plus every reinserted one, whose live entries
  /// now live in the overlay. Scans check exactly one set per entry.
  std::vector<std::pair<BucketId, ObjectId>> overlay_;
  std::vector<ObjectId> tombstones_;
  std::vector<ObjectId> run_dead_;
};

}  // namespace c2lsh

#endif  // C2LSH_STORAGE_DISK_BUCKET_TABLE_H_
