#include "src/storage/page_file.h"

#include <cstring>
#include <vector>

namespace c2lsh {

namespace {
constexpr uint64_t kPageFileMagic = 0xC25F11E0'0000A001ULL;
constexpr size_t kHeaderBytes = sizeof(uint64_t) + sizeof(uint32_t) + sizeof(uint64_t);
}  // namespace

Result<PageFile> PageFile::Create(const std::string& path, size_t page_bytes) {
  if (page_bytes < kHeaderBytes || page_bytes > (1u << 26)) {
    return Status::InvalidArgument("PageFile: unreasonable page size " +
                                   std::to_string(page_bytes));
  }
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb+"));
  if (f == nullptr) {
    return Status::IOError("PageFile: cannot create '" + path + "'");
  }
  PageFile pf(std::move(f), path, page_bytes, 0);
  C2LSH_RETURN_IF_ERROR(pf.WriteHeader());
  return pf;
}

Result<PageFile> PageFile::Open(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "rb+"));
  if (f == nullptr) {
    return Status::IOError("PageFile: cannot open '" + path + "'");
  }
  uint64_t magic = 0;
  uint32_t page_bytes = 0;
  uint64_t num_pages = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1 ||
      std::fread(&page_bytes, sizeof(page_bytes), 1, f.get()) != 1 ||
      std::fread(&num_pages, sizeof(num_pages), 1, f.get()) != 1) {
    return Status::Corruption("PageFile: truncated header in '" + path + "'");
  }
  if (magic != kPageFileMagic) {
    return Status::Corruption("PageFile: '" + path + "' is not a page file");
  }
  if (page_bytes < kHeaderBytes || page_bytes > (1u << 26)) {
    return Status::Corruption("PageFile: implausible page size in '" + path + "'");
  }
  return PageFile(std::move(f), path, page_bytes, num_pages);
}

Status PageFile::WriteHeader() {
  if (std::fseek(file_.get(), 0, SEEK_SET) != 0) {
    return Status::IOError("PageFile: seek failed on '" + path_ + "'");
  }
  std::vector<uint8_t> header(page_bytes_, 0);
  size_t off = 0;
  std::memcpy(header.data() + off, &kPageFileMagic, sizeof(kPageFileMagic));
  off += sizeof(kPageFileMagic);
  const uint32_t pb = static_cast<uint32_t>(page_bytes_);
  std::memcpy(header.data() + off, &pb, sizeof(pb));
  off += sizeof(pb);
  std::memcpy(header.data() + off, &num_pages_, sizeof(num_pages_));
  if (std::fwrite(header.data(), 1, page_bytes_, file_.get()) != page_bytes_) {
    return Status::IOError("PageFile: header write failed on '" + path_ + "'");
  }
  return Status::OK();
}

Result<PageId> PageFile::AllocatePage() {
  const PageId id = num_pages_ + 1;  // page 0 is the header
  std::vector<uint8_t> zeros(page_bytes_, 0);
  if (std::fseek(file_.get(), static_cast<long>(id * page_bytes_), SEEK_SET) != 0 ||
      std::fwrite(zeros.data(), 1, page_bytes_, file_.get()) != page_bytes_) {
    return Status::IOError("PageFile: allocation failed on '" + path_ + "'");
  }
  ++num_pages_;
  return id;
}

Status PageFile::ReadPage(PageId id, void* buf) const {
  if (id == 0 || id > num_pages_) {
    return Status::OutOfRange("PageFile: page " + std::to_string(id) + " of " +
                              std::to_string(num_pages_));
  }
  if (std::fseek(file_.get(), static_cast<long>(id * page_bytes_), SEEK_SET) != 0 ||
      std::fread(buf, 1, page_bytes_, file_.get()) != page_bytes_) {
    return Status::IOError("PageFile: read of page " + std::to_string(id) + " failed");
  }
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const void* buf) {
  if (id == 0 || id > num_pages_) {
    return Status::OutOfRange("PageFile: page " + std::to_string(id) + " of " +
                              std::to_string(num_pages_));
  }
  if (std::fseek(file_.get(), static_cast<long>(id * page_bytes_), SEEK_SET) != 0 ||
      std::fwrite(buf, 1, page_bytes_, file_.get()) != page_bytes_) {
    return Status::IOError("PageFile: write of page " + std::to_string(id) + " failed");
  }
  return Status::OK();
}

Status PageFile::Sync() {
  C2LSH_RETURN_IF_ERROR(WriteHeader());
  if (std::fflush(file_.get()) != 0) {
    return Status::IOError("PageFile: flush failed on '" + path_ + "'");
  }
  return Status::OK();
}

}  // namespace c2lsh
