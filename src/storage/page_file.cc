#include "src/storage/page_file.h"

#include <cstring>

#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/util/crc32.h"

namespace c2lsh {

namespace {

// Process-wide I/O counters; resolved once, bumped per page operation (the
// operations are real I/O, so the relaxed atomic increment is noise).
struct FileMetrics {
  obs::Counter* reads;
  obs::Counter* writes;
  obs::Counter* crc_failures;
  obs::Counter* syncs;
};

const FileMetrics& Metrics() {
  static const FileMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    FileMetrics mm;
    mm.reads = r.GetCounter("page_file_reads_total", "pages read from disk");
    mm.writes = r.GetCounter("page_file_writes_total",
                             "pages written to disk (including allocations)");
    mm.crc_failures = r.GetCounter(
        "page_file_crc_failures_total",
        "page reads rejected by an integrity check (truncation, footer id, CRC)");
    mm.syncs = r.GetCounter("page_file_syncs_total", "durable sync barriers completed");
    return mm;
  }();
  return m;
}

// v1 (pre-checksum, stdio-era) files start with this magic; they carry no
// page checksums and no shadow header, so they are rejected rather than
// silently misread.
constexpr uint64_t kPageFileMagicV1 = 0xC25F11E0'0000A001ULL;
constexpr uint64_t kPageFileMagic = 0xC25F11E0'0000A002ULL;
constexpr uint32_t kPageFileVersionV2 = 2;  ///< pre-user_root slots, still read
constexpr uint32_t kPageFileVersion = 3;

constexpr size_t kHeaderSlotBytes = 256;
constexpr size_t kHeaderRegionBytes = 2 * kHeaderSlotBytes;
constexpr size_t kPageFooterBytes = sizeof(uint32_t) + sizeof(uint32_t);
constexpr size_t kMinPageBytes = 64;
constexpr size_t kMaxPageBytes = 1u << 26;

// Header slot wire layout (little-endian host order, like every other
// on-disk struct in the library): the checksummed prefix, then its CRC.
struct HeaderFields {
  uint64_t magic;
  uint32_t version;
  uint32_t page_bytes;
  uint64_t num_pages;
  uint64_t generation;
  uint64_t user_root;  ///< v3+; decodes as 0 from a v2 slot
};
static_assert(sizeof(HeaderFields) == 40);

// A v2 slot checksums only the first five fields (32 bytes); v3 includes
// user_root (40 bytes). The CRC sits immediately after the checksummed
// prefix in both layouts.
constexpr size_t kHeaderPrefixBytesV2 = sizeof(HeaderFields) - sizeof(uint64_t);

void EncodeHeaderSlot(uint8_t* slot, const HeaderFields& h) {
  std::memset(slot, 0, kHeaderSlotBytes);
  std::memcpy(slot, &h, sizeof(h));
  const uint32_t crc = Crc32cMask(Crc32c(slot, sizeof(HeaderFields)));
  std::memcpy(slot + sizeof(HeaderFields), &crc, sizeof(crc));
}

/// Returns true iff `slot` holds a well-formed v2 or v3 header.
bool DecodeHeaderSlot(const uint8_t* slot, HeaderFields* h) {
  std::memset(h, 0, sizeof(*h));
  std::memcpy(h, slot, kHeaderPrefixBytesV2);  // magic..generation
  if (h->magic != kPageFileMagic) return false;
  size_t prefix = 0;
  if (h->version == kPageFileVersionV2) {
    prefix = kHeaderPrefixBytesV2;
  } else if (h->version == kPageFileVersion) {
    prefix = sizeof(HeaderFields);
    std::memcpy(&h->user_root, slot + kHeaderPrefixBytesV2, sizeof(h->user_root));
  } else {
    return false;
  }
  uint32_t stored = 0;
  std::memcpy(&stored, slot + prefix, sizeof(stored));
  if (Crc32cUnmask(stored) != Crc32c(slot, prefix)) return false;
  return h->page_bytes >= kMinPageBytes && h->page_bytes <= kMaxPageBytes;
}

void EncodePageFooter(uint8_t* footer, const void* payload, size_t page_bytes,
                      PageId id) {
  const uint32_t crc = Crc32cMask(Crc32c(payload, page_bytes));
  const uint32_t id32 = static_cast<uint32_t>(id);
  std::memcpy(footer, &crc, sizeof(crc));
  std::memcpy(footer + sizeof(crc), &id32, sizeof(id32));
}

}  // namespace

size_t PageFile::PhysicalPageBytes() const { return page_bytes_ + kPageFooterBytes; }

uint64_t PageFile::PageOffset(PageId id) const {
  return kHeaderRegionBytes + (id - 1) * PhysicalPageBytes();
}

Result<PageFile> PageFile::Create(const std::string& path, size_t page_bytes,
                                  Env* env) {
  if (env == nullptr) env = Env::Default();
  if (page_bytes < kMinPageBytes || page_bytes > kMaxPageBytes) {
    return Status::InvalidArgument("PageFile: unreasonable page size " +
                                   std::to_string(page_bytes));
  }
  C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> f, env->NewFile(path));
  PageFile pf(std::move(f), path, page_bytes, 0, /*generation=*/1,
              /*active_slot=*/0, /*user_root=*/0);
  // Slot 0 carries generation 1; slot 1 starts zeroed (invalid) and becomes
  // the target of the first Sync.
  C2LSH_RETURN_IF_ERROR(pf.WriteHeaderSlot(0, 1));
  std::vector<uint8_t> zeros(kHeaderSlotBytes, 0);
  C2LSH_RETURN_IF_ERROR(RetryTransient(pf.retry_policy_, &pf.retry_stats_, [&] {
    return pf.file_->WriteAt(kHeaderSlotBytes, zeros.data(), zeros.size());
  }));
  return pf;
}

Result<PageFile> PageFile::Open(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> f, env->OpenFile(path));

  uint8_t region[kHeaderRegionBytes] = {};
  size_t got = 0;
  // ReadFullyAt, so `got < kHeaderRegionBytes` can only mean the file truly
  // ends there (a legacy one-slot header), never a transient short read.
  C2LSH_RETURN_IF_ERROR(ReadFullyAt(*f, 0, region, sizeof(region), &got));

  HeaderFields slot[2];
  const bool valid0 = got >= kHeaderSlotBytes && DecodeHeaderSlot(region, &slot[0]);
  const bool valid1 =
      got >= kHeaderRegionBytes && DecodeHeaderSlot(region + kHeaderSlotBytes, &slot[1]);
  if (!valid0 && !valid1) {
    uint64_t first_word = 0;
    if (got >= sizeof(first_word)) std::memcpy(&first_word, region, sizeof(first_word));
    if (first_word == kPageFileMagicV1) {
      return Status::NotSupported(
          "PageFile: '" + path +
          "' uses the unchecksummed v1 format, which this build no longer reads; "
          "rebuild the index to migrate it to v2");
    }
    if (first_word == kPageFileMagic) {
      return Status::Corruption("PageFile: '" + path +
                                "' has a v2 magic but no valid header slot "
                                "(both copies torn or corrupt)");
    }
    return Status::Corruption("PageFile: '" + path + "' is not a page file");
  }

  // The valid slot with the highest generation is the durable truth.
  int active;
  if (valid0 && valid1) {
    active = slot[1].generation > slot[0].generation ? 1 : 0;
  } else {
    active = valid1 ? 1 : 0;
  }
  const HeaderFields& h = slot[active];

  PageFile pf(std::move(f), path, h.page_bytes, h.num_pages, h.generation, active,
              h.user_root);
  C2LSH_ASSIGN_OR_RETURN(uint64_t size, pf.file_->Size());
  const uint64_t need =
      kHeaderRegionBytes + h.num_pages * static_cast<uint64_t>(pf.PhysicalPageBytes());
  if (size < need) {
    return Status::Corruption(
        "PageFile: '" + path + "' header claims " + std::to_string(h.num_pages) +
        " pages (" + std::to_string(need) + " bytes) but the file holds only " +
        std::to_string(size) + " bytes (truncated)");
  }
  return pf;
}

Status PageFile::WriteHeaderSlot(int slot, uint64_t generation) {
  uint8_t buf[kHeaderSlotBytes];
  EncodeHeaderSlot(buf, HeaderFields{kPageFileMagic, kPageFileVersion,
                                     static_cast<uint32_t>(page_bytes_), num_pages_,
                                     generation, user_root_});
  return RetryTransient(retry_policy_, &retry_stats_, [&] {
    return file_->WriteAt(slot == 0 ? 0 : kHeaderSlotBytes, buf, sizeof(buf));
  });
}

Status PageFile::CheckPageId(PageId id) const {
  if (id == 0 || id > num_pages_) {
    return Status::OutOfRange("PageFile: page " + std::to_string(id) + " of " +
                              std::to_string(num_pages_) + " in '" + path_ + "'");
  }
  return Status::OK();
}

Result<PageId> PageFile::AllocatePage() {
  const PageId id = num_pages_ + 1;
  scratch_.assign(PhysicalPageBytes(), 0);
  EncodePageFooter(scratch_.data() + page_bytes_, scratch_.data(), page_bytes_, id);
  C2LSH_RETURN_IF_ERROR(RetryTransient(retry_policy_, &retry_stats_, [&] {
    return file_->WriteAt(PageOffset(id), scratch_.data(), scratch_.size());
  }));
  Metrics().writes->Increment();
  ++num_pages_;
  return id;
}

Status PageFile::ReadPage(PageId id, void* buf, const QueryContext* ctx) const {
  obs::ScopedSpan read_span(obs::SpanSubsystem::kPageFile, "page_read",
                            ctx != nullptr ? ctx->trace_id : 0);
  C2LSH_RETURN_IF_ERROR(CheckPageId(id));
  const size_t phys = PhysicalPageBytes();
  scratch_.resize(phys);
  size_t got = 0;
  C2LSH_RETURN_IF_ERROR(RetryTransient(retry_policy_, &retry_stats_, ctx, [&] {
    return ReadFullyAt(*file_, PageOffset(id), scratch_.data(), phys, &got);
  }));
  Metrics().reads->Increment();
  if (got < phys) {
    Metrics().crc_failures->Increment();
    return Status::Corruption("PageFile: page " + std::to_string(id) + " of '" +
                              path_ + "' is truncated (" + std::to_string(got) +
                              " of " + std::to_string(phys) +
                              " bytes; torn write or truncated file)");
  }
  uint32_t stored_crc = 0, stored_id = 0;
  std::memcpy(&stored_crc, scratch_.data() + page_bytes_, sizeof(stored_crc));
  std::memcpy(&stored_id, scratch_.data() + page_bytes_ + sizeof(stored_crc),
              sizeof(stored_id));
  if (stored_id != static_cast<uint32_t>(id)) {
    Metrics().crc_failures->Increment();
    return Status::Corruption("PageFile: page " + std::to_string(id) + " of '" +
                              path_ + "' carries footer id " +
                              std::to_string(stored_id) +
                              " (misdirected or torn write)");
  }
  if (Crc32cUnmask(stored_crc) != Crc32c(scratch_.data(), page_bytes_)) {
    Metrics().crc_failures->Increment();
    return Status::Corruption("PageFile: checksum mismatch on page " +
                              std::to_string(id) + " of '" + path_ +
                              "' (torn write or bit corruption)");
  }
  std::memcpy(buf, scratch_.data(), page_bytes_);
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const void* buf) {
  obs::ScopedSpan write_span(obs::SpanSubsystem::kPageFile, "page_write");
  C2LSH_RETURN_IF_ERROR(CheckPageId(id));
  scratch_.resize(PhysicalPageBytes());
  std::memcpy(scratch_.data(), buf, page_bytes_);
  EncodePageFooter(scratch_.data() + page_bytes_, buf, page_bytes_, id);
  Metrics().writes->Increment();
  return RetryTransient(retry_policy_, &retry_stats_, [&] {
    return file_->WriteAt(PageOffset(id), scratch_.data(), scratch_.size());
  });
}

Status PageFile::Sync() {
  obs::ScopedSpan sync_span(obs::SpanSubsystem::kPageFile, "page_sync");
  // Data first: every page write must be durable before the header that
  // makes it reachable is published.
  C2LSH_RETURN_IF_ERROR(file_->Sync());
  const int target = 1 - active_slot_;
  const uint64_t next_generation = generation_ + 1;
  C2LSH_RETURN_IF_ERROR(WriteHeaderSlot(target, next_generation));
  C2LSH_RETURN_IF_ERROR(file_->Sync());
  active_slot_ = target;
  generation_ = next_generation;
  Metrics().syncs->Increment();
  return Status::OK();
}

}  // namespace c2lsh
