// page_model.h is header-only; this translation unit exists so the library
// target always has at least one object file and to host future out-of-line
// additions without touching the build graph.

#include "src/storage/page_model.h"

namespace c2lsh {}  // namespace c2lsh
