// Logical page model.
//
// C2LSH (SIGMOD'12) is presented as a disk-based index and reports *I/O cost*
// — the number of B-byte pages touched per query — as its primary efficiency
// metric. This repository keeps everything in memory (repro band: laptop-
// scale, in-memory) but preserves the metric by laying index structures out
// in logical 4KB pages and counting page touches. The count is a pure
// function of layout and access pattern, so it regenerates the paper's
// figures without a disk.

#pragma once
#ifndef C2LSH_STORAGE_PAGE_MODEL_H_
#define C2LSH_STORAGE_PAGE_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace c2lsh {

/// The page size used throughout (the paper's B = 4096 bytes).
inline constexpr size_t kDefaultPageBytes = 4096;

/// Translates byte/entry counts into page counts for a given page size.
class PageModel {
 public:
  explicit PageModel(size_t page_bytes = kDefaultPageBytes) : page_bytes_(page_bytes) {}

  size_t page_bytes() const { return page_bytes_; }

  /// Pages needed to hold `bytes` bytes (>= 1 when bytes > 0).
  size_t PagesForBytes(size_t bytes) const {
    return (bytes + page_bytes_ - 1) / page_bytes_;
  }

  /// Pages needed for `count` fixed-size entries packed contiguously.
  size_t PagesForEntries(size_t count, size_t entry_bytes) const {
    return PagesForBytes(count * entry_bytes);
  }

  /// How many fixed-size entries fit in one page.
  size_t EntriesPerPage(size_t entry_bytes) const {
    return entry_bytes == 0 ? 0 : page_bytes_ / entry_bytes;
  }

  /// Pages to read one d-dimensional float vector (a candidate
  /// verification = one random access of ceil(4d / B) pages).
  size_t PagesPerVector(size_t dim) const { return PagesForBytes(dim * sizeof(float)); }

 private:
  size_t page_bytes_;
};

/// Mutable per-query I/O accumulator. Index structures charge their page
/// touches here; the harness reads and resets it between queries.
class IoCounter {
 public:
  /// Pages touched while walking index structures (bucket runs, B-tree paths).
  void AddIndexPages(uint64_t n) { index_pages_ += n; }

  /// Pages touched fetching object vectors for candidate verification.
  void AddDataPages(uint64_t n) { data_pages_ += n; }

  uint64_t index_pages() const { return index_pages_; }
  uint64_t data_pages() const { return data_pages_; }
  uint64_t total_pages() const { return index_pages_ + data_pages_; }

  void Reset() {
    index_pages_ = 0;
    data_pages_ = 0;
  }

 private:
  uint64_t index_pages_ = 0;
  uint64_t data_pages_ = 0;
};

}  // namespace c2lsh

#endif  // C2LSH_STORAGE_PAGE_MODEL_H_
