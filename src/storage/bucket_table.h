// BucketTable: the physical hash table behind one base LSH function.
//
// C2LSH builds one table per base function and, at radius R, probes the run
// of R *consecutive* base buckets that form the query's level-R bucket
// (virtual rehashing). The table is therefore laid out as a bucket directory
// sorted by bucket id over a flat, bucket-contiguous entry array — an aligned
// range of bucket ids maps to one contiguous slice of entries, which is both
// cache-friendly in memory and sequential on the simulated disk.
//
// Dynamic inserts/deletes land in a small sorted overlay that is consulted
// alongside the flat run and can be folded in with Compact() — the classic
// main-file + delta organization of disk-based indexes.
//
// Concurrency: the table's entire state lives in one immutable Rep published
// through a shared_ptr guarded by an annotated Mutex. Readers take a
// Snapshot (one brief lock to copy the pointer) and then scan lock-free;
// mutators build a fresh Rep off to the side and swap the pointer (again one
// brief lock). Readers therefore NEVER block on a mutation — not even on a
// full Compact() — they simply keep scanning the Rep they pinned. Mutators
// are not serialized against each other here; the owning index holds its
// writer lock around them (see C2lshIndex).

#pragma once
#ifndef C2LSH_STORAGE_BUCKET_TABLE_H_
#define C2LSH_STORAGE_BUCKET_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/storage/page_model.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Signed base bucket id (projections are real-valued, so ids are signed).
using BucketId = int64_t;

/// One LSH hash table: bucket id -> list of object ids.
class BucketTable {
 private:
  struct DirEntry {
    BucketId bucket;
    uint32_t offset;  // first entry index in entries
    uint32_t count;
  };

  /// The compacted run: a directory sorted by bucket id over a flat,
  /// bucket-contiguous entry array. Immutable once built.
  struct Flat {
    std::vector<DirEntry> directory;
    std::vector<ObjectId> entries;

    /// Returns [begin, end) indexes into entries covering buckets in [lo, hi].
    std::pair<size_t, size_t> EntryRange(BucketId lo, BucketId hi) const;
  };

  /// One immutable version of the table: the shared flat run plus this
  /// version's overlay (sorted by bucket, insertion-ordered within a bucket)
  /// and two sorted id sets. Mutations copy-on-write the delta vectors but
  /// share the flat run, so an Insert costs O(overlay), not O(n).
  ///
  /// `tombstones` holds currently-deleted ids — it hides overlay entries
  /// and feeds NumTombstones. `flat_dead` holds ids whose FLAT-RUN entries
  /// are dead: every deleted id plus every reinserted one (whose live
  /// entries moved to the overlay, bucketed by the new vector). Keeping the
  /// union precomputed means each scanned entry checks exactly one set.
  struct Rep {
    std::shared_ptr<const Flat> flat;
    std::vector<std::pair<BucketId, ObjectId>> overlay;
    std::vector<ObjectId> tombstones;
    std::vector<ObjectId> flat_dead;

    bool IsDeleted(ObjectId id) const {
      return std::binary_search(tombstones.begin(), tombstones.end(), id);
    }
    bool IsDeadInFlat(ObjectId id) const {
      return std::binary_search(flat_dead.begin(), flat_dead.end(), id);
    }
  };

 public:
  BucketTable();

  // Movable so std::vector<BucketTable> works (moves happen only while the
  // owning index is being built or reassembled, single-threaded); the Mutex
  // pins each table in place otherwise, so the moved-into table constructs a
  // fresh one and adopts the source's current Rep.
  BucketTable(BucketTable&& other) noexcept;
  BucketTable& operator=(BucketTable&& other) noexcept;
  BucketTable(const BucketTable&) = delete;
  BucketTable& operator=(const BucketTable&) = delete;

  /// Builds the table from (bucket, object) pairs. Consumes the input
  /// (sorted in place). Duplicate pairs are kept as-is.
  static BucketTable Build(std::vector<std::pair<BucketId, ObjectId>> entries);

  /// A pinned, immutable view of the table. Scans on a Snapshot are
  /// wait-free with respect to concurrent Insert/Delete/Compact — they see
  /// exactly the state at snapshot() time. Cheap to take (one pointer copy
  /// under the lock); take one per table per query, not per probe.
  class Snapshot {
   public:
    /// Calls `fn(ObjectId)` for every object whose bucket id lies in
    /// [lo, hi] (inclusive), including overlay inserts and excluding deleted
    /// objects. Returns the number of objects visited.
    template <typename Fn>
    size_t ForEachInRange(BucketId lo, BucketId hi, Fn&& fn) const {
      size_t visited = 0;
      const Flat& flat = *rep_->flat;
      const auto [begin_idx, end_idx] = flat.EntryRange(lo, hi);
      for (size_t i = begin_idx; i < end_idx; ++i) {
        const ObjectId id = flat.entries[i];
        if (rep_->IsDeadInFlat(id)) continue;
        fn(id);
        ++visited;
      }
      for (auto it = OverlayLowerBound(lo); it != rep_->overlay.end() && it->first <= hi;
           ++it) {
        if (rep_->IsDeleted(it->second)) continue;
        fn(it->second);
        ++visited;
      }
      return visited;
    }

    /// Bulk ForEachInRange: appends every live object id in [lo, hi] with
    /// id < id_bound to *out, in the exact enumeration order of
    /// ForEachInRange (flat run first, then overlay), and returns the
    /// number of live entries visited (ids >= id_bound count as visited but
    /// are not appended — they are objects concurrent mutators published
    /// after the caller fixed its object count). The common case — a range
    /// of the flat run with no dead entries — is one branchless sequential
    /// copy of the contiguous entry slice, much cheaper than a per-entry
    /// callback with a deadness probe. Batched query scans
    /// (src/core/batch.cc) live on this path.
    size_t AppendRangeTo(BucketId lo, BucketId hi, size_t id_bound,
                         std::vector<ObjectId>* out) const {
      size_t visited = 0;
      const Flat& flat = *rep_->flat;
      const auto [begin_idx, end_idx] = flat.EntryRange(lo, hi);
      if (rep_->flat_dead.empty()) {
        // Every flat entry is live: copy the whole contiguous slice with a
        // branch-free bound filter (the write pointer advances only past
        // in-bound ids, so out-of-bound ids are overwritten in place).
        const size_t old_size = out->size();
        out->resize(old_size + (end_idx - begin_idx));
        ObjectId* w = out->data() + old_size;
        for (size_t i = begin_idx; i < end_idx; ++i) {
          const ObjectId id = flat.entries[i];
          *w = id;
          w += static_cast<size_t>(id) < id_bound ? 1 : 0;
        }
        out->resize(static_cast<size_t>(w - out->data()));
        visited += end_idx - begin_idx;
      } else {
        for (size_t i = begin_idx; i < end_idx; ++i) {
          const ObjectId id = flat.entries[i];
          if (rep_->IsDeadInFlat(id)) continue;
          if (static_cast<size_t>(id) < id_bound) out->push_back(id);
          ++visited;
        }
      }
      for (auto it = OverlayLowerBound(lo);
           it != rep_->overlay.end() && it->first <= hi; ++it) {
        if (rep_->IsDeleted(it->second)) continue;
        if (static_cast<size_t>(it->second) < id_bound) out->push_back(it->second);
        ++visited;
      }
      return visited;
    }

    /// Calls `fn(BucketId, ObjectId)` for every live entry (flat + overlay,
    /// tombstones skipped), in no particular order. Used by serialization
    /// and compaction.
    template <typename Fn>
    void ForEachEntry(Fn&& fn) const {
      const Flat& flat = *rep_->flat;
      for (const DirEntry& dir : flat.directory) {
        for (uint32_t i = 0; i < dir.count; ++i) {
          const ObjectId id = flat.entries[dir.offset + i];
          if (!rep_->IsDeadInFlat(id)) fn(dir.bucket, id);
        }
      }
      for (const auto& [bucket, id] : rep_->overlay) {
        if (!rep_->IsDeleted(id)) fn(bucket, id);
      }
    }

    /// Number of entries whose bucket id lies in [lo, hi] (deleted objects
    /// still occupy their slots until Compact()). Used for I/O accounting.
    size_t EntriesInRange(BucketId lo, BucketId hi) const;

    /// Simulated pages touched when reading the range [lo, hi]: one page for
    /// the directory descent plus the sequential entry pages.
    size_t PagesForRange(BucketId lo, BucketId hi, const PageModel& model) const;

    size_t num_buckets() const { return rep_->flat->directory.size(); }
    size_t num_entries() const {
      return rep_->flat->entries.size() + rep_->overlay.size();
    }
    size_t MaxBucketSize() const;
    size_t OverlayEntries() const { return rep_->overlay.size(); }
    size_t NumTombstones() const { return rep_->tombstones.size(); }
    size_t MemoryBytes() const;

    /// Largest live (non-tombstoned) object id, or -1 when the snapshot is
    /// empty of live entries. The index's Compact() uses this to shrink its
    /// object-count high-water after trailing deletes.
    long long MaxLiveId() const;

   private:
    friend class BucketTable;
    explicit Snapshot(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

    std::vector<std::pair<BucketId, ObjectId>>::const_iterator OverlayLowerBound(
        BucketId lo) const {
      return std::lower_bound(
          rep_->overlay.begin(), rep_->overlay.end(), lo,
          [](const std::pair<BucketId, ObjectId>& e, BucketId b) { return e.first < b; });
    }

    std::shared_ptr<const Rep> rep_;
  };

  /// Pins the current version. Thread-safe against every other method.
  Snapshot snapshot() const EXCLUDES(mu_);

  // Convenience passthroughs: each takes a fresh snapshot. Callers scanning
  // more than once per query should hold their own Snapshot instead.
  template <typename Fn>
  size_t ForEachInRange(BucketId lo, BucketId hi, Fn&& fn) const {
    return snapshot().ForEachInRange(lo, hi, std::forward<Fn>(fn));
  }
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    snapshot().ForEachEntry(std::forward<Fn>(fn));
  }
  size_t EntriesInRange(BucketId lo, BucketId hi) const {
    return snapshot().EntriesInRange(lo, hi);
  }
  size_t PagesForRange(BucketId lo, BucketId hi, const PageModel& model) const {
    return snapshot().PagesForRange(lo, hi, model);
  }
  size_t num_buckets() const { return snapshot().num_buckets(); }
  size_t num_entries() const { return snapshot().num_entries(); }
  size_t MaxBucketSize() const { return snapshot().MaxBucketSize(); }
  size_t OverlayEntries() const { return snapshot().OverlayEntries(); }
  size_t NumTombstones() const { return snapshot().NumTombstones(); }
  size_t MemoryBytes() const { return snapshot().MemoryBytes(); }

  /// Inserts a dynamic entry into the overlay. An insert is an upsert: it
  /// lifts any tombstone on `id`, drops stale overlay entries from an
  /// earlier insert of the same id, and hides the id's flat-run entries
  /// (bucketed by the superseded vector) until Compact rewrites the run —
  /// so a delete-then-reinsert is visible exactly once, never lost and
  /// never double-counted. Publishes a new version; in-flight Snapshots are
  /// unaffected. Concurrent mutators must be serialized by the caller (the
  /// index's writer lock).
  void Insert(BucketId bucket, ObjectId id) EXCLUDES(mu_);

  /// Marks an object deleted everywhere in this table (tombstone). Undone
  /// by a later Insert of the same id. Same publication contract as Insert.
  void Delete(ObjectId id) EXCLUDES(mu_);

  /// Folds overlay inserts and drops tombstoned entries, restoring the flat
  /// contiguous layout. The fold runs off to the side on a pinned snapshot;
  /// readers keep scanning the old version until the new one is published.
  void Compact() EXCLUDES(mu_);

 private:
  static std::shared_ptr<const Flat> BuildFlat(
      std::vector<std::pair<BucketId, ObjectId>> entries);

  std::shared_ptr<const Rep> CurrentRep() const EXCLUDES(mu_);
  void PublishRep(std::shared_ptr<const Rep> rep) EXCLUDES(mu_);

  mutable Mutex mu_;
  std::shared_ptr<const Rep> rep_ GUARDED_BY(mu_);  ///< never null
};

}  // namespace c2lsh

#endif  // C2LSH_STORAGE_BUCKET_TABLE_H_
