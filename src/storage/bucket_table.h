// BucketTable: the physical hash table behind one base LSH function.
//
// C2LSH builds one table per base function and, at radius R, probes the run
// of R *consecutive* base buckets that form the query's level-R bucket
// (virtual rehashing). The table is therefore laid out as a bucket directory
// sorted by bucket id over a flat, bucket-contiguous entry array — an aligned
// range of bucket ids maps to one contiguous slice of entries, which is both
// cache-friendly in memory and sequential on the simulated disk.
//
// Dynamic inserts/deletes land in a small sorted overlay (std::map) that is
// consulted alongside the flat run and can be folded in with Compact() —
// the classic main-file + delta organization of disk-based indexes.

#pragma once
#ifndef C2LSH_STORAGE_BUCKET_TABLE_H_
#define C2LSH_STORAGE_BUCKET_TABLE_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/storage/page_model.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Signed base bucket id (projections are real-valued, so ids are signed).
using BucketId = int64_t;

/// One LSH hash table: bucket id -> list of object ids.
class BucketTable {
 public:
  BucketTable() = default;

  /// Builds the table from (bucket, object) pairs. Consumes the input
  /// (sorted in place). Duplicate pairs are kept as-is.
  static BucketTable Build(std::vector<std::pair<BucketId, ObjectId>> entries);

  /// Calls `fn(ObjectId)` for every object whose bucket id lies in
  /// [lo, hi] (inclusive), including overlay inserts and excluding deleted
  /// objects. Returns the number of objects visited.
  template <typename Fn>
  size_t ForEachInRange(BucketId lo, BucketId hi, Fn&& fn) const {
    size_t visited = 0;
    const auto [begin_idx, end_idx] = EntryRange(lo, hi);
    for (size_t i = begin_idx; i < end_idx; ++i) {
      const ObjectId id = entries_[i];
      if (IsDeleted(id)) continue;
      fn(id);
      ++visited;
    }
    for (auto it = overlay_.lower_bound(lo); it != overlay_.end() && it->first <= hi; ++it) {
      for (ObjectId id : it->second) {
        if (IsDeleted(id)) continue;
        fn(id);
        ++visited;
      }
    }
    return visited;
  }

  /// Calls `fn(BucketId, ObjectId)` for every live entry (flat + overlay,
  /// tombstones skipped), in no particular order. Used by serialization.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const DirEntry& dir : directory_) {
      for (uint32_t i = 0; i < dir.count; ++i) {
        const ObjectId id = entries_[dir.offset + i];
        if (!IsDeleted(id)) fn(dir.bucket, id);
      }
    }
    for (const auto& [bucket, ids] : overlay_) {
      for (ObjectId id : ids) {
        if (!IsDeleted(id)) fn(bucket, id);
      }
    }
  }

  /// Number of entries whose bucket id lies in [lo, hi] (deleted objects
  /// still occupy their slots until Compact()). Used for I/O accounting.
  size_t EntriesInRange(BucketId lo, BucketId hi) const;

  /// Simulated pages touched when reading the range [lo, hi]: the directory
  /// probe is charged one page per `dir_pages` levels... simplified to a
  /// binary-search touch of ceil(log2(#buckets)) directory entries folded
  /// into one page, plus ceil(entries / entries_per_page) sequential entry
  /// pages (entries of a range are contiguous by construction).
  size_t PagesForRange(BucketId lo, BucketId hi, const PageModel& model) const;

  /// Inserts a dynamic entry into the overlay.
  void Insert(BucketId bucket, ObjectId id);

  /// Marks an object deleted everywhere in this table (tombstone).
  void Delete(ObjectId id);

  /// Folds overlay inserts and drops tombstoned entries, restoring the flat
  /// contiguous layout.
  void Compact();

  size_t num_buckets() const { return directory_.size(); }
  size_t num_entries() const;

  /// Size of the largest bucket (flat entries; overlay buckets counted
  /// separately from flat ones with the same id — diagnostics only).
  size_t MaxBucketSize() const;

  /// Entries sitting in the dynamic overlay (not yet compacted).
  size_t OverlayEntries() const;

  /// Approximate resident bytes (flat arrays + overlay), used by the
  /// index-size experiment.
  size_t MemoryBytes() const;

 private:
  struct DirEntry {
    BucketId bucket;
    uint32_t offset;  // first entry index in entries_
    uint32_t count;
  };

  /// Returns [begin, end) indexes into entries_ covering buckets in [lo, hi].
  std::pair<size_t, size_t> EntryRange(BucketId lo, BucketId hi) const;

  bool IsDeleted(ObjectId id) const;

  std::vector<DirEntry> directory_;  // sorted by bucket id
  std::vector<ObjectId> entries_;    // bucket-contiguous
  std::map<BucketId, std::vector<ObjectId>> overlay_;
  std::vector<ObjectId> tombstones_;  // sorted
};

}  // namespace c2lsh

#endif  // C2LSH_STORAGE_BUCKET_TABLE_H_
