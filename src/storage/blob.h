// Chained byte blobs over a BufferPool: arbitrary-length metadata (index
// headers, serialized directories) stored as a linked list of pages, each
// [next: u64][len: u32][payload]. Used by the disk-resident index for
// everything that is not a fixed-layout entry page.

#pragma once
#ifndef C2LSH_STORAGE_BLOB_H_
#define C2LSH_STORAGE_BLOB_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "src/storage/buffer_pool.h"
#include "src/util/result.h"

namespace c2lsh {

/// Writes `bytes` as a page chain; returns the first page id. Empty blobs
/// are valid (a single page with len 0).
Result<PageId> WriteBlob(BufferPool* pool, const std::vector<uint8_t>& bytes);

/// Reads a chain written by WriteBlob.
Result<std::vector<uint8_t>> ReadBlob(BufferPool* pool, PageId first);

/// Append-only byte buffer with trivially-copyable put/get helpers, used to
/// build blob payloads.
class ByteBuffer {
 public:
  template <typename T>
  void Put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const uint8_t*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }
  template <typename T>
  void PutArray(const T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + count * sizeof(T));
  }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

/// Sequential reader over a byte vector; Get returns false past the end.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>* bytes) : bytes_(bytes) {}

  template <typename T>
  bool Get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > bytes_->size()) return false;
    std::memcpy(v, bytes_->data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  template <typename T>
  bool GetArray(T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t total = count * sizeof(T);
    if (pos_ + total > bytes_->size()) return false;
    std::memcpy(data, bytes_->data() + pos_, total);
    pos_ += total;
    return true;
  }
  bool exhausted() const { return pos_ == bytes_->size(); }

 private:
  const std::vector<uint8_t>* bytes_;
  size_t pos_ = 0;
};

}  // namespace c2lsh

#endif  // C2LSH_STORAGE_BLOB_H_
