// BufferPool: an LRU page cache over a PageFile with pin/unpin semantics —
// the component that turns logical page accesses into *measured* I/O. The
// disk-resident index counts pool misses as its I/O cost, which experiment
// D1 compares against the analytic PageModel predictions.

#pragma once
#ifndef C2LSH_STORAGE_BUFFER_POOL_H_
#define C2LSH_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/storage/page_file.h"
#include "src/util/mutex.h"
#include "src/util/query_context.h"
#include "src/util/result.h"

namespace c2lsh {

/// Cumulative pool statistics.
struct BufferPoolStats {
  uint64_t hits = 0;        ///< page found resident
  uint64_t misses = 0;      ///< page read from the file
  uint64_t evictions = 0;   ///< resident pages displaced
  uint64_t writebacks = 0;  ///< dirty pages flushed on eviction/FlushAll

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// An LRU buffer pool.
///
/// Thread-safety: all pool *metadata* operations (Fetch, NewPage, FlushAll,
/// pin/unpin via PageHandle, stats) are safe to call from multiple threads;
/// a single internal Mutex serializes them, including the PageFile I/O they
/// trigger. The *bytes* of a pinned page are not latched: concurrent readers
/// of one page are fine, but a writer (mutable_data) requires external
/// synchronization against other accessors of that same page, and FlushAll
/// must not run concurrently with in-place writers (it snapshots frame bytes
/// while the writer scribbles). The race-lane hammer test
/// (race_stress_test.cc) exercises exactly this contract under TSan.
///
/// Move is NOT thread-safe: both pools must be externally quiescent (no
/// concurrent operations, no live PageHandles on the source).
class BufferPool {
 public:
  /// `capacity_pages` frames are allocated eagerly. Must be >= 1.
  static Result<BufferPool> Create(PageFile* file, size_t capacity_pages);

  BufferPool(BufferPool&& other) noexcept;
  BufferPool& operator=(BufferPool&& other) noexcept;

  /// RAII pin: while alive, the page stays resident and its bytes stay
  /// valid. Unpins on destruction.
  class PageHandle {
   public:
    PageHandle() = default;
    PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
    PageHandle& operator=(PageHandle&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        frame_ = other.frame_;
        data_ = other.data_;
        other.pool_ = nullptr;
        other.data_ = nullptr;
      }
      return *this;
    }
    PageHandle(const PageHandle&) = delete;
    PageHandle& operator=(const PageHandle&) = delete;
    ~PageHandle() { Release(); }

    const uint8_t* data() const { return data_; }
    /// Mutable access marks the frame dirty.
    uint8_t* mutable_data();
    bool valid() const { return pool_ != nullptr; }

   private:
    friend class BufferPool;
    PageHandle(BufferPool* pool, size_t frame, uint8_t* data)
        : pool_(pool), frame_(frame), data_(data) {}
    void Release();

    BufferPool* pool_ = nullptr;
    size_t frame_ = 0;
    // Cached at pin time (under the pool mutex); stable while pinned, so
    // readers never need to touch guarded pool state.
    uint8_t* data_ = nullptr;
  };

  /// Pins page `id`, reading it from the file on a miss. Fails with
  /// ResourceExhausted-like Internal error if every frame is pinned. `ctx`
  /// (nullable) is forwarded to PageFile::ReadPage so transient-fault
  /// retries on a miss respect the query's deadline and cancellation.
  Result<PageHandle> Fetch(PageId id, const QueryContext* ctx = nullptr)
      EXCLUDES(mu_);

  /// Allocates a fresh page in the file and pins it (zeroed, dirty).
  Result<PageHandle> NewPage(PageId* id_out) EXCLUDES(mu_);

  /// Writes all dirty frames back and syncs the file.
  Status FlushAll() EXCLUDES(mu_);

  /// Snapshot of the counters (by value: a const reference would race with
  /// concurrent updates under the mutex).
  BufferPoolStats stats() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = BufferPoolStats();
  }
  size_t capacity() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return frames_.size();
  }
  /// Number of frames currently pinned (> 0 pins). Zero once every
  /// PageHandle has been released — the pin-leak assertion used by the
  /// cancellation tests.
  size_t PinnedFrames() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    size_t n = 0;
    for (const Frame& f : frames_) {
      if (f.pins > 0) ++n;
    }
    return n;
  }
  size_t page_bytes() const { return file_->page_bytes(); }

 private:
  struct Frame {
    PageId page = 0;  // 0 = empty
    uint32_t pins = 0;
    bool dirty = false;
    std::vector<uint8_t> data;
    std::list<size_t>::iterator lru_pos;  // valid iff unpinned & occupied
    bool in_lru = false;
  };

  BufferPool(PageFile* file, size_t capacity);

  /// Finds a frame for a new page: empty frame, else LRU-evict.
  Result<size_t> GrabFrame() REQUIRES(mu_);
  void Unpin(size_t frame) EXCLUDES(mu_);
  void MarkDirty(size_t frame) EXCLUDES(mu_);

  PageFile* file_;  // not owned; set at construction, immutable afterwards

  mutable Mutex mu_;
  std::vector<Frame> frames_ GUARDED_BY(mu_);
  std::unordered_map<PageId, size_t> page_to_frame_ GUARDED_BY(mu_);
  std::list<size_t> lru_ GUARDED_BY(mu_);  // front = most recent
  BufferPoolStats stats_ GUARDED_BY(mu_);
};

}  // namespace c2lsh

#endif  // C2LSH_STORAGE_BUFFER_POOL_H_
