#include "src/storage/bucket_table.h"

namespace c2lsh {

BucketTable::BucketTable() {
  // The shared empty version every default-constructed table starts from
  // (immutable, so one instance serves the whole process).
  static const std::shared_ptr<const Rep> kEmpty = [] {
    auto rep = std::make_shared<Rep>();
    rep->flat = std::make_shared<Flat>();
    return rep;
  }();
  rep_ = kEmpty;
}

BucketTable::BucketTable(BucketTable&& other) noexcept { rep_ = other.CurrentRep(); }

BucketTable& BucketTable::operator=(BucketTable&& other) noexcept {
  if (this != &other) PublishRep(other.CurrentRep());
  return *this;
}

std::shared_ptr<const BucketTable::Rep> BucketTable::CurrentRep() const {
  MutexLock lock(&mu_);
  return rep_;
}

void BucketTable::PublishRep(std::shared_ptr<const Rep> rep) {
  MutexLock lock(&mu_);
  rep_ = std::move(rep);
}

BucketTable::Snapshot BucketTable::snapshot() const { return Snapshot(CurrentRep()); }

std::shared_ptr<const BucketTable::Flat> BucketTable::BuildFlat(
    std::vector<std::pair<BucketId, ObjectId>> raw) {
  std::sort(raw.begin(), raw.end());
  auto flat = std::make_shared<Flat>();
  flat->entries.reserve(raw.size());
  for (size_t i = 0; i < raw.size();) {
    const BucketId bucket = raw[i].first;
    const size_t start = flat->entries.size();
    size_t j = i;
    while (j < raw.size() && raw[j].first == bucket) {
      flat->entries.push_back(raw[j].second);
      ++j;
    }
    flat->directory.push_back(
        DirEntry{bucket, static_cast<uint32_t>(start),
                 static_cast<uint32_t>(flat->entries.size() - start)});
    i = j;
  }
  return flat;
}

BucketTable BucketTable::Build(std::vector<std::pair<BucketId, ObjectId>> raw) {
  BucketTable t;
  auto rep = std::make_shared<Rep>();
  rep->flat = BuildFlat(std::move(raw));
  t.PublishRep(std::move(rep));
  return t;
}

std::pair<size_t, size_t> BucketTable::Flat::EntryRange(BucketId lo, BucketId hi) const {
  if (directory.empty() || lo > hi) return {0, 0};
  const auto first = std::lower_bound(
      directory.begin(), directory.end(), lo,
      [](const DirEntry& e, BucketId b) { return e.bucket < b; });
  if (first == directory.end() || first->bucket > hi) return {0, 0};
  const auto last = std::upper_bound(
      directory.begin(), directory.end(), hi,
      [](BucketId b, const DirEntry& e) { return b < e.bucket; });
  const DirEntry& tail = *(last - 1);
  return {first->offset, static_cast<size_t>(tail.offset) + tail.count};
}

size_t BucketTable::Snapshot::EntriesInRange(BucketId lo, BucketId hi) const {
  const auto [b, e] = rep_->flat->EntryRange(lo, hi);
  size_t count = e - b;
  for (auto it = OverlayLowerBound(lo); it != rep_->overlay.end() && it->first <= hi;
       ++it) {
    ++count;
  }
  return count;
}

size_t BucketTable::Snapshot::PagesForRange(BucketId lo, BucketId hi,
                                            const PageModel& model) const {
  const size_t entries = EntriesInRange(lo, hi);
  // One page for the directory descent (the directory of one table is small
  // and its hot path is cached/pinned; the paper charges the same way), plus
  // the sequential entry pages.
  size_t pages = 1;
  if (entries > 0) {
    pages += model.PagesForEntries(entries, sizeof(ObjectId));
  }
  return pages;
}

size_t BucketTable::Snapshot::MaxBucketSize() const {
  size_t max_size = 0;
  for (const DirEntry& dir : rep_->flat->directory) {
    max_size = std::max(max_size, static_cast<size_t>(dir.count));
  }
  // Overlay buckets counted separately from flat ones with the same id —
  // diagnostics only.
  size_t run = 0;
  for (size_t i = 0; i < rep_->overlay.size(); ++i) {
    run = (i > 0 && rep_->overlay[i].first == rep_->overlay[i - 1].first) ? run + 1 : 1;
    max_size = std::max(max_size, run);
  }
  return max_size;
}

size_t BucketTable::Snapshot::MemoryBytes() const {
  return rep_->flat->directory.size() * sizeof(DirEntry) +
         rep_->flat->entries.size() * sizeof(ObjectId) +
         rep_->overlay.size() * sizeof(std::pair<BucketId, ObjectId>) +
         (rep_->tombstones.size() + rep_->flat_dead.size()) * sizeof(ObjectId);
}

long long BucketTable::Snapshot::MaxLiveId() const {
  long long max_id = -1;
  for (const ObjectId id : rep_->flat->entries) {
    if (!rep_->IsDeadInFlat(id)) max_id = std::max(max_id, static_cast<long long>(id));
  }
  for (const auto& [bucket, id] : rep_->overlay) {
    if (!rep_->IsDeleted(id)) max_id = std::max(max_id, static_cast<long long>(id));
  }
  return max_id;
}

void BucketTable::Insert(BucketId bucket, ObjectId id) {
  const std::shared_ptr<const Rep> cur = CurrentRep();
  auto next = std::make_shared<Rep>(*cur);  // shares flat, copies deltas
  // Upsert: every earlier trace of the id dies before the new entry lands —
  // the tombstone is lifted, stale overlay entries from a previous insert
  // are removed, and the flat-run entries stay dead via flat_dead (their
  // bucket came from the superseded vector; resurrecting them would place
  // the id in stale buckets and double-count collisions after a same-vector
  // reinsert).
  const auto t =
      std::lower_bound(next->tombstones.begin(), next->tombstones.end(), id);
  if (t != next->tombstones.end() && *t == id) next->tombstones.erase(t);
  next->overlay.erase(std::remove_if(next->overlay.begin(), next->overlay.end(),
                                     [id](const std::pair<BucketId, ObjectId>& e) {
                                       return e.second == id;
                                     }),
                      next->overlay.end());
  const auto d = std::lower_bound(next->flat_dead.begin(), next->flat_dead.end(), id);
  if (d == next->flat_dead.end() || *d != id) next->flat_dead.insert(d, id);
  const auto pos = std::upper_bound(
      next->overlay.begin(), next->overlay.end(), bucket,
      [](BucketId b, const std::pair<BucketId, ObjectId>& e) { return b < e.first; });
  next->overlay.insert(pos, {bucket, id});
  PublishRep(std::move(next));
}

void BucketTable::Delete(ObjectId id) {
  const std::shared_ptr<const Rep> cur = CurrentRep();
  const auto it = std::lower_bound(cur->tombstones.begin(), cur->tombstones.end(), id);
  if (it != cur->tombstones.end() && *it == id) return;  // already tombstoned
  const auto idx = it - cur->tombstones.begin();
  auto next = std::make_shared<Rep>(*cur);
  next->tombstones.insert(next->tombstones.begin() + idx, id);
  const auto d = std::lower_bound(next->flat_dead.begin(), next->flat_dead.end(), id);
  if (d == next->flat_dead.end() || *d != id) next->flat_dead.insert(d, id);
  PublishRep(std::move(next));
}

void BucketTable::Compact() {
  const std::shared_ptr<const Rep> cur = CurrentRep();
  std::vector<std::pair<BucketId, ObjectId>> raw;
  raw.reserve(cur->flat->entries.size() + cur->overlay.size());
  for (const DirEntry& dir : cur->flat->directory) {
    for (uint32_t i = 0; i < dir.count; ++i) {
      const ObjectId id = cur->flat->entries[dir.offset + i];
      if (!cur->IsDeadInFlat(id)) raw.emplace_back(dir.bucket, id);
    }
  }
  for (const auto& [bucket, id] : cur->overlay) {
    if (!cur->IsDeleted(id)) raw.emplace_back(bucket, id);
  }
  auto next = std::make_shared<Rep>();
  next->flat = BuildFlat(std::move(raw));
  PublishRep(std::move(next));
}

}  // namespace c2lsh
