#include "src/storage/bucket_table.h"

#include <algorithm>

namespace c2lsh {

BucketTable BucketTable::Build(std::vector<std::pair<BucketId, ObjectId>> raw) {
  std::sort(raw.begin(), raw.end());
  BucketTable t;
  t.entries_.reserve(raw.size());
  for (size_t i = 0; i < raw.size();) {
    const BucketId bucket = raw[i].first;
    const size_t start = t.entries_.size();
    size_t j = i;
    while (j < raw.size() && raw[j].first == bucket) {
      t.entries_.push_back(raw[j].second);
      ++j;
    }
    t.directory_.push_back(DirEntry{bucket, static_cast<uint32_t>(start),
                                    static_cast<uint32_t>(t.entries_.size() - start)});
    i = j;
  }
  return t;
}

std::pair<size_t, size_t> BucketTable::EntryRange(BucketId lo, BucketId hi) const {
  if (directory_.empty() || lo > hi) return {0, 0};
  const auto first = std::lower_bound(
      directory_.begin(), directory_.end(), lo,
      [](const DirEntry& e, BucketId b) { return e.bucket < b; });
  if (first == directory_.end() || first->bucket > hi) return {0, 0};
  const auto last = std::upper_bound(
      directory_.begin(), directory_.end(), hi,
      [](BucketId b, const DirEntry& e) { return b < e.bucket; });
  const DirEntry& tail = *(last - 1);
  return {first->offset, static_cast<size_t>(tail.offset) + tail.count};
}

size_t BucketTable::EntriesInRange(BucketId lo, BucketId hi) const {
  const auto [b, e] = EntryRange(lo, hi);
  size_t count = e - b;
  for (auto it = overlay_.lower_bound(lo); it != overlay_.end() && it->first <= hi; ++it) {
    count += it->second.size();
  }
  return count;
}

size_t BucketTable::PagesForRange(BucketId lo, BucketId hi, const PageModel& model) const {
  const size_t entries = EntriesInRange(lo, hi);
  // One page for the directory descent (the directory of one table is small
  // and its hot path is cached/pinned; the paper charges the same way), plus
  // the sequential entry pages.
  size_t pages = 1;
  if (entries > 0) {
    pages += model.PagesForEntries(entries, sizeof(ObjectId));
  }
  return pages;
}

void BucketTable::Insert(BucketId bucket, ObjectId id) { overlay_[bucket].push_back(id); }

void BucketTable::Delete(ObjectId id) {
  const auto it = std::lower_bound(tombstones_.begin(), tombstones_.end(), id);
  if (it == tombstones_.end() || *it != id) {
    tombstones_.insert(it, id);
  }
}

bool BucketTable::IsDeleted(ObjectId id) const {
  return std::binary_search(tombstones_.begin(), tombstones_.end(), id);
}

void BucketTable::Compact() {
  std::vector<std::pair<BucketId, ObjectId>> raw;
  raw.reserve(num_entries());
  for (const DirEntry& dir : directory_) {
    for (uint32_t i = 0; i < dir.count; ++i) {
      const ObjectId id = entries_[dir.offset + i];
      if (!IsDeleted(id)) raw.emplace_back(dir.bucket, id);
    }
  }
  for (const auto& [bucket, ids] : overlay_) {
    for (ObjectId id : ids) {
      if (!IsDeleted(id)) raw.emplace_back(bucket, id);
    }
  }
  *this = Build(std::move(raw));
}

size_t BucketTable::MaxBucketSize() const {
  size_t max_size = 0;
  for (const DirEntry& dir : directory_) {
    max_size = std::max(max_size, static_cast<size_t>(dir.count));
  }
  for (const auto& [bucket, ids] : overlay_) {
    max_size = std::max(max_size, ids.size());
  }
  return max_size;
}

size_t BucketTable::OverlayEntries() const {
  size_t n = 0;
  for (const auto& [bucket, ids] : overlay_) n += ids.size();
  return n;
}

size_t BucketTable::num_entries() const {
  size_t n = entries_.size();
  for (const auto& [bucket, ids] : overlay_) n += ids.size();
  return n;
}

size_t BucketTable::MemoryBytes() const {
  size_t bytes = directory_.size() * sizeof(DirEntry) + entries_.size() * sizeof(ObjectId) +
                 tombstones_.size() * sizeof(ObjectId);
  for (const auto& [bucket, ids] : overlay_) {
    bytes += sizeof(bucket) + ids.size() * sizeof(ObjectId) + 3 * sizeof(void*);
  }
  return bytes;
}

}  // namespace c2lsh
