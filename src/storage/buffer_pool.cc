#include "src/storage/buffer_pool.h"

#include "src/obs/registry.h"
#include "src/obs/span.h"

namespace c2lsh {

namespace {
// Registry handles resolved once per process. The pool also keeps its own
// per-instance BufferPoolStats (snapshot semantics, resettable per query);
// the registry counters are the process-wide running totals.
struct PoolMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* writebacks;
};

const PoolMetrics& Metrics() {
  static const PoolMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    PoolMetrics mm;
    mm.hits = r.GetCounter("buffer_pool_hits_total", "BufferPool fetches served from a frame");
    mm.misses = r.GetCounter("buffer_pool_misses_total",
                             "BufferPool fetches that read from the PageFile");
    mm.evictions = r.GetCounter("buffer_pool_evictions_total",
                                "frames evicted to make room for another page");
    mm.writebacks = r.GetCounter("buffer_pool_writebacks_total",
                                 "dirty frames written back to the PageFile");
    return mm;
  }();
  return m;
}
}  // namespace

uint8_t* BufferPool::PageHandle::mutable_data() {
  pool_->MarkDirty(frame_);
  return data_;
}

void BufferPool::PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(PageFile* file, size_t capacity) : file_(file) {
  frames_.resize(capacity);
  for (Frame& f : frames_) {
    f.data.resize(file_->page_bytes());
  }
}

// Moves run while both pools are externally quiescent (see header), so they
// access guarded members without holding either mutex.
BufferPool::BufferPool(BufferPool&& other) noexcept NO_THREAD_SAFETY_ANALYSIS
    : file_(other.file_),
      frames_(std::move(other.frames_)),
      page_to_frame_(std::move(other.page_to_frame_)),
      lru_(std::move(other.lru_)),
      stats_(other.stats_) {}

BufferPool& BufferPool::operator=(BufferPool&& other) noexcept
    NO_THREAD_SAFETY_ANALYSIS {
  if (this != &other) {
    file_ = other.file_;
    frames_ = std::move(other.frames_);
    page_to_frame_ = std::move(other.page_to_frame_);
    lru_ = std::move(other.lru_);
    stats_ = other.stats_;
  }
  return *this;
}

Result<BufferPool> BufferPool::Create(PageFile* file, size_t capacity_pages) {
  if (file == nullptr) {
    return Status::InvalidArgument("BufferPool: file is null");
  }
  if (capacity_pages == 0) {
    return Status::InvalidArgument("BufferPool: capacity must be >= 1 page");
  }
  return BufferPool(file, capacity_pages);
}

Result<size_t> BufferPool::GrabFrame() {
  // Prefer an empty frame.
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].page == 0) return i;
  }
  // Evict the least-recently-used unpinned frame. The writeback I/O runs
  // under mu_; eviction only ever touches unpinned frames, so no live
  // PageHandle can be scribbling on the bytes being written back (the
  // scribbler's Unpin happened under mu_, giving happens-before).
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const size_t frame = *it;
    Frame& f = frames_[frame];
    if (f.pins != 0) continue;
    if (f.dirty) {
      obs::ScopedSpan writeback_span(obs::SpanSubsystem::kBufferPool,
                                     "pool_writeback");
      C2LSH_RETURN_IF_ERROR(file_->WritePage(f.page, f.data.data()));
      ++stats_.writebacks;
      Metrics().writebacks->Increment();
      f.dirty = false;
    }
    page_to_frame_.erase(f.page);
    lru_.erase(std::next(it).base());
    f.in_lru = false;
    f.page = 0;
    ++stats_.evictions;
    Metrics().evictions->Increment();
    return frame;
  }
  return Status::Internal("BufferPool: all frames pinned — pool too small for the "
                          "working set of one operation");
}

Result<BufferPool::PageHandle> BufferPool::Fetch(PageId id,
                                                 const QueryContext* ctx) {
  const uint64_t trace_id = ctx != nullptr ? ctx->trace_id : 0;
  MutexLock lock(&mu_);
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    ++stats_.hits;
    Metrics().hits->Increment();
    obs::TraceInstant(obs::SpanSubsystem::kBufferPool, "pool_hit", trace_id,
                      static_cast<double>(id));
    Frame& f = frames_[it->second];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pins;
    return PageHandle(this, it->second, f.data.data());
  }
  ++stats_.misses;
  Metrics().misses->Increment();
  obs::ScopedSpan miss_span(obs::SpanSubsystem::kBufferPool, "pool_miss",
                            trace_id);
  C2LSH_ASSIGN_OR_RETURN(size_t frame, GrabFrame());
  Frame& f = frames_[frame];
  // analyze-ok(lock-order): documented single-latch design (class comment) — the miss read runs under mu_ so a frame is never visible half-filled.
  C2LSH_RETURN_IF_ERROR(file_->ReadPage(id, f.data.data(), ctx));
  f.page = id;
  f.pins = 1;
  f.dirty = false;
  page_to_frame_[id] = frame;
  return PageHandle(this, frame, f.data.data());
}

Result<BufferPool::PageHandle> BufferPool::NewPage(PageId* id_out) {
  MutexLock lock(&mu_);
  // analyze-ok(lock-order): documented single-latch design (class comment) — allocation mutates the file header, which shares mu_ with the frame table.
  C2LSH_ASSIGN_OR_RETURN(PageId id, file_->AllocatePage());
  C2LSH_ASSIGN_OR_RETURN(size_t frame, GrabFrame());
  Frame& f = frames_[frame];
  std::fill(f.data.begin(), f.data.end(), 0);
  f.page = id;
  f.pins = 1;
  f.dirty = true;
  page_to_frame_[id] = frame;
  if (id_out != nullptr) *id_out = id;
  return PageHandle(this, frame, f.data.data());
}

void BufferPool::MarkDirty(size_t frame) {
  MutexLock lock(&mu_);
  frames_[frame].dirty = true;
}

void BufferPool::Unpin(size_t frame) {
  MutexLock lock(&mu_);
  Frame& f = frames_[frame];
  if (f.pins > 0) --f.pins;
  if (f.pins == 0 && f.page != 0 && !f.in_lru) {
    lru_.push_front(frame);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  MutexLock lock(&mu_);
  for (Frame& f : frames_) {
    if (f.page != 0 && f.dirty) {
      // analyze-ok(lock-order): documented single-latch design — FlushAll must write a stable snapshot of every dirty frame, so writeback holds mu_.
      C2LSH_RETURN_IF_ERROR(file_->WritePage(f.page, f.data.data()));
      ++stats_.writebacks;
      Metrics().writebacks->Increment();
      f.dirty = false;
    }
  }
  // analyze-ok(lock-order): the fsync is ordered after the writebacks above and callers expect FlushAll to be atomic w.r.t. concurrent NewPage/Fetch.
  return file_->Sync();
}

}  // namespace c2lsh
