#include "src/storage/wal.h"

#include <cstring>

#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/storage/blob.h"
#include "src/util/crc32.h"

namespace c2lsh {

namespace {

// Mutation-durability counters, resolved once per process. Appends are real
// I/O, so the relaxed atomic increment is noise.
struct WalMetrics {
  obs::Counter* appended;
  obs::Counter* syncs;
  obs::Counter* replay_applied;
  obs::Counter* replay_skipped;
  obs::Counter* replay_truncated;
};

const WalMetrics& Metrics() {
  static const WalMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    return WalMetrics{
        r.GetCounter("wal_records_appended_total",
                     "Mutation records appended to a write-ahead log"),
        r.GetCounter("wal_syncs_total", "WAL durability barriers completed"),
        r.GetCounter("wal_replay_applied_total",
                     "WAL records re-applied during recovery replay"),
        r.GetCounter("wal_replay_skipped_total",
                     "WAL records skipped at replay (lsn already folded by "
                     "a compaction)"),
        r.GetCounter("wal_replay_truncated_total",
                     "Torn or corrupt WAL tails truncated at replay"),
    };
  }();
  return m;
}

constexpr uint64_t kWalMagic = 0xC25DE17A'0000B001ULL;
constexpr uint32_t kWalVersion = 1;
constexpr size_t kWalHeaderBytes = 16;
constexpr size_t kFrameHeaderBytes = sizeof(uint32_t) + sizeof(uint32_t);
// Body = lsn + type + (id [+ dim + floats]); anything larger than
// WriteAheadLog::kMaxBodyBytes is garbage masquerading as a length field.
constexpr size_t kMaxBodyBytes = WriteAheadLog::kMaxBodyBytes;

void EncodeWalHeader(uint8_t* buf) {
  std::memset(buf, 0, kWalHeaderBytes);
  std::memcpy(buf, &kWalMagic, sizeof(kWalMagic));
  std::memcpy(buf + sizeof(kWalMagic), &kWalVersion, sizeof(kWalVersion));
}

bool DecodeWalHeader(const uint8_t* buf) {
  uint64_t magic = 0;
  uint32_t version = 0;
  std::memcpy(&magic, buf, sizeof(magic));
  std::memcpy(&version, buf + sizeof(magic), sizeof(version));
  return magic == kWalMagic && version == kWalVersion;
}

}  // namespace

Result<WriteAheadLog> WriteAheadLog::Open(std::string path, Env* env) {
  if (env == nullptr) env = Env::Default();
  if (env->FileExists(path)) {
    C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> f, env->OpenFile(path));
    // The append offset is provisional until Replay() walks the frames.
    return WriteAheadLog(std::move(f), std::move(path), env, kWalHeaderBytes);
  }
  C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> f, env->NewFile(path));
  WriteAheadLog wal(std::move(f), std::move(path), env, kWalHeaderBytes);
  uint8_t header[kWalHeaderBytes];
  EncodeWalHeader(header);
  C2LSH_RETURN_IF_ERROR(RetryTransient(wal.retry_policy_, &wal.retry_stats_, [&] {
    return wal.file_->WriteAt(0, header, sizeof(header));
  }));
  return wal;
}

Result<WriteAheadLog::ReplayStats> WriteAheadLog::Replay(
    uint64_t applied_lsn, const std::function<Status(const Record&)>& fn) {
  obs::ScopedSpan replay_span(obs::SpanSubsystem::kWal, "wal_replay");
  ReplayStats stats;
  C2LSH_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  std::vector<uint8_t> bytes(size);
  if (size > 0) {
    size_t got = 0;
    // ReadFullyAt: a transient mid-file short read must not shrink `bytes`
    // here — the resize below would silently drop acknowledged records off
    // the tail, which replay would then treat as a (legal) truncation.
    C2LSH_RETURN_IF_ERROR(RetryTransient(retry_policy_, &retry_stats_, [&] {
      return ReadFullyAt(*file_, 0, bytes.data(), bytes.size(), &got);
    }));
    bytes.resize(got);
  }

  if (bytes.size() < kWalHeaderBytes || !DecodeWalHeader(bytes.data())) {
    // A torn or missing header can only come from a crash at creation (or a
    // file that was never a WAL): nothing in it was ever acknowledged, so
    // start over with a fresh header. Anything beyond a well-formed header
    // is a truncation event.
    if (!bytes.empty()) stats.truncated = 1;
    uint8_t header[kWalHeaderBytes];
    EncodeWalHeader(header);
    C2LSH_RETURN_IF_ERROR(RetryTransient(retry_policy_, &retry_stats_, [&] {
      return file_->WriteAt(0, header, sizeof(header));
    }));
    append_offset_ = kWalHeaderBytes;
    Metrics().replay_truncated->Increment(stats.truncated);
    return stats;
  }

  size_t off = kWalHeaderBytes;
  while (off + kFrameHeaderBytes <= bytes.size()) {
    uint32_t stored_crc = 0, len = 0;
    std::memcpy(&stored_crc, bytes.data() + off, sizeof(stored_crc));
    std::memcpy(&len, bytes.data() + off + sizeof(stored_crc), sizeof(len));
    if (len == 0 || len > kMaxBodyBytes ||
        off + kFrameHeaderBytes + len > bytes.size()) {
      break;  // torn tail
    }
    const uint8_t* body = bytes.data() + off + kFrameHeaderBytes;
    if (Crc32cUnmask(stored_crc) != Crc32c(body, len)) break;

    std::vector<uint8_t> body_bytes(body, body + len);
    ByteReader r(&body_bytes);
    Record rec;
    uint8_t type = 0;
    if (!r.Get(&rec.lsn) || !r.Get(&type)) break;
    // Monotonicity is part of the format: a frame that repeats or rewinds
    // the LSN can only be a resurrected stale write — cut it off.
    if (rec.lsn <= last_lsn_) break;
    if (type == static_cast<uint8_t>(RecordType::kInsert)) {
      rec.type = RecordType::kInsert;
      uint32_t dim = 0;
      // Bound dim by the frame's actual length, not just kMaxBodyBytes: the
      // resize below happens before GetArray validates, so a forged dim in
      // a short frame must not buy a large zero-filled allocation.
      if (!r.Get(&rec.id) || !r.Get(&dim) || dim > len / sizeof(float)) break;
      rec.vec.resize(dim);
      if (!r.GetArray(rec.vec.data(), rec.vec.size()) || !r.exhausted()) break;
    } else if (type == static_cast<uint8_t>(RecordType::kDelete)) {
      rec.type = RecordType::kDelete;
      if (!r.Get(&rec.id) || !r.exhausted()) break;
    } else {
      break;  // unknown record type: written by no version of this code
    }

    last_lsn_ = rec.lsn;
    if (rec.lsn <= applied_lsn) {
      ++stats.skipped;
    } else {
      C2LSH_RETURN_IF_ERROR(fn(rec));
      ++stats.applied;
    }
    off += kFrameHeaderBytes + len;
  }

  if (off < bytes.size()) stats.truncated = 1;
  append_offset_ = off;
  Metrics().replay_applied->Increment(stats.applied);
  Metrics().replay_skipped->Increment(stats.skipped);
  Metrics().replay_truncated->Increment(stats.truncated);
  return stats;
}

Status WriteAheadLog::Append(const Record& rec) {
  obs::ScopedSpan append_span(obs::SpanSubsystem::kWal, "wal_append");
  if (rec.lsn <= last_lsn_) {
    return Status::InvalidArgument(
        "WAL: append lsn " + std::to_string(rec.lsn) +
        " does not advance past " + std::to_string(last_lsn_));
  }
  // Mirror of the encoding below; checked before the body is built so a
  // hopeless record costs no allocation. Replay() truncates any frame whose
  // length exceeds kMaxBodyBytes as a torn tail — writing one would silently
  // drop this acknowledged record and everything appended after it.
  const size_t body_bytes =
      sizeof(rec.lsn) + sizeof(uint8_t) + sizeof(rec.id) +
      (rec.type == RecordType::kInsert
           ? sizeof(uint32_t) + rec.vec.size() * sizeof(float)
           : 0);
  if (body_bytes > kMaxBodyBytes) {
    return Status::InvalidArgument(
        "WAL: record body of " + std::to_string(body_bytes) +
        " bytes exceeds the replayable maximum of " +
        std::to_string(kMaxBodyBytes) + " (vector too large for one record)");
  }
  ByteBuffer body;
  body.Put(rec.lsn);
  body.Put(static_cast<uint8_t>(rec.type));
  body.Put(rec.id);
  if (rec.type == RecordType::kInsert) {
    body.Put(static_cast<uint32_t>(rec.vec.size()));
    body.PutArray(rec.vec.data(), rec.vec.size());
  }
  const std::vector<uint8_t>& b = body.bytes();
  const uint32_t crc = Crc32cMask(Crc32c(b.data(), b.size()));
  const uint32_t len = static_cast<uint32_t>(b.size());
  scratch_.resize(kFrameHeaderBytes + b.size());
  std::memcpy(scratch_.data(), &crc, sizeof(crc));
  std::memcpy(scratch_.data() + sizeof(crc), &len, sizeof(len));
  std::memcpy(scratch_.data() + kFrameHeaderBytes, b.data(), b.size());
  C2LSH_RETURN_IF_ERROR(RetryTransient(retry_policy_, &retry_stats_, [&] {
    return file_->WriteAt(append_offset_, scratch_.data(), scratch_.size());
  }));
  append_offset_ += scratch_.size();
  last_lsn_ = rec.lsn;
  Metrics().appended->Increment();
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  obs::ScopedSpan sync_span(obs::SpanSubsystem::kWal, "wal_sync");
  C2LSH_RETURN_IF_ERROR(RetryTransient(retry_policy_, &retry_stats_, [&] {
    return file_->Sync();
  }));
  Metrics().syncs->Increment();
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  // Physical reset: delete + recreate, never a logical rewind — a shorter
  // log sharing bytes with an older, longer one could let a stale valid
  // frame reappear past the new tail. last_lsn_ is retained so LSNs keep
  // increasing across the reset (replay idempotence leans on that).
  file_.reset();
  C2LSH_RETURN_IF_ERROR(env_->DeleteFile(path_));
  C2LSH_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> f, env_->NewFile(path_));
  file_ = std::move(f);
  append_offset_ = kWalHeaderBytes;
  uint8_t header[kWalHeaderBytes];
  EncodeWalHeader(header);
  return RetryTransient(retry_policy_, &retry_stats_, [&] {
    return file_->WriteAt(0, header, sizeof(header));
  });
}

}  // namespace c2lsh
