#include "src/storage/disk_bucket_table.h"

#include <algorithm>
#include <cstring>

namespace c2lsh {

namespace {
constexpr uint32_t kDirMagic = 0xD15CD1A7;
}  // namespace

Result<DiskBucketTable> DiskBucketTable::Build(
    BufferPool* pool, std::vector<std::pair<BucketId, ObjectId>> entries) {
  if (pool == nullptr) {
    return Status::InvalidArgument("DiskBucketTable: pool is null");
  }
  std::sort(entries.begin(), entries.end());

  // Directory over the sorted pairs.
  std::vector<DirEntry> directory;
  for (size_t i = 0; i < entries.size();) {
    const BucketId bucket = entries[i].first;
    size_t j = i;
    while (j < entries.size() && entries[j].first == bucket) ++j;
    directory.push_back(DirEntry{bucket, static_cast<uint32_t>(i),
                                 static_cast<uint32_t>(j - i)});
    i = j;
  }

  // Entry pages: a contiguous run of page ids (NewPage allocates
  // sequentially; assert the contiguity we rely on).
  const size_t per_page = pool->page_bytes() / sizeof(ObjectId);
  PageId first_entry_page = 0;
  for (size_t off = 0; off < entries.size(); off += per_page) {
    PageId id = 0;
    C2LSH_ASSIGN_OR_RETURN(BufferPool::PageHandle page, pool->NewPage(&id));
    if (first_entry_page == 0) {
      first_entry_page = id;
    } else if (id != first_entry_page + off / per_page) {
      return Status::Internal("DiskBucketTable: entry pages not contiguous");
    }
    auto* ids = reinterpret_cast<ObjectId*>(page.mutable_data());
    const size_t count = std::min(per_page, entries.size() - off);
    for (size_t i = 0; i < count; ++i) {
      ids[i] = entries[off + i].second;
    }
  }
  if (entries.empty()) {
    // Still allocate a (never-read) anchor so first_entry_page is valid.
    PageId id = 0;
    C2LSH_ASSIGN_OR_RETURN(BufferPool::PageHandle page, pool->NewPage(&id));
    (void)page;
    first_entry_page = id;
  }

  // Directory blob: [magic][num_entries][first_entry_page][dir size][dir...].
  ByteBuffer buf;
  buf.Put(kDirMagic);
  buf.Put(static_cast<uint64_t>(entries.size()));
  buf.Put(static_cast<uint64_t>(first_entry_page));
  buf.Put(static_cast<uint64_t>(directory.size()));
  buf.PutArray(directory.data(), directory.size());
  C2LSH_ASSIGN_OR_RETURN(PageId root, WriteBlob(pool, buf.bytes()));

  return DiskBucketTable(pool, root, first_entry_page, entries.size(),
                         std::move(directory));
}

Result<DiskBucketTable> DiskBucketTable::Load(BufferPool* pool, PageId root) {
  if (pool == nullptr) {
    return Status::InvalidArgument("DiskBucketTable: pool is null");
  }
  C2LSH_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadBlob(pool, root));
  ByteReader r(&bytes);
  uint32_t magic = 0;
  uint64_t num_entries = 0, first_entry_page = 0, dir_size = 0;
  if (!r.Get(&magic) || magic != kDirMagic || !r.Get(&num_entries) ||
      !r.Get(&first_entry_page) || !r.Get(&dir_size)) {
    return Status::Corruption("DiskBucketTable: bad directory blob");
  }
  std::vector<DirEntry> directory(dir_size);
  if (!r.GetArray(directory.data(), directory.size()) || !r.exhausted()) {
    return Status::Corruption("DiskBucketTable: truncated directory blob");
  }
  return DiskBucketTable(pool, root, first_entry_page,
                         static_cast<size_t>(num_entries), std::move(directory));
}

std::pair<size_t, size_t> DiskBucketTable::EntryRange(BucketId lo, BucketId hi) const {
  if (directory_.empty() || lo > hi) return {0, 0};
  const auto first = std::lower_bound(
      directory_.begin(), directory_.end(), lo,
      [](const DirEntry& e, BucketId b) { return e.bucket < b; });
  if (first == directory_.end() || first->bucket > hi) return {0, 0};
  const auto last = std::upper_bound(
      directory_.begin(), directory_.end(), hi,
      [](BucketId b, const DirEntry& e) { return b < e.bucket; });
  const DirEntry& tail = *(last - 1);
  return {first->offset, static_cast<size_t>(tail.offset) + tail.count};
}

size_t DiskBucketTable::EntriesInRange(BucketId lo, BucketId hi) const {
  const auto [b, e] = EntryRange(lo, hi);
  size_t count = e - b;
  for (auto it = std::lower_bound(
           overlay_.begin(), overlay_.end(), lo,
           [](const std::pair<BucketId, ObjectId>& o, BucketId b2) {
             return o.first < b2;
           });
       it != overlay_.end() && it->first <= hi; ++it) {
    ++count;
  }
  return count;
}

bool DiskBucketTable::IsDeleted(ObjectId id) const {
  return std::binary_search(tombstones_.begin(), tombstones_.end(), id);
}

bool DiskBucketTable::IsDeadInRun(ObjectId id) const {
  return std::binary_search(run_dead_.begin(), run_dead_.end(), id);
}

void DiskBucketTable::OverlayInsert(BucketId bucket, ObjectId id) {
  // Upsert: every earlier trace of the id dies before the new entry lands.
  // The tombstone is lifted (a reinserted id is live again), stale overlay
  // entries from a previous insert are physically removed, and the id's
  // base-run entries stay dead via run_dead_ — their bucket was computed
  // from the superseded vector, so resurrecting them would place the id in
  // stale buckets and double-count collisions after a same-vector reinsert.
  const auto t = std::lower_bound(tombstones_.begin(), tombstones_.end(), id);
  if (t != tombstones_.end() && *t == id) tombstones_.erase(t);
  overlay_.erase(std::remove_if(overlay_.begin(), overlay_.end(),
                                [id](const std::pair<BucketId, ObjectId>& o) {
                                  return o.second == id;
                                }),
                 overlay_.end());
  const auto d = std::lower_bound(run_dead_.begin(), run_dead_.end(), id);
  if (d == run_dead_.end() || *d != id) run_dead_.insert(d, id);
  const auto pos = std::upper_bound(
      overlay_.begin(), overlay_.end(), bucket,
      [](BucketId b, const std::pair<BucketId, ObjectId>& o) { return b < o.first; });
  overlay_.insert(pos, {bucket, id});
}

void DiskBucketTable::OverlayDelete(ObjectId id) {
  const auto it = std::lower_bound(tombstones_.begin(), tombstones_.end(), id);
  if (it == tombstones_.end() || *it != id) tombstones_.insert(it, id);
  const auto d = std::lower_bound(run_dead_.begin(), run_dead_.end(), id);
  if (d == run_dead_.end() || *d != id) run_dead_.insert(d, id);
}

Result<size_t> DiskBucketTable::ForEachInRange(
    BucketId lo, BucketId hi, const std::function<void(ObjectId)>& fn,
    const QueryContext* ctx) const {
  const auto [begin_idx, end_idx] = EntryRange(lo, hi);
  const size_t per_page = EntriesPerPage();
  size_t visited = 0;
  for (size_t page_idx = begin_idx / per_page;
       begin_idx < end_idx && page_idx * per_page < end_idx; ++page_idx) {
    // Page boundaries are the scan's checkpoints: each iteration may cost a
    // real disk read, so an expired context stops before paying for the next
    // page and the caller sees a clean partial count.
    if (ctx != nullptr && ctx->CheckNow() != Termination::kNone) return visited;
    const PageId id = first_entry_page_ + page_idx;
    C2LSH_ASSIGN_OR_RETURN(BufferPool::PageHandle page, pool_->Fetch(id, ctx));
    const auto* ids = reinterpret_cast<const ObjectId*>(page.data());
    const size_t page_start = page_idx * per_page;
    const size_t from = std::max(begin_idx, page_start) - page_start;
    const size_t to = std::min(end_idx, page_start + per_page) - page_start;
    for (size_t i = from; i < to; ++i) {
      if (IsDeadInRun(ids[i])) continue;
      fn(ids[i]);
      ++visited;
    }
  }
  // Overlay inserts after the base run, in bucket order — the same scan
  // order BucketTable::Snapshot::ForEachInRange produces, so the two index
  // modes verify candidates in the same sequence.
  for (auto it = std::lower_bound(
           overlay_.begin(), overlay_.end(), lo,
           [](const std::pair<BucketId, ObjectId>& o, BucketId b) {
             return o.first < b;
           });
       it != overlay_.end() && it->first <= hi; ++it) {
    if (IsDeleted(it->second)) continue;
    fn(it->second);
    ++visited;
  }
  return visited;
}

Status DiskBucketTable::ForEachEntry(
    const std::function<void(BucketId, ObjectId)>& fn) const {
  // The base run is bucket-contiguous over [0, num_entries_), so the scan
  // walks it one page at a time — each entry page is fetched (and its pool
  // frame looked up) exactly once — while a directory cursor labels every
  // index with its bucket.
  const size_t per_page = EntriesPerPage();
  auto dir = directory_.begin();
  for (size_t idx = 0; idx < num_entries_;) {
    const PageId page_id = first_entry_page_ + idx / per_page;
    C2LSH_ASSIGN_OR_RETURN(BufferPool::PageHandle page, pool_->Fetch(page_id));
    const auto* ids = reinterpret_cast<const ObjectId*>(page.data());
    const size_t page_end = std::min(num_entries_, (idx / per_page + 1) * per_page);
    for (; idx < page_end; ++idx) {
      while (dir != directory_.end() &&
             idx >= static_cast<size_t>(dir->offset) + dir->count) {
        ++dir;
      }
      if (dir == directory_.end() || idx < dir->offset) {
        // A loaded directory whose spans don't contiguously cover
        // [0, num_entries_) (possible only from a corrupt blob that still
        // parsed) must not be walked off the end or mislabel a bucket.
        return Status::Corruption(
            "DiskBucketTable: directory does not cover the entry run");
      }
      const ObjectId oid = ids[idx % per_page];
      if (!IsDeadInRun(oid)) fn(dir->bucket, oid);
    }
  }
  for (const auto& [bucket, oid] : overlay_) {
    if (!IsDeleted(oid)) fn(bucket, oid);
  }
  return Status::OK();
}

}  // namespace c2lsh
