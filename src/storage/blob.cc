#include "src/storage/blob.h"

#include <algorithm>
#include <cstring>

namespace c2lsh {

namespace {
constexpr size_t kChainHeader = sizeof(uint64_t) + sizeof(uint32_t);
}  // namespace

Result<PageId> WriteBlob(BufferPool* pool, const std::vector<uint8_t>& bytes) {
  if (pool == nullptr) {
    return Status::InvalidArgument("WriteBlob: pool is null");
  }
  const size_t payload_cap = pool->page_bytes() - kChainHeader;

  PageId first = 0;
  size_t offset = 0;
  BufferPool::PageHandle prev_handle;  // kept pinned so next-ptr can be patched
  do {
    PageId id = 0;
    C2LSH_ASSIGN_OR_RETURN(BufferPool::PageHandle page, pool->NewPage(&id));
    if (first == 0) {
      first = id;
    } else {
      std::memcpy(prev_handle.mutable_data(), &id, sizeof(id));  // patch next
    }
    const uint32_t len =
        static_cast<uint32_t>(std::min(payload_cap, bytes.size() - offset));
    uint8_t* data = page.mutable_data();
    const uint64_t next = 0;  // patched by the following iteration if any
    std::memcpy(data, &next, sizeof(next));
    std::memcpy(data + sizeof(next), &len, sizeof(len));
    if (len > 0) {
      std::memcpy(data + kChainHeader, bytes.data() + offset, len);
    }
    offset += len;
    prev_handle = std::move(page);
  } while (offset < bytes.size());
  return first;
}

Result<std::vector<uint8_t>> ReadBlob(BufferPool* pool, PageId first) {
  if (pool == nullptr) {
    return Status::InvalidArgument("ReadBlob: pool is null");
  }
  const size_t payload_cap = pool->page_bytes() - kChainHeader;
  std::vector<uint8_t> out;
  PageId id = first;
  size_t guard = 0;
  while (id != 0) {
    if (++guard > (1u << 24)) {
      return Status::Corruption("ReadBlob: page chain cycle detected");
    }
    C2LSH_ASSIGN_OR_RETURN(BufferPool::PageHandle page, pool->Fetch(id));
    const uint8_t* data = page.data();
    uint64_t next = 0;
    uint32_t len = 0;
    std::memcpy(&next, data, sizeof(next));
    std::memcpy(&len, data + sizeof(next), sizeof(len));
    if (len > payload_cap) {
      return Status::Corruption("ReadBlob: implausible chunk length");
    }
    out.insert(out.end(), data + kChainHeader, data + kChainHeader + len);
    id = next;
  }
  return out;
}

}  // namespace c2lsh
