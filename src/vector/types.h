// Small value types shared by every index implementation.

#pragma once
#ifndef C2LSH_VECTOR_TYPES_H_
#define C2LSH_VECTOR_TYPES_H_

#include <cstdint>
#include <vector>

namespace c2lsh {

/// Identifier of an object inside a Dataset: its row index.
using ObjectId = uint32_t;

/// A search hit: the object and its *exact* distance to the query (all
/// indexes in this library verify candidates with true distances before
/// returning them).
struct Neighbor {
  ObjectId id = 0;
  float dist = 0.0f;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.dist == b.dist;
  }
};

/// Orders by distance, breaking ties by id so result lists are deterministic.
struct NeighborLess {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
};

/// Top-k result list, sorted ascending by distance.
using NeighborList = std::vector<Neighbor>;

}  // namespace c2lsh

#endif  // C2LSH_VECTOR_TYPES_H_
