// SIMD kernel layer with runtime dispatch.
//
// The dense-float inner loops that dominate C2LSH's cost — the m p-stable
// projections per hashed vector and the L2/L1 verification of every
// candidate — all funnel through the kernel table below. Per-ISA
// implementations live in isolated translation units compiled with the
// matching -m flags (simd_avx2.cc, simd_avx512.cc on x86-64; simd_neon.cc on
// aarch64; the scalar reference in simd.cc is always compiled, with no
// special flags), and the running process picks the best table its CPU
// supports exactly once, at first use.
//
// Contracts every implementation must honor:
//
//  * Alignment: kernels accept arbitrarily aligned pointers (every load is
//    an unaligned load). Callers that can provide kSimdAlignment-aligned
//    rows (FloatMatrix, PStableFamily's packed projection matrix) get the
//    fast cache-line-coalesced path for free; nobody is required to.
//  * Accumulation: all reductions accumulate in double, like the scalar
//    reference — results differ from scalar only by floating-point
//    reassociation (tested to tight tolerances in simd_test.cc).
//  * Row/vector exactness: dot_rows(rows, n, stride, d, v, out) must produce
//    out[r] bit-identical to dot(rows + r*stride, v, d) *of the same table*,
//    and dot itself must be exactly commutative in its two arguments. This
//    is what lets PStableFamily::BucketAll (packed matrix-vector pass) match
//    per-function PStableHash::Bucket exactly, bucket boundaries included.
//    The multi-query form extends the same contract one axis further:
//    dot_rows_multi(rows, n, stride, d, queries, nq, qstride, out) must
//    produce out[r * nq + q] bit-identical to
//    dot(rows + r*stride, queries + q*qstride, d) of the same table, for
//    every (row, query) pair — so a batched projection pass buckets every
//    query exactly as its own serial BucketAll would.
//
// Selection order: AVX-512 > AVX2 > NEON > scalar, overridable for testing
// with the environment variable C2LSH_SIMD=scalar|avx2|avx512|neon (an
// unavailable choice falls back to the best supported table) or in-process
// with ForceIsa(). Building with -DC2LSH_DISABLE_SIMD=ON compiles only the
// scalar table, so the fallback path can be exercised under any sanitizer.

#pragma once
#ifndef C2LSH_VECTOR_SIMD_H_
#define C2LSH_VECTOR_SIMD_H_

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

namespace c2lsh {
namespace simd {

/// Instruction-set targets a kernel table can be built for.
enum class Isa {
  kScalar = 0,  ///< portable reference, always available
  kAvx2 = 1,    ///< x86-64 AVX2 + FMA
  kAvx512 = 2,  ///< x86-64 AVX-512F
  kNeon = 3,    ///< aarch64 Advanced SIMD
};

std::string_view IsaName(Isa isa);

/// Parses an ISA name ("scalar", "avx2", "avx512", "neon"); nullopt when the
/// name is unknown. Used for the C2LSH_SIMD environment override.
std::optional<Isa> IsaFromName(std::string_view name);

/// One ISA's kernel table. Every pointer is non-null in a published table.
struct Kernels {
  /// sum_i (a[i] - b[i])^2
  double (*squared_l2)(const float* a, const float* b, size_t d);
  /// sum_i |a[i] - b[i]|
  double (*l1)(const float* a, const float* b, size_t d);
  /// sum_i a[i] * b[i] — exactly commutative in (a, b).
  double (*dot)(const float* a, const float* b, size_t d);
  /// sum_i a[i]^2
  double (*squared_norm)(const float* a, size_t d);
  /// One fused pass filling *dot = a.b, *norm_a = a.a, *norm_b = b.b — the
  /// angular-distance kernel reads both arrays once instead of three times.
  void (*dot_and_norms)(const float* a, const float* b, size_t d, double* dot,
                        double* norm_a, double* norm_b);
  /// Blocked matrix-vector product: out[r] = dot(rows + r*stride, v, d) for
  /// r in [0, num_rows), bit-identical to this table's dot per row (see the
  /// exactness contract above). `stride >= d`, in floats; padding lanes are
  /// never read. The backbone of packed BucketAll (all m projections in one
  /// pass over the query) and of blocked multi-row build hashing.
  void (*dot_rows)(const float* rows, size_t num_rows, size_t stride, size_t d,
                   const float* v, double* out);
  /// Query-major blocked matrix-matrix product:
  /// out[r * num_queries + q] = dot(rows + r*stride, queries + q*qstride, d),
  /// bit-identical to this table's dot per (row, query) pair (see the
  /// exactness contract above). Each matrix row is streamed once per query
  /// block instead of once per query — the backbone of batched BucketAll
  /// (all m projections of a whole query batch in one pass over the packed
  /// projection matrix). `stride >= d` and `qstride >= d`, in floats;
  /// padding lanes are never read.
  void (*dot_rows_multi)(const float* rows, size_t num_rows, size_t stride,
                         size_t d, const float* queries, size_t num_queries,
                         size_t qstride, double* out);
};

/// The table for a specific ISA, or nullptr when that ISA is not compiled in
/// or not supported by the host CPU. KernelsFor(Isa::kScalar) never fails.
const Kernels* KernelsFor(Isa isa);

/// Every ISA reachable on this host (always at least kScalar), best last.
std::vector<Isa> SupportedIsas();

/// The dispatch table in effect: resolved once at first use from CPU feature
/// detection and the C2LSH_SIMD environment override, until ForceIsa().
const Kernels& Active();
Isa ActiveIsa();

/// Re-points Active()/ActiveIsa() at `isa` (for tests and benchmarks that
/// sweep every reachable target). Returns false — leaving the active table
/// unchanged — when the ISA is unavailable on this host. Thread-safe, but
/// kernels already dispatched by concurrent callers finish on the old table.
bool ForceIsa(Isa isa);

namespace detail {
// Per-TU table accessors. Each returns nullptr when its TU was compiled
// without the matching target support. Only KernelsFor should call these.
const Kernels* GetScalarKernels();
const Kernels* GetAvx2Kernels();
const Kernels* GetAvx512Kernels();
const Kernels* GetNeonKernels();
}  // namespace detail

}  // namespace simd
}  // namespace c2lsh

#endif  // C2LSH_VECTOR_SIMD_H_
