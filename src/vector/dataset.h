// Dataset: a named, immutable collection of vectors plus the statistics the
// experiment harness prints (mirroring the statistics table every LSH paper
// leads its evaluation with).

#pragma once
#ifndef C2LSH_VECTOR_DATASET_H_
#define C2LSH_VECTOR_DATASET_H_

#include <string>

#include "src/util/result.h"
#include "src/vector/matrix.h"
#include "src/vector/types.h"

namespace c2lsh {

/// An immutable vector collection with a display name. The matrix row index
/// is the ObjectId used by every index in the library.
class Dataset {
 public:
  Dataset() = default;

  /// Wraps a matrix. `name` is used in experiment output.
  static Result<Dataset> Create(std::string name, FloatMatrix vectors);

  const std::string& name() const { return name_; }
  size_t size() const { return vectors_.num_rows(); }
  size_t dim() const { return vectors_.dim(); }
  const FloatMatrix& vectors() const { return vectors_; }

  /// Pointer to object `id`'s vector.
  const float* object(ObjectId id) const { return vectors_.row(id); }

  /// Summary statistics used by dataset tables and tests.
  struct Stats {
    size_t n = 0;
    size_t dim = 0;
    double mean_norm = 0.0;    ///< average L2 norm of the vectors
    double max_abs_coord = 0;  ///< largest |coordinate| (for quantization checks)
  };
  Stats ComputeStats() const;

 private:
  Dataset(std::string name, FloatMatrix vectors)
      : name_(std::move(name)), vectors_(std::move(vectors)) {}

  std::string name_;
  FloatMatrix vectors_;
};

}  // namespace c2lsh

#endif  // C2LSH_VECTOR_DATASET_H_
