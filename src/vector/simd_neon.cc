// aarch64 Advanced SIMD (NEON) kernel table. NEON is architecturally
// mandatory on aarch64, so this TU needs no extra -m flags and no runtime
// feature check; src/vector/CMakeLists.txt simply includes it on aarch64
// builds and defines C2LSH_SIMD_HAVE_NEON.
//
// NEON has no 4-wide double registers, so each 4-float group widens into two
// float64x2 lanes; 8 floats per iteration land in four accumulators. Same
// contracts as the other tables (simd.h): double accumulation, unaligned
// loads, dot_rows bit-identical per row to dot via the shared DotBody.

#include "src/vector/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

namespace c2lsh {
namespace simd {
namespace detail {
namespace {

struct Pd4 {  // four floats widened to two double lanes
  float64x2_t lo;
  float64x2_t hi;
};

inline Pd4 LoadPd(const float* p) {
  const float32x4_t q = vld1q_f32(p);
  return Pd4{vcvt_f64_f32(vget_low_f32(q)), vcvt_high_f64_f32(q)};
}

inline double HSum2(float64x2_t x, float64x2_t y) {
  return vaddvq_f64(vaddq_f64(x, y));
}

// 8 floats per iteration into four independent accumulators; scalar tail.
// Keep the loop/finalization structure in lockstep with DotRows below.
inline double DotBody(const float* a, const float* b, size_t d) {
  float64x2_t acc0 = vdupq_n_f64(0.0), acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0), acc3 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const Pd4 a0 = LoadPd(a + i), b0 = LoadPd(b + i);
    const Pd4 a1 = LoadPd(a + i + 4), b1 = LoadPd(b + i + 4);
    acc0 = vfmaq_f64(acc0, a0.lo, b0.lo);
    acc1 = vfmaq_f64(acc1, a0.hi, b0.hi);
    acc2 = vfmaq_f64(acc2, a1.lo, b1.lo);
    acc3 = vfmaq_f64(acc3, a1.hi, b1.hi);
  }
  double tail = 0.0;
  for (; i < d; ++i) tail += static_cast<double>(a[i]) * b[i];
  return HSum2(acc0, acc1) + HSum2(acc2, acc3) + tail;
}

double NeonSquaredL2(const float* a, const float* b, size_t d) {
  float64x2_t acc0 = vdupq_n_f64(0.0), acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0), acc3 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const Pd4 a0 = LoadPd(a + i), b0 = LoadPd(b + i);
    const Pd4 a1 = LoadPd(a + i + 4), b1 = LoadPd(b + i + 4);
    const float64x2_t d0 = vsubq_f64(a0.lo, b0.lo);
    const float64x2_t d1 = vsubq_f64(a0.hi, b0.hi);
    const float64x2_t d2 = vsubq_f64(a1.lo, b1.lo);
    const float64x2_t d3 = vsubq_f64(a1.hi, b1.hi);
    acc0 = vfmaq_f64(acc0, d0, d0);
    acc1 = vfmaq_f64(acc1, d1, d1);
    acc2 = vfmaq_f64(acc2, d2, d2);
    acc3 = vfmaq_f64(acc3, d3, d3);
  }
  double tail = 0.0;
  for (; i < d; ++i) {
    const double di = static_cast<double>(a[i]) - b[i];
    tail += di * di;
  }
  return HSum2(acc0, acc1) + HSum2(acc2, acc3) + tail;
}

double NeonL1(const float* a, const float* b, size_t d) {
  float64x2_t acc0 = vdupq_n_f64(0.0), acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0), acc3 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const Pd4 a0 = LoadPd(a + i), b0 = LoadPd(b + i);
    const Pd4 a1 = LoadPd(a + i + 4), b1 = LoadPd(b + i + 4);
    acc0 = vaddq_f64(acc0, vabsq_f64(vsubq_f64(a0.lo, b0.lo)));
    acc1 = vaddq_f64(acc1, vabsq_f64(vsubq_f64(a0.hi, b0.hi)));
    acc2 = vaddq_f64(acc2, vabsq_f64(vsubq_f64(a1.lo, b1.lo)));
    acc3 = vaddq_f64(acc3, vabsq_f64(vsubq_f64(a1.hi, b1.hi)));
  }
  double tail = 0.0;
  for (; i < d; ++i) {
    tail += std::fabs(static_cast<double>(a[i]) - b[i]);
  }
  return HSum2(acc0, acc1) + HSum2(acc2, acc3) + tail;
}

double NeonDot(const float* a, const float* b, size_t d) { return DotBody(a, b, d); }

double NeonSquaredNorm(const float* a, size_t d) {
  float64x2_t acc0 = vdupq_n_f64(0.0), acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0), acc3 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const Pd4 a0 = LoadPd(a + i);
    const Pd4 a1 = LoadPd(a + i + 4);
    acc0 = vfmaq_f64(acc0, a0.lo, a0.lo);
    acc1 = vfmaq_f64(acc1, a0.hi, a0.hi);
    acc2 = vfmaq_f64(acc2, a1.lo, a1.lo);
    acc3 = vfmaq_f64(acc3, a1.hi, a1.hi);
  }
  double tail = 0.0;
  for (; i < d; ++i) {
    const double ai = a[i];
    tail += ai * ai;
  }
  return HSum2(acc0, acc1) + HSum2(acc2, acc3) + tail;
}

void NeonDotAndNorms(const float* a, const float* b, size_t d, double* dot,
                     double* norm_a, double* norm_b) {
  float64x2_t accd0 = vdupq_n_f64(0.0), accd1 = vdupq_n_f64(0.0);
  float64x2_t acca0 = vdupq_n_f64(0.0), acca1 = vdupq_n_f64(0.0);
  float64x2_t accb0 = vdupq_n_f64(0.0), accb1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const Pd4 av = LoadPd(a + i);
    const Pd4 bv = LoadPd(b + i);
    accd0 = vfmaq_f64(accd0, av.lo, bv.lo);
    accd1 = vfmaq_f64(accd1, av.hi, bv.hi);
    acca0 = vfmaq_f64(acca0, av.lo, av.lo);
    acca1 = vfmaq_f64(acca1, av.hi, av.hi);
    accb0 = vfmaq_f64(accb0, bv.lo, bv.lo);
    accb1 = vfmaq_f64(accb1, bv.hi, bv.hi);
  }
  double td = 0.0, ta = 0.0, tb = 0.0;
  for (; i < d; ++i) {
    const double ai = a[i];
    const double bi = b[i];
    td += ai * bi;
    ta += ai * ai;
    tb += bi * bi;
  }
  *dot = HSum2(accd0, accd1) + td;
  *norm_a = HSum2(acca0, acca1) + ta;
  *norm_b = HSum2(accb0, accb1) + tb;
}

void NeonDotRows(const float* rows, size_t num_rows, size_t stride, size_t d,
                 const float* v, double* out) {
  size_t r = 0;
  // Two rows per pass share each load of v (NEON's 32 q-registers hold two
  // rows' four-accumulator sets comfortably); every row keeps DotBody's
  // exact accumulator structure, so out[r] == DotBody(row_r, v, d) bitwise.
  for (; r + 2 <= num_rows; r += 2) {
    const float* r0 = rows + (r + 0) * stride;
    const float* r1 = rows + (r + 1) * stride;
    float64x2_t a00 = vdupq_n_f64(0.0), a01 = vdupq_n_f64(0.0);
    float64x2_t a02 = vdupq_n_f64(0.0), a03 = vdupq_n_f64(0.0);
    float64x2_t a10 = vdupq_n_f64(0.0), a11 = vdupq_n_f64(0.0);
    float64x2_t a12 = vdupq_n_f64(0.0), a13 = vdupq_n_f64(0.0);
    size_t i = 0;
    for (; i + 8 <= d; i += 8) {
      const Pd4 v0 = LoadPd(v + i);
      const Pd4 v1 = LoadPd(v + i + 4);
      const Pd4 x0 = LoadPd(r0 + i), x1 = LoadPd(r0 + i + 4);
      const Pd4 y0 = LoadPd(r1 + i), y1 = LoadPd(r1 + i + 4);
      a00 = vfmaq_f64(a00, x0.lo, v0.lo);
      a01 = vfmaq_f64(a01, x0.hi, v0.hi);
      a02 = vfmaq_f64(a02, x1.lo, v1.lo);
      a03 = vfmaq_f64(a03, x1.hi, v1.hi);
      a10 = vfmaq_f64(a10, y0.lo, v0.lo);
      a11 = vfmaq_f64(a11, y0.hi, v0.hi);
      a12 = vfmaq_f64(a12, y1.lo, v1.lo);
      a13 = vfmaq_f64(a13, y1.hi, v1.hi);
    }
    double t0 = 0.0, t1 = 0.0;
    for (; i < d; ++i) {
      const double vi = v[i];
      t0 += static_cast<double>(r0[i]) * vi;
      t1 += static_cast<double>(r1[i]) * vi;
    }
    out[r + 0] = HSum2(a00, a01) + HSum2(a02, a03) + t0;
    out[r + 1] = HSum2(a10, a11) + HSum2(a12, a13) + t1;
  }
  for (; r < num_rows; ++r) out[r] = DotBody(rows + r * stride, v, d);
}

void NeonDotRowsMulti(const float* rows, size_t num_rows, size_t stride,
                      size_t d, const float* queries, size_t num_queries,
                      size_t qstride, double* out) {
  // Query-major blocking: two queries per pass share each load of the row
  // (NEON's 32 q-registers hold two queries' four-accumulator sets plus the
  // shared row lanes comfortably); every (row, query) pair keeps DotBody's
  // exact accumulator structure, so out[r * num_queries + q] ==
  // DotBody(row_r, query_q, d) bitwise.
  for (size_t r = 0; r < num_rows; ++r) {
    const float* row = rows + r * stride;
    double* out_row = out + r * num_queries;
    size_t q = 0;
    for (; q + 2 <= num_queries; q += 2) {
      const float* q0 = queries + (q + 0) * qstride;
      const float* q1 = queries + (q + 1) * qstride;
      float64x2_t a00 = vdupq_n_f64(0.0), a01 = vdupq_n_f64(0.0);
      float64x2_t a02 = vdupq_n_f64(0.0), a03 = vdupq_n_f64(0.0);
      float64x2_t a10 = vdupq_n_f64(0.0), a11 = vdupq_n_f64(0.0);
      float64x2_t a12 = vdupq_n_f64(0.0), a13 = vdupq_n_f64(0.0);
      size_t i = 0;
      for (; i + 8 <= d; i += 8) {
        const Pd4 r0 = LoadPd(row + i), r1 = LoadPd(row + i + 4);
        const Pd4 x0 = LoadPd(q0 + i), x1 = LoadPd(q0 + i + 4);
        const Pd4 y0 = LoadPd(q1 + i), y1 = LoadPd(q1 + i + 4);
        a00 = vfmaq_f64(a00, r0.lo, x0.lo);
        a01 = vfmaq_f64(a01, r0.hi, x0.hi);
        a02 = vfmaq_f64(a02, r1.lo, x1.lo);
        a03 = vfmaq_f64(a03, r1.hi, x1.hi);
        a10 = vfmaq_f64(a10, r0.lo, y0.lo);
        a11 = vfmaq_f64(a11, r0.hi, y0.hi);
        a12 = vfmaq_f64(a12, r1.lo, y1.lo);
        a13 = vfmaq_f64(a13, r1.hi, y1.hi);
      }
      double t0 = 0.0, t1 = 0.0;
      for (; i < d; ++i) {
        const double ri = row[i];
        t0 += ri * q0[i];
        t1 += ri * q1[i];
      }
      out_row[q + 0] = HSum2(a00, a01) + HSum2(a02, a03) + t0;
      out_row[q + 1] = HSum2(a10, a11) + HSum2(a12, a13) + t1;
    }
    for (; q < num_queries; ++q) {
      out_row[q] = DotBody(row, queries + q * qstride, d);
    }
  }
}

constexpr Kernels kNeonKernels = {
    NeonSquaredL2,   NeonL1,          NeonDot,
    NeonSquaredNorm, NeonDotAndNorms, NeonDotRows,
    NeonDotRowsMulti,
};

}  // namespace

const Kernels* GetNeonKernels() { return &kNeonKernels; }

}  // namespace detail
}  // namespace simd
}  // namespace c2lsh

#else  // not an aarch64 build — degrade, don't break

namespace c2lsh {
namespace simd {
namespace detail {
const Kernels* GetNeonKernels() { return nullptr; }
}  // namespace detail
}  // namespace simd
}  // namespace c2lsh

#endif
