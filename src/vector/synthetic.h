// Synthetic dataset generation.
//
// The C2LSH paper (SIGMOD'12) evaluates on four real datasets — Audio
// (54,387 x 192), Mnist (60,000 x 50), Color (68,040 x 32) and LabelMe
// (181,093 x 512). Those files are not redistributable and this environment
// is offline, so each one is substituted by a clustered Gaussian-mixture
// generator matched on dimensionality, (scaled) cardinality and a hardness
// knob (cluster tightness), per the substitution table in DESIGN.md. Real
// .fvecs files drop in through vector/io.h without further changes.

#pragma once
#ifndef C2LSH_VECTOR_SYNTHETIC_H_
#define C2LSH_VECTOR_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/vector/dataset.h"
#include "src/vector/matrix.h"

namespace c2lsh {

/// Parameters of a clustered Gaussian-mixture generator.
struct MixtureConfig {
  size_t n = 10000;            ///< number of vectors
  size_t dim = 32;             ///< dimensionality
  size_t num_clusters = 20;    ///< mixture components
  double center_spread = 1.0;  ///< stddev of component centers (per coord)
  double cluster_stddev = 0.1; ///< stddev of points around their center
  uint64_t seed = 1;           ///< determinism
};

/// Draws `config.n` points from a Gaussian mixture: cluster centers are
/// N(0, center_spread^2 I), points are center + N(0, cluster_stddev^2 I),
/// cluster sizes are balanced (round-robin assignment).
Result<FloatMatrix> GenerateGaussianMixture(const MixtureConfig& config);

/// Uniform noise in [0, 1]^dim — the hardest case for LSH (no structure).
Result<FloatMatrix> GenerateUniform(size_t n, size_t dim, uint64_t seed);

/// Draws `num_queries` query vectors by sampling data rows and adding
/// isotropic Gaussian jitter of the given stddev. This matches how ANN
/// benchmarks hold out queries from the data distribution, and guarantees
/// every query has at least one close neighbor.
Result<FloatMatrix> GenerateQueriesNearData(const FloatMatrix& data, size_t num_queries,
                                            double jitter_stddev, uint64_t seed);

/// Estimates the typical (median) nearest-neighbor distance by sampling
/// `num_samples` probe points and scanning `scan_limit` candidates each
/// (0 = scan all). Deterministic given `seed`.
double EstimateNearestNeighborDistance(const FloatMatrix& data, size_t num_samples,
                                       size_t scan_limit, uint64_t seed);

/// Rescales every coordinate so the estimated NN distance becomes
/// `target_nn`. C2LSH's radius schedule R in {1, c, c^2, ...} is expressed in
/// data units, so datasets are normalized to put the NN distance a few
/// doublings above R = 1 (the paper achieves the same effect by converting
/// coordinates to integers). Returns the scale factor applied.
double RescaleToTargetNN(FloatMatrix* data, double target_nn, uint64_t seed);

/// The four dataset profiles of the paper's evaluation.
enum class DatasetProfile {
  kAudio,    ///< 192-d audio features; moderate clustering
  kMnist,    ///< 50-d (PCA'd) digit images; strong clustering
  kColor,    ///< 32-d color histograms; low-d, easy
  kLabelMe,  ///< 512-d GIST descriptors; high-d, hard
};

std::string DatasetProfileName(DatasetProfile profile);

/// All four profiles, in the order the paper tabulates them.
std::vector<DatasetProfile> AllDatasetProfiles();

/// Materializes a profile at `n` points (pass 0 for the laptop-scale default
/// of that profile) plus `num_queries` held-out queries. Data is rescaled so
/// the estimated NN distance is ~8 data units, i.e. ~3 virtual-rehashing
/// rounds at c = 2 before the NN radius is reached.
struct ProfileData {
  Dataset data;
  FloatMatrix queries;
};
Result<ProfileData> MakeProfileDataset(DatasetProfile profile, size_t n,
                                       size_t num_queries, uint64_t seed);

}  // namespace c2lsh

#endif  // C2LSH_VECTOR_SYNTHETIC_H_
