// Dataset preprocessing transforms: centering and PCA (with optional
// whitening). ANN evaluations routinely PCA-reduce high-dimensional inputs
// (the paper's Mnist profile *is* a PCA of raw pixels); this module makes
// that pipeline reproducible in-repo. PCA is computed by power iteration
// with deflation on the explicit covariance matrix — exact enough for the
// leading components a reduction keeps, with deterministic seeding.

#pragma once
#ifndef C2LSH_VECTOR_TRANSFORM_H_
#define C2LSH_VECTOR_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "src/util/result.h"
#include "src/vector/matrix.h"

namespace c2lsh {

/// PCA fitting options.
struct PcaOptions {
  size_t out_dim = 0;        ///< components to keep; 0 = keep all (rotation)
  bool whiten = false;       ///< scale each component to unit variance
  size_t max_iterations = 300;  ///< power-iteration budget per component
  double tolerance = 1e-9;   ///< convergence threshold on the eigenvector
  uint64_t seed = 1;
};

/// A fitted PCA: y = D * W^T (x - mean), where W's columns are the leading
/// eigenvectors of the data covariance and D is identity (or the whitening
/// scaling 1/sqrt(lambda_i)).
class PcaTransform {
 public:
  /// Fits on `data` (n x d). Requires n >= 2 and out_dim <= d.
  static Result<PcaTransform> Fit(const FloatMatrix& data, const PcaOptions& options);

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return components_.size(); }

  /// Eigenvalues of the kept components, non-increasing.
  const std::vector<double>& eigenvalues() const { return eigenvalues_; }

  /// The i-th component (unit-norm eigenvector of the covariance).
  const std::vector<double>& component(size_t i) const { return components_[i]; }

  /// Per-coordinate mean subtracted before projection.
  const std::vector<double>& mean() const { return mean_; }

  /// Transforms one vector (in_dim floats) into out (out_dim floats).
  void ApplyRow(const float* in, float* out) const;

  /// Transforms a whole matrix (rows of in_dim) to rows of out_dim.
  Result<FloatMatrix> Apply(const FloatMatrix& data) const;

  /// Fraction of total variance captured by the kept components.
  double ExplainedVarianceRatio() const;

 private:
  PcaTransform(size_t in_dim, std::vector<double> mean,
               std::vector<std::vector<double>> components, std::vector<double> eigenvalues,
               std::vector<double> scales, double total_variance)
      : in_dim_(in_dim),
        mean_(std::move(mean)),
        components_(std::move(components)),
        eigenvalues_(std::move(eigenvalues)),
        scales_(std::move(scales)),
        total_variance_(total_variance) {}

  size_t in_dim_;
  std::vector<double> mean_;
  std::vector<std::vector<double>> components_;  // row-per-component
  std::vector<double> eigenvalues_;
  std::vector<double> scales_;  // 1 or 1/sqrt(lambda)
  double total_variance_ = 0.0;
};

}  // namespace c2lsh

#endif  // C2LSH_VECTOR_TRANSFORM_H_
