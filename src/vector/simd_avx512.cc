// AVX-512F kernel table: 8 double lanes per 512-bit register, 16 floats per
// unrolled iteration. Compiled with -mavx512f on its own (see
// src/vector/CMakeLists.txt — per-TU flags only, never global -march), and
// entered only after simd.cc's __builtin_cpu_supports("avx512f") check.
//
// Same contracts as the other tables (see simd.h): double accumulation,
// unaligned loads everywhere, and dot_rows bit-identical per row to dot via
// the shared DotBody structure.

#include "src/vector/simd.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cmath>

namespace c2lsh {
namespace simd {
namespace detail {
namespace {

// The plain _mm512_cvtps_pd / _mm512_reduce_add_pd expand through
// _mm512_undefined_pd() / _mm256_undefined_pd(), a GCC -Wuninitialized
// false positive at every inline site (GCC PR105593). The all-ones-mask
// zero-masking forms compile to the same instructions without it.
inline __m512d LoadPd(const float* p) {
  return _mm512_maskz_cvtps_pd(static_cast<__mmask8>(0xFF), _mm256_loadu_ps(p));
}

inline double HSum(__m512d x) {
  // (The 512->256 cast also expands through the undefined-arg extract in
  // GCC 12, hence the masked extract for the low half as well.)
  const __m256d lo = _mm512_maskz_extractf64x4_pd(static_cast<__mmask8>(0xF), x, 0);
  const __m256d hi = _mm512_maskz_extractf64x4_pd(static_cast<__mmask8>(0xF), x, 1);
  const __m256d s = _mm256_add_pd(lo, hi);
  const __m128d q =
      _mm_add_pd(_mm256_castpd256_pd128(s), _mm256_extractf128_pd(s, 1));
  return _mm_cvtsd_f64(q) + _mm_cvtsd_f64(_mm_unpackhi_pd(q, q));
}

// 16 floats per iteration into two independent accumulators; scalar tail.
// Keep the loop/finalization structure in lockstep with DotRows below.
inline double DotBody(const float* a, const float* b, size_t d) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    acc0 = _mm512_fmadd_pd(LoadPd(a + i), LoadPd(b + i), acc0);
    acc1 = _mm512_fmadd_pd(LoadPd(a + i + 8), LoadPd(b + i + 8), acc1);
  }
  double tail = 0.0;
  for (; i < d; ++i) tail += static_cast<double>(a[i]) * b[i];
  return HSum(acc0) + HSum(acc1) + tail;
}

double Avx512SquaredL2(const float* a, const float* b, size_t d) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    const __m512d d0 = _mm512_sub_pd(LoadPd(a + i), LoadPd(b + i));
    const __m512d d1 = _mm512_sub_pd(LoadPd(a + i + 8), LoadPd(b + i + 8));
    acc0 = _mm512_fmadd_pd(d0, d0, acc0);
    acc1 = _mm512_fmadd_pd(d1, d1, acc1);
  }
  double tail = 0.0;
  for (; i < d; ++i) {
    const double di = static_cast<double>(a[i]) - b[i];
    tail += di * di;
  }
  return HSum(acc0) + HSum(acc1) + tail;
}

double Avx512L1(const float* a, const float* b, size_t d) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    const __m512d d0 = _mm512_sub_pd(LoadPd(a + i), LoadPd(b + i));
    const __m512d d1 = _mm512_sub_pd(LoadPd(a + i + 8), LoadPd(b + i + 8));
    acc0 = _mm512_add_pd(acc0, _mm512_abs_pd(d0));
    acc1 = _mm512_add_pd(acc1, _mm512_abs_pd(d1));
  }
  double tail = 0.0;
  for (; i < d; ++i) {
    tail += std::fabs(static_cast<double>(a[i]) - b[i]);
  }
  return HSum(acc0) + HSum(acc1) + tail;
}

double Avx512Dot(const float* a, const float* b, size_t d) {
  return DotBody(a, b, d);
}

double Avx512SquaredNorm(const float* a, size_t d) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    const __m512d a0 = LoadPd(a + i);
    const __m512d a1 = LoadPd(a + i + 8);
    acc0 = _mm512_fmadd_pd(a0, a0, acc0);
    acc1 = _mm512_fmadd_pd(a1, a1, acc1);
  }
  double tail = 0.0;
  for (; i < d; ++i) {
    const double ai = a[i];
    tail += ai * ai;
  }
  return HSum(acc0) + HSum(acc1) + tail;
}

void Avx512DotAndNorms(const float* a, const float* b, size_t d, double* dot,
                       double* norm_a, double* norm_b) {
  __m512d accd = _mm512_setzero_pd();
  __m512d acca = _mm512_setzero_pd();
  __m512d accb = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m512d av = LoadPd(a + i);
    const __m512d bv = LoadPd(b + i);
    accd = _mm512_fmadd_pd(av, bv, accd);
    acca = _mm512_fmadd_pd(av, av, acca);
    accb = _mm512_fmadd_pd(bv, bv, accb);
  }
  double td = 0.0, ta = 0.0, tb = 0.0;
  for (; i < d; ++i) {
    const double ai = a[i];
    const double bi = b[i];
    td += ai * bi;
    ta += ai * ai;
    tb += bi * bi;
  }
  *dot = HSum(accd) + td;
  *norm_a = HSum(acca) + ta;
  *norm_b = HSum(accb) + tb;
}

void Avx512DotRows(const float* rows, size_t num_rows, size_t stride, size_t d,
                   const float* v, double* out) {
  size_t r = 0;
  // Four rows per pass share each load of v; every row keeps DotBody's exact
  // accumulator structure (two lanes + scalar tail, summed in the same
  // order), so out[r] is bit-identical to DotBody(row_r, v, d).
  for (; r + 4 <= num_rows; r += 4) {
    const float* r0 = rows + (r + 0) * stride;
    const float* r1 = rows + (r + 1) * stride;
    const float* r2 = rows + (r + 2) * stride;
    const float* r3 = rows + (r + 3) * stride;
    __m512d acc00 = _mm512_setzero_pd(), acc01 = _mm512_setzero_pd();
    __m512d acc10 = _mm512_setzero_pd(), acc11 = _mm512_setzero_pd();
    __m512d acc20 = _mm512_setzero_pd(), acc21 = _mm512_setzero_pd();
    __m512d acc30 = _mm512_setzero_pd(), acc31 = _mm512_setzero_pd();
    size_t i = 0;
    for (; i + 16 <= d; i += 16) {
      const __m512d v0 = LoadPd(v + i);
      const __m512d v1 = LoadPd(v + i + 8);
      acc00 = _mm512_fmadd_pd(LoadPd(r0 + i), v0, acc00);
      acc01 = _mm512_fmadd_pd(LoadPd(r0 + i + 8), v1, acc01);
      acc10 = _mm512_fmadd_pd(LoadPd(r1 + i), v0, acc10);
      acc11 = _mm512_fmadd_pd(LoadPd(r1 + i + 8), v1, acc11);
      acc20 = _mm512_fmadd_pd(LoadPd(r2 + i), v0, acc20);
      acc21 = _mm512_fmadd_pd(LoadPd(r2 + i + 8), v1, acc21);
      acc30 = _mm512_fmadd_pd(LoadPd(r3 + i), v0, acc30);
      acc31 = _mm512_fmadd_pd(LoadPd(r3 + i + 8), v1, acc31);
    }
    double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
    for (; i < d; ++i) {
      const double vi = v[i];
      t0 += static_cast<double>(r0[i]) * vi;
      t1 += static_cast<double>(r1[i]) * vi;
      t2 += static_cast<double>(r2[i]) * vi;
      t3 += static_cast<double>(r3[i]) * vi;
    }
    out[r + 0] = HSum(acc00) + HSum(acc01) + t0;
    out[r + 1] = HSum(acc10) + HSum(acc11) + t1;
    out[r + 2] = HSum(acc20) + HSum(acc21) + t2;
    out[r + 3] = HSum(acc30) + HSum(acc31) + t3;
  }
  for (; r < num_rows; ++r) out[r] = DotBody(rows + r * stride, v, d);
}

void Avx512DotRowsMulti(const float* rows, size_t num_rows, size_t stride,
                        size_t d, const float* queries, size_t num_queries,
                        size_t qstride, double* out) {
  // Query-major blocking: four queries per pass share each load of the row,
  // so a row is streamed from memory once per 4-query block instead of once
  // per query. Every (row, query) pair keeps DotBody's exact accumulator
  // structure (two lanes + scalar tail, summed in the same order), so
  // out[r * num_queries + q] is bit-identical to DotBody(row_r, query_q, d).
  for (size_t r = 0; r < num_rows; ++r) {
    const float* row = rows + r * stride;
    double* out_row = out + r * num_queries;
    size_t q = 0;
    for (; q + 4 <= num_queries; q += 4) {
      const float* q0 = queries + (q + 0) * qstride;
      const float* q1 = queries + (q + 1) * qstride;
      const float* q2 = queries + (q + 2) * qstride;
      const float* q3 = queries + (q + 3) * qstride;
      __m512d acc00 = _mm512_setzero_pd(), acc01 = _mm512_setzero_pd();
      __m512d acc10 = _mm512_setzero_pd(), acc11 = _mm512_setzero_pd();
      __m512d acc20 = _mm512_setzero_pd(), acc21 = _mm512_setzero_pd();
      __m512d acc30 = _mm512_setzero_pd(), acc31 = _mm512_setzero_pd();
      size_t i = 0;
      for (; i + 16 <= d; i += 16) {
        const __m512d r0 = LoadPd(row + i);
        const __m512d r1 = LoadPd(row + i + 8);
        acc00 = _mm512_fmadd_pd(r0, LoadPd(q0 + i), acc00);
        acc01 = _mm512_fmadd_pd(r1, LoadPd(q0 + i + 8), acc01);
        acc10 = _mm512_fmadd_pd(r0, LoadPd(q1 + i), acc10);
        acc11 = _mm512_fmadd_pd(r1, LoadPd(q1 + i + 8), acc11);
        acc20 = _mm512_fmadd_pd(r0, LoadPd(q2 + i), acc20);
        acc21 = _mm512_fmadd_pd(r1, LoadPd(q2 + i + 8), acc21);
        acc30 = _mm512_fmadd_pd(r0, LoadPd(q3 + i), acc30);
        acc31 = _mm512_fmadd_pd(r1, LoadPd(q3 + i + 8), acc31);
      }
      double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
      for (; i < d; ++i) {
        const double ri = row[i];
        t0 += ri * q0[i];
        t1 += ri * q1[i];
        t2 += ri * q2[i];
        t3 += ri * q3[i];
      }
      out_row[q + 0] = HSum(acc00) + HSum(acc01) + t0;
      out_row[q + 1] = HSum(acc10) + HSum(acc11) + t1;
      out_row[q + 2] = HSum(acc20) + HSum(acc21) + t2;
      out_row[q + 3] = HSum(acc30) + HSum(acc31) + t3;
    }
    for (; q < num_queries; ++q) {
      out_row[q] = DotBody(row, queries + q * qstride, d);
    }
  }
}

constexpr Kernels kAvx512Kernels = {
    Avx512SquaredL2,   Avx512L1,          Avx512Dot,
    Avx512SquaredNorm, Avx512DotAndNorms, Avx512DotRows,
    Avx512DotRowsMulti,
};

}  // namespace

const Kernels* GetAvx512Kernels() { return &kAvx512Kernels; }

}  // namespace detail
}  // namespace simd
}  // namespace c2lsh

#else  // the build system misconfigured this TU's flags — degrade, don't break

namespace c2lsh {
namespace simd {
namespace detail {
const Kernels* GetAvx512Kernels() { return nullptr; }
}  // namespace detail
}  // namespace simd
}  // namespace c2lsh

#endif
