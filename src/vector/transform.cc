#include "src/vector/transform.h"

#include <cmath>

#include "src/util/random.h"

namespace c2lsh {

Result<PcaTransform> PcaTransform::Fit(const FloatMatrix& data, const PcaOptions& options) {
  const size_t n = data.num_rows();
  const size_t d = data.dim();
  if (n < 2) {
    return Status::InvalidArgument("PCA: need at least 2 rows to estimate covariance");
  }
  size_t out_dim = options.out_dim == 0 ? d : options.out_dim;
  if (out_dim > d) {
    return Status::InvalidArgument("PCA: out_dim exceeds input dimension");
  }

  // Mean.
  std::vector<double> mean(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const float* row = data.row(i);
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (double& m : mean) m /= static_cast<double>(n);

  // Covariance (upper triangle computed, mirrored). O(n d^2) — fitting is a
  // one-time preprocessing cost.
  std::vector<double> cov(d * d, 0.0);
  std::vector<double> centered(d);
  for (size_t i = 0; i < n; ++i) {
    const float* row = data.row(i);
    for (size_t j = 0; j < d; ++j) centered[j] = static_cast<double>(row[j]) - mean[j];
    for (size_t a = 0; a < d; ++a) {
      const double ca = centered[a];
      for (size_t b = a; b < d; ++b) {
        cov[a * d + b] += ca * centered[b];
      }
    }
  }
  const double denom = static_cast<double>(n - 1);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      cov[a * d + b] /= denom;
      cov[b * d + a] = cov[a * d + b];
    }
  }
  double total_variance = 0.0;
  for (size_t j = 0; j < d; ++j) total_variance += cov[j * d + j];

  // Power iteration with deflation for the leading out_dim eigenpairs.
  Rng rng(options.seed);
  std::vector<std::vector<double>> components;
  std::vector<double> eigenvalues;
  std::vector<double> work(d);
  std::vector<double> v(d);
  for (size_t comp = 0; comp < out_dim; ++comp) {
    for (double& x : v) x = rng.Gaussian();
    double lambda = 0.0;
    for (size_t iter = 0; iter < options.max_iterations; ++iter) {
      // work = Cov * v.
      for (size_t a = 0; a < d; ++a) {
        double acc = 0.0;
        const double* row = cov.data() + a * d;
        for (size_t b = 0; b < d; ++b) acc += row[b] * v[b];
        work[a] = acc;
      }
      // Deflate against already-found components (numerical re-orthogonalization).
      for (const auto& u : components) {
        double dot = 0.0;
        for (size_t j = 0; j < d; ++j) dot += work[j] * u[j];
        for (size_t j = 0; j < d; ++j) work[j] -= dot * u[j];
      }
      double norm = 0.0;
      for (double x : work) norm += x * x;
      norm = std::sqrt(norm);
      if (norm <= 0.0) break;  // covariance rank exhausted
      double diff = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double next = work[j] / norm;
        diff += (next - v[j]) * (next - v[j]);
        v[j] = next;
      }
      lambda = norm;
      if (diff < options.tolerance) break;
    }
    // Rayleigh quotient for the eigenvalue (norm after deflation tracks it,
    // but the quotient is cleaner near convergence).
    double quad = 0.0;
    for (size_t a = 0; a < d; ++a) {
      double acc = 0.0;
      const double* row = cov.data() + a * d;
      for (size_t b = 0; b < d; ++b) acc += row[b] * v[b];
      quad += v[a] * acc;
    }
    lambda = quad;
    if (lambda < 0.0) lambda = 0.0;
    components.push_back(v);
    eigenvalues.push_back(lambda);
  }

  std::vector<double> scales(components.size(), 1.0);
  if (options.whiten) {
    for (size_t i = 0; i < components.size(); ++i) {
      scales[i] = eigenvalues[i] > 1e-12 ? 1.0 / std::sqrt(eigenvalues[i]) : 1.0;
    }
  }
  return PcaTransform(d, std::move(mean), std::move(components), std::move(eigenvalues),
                      std::move(scales), total_variance);
}

void PcaTransform::ApplyRow(const float* in, float* out) const {
  for (size_t c = 0; c < components_.size(); ++c) {
    const std::vector<double>& u = components_[c];
    double acc = 0.0;
    for (size_t j = 0; j < in_dim_; ++j) {
      acc += (static_cast<double>(in[j]) - mean_[j]) * u[j];
    }
    out[c] = static_cast<float>(acc * scales_[c]);
  }
}

Result<FloatMatrix> PcaTransform::Apply(const FloatMatrix& data) const {
  if (data.dim() != in_dim_) {
    return Status::InvalidArgument("PCA::Apply: dimension mismatch");
  }
  C2LSH_ASSIGN_OR_RETURN(FloatMatrix out, FloatMatrix::Create(data.num_rows(), out_dim()));
  for (size_t i = 0; i < data.num_rows(); ++i) {
    ApplyRow(data.row(i), out.mutable_row(i));
  }
  return out;
}

double PcaTransform::ExplainedVarianceRatio() const {
  if (total_variance_ <= 0.0) return 0.0;
  double kept = 0.0;
  for (double ev : eigenvalues_) kept += ev;
  return kept / total_variance_;
}

}  // namespace c2lsh
