// Distance kernels. C2LSH's p-stable family targets Euclidean distance; the
// angular kernels support the normalized-dataset experiments and baselines.

#pragma once
#ifndef C2LSH_VECTOR_DISTANCE_H_
#define C2LSH_VECTOR_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace c2lsh {

/// Distance metrics understood by the evaluation harness.
enum class Metric {
  kEuclidean,         ///< L2
  kSquaredEuclidean,  ///< L2^2 (monotone in L2; cheaper for rankings)
  kAngular,           ///< 1 - cos(a, b), in [0, 2]
  kManhattan,         ///< L1 (served by the Cauchy-projection QALSH variant)
};

std::string_view MetricToString(Metric m);

/// Squared Euclidean distance between two d-dimensional vectors.
/// Accumulates in double for numerical robustness across large d.
double SquaredL2(const float* a, const float* b, size_t d);

/// Euclidean distance.
double L2(const float* a, const float* b, size_t d);

/// Manhattan (l1) distance.
double L1(const float* a, const float* b, size_t d);

/// Inner product a . b.
double Dot(const float* a, const float* b, size_t d);

/// Squared L2 norm of a vector.
double SquaredNorm(const float* a, size_t d);

/// Angular distance 1 - cos(a, b). Returns 1 when either vector is zero.
double Angular(const float* a, const float* b, size_t d);

/// Metric dispatch used by the harness (the index hot paths call the concrete
/// kernels directly).
double ComputeDistance(Metric metric, const float* a, const float* b, size_t d);

}  // namespace c2lsh

#endif  // C2LSH_VECTOR_DISTANCE_H_
