// Aligned allocation for SIMD-friendly buffers.
//
// The kernel layer (src/vector/simd.h) tolerates arbitrary alignment — every
// load is an unaligned load — but aligned data lets the hardware coalesce
// cache-line accesses, so the containers that feed hot kernels (FloatMatrix,
// PStableFamily's packed projection matrix) allocate on kSimdAlignment
// boundaries and pad row strides with AlignedStride so every row starts
// aligned end to end.

#pragma once
#ifndef C2LSH_VECTOR_ALIGNED_H_
#define C2LSH_VECTOR_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace c2lsh {

/// Alignment of SIMD-facing buffers: one cache line, and the natural
/// alignment of a 512-bit vector register.
inline constexpr size_t kSimdAlignment = 64;

/// Minimal C++17 allocator yielding Alignment-aligned storage.
template <typename T, size_t Alignment = kSimdAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment must not weaken T's own");

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// A std::vector whose data() is kSimdAlignment-aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Row stride (in elements) that keeps every row of a row-major matrix of
/// ElementSize-byte elements on a kSimdAlignment boundary: the smallest
/// multiple of kSimdAlignment / sizeof(element) that is >= d.
template <typename T>
constexpr size_t AlignedStride(size_t d) {
  constexpr size_t kPerLine = kSimdAlignment / sizeof(T);
  return (d + kPerLine - 1) / kPerLine * kPerLine;
}

}  // namespace c2lsh

#endif  // C2LSH_VECTOR_ALIGNED_H_
