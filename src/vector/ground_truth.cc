#include "src/vector/ground_truth.h"

#include <algorithm>
#include <cstring>

#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"
#include "src/vector/io.h"

namespace c2lsh {

namespace {

/// Exact top-k for one query by heap-based selection over all rows.
NeighborList BruteForceTopK(const Dataset& data, const float* q, size_t k, Metric metric) {
  const size_t n = data.size();
  const size_t d = data.dim();
  k = std::min(k, n);
  // Max-heap of the current best k (worst at front).
  NeighborList heap;
  heap.reserve(k + 1);
  NeighborLess less;
  auto cmp = [&less](const Neighbor& a, const Neighbor& b) { return less(a, b); };
  for (size_t i = 0; i < n; ++i) {
    const double dist = ComputeDistance(metric, q, data.object(static_cast<ObjectId>(i)), d);
    const Neighbor cand{static_cast<ObjectId>(i), static_cast<float>(dist)};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (less(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

}  // namespace

Result<std::vector<NeighborList>> ComputeGroundTruth(const Dataset& data,
                                                     const FloatMatrix& queries, size_t k,
                                                     Metric metric, size_t num_threads) {
  if (k == 0) {
    return Status::InvalidArgument("ComputeGroundTruth: k must be positive");
  }
  if (queries.dim() != data.dim()) {
    return Status::InvalidArgument("ComputeGroundTruth: query dim " +
                                   std::to_string(queries.dim()) + " != data dim " +
                                   std::to_string(data.dim()));
  }
  // Parallel scratch on the shared worker pool (no per-call thread
  // creation): each ParallelFor item writes only its own out[i] slot
  // (disjoint index-addressed slots, no resize while the loop runs), and the
  // completion barrier publishes the writes to this thread — the
  // src/util/thread_pool.h determinism contract. `data` and `queries` are
  // read-only. Checked under TSan by the race lane. `num_threads` bounds
  // concurrency by bounding the lane count.
  const size_t nq = queries.num_rows();
  std::vector<NeighborList> out(nq);
  const size_t lanes = std::min(num_threads == 0 ? nq : num_threads, nq);
  if (lanes <= 1) {
    for (size_t i = 0; i < nq; ++i) {
      out[i] = BruteForceTopK(data, queries.row(i), k, metric);
    }
  } else {
    ThreadPool::Shared().ParallelFor(lanes, [&](size_t t) {
      for (size_t i = t; i < nq; i += lanes) {
        out[i] = BruteForceTopK(data, queries.row(i), k, metric);
      }
    });
  }
  return out;
}

Status SaveGroundTruth(const std::string& path, const std::vector<NeighborList>& gt) {
  // Encode each NeighborList as one ivecs row: [id0, bits(dist0), id1, ...].
  std::vector<std::vector<int32_t>> rows;
  rows.reserve(gt.size());
  for (const NeighborList& list : gt) {
    std::vector<int32_t> row;
    row.reserve(list.size() * 2);
    for (const Neighbor& nb : list) {
      row.push_back(static_cast<int32_t>(nb.id));
      int32_t bits = 0;
      static_assert(sizeof(bits) == sizeof(nb.dist));
      std::memcpy(&bits, &nb.dist, sizeof(bits));
      row.push_back(bits);
    }
    rows.push_back(std::move(row));
  }
  return WriteIvecs(path, rows);
}

Result<std::vector<NeighborList>> LoadGroundTruth(const std::string& path) {
  C2LSH_ASSIGN_OR_RETURN(auto rows, ReadIvecs(path));
  std::vector<NeighborList> gt;
  gt.reserve(rows.size());
  for (const auto& row : rows) {
    if (row.size() % 2 != 0) {
      return Status::Corruption("ground-truth cache '" + path + "' has odd row length");
    }
    NeighborList list;
    list.reserve(row.size() / 2);
    for (size_t i = 0; i + 1 < row.size(); i += 2) {
      Neighbor nb;
      nb.id = static_cast<ObjectId>(row[i]);
      std::memcpy(&nb.dist, &row[i + 1], sizeof(nb.dist));
      list.push_back(nb);
    }
    gt.push_back(std::move(list));
  }
  return gt;
}

Result<std::vector<NeighborList>> LoadOrComputeGroundTruth(const std::string& path,
                                                           const Dataset& data,
                                                           const FloatMatrix& queries,
                                                           size_t k, Metric metric) {
  if (!path.empty()) {
    Result<std::vector<NeighborList>> cached = LoadGroundTruth(path);
    if (cached.ok() && cached->size() == queries.num_rows() &&
        (cached->empty() || cached->front().size() >= std::min(k, data.size()))) {
      return cached;
    }
  }
  C2LSH_ASSIGN_OR_RETURN(auto gt, ComputeGroundTruth(data, queries, k, metric));
  if (!path.empty()) {
    C2LSH_RETURN_IF_ERROR(SaveGroundTruth(path, gt));
  }
  return gt;
}

}  // namespace c2lsh
