#include "src/vector/io.h"

#include <cstdint>
#include <cstdio>
#include <memory>

namespace c2lsh {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr OpenFile(const std::string& path, const char* mode) {
  return FilePtr(std::fopen(path.c_str(), mode));
}

}  // namespace

Result<FloatMatrix> ReadFvecs(const std::string& path, size_t max_rows) {
  FilePtr f = OpenFile(path, "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::vector<float> data;
  size_t dim = 0;
  size_t rows = 0;
  while (max_rows == 0 || rows < max_rows) {
    int32_t d = 0;
    const size_t got = std::fread(&d, sizeof(d), 1, f.get());
    if (got == 0) break;  // clean EOF
    if (d <= 0) {
      return Status::Corruption("fvecs '" + path + "': non-positive dimension " +
                                std::to_string(d) + " at row " + std::to_string(rows));
    }
    if (dim == 0) {
      dim = static_cast<size_t>(d);
    } else if (static_cast<size_t>(d) != dim) {
      return Status::Corruption("fvecs '" + path + "': row " + std::to_string(rows) +
                                " has dim " + std::to_string(d) + ", expected " +
                                std::to_string(dim));
    }
    const size_t old = data.size();
    data.resize(old + dim);
    if (std::fread(data.data() + old, sizeof(float), dim, f.get()) != dim) {
      return Status::Corruption("fvecs '" + path + "': truncated row " +
                                std::to_string(rows));
    }
    ++rows;
  }
  if (rows == 0) {
    return Status::Corruption("fvecs '" + path + "': empty file");
  }
  return FloatMatrix::FromVector(rows, dim, std::move(data));
}

Status WriteFvecs(const std::string& path, const FloatMatrix& m) {
  FilePtr f = OpenFile(path, "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const int32_t d = static_cast<int32_t>(m.dim());
  for (size_t i = 0; i < m.num_rows(); ++i) {
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1 ||
        std::fwrite(m.row(i), sizeof(float), m.dim(), f.get()) != m.dim()) {
      return Status::IOError("short write to '" + path + "'");
    }
  }
  return Status::OK();
}

Result<std::vector<std::vector<int32_t>>> ReadIvecs(const std::string& path,
                                                    size_t max_rows) {
  FilePtr f = OpenFile(path, "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::vector<std::vector<int32_t>> rows;
  while (max_rows == 0 || rows.size() < max_rows) {
    int32_t d = 0;
    const size_t got = std::fread(&d, sizeof(d), 1, f.get());
    if (got == 0) break;
    if (d < 0) {
      return Status::Corruption("ivecs '" + path + "': negative row length");
    }
    std::vector<int32_t> row(static_cast<size_t>(d));
    if (d > 0 &&
        std::fread(row.data(), sizeof(int32_t), row.size(), f.get()) != row.size()) {
      return Status::Corruption("ivecs '" + path + "': truncated row " +
                                std::to_string(rows.size()));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<FloatMatrix> ReadBvecs(const std::string& path, size_t max_rows) {
  FilePtr f = OpenFile(path, "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::vector<float> data;
  std::vector<uint8_t> row_buf;
  size_t dim = 0;
  size_t rows = 0;
  while (max_rows == 0 || rows < max_rows) {
    int32_t d = 0;
    const size_t got = std::fread(&d, sizeof(d), 1, f.get());
    if (got == 0) break;
    if (d <= 0) {
      return Status::Corruption("bvecs '" + path + "': non-positive dimension");
    }
    if (dim == 0) {
      dim = static_cast<size_t>(d);
    } else if (static_cast<size_t>(d) != dim) {
      return Status::Corruption("bvecs '" + path + "': inconsistent dimension at row " +
                                std::to_string(rows));
    }
    row_buf.resize(dim);
    if (std::fread(row_buf.data(), 1, dim, f.get()) != dim) {
      return Status::Corruption("bvecs '" + path + "': truncated row " +
                                std::to_string(rows));
    }
    for (uint8_t b : row_buf) data.push_back(static_cast<float>(b));
    ++rows;
  }
  if (rows == 0) {
    return Status::Corruption("bvecs '" + path + "': empty file");
  }
  return FloatMatrix::FromVector(rows, dim, std::move(data));
}

Status WriteBvecs(const std::string& path, const FloatMatrix& m) {
  FilePtr f = OpenFile(path, "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const int32_t d = static_cast<int32_t>(m.dim());
  std::vector<uint8_t> row_buf(m.dim());
  for (size_t i = 0; i < m.num_rows(); ++i) {
    const float* row = m.row(i);
    for (size_t j = 0; j < m.dim(); ++j) {
      const float v = row[j];
      if (!(v >= -0.5f && v < 255.5f)) {
        return Status::InvalidArgument("bvecs: coordinate " + std::to_string(v) +
                                       " at row " + std::to_string(i) +
                                       " is outside [0, 255]");
      }
      row_buf[j] = static_cast<uint8_t>(v + 0.5f);
    }
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1 ||
        std::fwrite(row_buf.data(), 1, row_buf.size(), f.get()) != row_buf.size()) {
      return Status::IOError("short write to '" + path + "'");
    }
  }
  return Status::OK();
}

Status WriteIvecs(const std::string& path, const std::vector<std::vector<int32_t>>& rows) {
  FilePtr f = OpenFile(path, "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  for (const auto& row : rows) {
    const int32_t d = static_cast<int32_t>(row.size());
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1) {
      return Status::IOError("short write to '" + path + "'");
    }
    if (!row.empty() &&
        std::fwrite(row.data(), sizeof(int32_t), row.size(), f.get()) != row.size()) {
      return Status::IOError("short write to '" + path + "'");
    }
  }
  return Status::OK();
}

}  // namespace c2lsh
