#include "src/vector/dataset.h"

#include <cmath>

#include "src/vector/distance.h"

namespace c2lsh {

Result<Dataset> Dataset::Create(std::string name, FloatMatrix vectors) {
  if (vectors.empty()) {
    return Status::InvalidArgument("Dataset '" + name + "' must contain at least one vector");
  }
  return Dataset(std::move(name), std::move(vectors));
}

Dataset::Stats Dataset::ComputeStats() const {
  Stats s;
  s.n = size();
  s.dim = dim();
  double norm_sum = 0.0;
  double max_abs = 0.0;
  for (size_t i = 0; i < size(); ++i) {
    const float* v = vectors_.row(i);
    norm_sum += std::sqrt(SquaredNorm(v, dim()));
    for (size_t j = 0; j < dim(); ++j) {
      max_abs = std::max(max_abs, static_cast<double>(std::fabs(v[j])));
    }
  }
  s.mean_norm = norm_sum / static_cast<double>(size());
  s.max_abs_coord = max_abs;
  return s;
}

}  // namespace c2lsh
