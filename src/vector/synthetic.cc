#include "src/vector/synthetic.h"

#include <algorithm>
#include <cmath>

#include "src/util/random.h"
#include "src/vector/distance.h"

namespace c2lsh {

Result<FloatMatrix> GenerateGaussianMixture(const MixtureConfig& config) {
  if (config.num_clusters == 0) {
    return Status::InvalidArgument("MixtureConfig.num_clusters must be positive");
  }
  if (config.cluster_stddev < 0.0 || config.center_spread < 0.0) {
    return Status::InvalidArgument("mixture stddevs must be non-negative");
  }
  C2LSH_ASSIGN_OR_RETURN(FloatMatrix m, FloatMatrix::Create(config.n, config.dim));

  Rng rng(config.seed);
  // Component centers.
  std::vector<std::vector<float>> centers(config.num_clusters);
  for (auto& c : centers) {
    c.resize(config.dim);
    for (size_t j = 0; j < config.dim; ++j) {
      c[j] = static_cast<float>(rng.Gaussian(0.0, config.center_spread));
    }
  }
  // Balanced round-robin assignment keeps cluster populations equal, so no
  // cluster is spuriously "easy" because it is tiny.
  for (size_t i = 0; i < config.n; ++i) {
    const std::vector<float>& c = centers[i % config.num_clusters];
    float* row = m.mutable_row(i);
    for (size_t j = 0; j < config.dim; ++j) {
      row[j] = c[j] + static_cast<float>(rng.Gaussian(0.0, config.cluster_stddev));
    }
  }
  return m;
}

Result<FloatMatrix> GenerateUniform(size_t n, size_t dim, uint64_t seed) {
  C2LSH_ASSIGN_OR_RETURN(FloatMatrix m, FloatMatrix::Create(n, dim));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    float* row = m.mutable_row(i);
    for (size_t j = 0; j < dim; ++j) {
      row[j] = static_cast<float>(rng.Uniform(0.0, 1.0));
    }
  }
  return m;
}

Result<FloatMatrix> GenerateQueriesNearData(const FloatMatrix& data, size_t num_queries,
                                            double jitter_stddev, uint64_t seed) {
  if (data.empty()) {
    return Status::InvalidArgument("GenerateQueriesNearData: data is empty");
  }
  C2LSH_ASSIGN_OR_RETURN(FloatMatrix q, FloatMatrix::Create(num_queries, data.dim()));
  Rng rng(seed);
  for (size_t i = 0; i < num_queries; ++i) {
    const float* src = data.row(rng.Index(data.num_rows()));
    float* dst = q.mutable_row(i);
    for (size_t j = 0; j < data.dim(); ++j) {
      dst[j] = src[j] + static_cast<float>(rng.Gaussian(0.0, jitter_stddev));
    }
  }
  return q;
}

double EstimateNearestNeighborDistance(const FloatMatrix& data, size_t num_samples,
                                       size_t scan_limit, uint64_t seed) {
  if (data.num_rows() < 2) return 0.0;
  Rng rng(seed);
  num_samples = std::min(num_samples, data.num_rows());
  const size_t scan = (scan_limit == 0) ? data.num_rows() : std::min(scan_limit, data.num_rows());
  std::vector<double> nn_dists;
  nn_dists.reserve(num_samples);
  for (size_t s = 0; s < num_samples; ++s) {
    const size_t probe = rng.Index(data.num_rows());
    double best = std::numeric_limits<double>::infinity();
    // Scan a deterministic stride covering `scan` rows so the estimate does
    // not depend on data ordering.
    const size_t stride = std::max<size_t>(1, data.num_rows() / scan);
    for (size_t i = 0; i < data.num_rows(); i += stride) {
      if (i == probe) continue;
      best = std::min(best, SquaredL2(data.row(probe), data.row(i), data.dim()));
    }
    if (std::isfinite(best)) nn_dists.push_back(std::sqrt(best));
  }
  if (nn_dists.empty()) return 0.0;
  std::nth_element(nn_dists.begin(), nn_dists.begin() + nn_dists.size() / 2, nn_dists.end());
  return nn_dists[nn_dists.size() / 2];
}

double RescaleToTargetNN(FloatMatrix* data, double target_nn, uint64_t seed) {
  const double current = EstimateNearestNeighborDistance(*data, /*num_samples=*/64,
                                                         /*scan_limit=*/4096, seed);
  if (current <= 0.0 || target_nn <= 0.0) return 1.0;
  const double scale = target_nn / current;
  for (size_t i = 0; i < data->num_rows(); ++i) {
    float* row = data->mutable_row(i);
    for (size_t j = 0; j < data->dim(); ++j) {
      row[j] = static_cast<float>(row[j] * scale);
    }
  }
  return scale;
}

std::string DatasetProfileName(DatasetProfile profile) {
  switch (profile) {
    case DatasetProfile::kAudio:
      return "Audio";
    case DatasetProfile::kMnist:
      return "Mnist";
    case DatasetProfile::kColor:
      return "Color";
    case DatasetProfile::kLabelMe:
      return "LabelMe";
  }
  return "Unknown";
}

std::vector<DatasetProfile> AllDatasetProfiles() {
  return {DatasetProfile::kAudio, DatasetProfile::kMnist, DatasetProfile::kColor,
          DatasetProfile::kLabelMe};
}

namespace {

/// Per-profile generator settings. Dimensionalities match the published
/// datasets; cardinalities are the laptop-scale defaults (the real datasets'
/// n is quoted in synthetic.h); hardness is controlled by cluster count and
/// tightness — low-d Color is strongly clustered (easy), high-d LabelMe has
/// diffuse clusters (hard).
struct ProfileSpec {
  size_t default_n;
  size_t dim;
  size_t num_clusters;
  double center_spread;
  double cluster_stddev;
};

ProfileSpec GetSpec(DatasetProfile profile) {
  switch (profile) {
    case DatasetProfile::kAudio:
      return {20000, 192, 50, 1.0, 0.25};
    case DatasetProfile::kMnist:
      return {20000, 50, 10, 1.0, 0.20};
    case DatasetProfile::kColor:
      return {20000, 32, 30, 1.0, 0.15};
    case DatasetProfile::kLabelMe:
      return {20000, 512, 80, 1.0, 0.40};
  }
  return {20000, 32, 20, 1.0, 0.2};
}

}  // namespace

Result<ProfileData> MakeProfileDataset(DatasetProfile profile, size_t n,
                                       size_t num_queries, uint64_t seed) {
  const ProfileSpec spec = GetSpec(profile);
  MixtureConfig config;
  config.n = (n == 0) ? spec.default_n : n;
  config.dim = spec.dim;
  config.num_clusters = spec.num_clusters;
  config.center_spread = spec.center_spread;
  config.cluster_stddev = spec.cluster_stddev;
  config.seed = SplitMix64(seed ^ (static_cast<uint64_t>(profile) + 101));

  C2LSH_ASSIGN_OR_RETURN(FloatMatrix data, GenerateGaussianMixture(config));

  // Put the typical NN distance at ~8 data units: R = 1 starts well below it
  // and c = 2 reaches it after ~3 virtual-rehashing rounds, mirroring how the
  // paper's integer-converted coordinates relate to its radius schedule.
  constexpr double kTargetNN = 8.0;
  const double scale = RescaleToTargetNN(&data, kTargetNN, config.seed + 1);

  // Queries jittered by ~half the NN distance keep the planted neighbor the
  // true NN with high probability while leaving the search non-trivial.
  const double jitter = kTargetNN * 0.5 / std::sqrt(static_cast<double>(config.dim));
  C2LSH_ASSIGN_OR_RETURN(
      FloatMatrix queries,
      GenerateQueriesNearData(data, num_queries, jitter, config.seed + 2));

  C2LSH_ASSIGN_OR_RETURN(Dataset ds,
                         Dataset::Create(DatasetProfileName(profile), std::move(data)));
  (void)scale;
  return ProfileData{std::move(ds), std::move(queries)};
}

}  // namespace c2lsh
