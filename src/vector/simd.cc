// Scalar reference kernels and the runtime dispatcher. This TU is compiled
// with the project's plain flags (no -m options), so the scalar table runs
// on any host and under any sanitizer; the per-ISA TUs are added by
// src/vector/CMakeLists.txt only when the toolchain can target them, and
// C2LSH_SIMD_HAVE_* tells this file which accessors are linked in.

#include "src/vector/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "src/obs/build_info.h"
#include "src/obs/registry.h"

namespace c2lsh {
namespace simd {

namespace detail {
namespace {

// The scalar kernels keep the historical distance.cc loop shapes: modest
// unrolling that stays auto-vectorizable under -O2 while splitting the
// double-accumulator dependency chains.

double ScalarSquaredL2(const float* a, const float* b, size_t d) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const double d0 = static_cast<double>(a[i]) - b[i];
    const double d1 = static_cast<double>(a[i + 1]) - b[i + 1];
    const double d2 = static_cast<double>(a[i + 2]) - b[i + 2];
    const double d3 = static_cast<double>(a[i + 3]) - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < d; ++i) {
    const double di = static_cast<double>(a[i]) - b[i];
    s0 += di * di;
  }
  return s0 + s1 + s2 + s3;
}

double ScalarL1(const float* a, const float* b, size_t d) {
  double s0 = 0.0, s1 = 0.0;
  size_t i = 0;
  for (; i + 2 <= d; i += 2) {
    s0 += std::fabs(static_cast<double>(a[i]) - b[i]);
    s1 += std::fabs(static_cast<double>(a[i + 1]) - b[i + 1]);
  }
  for (; i < d; ++i) s0 += std::fabs(static_cast<double>(a[i]) - b[i]);
  return s0 + s1;
}

double ScalarDot(const float* a, const float* b, size_t d) {
  double s0 = 0.0, s1 = 0.0;
  size_t i = 0;
  for (; i + 2 <= d; i += 2) {
    s0 += static_cast<double>(a[i]) * b[i];
    s1 += static_cast<double>(a[i + 1]) * b[i + 1];
  }
  for (; i < d; ++i) s0 += static_cast<double>(a[i]) * b[i];
  return s0 + s1;
}

double ScalarSquaredNorm(const float* a, size_t d) { return ScalarDot(a, a, d); }

void ScalarDotAndNorms(const float* a, const float* b, size_t d, double* dot,
                       double* norm_a, double* norm_b) {
  double sd = 0.0, sa = 0.0, sb = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double ai = a[i];
    const double bi = b[i];
    sd += ai * bi;
    sa += ai * ai;
    sb += bi * bi;
  }
  *dot = sd;
  *norm_a = sa;
  *norm_b = sb;
}

void ScalarDotRows(const float* rows, size_t num_rows, size_t stride, size_t d,
                   const float* v, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = ScalarDot(rows + r * stride, v, d);
  }
}

void ScalarDotRowsMulti(const float* rows, size_t num_rows, size_t stride,
                        size_t d, const float* queries, size_t num_queries,
                        size_t qstride, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    const float* row = rows + r * stride;
    for (size_t q = 0; q < num_queries; ++q) {
      out[r * num_queries + q] = ScalarDot(row, queries + q * qstride, d);
    }
  }
}

constexpr Kernels kScalarKernels = {
    ScalarSquaredL2,   ScalarL1,          ScalarDot,
    ScalarSquaredNorm, ScalarDotAndNorms, ScalarDotRows,
    ScalarDotRowsMulti,
};

}  // namespace

const Kernels* GetScalarKernels() { return &kScalarKernels; }

}  // namespace detail

std::string_view IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<Isa> IsaFromName(std::string_view name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "avx2") return Isa::kAvx2;
  if (name == "avx512") return Isa::kAvx512;
  if (name == "neon") return Isa::kNeon;
  return std::nullopt;
}

const Kernels* KernelsFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return detail::GetScalarKernels();
    case Isa::kAvx2:
#if defined(C2LSH_SIMD_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
      if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
        return detail::GetAvx2Kernels();
      }
#endif
      return nullptr;
    case Isa::kAvx512:
#if defined(C2LSH_SIMD_HAVE_AVX512) && (defined(__x86_64__) || defined(__i386__))
      if (__builtin_cpu_supports("avx512f")) {
        return detail::GetAvx512Kernels();
      }
#endif
      return nullptr;
    case Isa::kNeon:
#if defined(C2LSH_SIMD_HAVE_NEON) && defined(__aarch64__)
      // Advanced SIMD is architecturally mandatory on aarch64.
      return detail::GetNeonKernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kNeon, Isa::kAvx2, Isa::kAvx512}) {
    if (KernelsFor(isa) != nullptr) out.push_back(isa);
  }
  return out;
}

namespace {

struct ActiveState {
  const Kernels* kernels;
  Isa isa;
};

// The dispatch decision, made once at first use. Both fields travel together
// in one atomically swapped pointer so readers never see a mismatched pair.
std::atomic<const ActiveState*> g_active{nullptr};

const ActiveState* NewActiveState(Isa isa) {
  // States live in a static ring so concurrent readers of a superseded state
  // keep dereferencing valid memory. ForceIsa is a test/bench hook, never
  // called while kernels are in flight, so ring reuse is not a hazard there;
  // the first-dispatch race writes distinct slots.
  static ActiveState slots[64];
  static std::atomic<size_t> next{0};
  const size_t slot = next.fetch_add(1, std::memory_order_relaxed) % 64;
  slots[slot] = ActiveState{KernelsFor(isa), isa};
  // Every dispatch decision (first use and ForceIsa) flows through here, so
  // this is the one place the gauge needs updating. Values follow the Isa
  // enum: 0 scalar, 1 avx2, 2 avx512, 3 neon.
  if (obs::Gauge* g = obs::MetricsRegistry::Global().GetGauge(
          "simd_active_isa", "active SIMD ISA (0 scalar, 1 avx2, 2 avx512, 3 neon)")) {
    g->Set(static_cast<double>(static_cast<int>(isa)));
  }
  // Build attribution rides on the same seam: every binary that dispatches
  // a kernel exports c2lsh_build_info/process_start_time_seconds, and the
  // `isa` label tracks re-dispatch (ForceIsa, C2LSH_SIMD).
  obs::RegisterBuildMetrics(IsaName(isa));
  return &slots[slot];
}

Isa ResolveBestIsa() {
  // Environment override first: an unavailable or unknown choice falls back
  // to feature detection rather than failing, so a stale C2LSH_SIMD setting
  // can never break a binary.
  if (const char* env = std::getenv("C2LSH_SIMD")) {
    if (std::optional<Isa> isa = IsaFromName(env);
        isa.has_value() && KernelsFor(*isa) != nullptr) {
      return *isa;
    }
  }
  for (Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon}) {
    if (KernelsFor(isa) != nullptr) return isa;
  }
  return Isa::kScalar;
}

const ActiveState* GetActive() {
  const ActiveState* s = g_active.load(std::memory_order_acquire);
  if (s == nullptr) {
    // Two threads racing the first dispatch resolve to the same ISA; the
    // second store is idempotent.
    s = NewActiveState(ResolveBestIsa());
    g_active.store(s, std::memory_order_release);
  }
  return s;
}

}  // namespace

const Kernels& Active() { return *GetActive()->kernels; }

Isa ActiveIsa() { return GetActive()->isa; }

bool ForceIsa(Isa isa) {
  if (KernelsFor(isa) == nullptr) return false;
  g_active.store(NewActiveState(isa), std::memory_order_release);
  return true;
}

}  // namespace simd
}  // namespace c2lsh
