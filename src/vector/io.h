// Readers and writers for the standard ANN benchmark file formats:
//   .fvecs — each vector is [int32 d][d x float32]
//   .ivecs — each vector is [int32 d][d x int32]
// These are the formats the public SIFT/GIST/Audio datasets ship in, so real
// data can replace the synthetic profiles without code changes.

#pragma once
#ifndef C2LSH_VECTOR_IO_H_
#define C2LSH_VECTOR_IO_H_

#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/vector/matrix.h"

namespace c2lsh {

/// Reads an .fvecs file into a matrix. `max_rows = 0` means read everything.
/// Fails with Corruption if rows disagree on dimensionality or the file is
/// truncated mid-record.
Result<FloatMatrix> ReadFvecs(const std::string& path, size_t max_rows = 0);

/// Writes a matrix in .fvecs format.
Status WriteFvecs(const std::string& path, const FloatMatrix& m);

/// Reads an .ivecs file (e.g. published ground-truth neighbor ids).
Result<std::vector<std::vector<int32_t>>> ReadIvecs(const std::string& path,
                                                    size_t max_rows = 0);

/// Writes integer id lists in .ivecs format. All rows may have distinct
/// lengths (the format allows it), matching how ground-truth caches are used.
Status WriteIvecs(const std::string& path, const std::vector<std::vector<int32_t>>& rows);

/// Reads a .bvecs file ([int32 d][d x uint8] per vector — the SIFT1B billion-
/// scale format), widening bytes to floats. `max_rows = 0` reads everything.
Result<FloatMatrix> ReadBvecs(const std::string& path, size_t max_rows = 0);

/// Writes a matrix in .bvecs format. Coordinates must lie in [0, 255] (after
/// rounding); values outside that range fail with InvalidArgument rather
/// than silently saturating.
Status WriteBvecs(const std::string& path, const FloatMatrix& m);

}  // namespace c2lsh

#endif  // C2LSH_VECTOR_IO_H_
