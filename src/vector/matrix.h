// FloatMatrix: dense row-major float storage for datasets and query sets.

#pragma once
#ifndef C2LSH_VECTOR_MATRIX_H_
#define C2LSH_VECTOR_MATRIX_H_

#include <cstddef>
#include <vector>

#include "src/util/result.h"
#include "src/vector/aligned.h"

namespace c2lsh {

/// A dense n x d row-major float matrix. Rows are vectors (objects or
/// queries). Copyable and movable; the copy is deep. The backing buffer is
/// kSimdAlignment-aligned so the SIMD kernel layer's loads start on a cache
/// line (rows themselves are packed at stride dim() — the kernels tolerate
/// any row alignment).
class FloatMatrix {
 public:
  /// The aligned backing store (data() is kSimdAlignment-aligned).
  using Buffer = AlignedVector<float>;

  /// An empty 0 x 0 matrix.
  FloatMatrix() = default;

  /// Creates an n x d matrix of zeros. Returns InvalidArgument if either
  /// dimension is zero or the total size would overflow size_t.
  static Result<FloatMatrix> Create(size_t num_rows, size_t dim);

  /// Wraps an existing buffer (copied). `data.size()` must equal
  /// num_rows * dim.
  static Result<FloatMatrix> FromVector(size_t num_rows, size_t dim,
                                        std::vector<float> data);

  size_t num_rows() const { return num_rows_; }
  size_t dim() const { return dim_; }
  bool empty() const { return num_rows_ == 0; }

  /// Pointer to the start of row i. No bounds check in release builds.
  const float* row(size_t i) const { return data_.data() + i * dim_; }
  float* mutable_row(size_t i) { return data_.data() + i * dim_; }

  /// Element access with bounds known to the caller.
  float at(size_t i, size_t j) const { return data_[i * dim_ + j]; }
  void set(size_t i, size_t j, float v) { data_[i * dim_ + j] = v; }

  const Buffer& data() const { return data_; }

  /// Appends a row (must have exactly dim() elements). Used by streaming
  /// loaders and the dynamic-update tests.
  Status AppendRow(const float* v, size_t len);

  /// In-place L2 normalization of every row; rows with zero norm are left
  /// unchanged. Used to derive angular-distance datasets.
  void NormalizeRows();

 private:
  FloatMatrix(size_t num_rows, size_t dim, Buffer data)
      : num_rows_(num_rows), dim_(dim), data_(std::move(data)) {}

  size_t num_rows_ = 0;
  size_t dim_ = 0;
  Buffer data_;
};

}  // namespace c2lsh

#endif  // C2LSH_VECTOR_MATRIX_H_
