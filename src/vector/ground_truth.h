// Exact k-nearest-neighbor ground truth: computation (multi-threaded brute
// force) and an .ivecs-compatible cache so repeated experiment runs skip the
// O(n * q * d) scan.

#pragma once
#ifndef C2LSH_VECTOR_GROUND_TRUTH_H_
#define C2LSH_VECTOR_GROUND_TRUTH_H_

#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/vector/dataset.h"
#include "src/vector/distance.h"
#include "src/vector/matrix.h"
#include "src/vector/types.h"

namespace c2lsh {

/// Exact top-k neighbors (ascending distance) for every query row.
/// `num_threads = 0` uses the hardware concurrency.
Result<std::vector<NeighborList>> ComputeGroundTruth(const Dataset& data,
                                                     const FloatMatrix& queries, size_t k,
                                                     Metric metric = Metric::kEuclidean,
                                                     size_t num_threads = 0);

/// Saves ground truth as interleaved (id, distance-bits) .ivecs rows.
Status SaveGroundTruth(const std::string& path, const std::vector<NeighborList>& gt);

/// Loads ground truth saved by SaveGroundTruth.
Result<std::vector<NeighborList>> LoadGroundTruth(const std::string& path);

/// Loads the cache if present and consistent with (num_queries, k);
/// otherwise computes and saves it. `path` may be empty to skip caching.
Result<std::vector<NeighborList>> LoadOrComputeGroundTruth(
    const std::string& path, const Dataset& data, const FloatMatrix& queries, size_t k,
    Metric metric = Metric::kEuclidean);

}  // namespace c2lsh

#endif  // C2LSH_VECTOR_GROUND_TRUTH_H_
