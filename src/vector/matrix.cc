#include "src/vector/matrix.h"

#include <cmath>
#include <limits>
#include <string>

namespace c2lsh {

Result<FloatMatrix> FloatMatrix::Create(size_t num_rows, size_t dim) {
  if (num_rows == 0 || dim == 0) {
    return Status::InvalidArgument("FloatMatrix dimensions must be positive, got " +
                                   std::to_string(num_rows) + " x " + std::to_string(dim));
  }
  if (dim != 0 && num_rows > std::numeric_limits<size_t>::max() / dim / sizeof(float)) {
    return Status::InvalidArgument("FloatMatrix size overflows");
  }
  return FloatMatrix(num_rows, dim, Buffer(num_rows * dim, 0.0f));
}

Result<FloatMatrix> FloatMatrix::FromVector(size_t num_rows, size_t dim,
                                            std::vector<float> data) {
  if (num_rows == 0 || dim == 0) {
    return Status::InvalidArgument("FloatMatrix dimensions must be positive");
  }
  if (data.size() != num_rows * dim) {
    return Status::InvalidArgument(
        "FloatMatrix::FromVector: buffer has " + std::to_string(data.size()) +
        " floats, expected " + std::to_string(num_rows * dim));
  }
  // Copy into the aligned backing store (the caller's default-aligned buffer
  // cannot be adopted in place).
  return FloatMatrix(num_rows, dim, Buffer(data.begin(), data.end()));
}

Status FloatMatrix::AppendRow(const float* v, size_t len) {
  if (len != dim_) {
    return Status::InvalidArgument("AppendRow: row has " + std::to_string(len) +
                                   " elements, matrix dim is " + std::to_string(dim_));
  }
  data_.insert(data_.end(), v, v + len);
  ++num_rows_;
  return Status::OK();
}

void FloatMatrix::NormalizeRows() {
  for (size_t i = 0; i < num_rows_; ++i) {
    float* r = mutable_row(i);
    double norm_sq = 0.0;
    for (size_t j = 0; j < dim_; ++j) norm_sq += static_cast<double>(r[j]) * r[j];
    if (norm_sq <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (size_t j = 0; j < dim_; ++j) r[j] *= inv;
  }
}

}  // namespace c2lsh
