#include "src/vector/distance.h"

#include <cmath>

namespace c2lsh {

std::string_view MetricToString(Metric m) {
  switch (m) {
    case Metric::kEuclidean:
      return "euclidean";
    case Metric::kSquaredEuclidean:
      return "squared_euclidean";
    case Metric::kAngular:
      return "angular";
    case Metric::kManhattan:
      return "manhattan";
  }
  return "unknown";
}

double SquaredL2(const float* a, const float* b, size_t d) {
  // Four-way unrolled accumulation: keeps the loop vectorizable under -O2
  // and reduces dependency chains for the double accumulators.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const double d0 = static_cast<double>(a[i]) - b[i];
    const double d1 = static_cast<double>(a[i + 1]) - b[i + 1];
    const double d2 = static_cast<double>(a[i + 2]) - b[i + 2];
    const double d3 = static_cast<double>(a[i + 3]) - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < d; ++i) {
    const double di = static_cast<double>(a[i]) - b[i];
    s0 += di * di;
  }
  return s0 + s1 + s2 + s3;
}

double L2(const float* a, const float* b, size_t d) { return std::sqrt(SquaredL2(a, b, d)); }

double L1(const float* a, const float* b, size_t d) {
  double s0 = 0.0, s1 = 0.0;
  size_t i = 0;
  for (; i + 2 <= d; i += 2) {
    s0 += std::fabs(static_cast<double>(a[i]) - b[i]);
    s1 += std::fabs(static_cast<double>(a[i + 1]) - b[i + 1]);
  }
  for (; i < d; ++i) s0 += std::fabs(static_cast<double>(a[i]) - b[i]);
  return s0 + s1;
}

double Dot(const float* a, const float* b, size_t d) {
  double s0 = 0.0, s1 = 0.0;
  size_t i = 0;
  for (; i + 2 <= d; i += 2) {
    s0 += static_cast<double>(a[i]) * b[i];
    s1 += static_cast<double>(a[i + 1]) * b[i + 1];
  }
  for (; i < d; ++i) s0 += static_cast<double>(a[i]) * b[i];
  return s0 + s1;
}

double SquaredNorm(const float* a, size_t d) { return Dot(a, a, d); }

double Angular(const float* a, const float* b, size_t d) {
  const double na = SquaredNorm(a, d);
  const double nb = SquaredNorm(b, d);
  if (na <= 0.0 || nb <= 0.0) return 1.0;
  const double cosine = Dot(a, b, d) / std::sqrt(na * nb);
  return 1.0 - cosine;
}

double ComputeDistance(Metric metric, const float* a, const float* b, size_t d) {
  switch (metric) {
    case Metric::kEuclidean:
      return L2(a, b, d);
    case Metric::kSquaredEuclidean:
      return SquaredL2(a, b, d);
    case Metric::kAngular:
      return Angular(a, b, d);
    case Metric::kManhattan:
      return L1(a, b, d);
  }
  return 0.0;
}

}  // namespace c2lsh
