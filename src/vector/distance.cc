#include "src/vector/distance.h"

#include <cmath>

#include "src/vector/simd.h"

namespace c2lsh {

// Every kernel routes through the runtime-dispatched SIMD layer
// (src/vector/simd.h): the best ISA the host supports is resolved once at
// first use, and the scalar reference (which preserves the historical
// distance.cc loops exactly) remains the always-available fallback.

std::string_view MetricToString(Metric m) {
  switch (m) {
    case Metric::kEuclidean:
      return "euclidean";
    case Metric::kSquaredEuclidean:
      return "squared_euclidean";
    case Metric::kAngular:
      return "angular";
    case Metric::kManhattan:
      return "manhattan";
  }
  return "unknown";
}

double SquaredL2(const float* a, const float* b, size_t d) {
  return simd::Active().squared_l2(a, b, d);
}

double L2(const float* a, const float* b, size_t d) { return std::sqrt(SquaredL2(a, b, d)); }

double L1(const float* a, const float* b, size_t d) { return simd::Active().l1(a, b, d); }

double Dot(const float* a, const float* b, size_t d) { return simd::Active().dot(a, b, d); }

double SquaredNorm(const float* a, size_t d) { return simd::Active().squared_norm(a, d); }

double Angular(const float* a, const float* b, size_t d) {
  // One fused pass computes the dot product and both norms together.
  double dot = 0.0, na = 0.0, nb = 0.0;
  simd::Active().dot_and_norms(a, b, d, &dot, &na, &nb);
  if (na <= 0.0 || nb <= 0.0) return 1.0;
  return 1.0 - dot / std::sqrt(na * nb);
}

double ComputeDistance(Metric metric, const float* a, const float* b, size_t d) {
  switch (metric) {
    case Metric::kEuclidean:
      return L2(a, b, d);
    case Metric::kSquaredEuclidean:
      return SquaredL2(a, b, d);
    case Metric::kAngular:
      return Angular(a, b, d);
    case Metric::kManhattan:
      return L1(a, b, d);
  }
  return 0.0;
}

}  // namespace c2lsh
