// The 2-stable (Gaussian) projection LSH family of Datar et al. (SoCG 2004):
//
//   h_{a,b}(o) = floor((a . o + b) / w),   a ~ N(0, I_d),  b ~ U[0, w)
//
// This is the base family C2LSH builds its m hash tables from, and the family
// the E2LSH and LSB-forest baselines concatenate.

#pragma once
#ifndef C2LSH_LSH_PSTABLE_H_
#define C2LSH_LSH_PSTABLE_H_

#include <cstdint>
#include <vector>

#include "src/storage/bucket_table.h"
#include "src/util/random.h"
#include "src/util/result.h"
#include "src/vector/aligned.h"
#include "src/vector/matrix.h"

namespace c2lsh {

/// One sampled hash function from the p-stable family.
class PStableHash {
 public:
  /// Samples a function for `dim`-dimensional inputs with bucket width `w`.
  /// The offset b is drawn uniformly from [0, w * offset_span). The classic
  /// family uses offset_span = 1; C2LSH draws from the whole radius schedule
  /// span [0, w * c^{t*}) so that the level-R grid anchor is exactly uniform
  /// modulo w*R for every radius R = c^i <= c^{t*} (virtual rehashing stays a
  /// bona fide LSH at every level).
  static PStableHash Sample(size_t dim, double w, Rng* rng, double offset_span = 1.0);

  /// Reconstructs a function from its raw parts (deserialization). Returns
  /// InvalidArgument for an empty projection or non-positive width.
  static Result<PStableHash> FromParts(std::vector<float> a, double b, double w);

  /// The raw projection (a . o + b) — real-valued, used by query-aware
  /// extensions and tests.
  double Project(const float* v) const;

  /// The quantized bucket id floor(Project(v) / w).
  BucketId Bucket(const float* v) const;

  size_t dim() const { return a_.size(); }
  double w() const { return w_; }
  double b() const { return b_; }
  const std::vector<float>& a() const { return a_; }

 private:
  PStableHash(std::vector<float> a, double b, double w)
      : a_(std::move(a)), b_(b), w_(w) {}

  std::vector<float> a_;
  double b_;
  double w_;
};

/// A family of m i.i.d. p-stable functions sharing (dim, w).
///
/// Besides the individual functions (the unit of serialization and of the
/// query-aware extensions), the family keeps all m projection vectors packed
/// into one contiguous, kSimdAlignment-aligned row-major m x dim matrix
/// (rows padded to packed_stride() floats so every row starts aligned).
/// BucketAll runs as a blocked matrix-vector product over that matrix — all
/// m buckets in one pass over the query — and BucketColumn as a blocked
/// multi-row kernel over the dataset. Both are guaranteed to match the
/// per-function Bucket() exactly, bucket boundaries included, by the kernel
/// layer's dot/dot_rows exactness contract (src/vector/simd.h).
class PStableFamily {
 public:
  /// Samples `m` functions. Deterministic given `seed`. `offset_span` is
  /// forwarded to PStableHash::Sample (see there).
  static Result<PStableFamily> Sample(size_t m, size_t dim, double w, uint64_t seed,
                                      double offset_span = 1.0);

  /// Reassembles a family from reconstructed functions (deserialization).
  /// All functions must share (dim, w).
  static Result<PStableFamily> FromFunctions(std::vector<PStableHash> funcs);

  size_t size() const { return funcs_.size(); }
  size_t dim() const { return dim_; }
  double w() const { return w_; }
  const PStableHash& function(size_t i) const { return funcs_[i]; }

  /// Buckets of one vector under every function, appended to `out`
  /// (resized to size()).
  void BucketAll(const float* v, std::vector<BucketId>* out) const;

  /// Buckets of a whole query block under every function, in one query-major
  /// GEMM-style pass over the packed matrix: `queries` holds num_queries
  /// row-major vectors of dim() floats each, `qstride` (>= dim(), in floats)
  /// apart. `out` is resized to num_queries * size() and laid out
  /// query-major: out[q * size() + i] is query q's bucket under function i —
  /// guaranteed bit-identical to what BucketAll(query_q) puts at index i, by
  /// the dot_rows_multi exactness contract (src/vector/simd.h), so batched
  /// and serial bucketing agree exactly, bucket boundaries included.
  void BucketAllMulti(const float* queries, size_t num_queries, size_t qstride,
                      std::vector<BucketId>* out) const;

  /// Buckets of every row of `data` under function `i`.
  std::vector<BucketId> BucketColumn(const FloatMatrix& data, size_t i) const;

  /// The packed projection matrix: row i is function(i).a(), zero-padded to
  /// packed_stride() floats; the base pointer and every row are
  /// kSimdAlignment-aligned.
  const float* packed_row(size_t i) const { return packed_.data() + i * packed_stride_; }
  size_t packed_stride() const { return packed_stride_; }

  /// Resident bytes of the family: the per-function projection vectors and
  /// offsets plus the packed matrix.
  size_t MemoryBytes() const;

 private:
  PStableFamily(std::vector<PStableHash> funcs, size_t dim, double w);

  std::vector<PStableHash> funcs_;
  size_t dim_ = 0;
  double w_ = 0.0;
  AlignedVector<float> packed_;  ///< m x packed_stride_, rows zero-padded
  size_t packed_stride_ = 0;
};

}  // namespace c2lsh

#endif  // C2LSH_LSH_PSTABLE_H_
