#include "src/lsh/collision_model.h"

#include <cmath>
#include <string>

#include "src/util/math.h"

namespace c2lsh {

Result<CollisionModel> MakeCollisionModel(double w, double c) {
  if (!(w > 0.0)) {
    return Status::InvalidArgument("CollisionModel: w must be positive, got " +
                                   std::to_string(w));
  }
  if (!(c > 1.0)) {
    return Status::InvalidArgument("CollisionModel: c must exceed 1, got " +
                                   std::to_string(c));
  }
  CollisionModel m;
  m.w = w;
  m.c = c;
  m.p1 = PStableCollisionProbability(1.0, w);
  m.p2 = PStableCollisionProbability(c, w);
  m.rho = std::log(1.0 / m.p1) / std::log(1.0 / m.p2);
  return m;
}

double CollisionProbabilityAtRadius(const CollisionModel& model, double s, double R) {
  return PStableCollisionProbability(s, model.w * R);
}

}  // namespace c2lsh
