#include "src/lsh/pstable.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/util/math.h"
#include "src/vector/distance.h"
#include "src/vector/simd.h"

namespace c2lsh {

namespace {
// Projections are produced in bounded chunks so the double scratch stays on
// the stack regardless of m or n.
constexpr size_t kProjectionChunk = 256;
}  // namespace

PStableHash PStableHash::Sample(size_t dim, double w, Rng* rng, double offset_span) {
  std::vector<float> a;
  rng->GaussianVector(dim, &a);
  const double b = rng->Uniform(0.0, w * offset_span);
  return PStableHash(std::move(a), b, w);
}

Result<PStableHash> PStableHash::FromParts(std::vector<float> a, double b, double w) {
  if (a.empty()) {
    return Status::InvalidArgument("PStableHash::FromParts: empty projection vector");
  }
  if (!(w > 0.0)) {
    return Status::InvalidArgument("PStableHash::FromParts: w must be positive");
  }
  return PStableHash(std::move(a), b, w);
}

double PStableHash::Project(const float* v) const {
  return Dot(a_.data(), v, a_.size()) + b_;
}

BucketId PStableHash::Bucket(const float* v) const {
  return static_cast<BucketId>(std::floor(Project(v) / w_));
}

Result<PStableFamily> PStableFamily::Sample(size_t m, size_t dim, double w, uint64_t seed,
                                            double offset_span) {
  if (m == 0) return Status::InvalidArgument("PStableFamily: m must be positive");
  if (dim == 0) return Status::InvalidArgument("PStableFamily: dim must be positive");
  if (!(w > 0.0)) {
    return Status::InvalidArgument("PStableFamily: bucket width w must be positive, got " +
                                   std::to_string(w));
  }
  if (!(offset_span >= 1.0)) {
    return Status::InvalidArgument("PStableFamily: offset_span must be >= 1");
  }
  Rng rng(seed);
  std::vector<PStableHash> funcs;
  funcs.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    funcs.push_back(PStableHash::Sample(dim, w, &rng, offset_span));
  }
  return PStableFamily(std::move(funcs), dim, w);
}

Result<PStableFamily> PStableFamily::FromFunctions(std::vector<PStableHash> funcs) {
  if (funcs.empty()) {
    return Status::InvalidArgument("PStableFamily::FromFunctions: no functions");
  }
  const size_t dim = funcs.front().dim();
  const double w = funcs.front().w();
  for (const PStableHash& h : funcs) {
    if (h.dim() != dim || h.w() != w) {
      return Status::InvalidArgument(
          "PStableFamily::FromFunctions: functions disagree on (dim, w)");
    }
  }
  return PStableFamily(std::move(funcs), dim, w);
}

PStableFamily::PStableFamily(std::vector<PStableHash> funcs, size_t dim, double w)
    : funcs_(std::move(funcs)),
      dim_(dim),
      w_(w),
      packed_stride_(AlignedStride<float>(dim)) {
  packed_.assign(funcs_.size() * packed_stride_, 0.0f);
  for (size_t i = 0; i < funcs_.size(); ++i) {
    const std::vector<float>& a = funcs_[i].a();
    std::copy(a.begin(), a.end(), packed_.begin() + i * packed_stride_);
  }
}

void PStableFamily::BucketAll(const float* v, std::vector<BucketId>* out) const {
  const size_t m = funcs_.size();
  out->resize(m);
  // One blocked matrix-vector pass over the packed matrix instead of m
  // separate projections. dot_rows is bit-identical per row to the dot
  // kernel behind PStableHash::Project (simd.h exactness contract), so the
  // quantized buckets match per-function Bucket() exactly.
  double proj[kProjectionChunk];
  // analyze-ok(cancellation-cadence): bounded m x d projection — one matrix-vector pass per query, well under the poll cadence; the scan loops above this poll.
  for (size_t start = 0; start < m; start += kProjectionChunk) {
    const size_t count = std::min(kProjectionChunk, m - start);
    simd::Active().dot_rows(packed_.data() + start * packed_stride_, count,
                            packed_stride_, dim_, v, proj);
    for (size_t j = 0; j < count; ++j) {
      (*out)[start + j] = static_cast<BucketId>(
          std::floor((proj[j] + funcs_[start + j].b()) / w_));
    }
  }
}

void PStableFamily::BucketAllMulti(const float* queries, size_t num_queries,
                                   size_t qstride,
                                   std::vector<BucketId>* out) const {
  const size_t m = funcs_.size();
  out->resize(num_queries * m);
  if (num_queries == 0) return;
  // One query-major blocked pass per function chunk: each chunk of packed
  // rows is streamed once for the whole query block instead of once per
  // query. dot_rows_multi is bit-identical per (row, query) pair to the dot
  // kernel behind PStableHash::Project (simd.h exactness contract), so every
  // quantized bucket matches the per-query BucketAll exactly.
  //
  // The kernel writes function-major (proj[j * num_queries + q]); the
  // scatter below transposes into the query-major output layout. The scratch
  // is heap-sized by the query count, amortized over the whole batch.
  std::vector<double> proj(std::min(kProjectionChunk, m) * num_queries);
  // analyze-ok(cancellation-cadence): bounded m x d x B projection — one blocked pass per query batch, before any scan loop polls.
  for (size_t start = 0; start < m; start += kProjectionChunk) {
    const size_t count = std::min(kProjectionChunk, m - start);
    simd::Active().dot_rows_multi(packed_.data() + start * packed_stride_,
                                  count, packed_stride_, dim_, queries,
                                  num_queries, qstride, proj.data());
    // analyze-ok(cancellation-cadence): bounded chunk x B quantization scatter of the projection pass above; runs once per batch before any scan loop polls.
    for (size_t j = 0; j < count; ++j) {
      const double b = funcs_[start + j].b();
      for (size_t q = 0; q < num_queries; ++q) {
        (*out)[q * m + start + j] = static_cast<BucketId>(
            std::floor((proj[j * num_queries + q] + b) / w_));
      }
    }
  }
}

std::vector<BucketId> PStableFamily::BucketColumn(const FloatMatrix& data, size_t i) const {
  const size_t n = data.num_rows();
  std::vector<BucketId> out(n);
  const double b = funcs_[i].b();
  // Blocked multi-row kernel: dataset rows stream through dot_rows against
  // function i's packed (aligned) projection vector. Exact commutativity of
  // the dot kernel keeps every bucket identical to h.Bucket(row).
  double proj[kProjectionChunk];
  for (size_t start = 0; start < n; start += kProjectionChunk) {
    const size_t count = std::min(kProjectionChunk, n - start);
    simd::Active().dot_rows(data.row(start), count, data.dim(), dim_,
                            packed_row(i), proj);
    for (size_t r = 0; r < count; ++r) {
      out[start + r] = static_cast<BucketId>(std::floor((proj[r] + b) / w_));
    }
  }
  return out;
}

size_t PStableFamily::MemoryBytes() const {
  size_t bytes = packed_.size() * sizeof(float);
  for (const PStableHash& h : funcs_) {
    bytes += h.a().size() * sizeof(float) + 2 * sizeof(double);
  }
  return bytes;
}

}  // namespace c2lsh
