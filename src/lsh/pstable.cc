#include "src/lsh/pstable.h"

#include <cmath>
#include <string>

#include "src/util/math.h"
#include "src/vector/distance.h"

namespace c2lsh {

PStableHash PStableHash::Sample(size_t dim, double w, Rng* rng, double offset_span) {
  std::vector<float> a;
  rng->GaussianVector(dim, &a);
  const double b = rng->Uniform(0.0, w * offset_span);
  return PStableHash(std::move(a), b, w);
}

Result<PStableHash> PStableHash::FromParts(std::vector<float> a, double b, double w) {
  if (a.empty()) {
    return Status::InvalidArgument("PStableHash::FromParts: empty projection vector");
  }
  if (!(w > 0.0)) {
    return Status::InvalidArgument("PStableHash::FromParts: w must be positive");
  }
  return PStableHash(std::move(a), b, w);
}

double PStableHash::Project(const float* v) const {
  return Dot(a_.data(), v, a_.size()) + b_;
}

BucketId PStableHash::Bucket(const float* v) const {
  return static_cast<BucketId>(std::floor(Project(v) / w_));
}

Result<PStableFamily> PStableFamily::Sample(size_t m, size_t dim, double w, uint64_t seed,
                                            double offset_span) {
  if (m == 0) return Status::InvalidArgument("PStableFamily: m must be positive");
  if (dim == 0) return Status::InvalidArgument("PStableFamily: dim must be positive");
  if (!(w > 0.0)) {
    return Status::InvalidArgument("PStableFamily: bucket width w must be positive, got " +
                                   std::to_string(w));
  }
  if (!(offset_span >= 1.0)) {
    return Status::InvalidArgument("PStableFamily: offset_span must be >= 1");
  }
  Rng rng(seed);
  std::vector<PStableHash> funcs;
  funcs.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    funcs.push_back(PStableHash::Sample(dim, w, &rng, offset_span));
  }
  return PStableFamily(std::move(funcs), dim, w);
}

Result<PStableFamily> PStableFamily::FromFunctions(std::vector<PStableHash> funcs) {
  if (funcs.empty()) {
    return Status::InvalidArgument("PStableFamily::FromFunctions: no functions");
  }
  const size_t dim = funcs.front().dim();
  const double w = funcs.front().w();
  for (const PStableHash& h : funcs) {
    if (h.dim() != dim || h.w() != w) {
      return Status::InvalidArgument(
          "PStableFamily::FromFunctions: functions disagree on (dim, w)");
    }
  }
  return PStableFamily(std::move(funcs), dim, w);
}

void PStableFamily::BucketAll(const float* v, std::vector<BucketId>* out) const {
  out->resize(funcs_.size());
  for (size_t i = 0; i < funcs_.size(); ++i) {
    (*out)[i] = funcs_[i].Bucket(v);
  }
}

std::vector<BucketId> PStableFamily::BucketColumn(const FloatMatrix& data, size_t i) const {
  std::vector<BucketId> out(data.num_rows());
  const PStableHash& h = funcs_[i];
  for (size_t r = 0; r < data.num_rows(); ++r) {
    out[r] = h.Bucket(data.row(r));
  }
  return out;
}

}  // namespace c2lsh
