// The analytic collision model of the p-stable family: p1, p2 and the LSH
// quality exponent rho for a given (w, c). C2LSH's parameterization
// (core/params.h) and the baselines' (K, L) selection are both derived from
// these quantities.

#pragma once
#ifndef C2LSH_LSH_COLLISION_MODEL_H_
#define C2LSH_LSH_COLLISION_MODEL_H_

#include "src/util/result.h"

namespace c2lsh {

/// Collision probabilities of one p-stable function at the guarantee
/// boundary distances. Scale-free: p(R, wR) == p(1, w) for every radius R in
/// the virtual-rehashing schedule, so one (p1, p2) pair covers all rounds.
struct CollisionModel {
  double w = 1.0;   ///< base bucket width
  double c = 2.0;   ///< approximation ratio
  double p1 = 0.0;  ///< collision prob. at distance R (i.e. p(1; w))
  double p2 = 0.0;  ///< collision prob. at distance cR (i.e. p(c; w))
  double rho = 0.0; ///< ln(1/p1) / ln(1/p2), the query exponent
};

/// Builds the model. Requires w > 0 and c > 1.
Result<CollisionModel> MakeCollisionModel(double w, double c);

/// Collision probability of one function for two points at distance `s`
/// under virtual rehashing at radius `R` (bucket width w * R).
double CollisionProbabilityAtRadius(const CollisionModel& model, double s, double R);

}  // namespace c2lsh

#endif  // C2LSH_LSH_COLLISION_MODEL_H_
