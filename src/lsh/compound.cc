#include "src/lsh/compound.h"

#include "src/util/math.h"

namespace c2lsh {

Result<CompoundHash> CompoundHash::Sample(size_t K, size_t dim, double w, uint64_t seed) {
  C2LSH_ASSIGN_OR_RETURN(PStableFamily family, PStableFamily::Sample(K, dim, w, seed));
  Rng rng(SplitMix64(seed ^ 0xc2f7a3d1e5b90a17ULL));
  std::vector<uint64_t> mix(K);
  for (size_t i = 0; i < K; ++i) {
    mix[i] = rng.Next64() | 1ULL;  // odd multipliers are invertible mod 2^64
  }
  return CompoundHash(std::move(family), std::move(mix), rng.Next64());
}

void CompoundHash::Components(const float* v, std::vector<BucketId>* out) const {
  family_.BucketAll(v, out);
}

uint64_t CompoundHash::KeyFromComponents(const std::vector<BucketId>& comps) const {
  uint64_t h = tweak_;
  for (size_t i = 0; i < comps.size(); ++i) {
    h = SplitMix64(h ^ (static_cast<uint64_t>(comps[i]) * mix_[i]));
  }
  return h;
}

uint64_t CompoundHash::Key(const float* v) const {
  std::vector<BucketId> comps;
  Components(v, &comps);
  return KeyFromComponents(comps);
}

uint64_t CompoundHash::KeyAtRadius(const float* v, long long R) const {
  std::vector<BucketId> comps;
  Components(v, &comps);
  for (BucketId& b : comps) {
    b = FloorDiv(b, R);
  }
  uint64_t h = KeyFromComponents(comps);
  return SplitMix64(h ^ static_cast<uint64_t>(R));
}

}  // namespace c2lsh
