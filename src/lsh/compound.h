// Compound (concatenated) hashing for the static-concatenation baselines:
// G(o) = (h_1(o), ..., h_K(o)), reduced to a 64-bit table key. E2LSH builds
// L such compound functions; LSB-forest z-orders the component values
// instead (see baselines/lsb).

#pragma once
#ifndef C2LSH_LSH_COMPOUND_H_
#define C2LSH_LSH_COMPOUND_H_

#include <cstdint>
#include <vector>

#include "src/lsh/pstable.h"
#include "src/util/result.h"

namespace c2lsh {

/// One compound hash G = (h_1 .. h_K) over the p-stable family.
class CompoundHash {
 public:
  /// Samples K component functions. Deterministic given `seed`.
  static Result<CompoundHash> Sample(size_t K, size_t dim, double w, uint64_t seed);

  size_t K() const { return family_.size(); }
  const PStableFamily& family() const { return family_; }

  /// Component bucket ids of a vector, written into `out`.
  void Components(const float* v, std::vector<BucketId>* out) const;

  /// 64-bit key of the component vector. Two objects share a key iff their
  /// component vectors are (with overwhelming probability over the random
  /// mixing constants) identical; the mixing constants are part of the
  /// sampled state so keys are stable across calls.
  uint64_t Key(const float* v) const;

  /// Key computed from precomputed component buckets (used by multi-probe
  /// style perturbation and by tests).
  uint64_t KeyFromComponents(const std::vector<BucketId>& comps) const;

  /// Components at a widened radius R (virtual rehashing applied to a
  /// compound function): component i becomes floor(h_i / R). Keys at
  /// different radii are deliberately distinct (R is mixed in).
  uint64_t KeyAtRadius(const float* v, long long R) const;

 private:
  CompoundHash(PStableFamily family, std::vector<uint64_t> mix, uint64_t tweak)
      : family_(std::move(family)), mix_(std::move(mix)), tweak_(tweak) {}

  PStableFamily family_;
  std::vector<uint64_t> mix_;  // one odd multiplier per component
  uint64_t tweak_;             // per-compound-function salt
};

}  // namespace c2lsh

#endif  // C2LSH_LSH_COMPOUND_H_
