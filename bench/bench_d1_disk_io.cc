// Experiment D1 — validating the simulated I/O model against measured disk
// I/O.
//
// The in-memory index *simulates* the paper's I/O-cost metric through the
// analytic PageModel; the disk-resident index *measures* it as buffer-pool
// misses over a real page file. This experiment runs identical queries
// through both and sweeps the pool size, showing (i) the measured cold-pool
// cost tracks the simulated cost, and (ii) how a growing buffer absorbs
// index I/O — the knob the paper's external-memory setting implies.

#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "src/core/disk_index.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser =
      bench::MakeStandardParser("D1: simulated vs measured I/O; pool-size sweep");
  parser.AddInt("k", 10, "neighbors per query");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t k = static_cast<size_t>(parser.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::World world = bench::MakeWorld(DatasetProfile::kMnist, n, nq, k, seed);
  const C2lshOptions options = bench::DefaultC2lsh(seed);

  // Simulated: the in-memory index's analytic charge (index + data pages).
  auto mem = C2lshIndex::Build(world.data, options);
  bench::DieIf(mem.status(), "mem build");
  double sim_pages = 0;
  for (size_t q = 0; q < nq; ++q) {
    C2lshQueryStats stats;
    auto r = mem->Query(world.data, world.queries.row(q), k, &stats);
    bench::DieIf(r.status(), "mem query");
    sim_pages += static_cast<double>(stats.index_pages + stats.data_pages);
  }
  sim_pages /= static_cast<double>(nq);

  const std::string path =
      (std::filesystem::temp_directory_path() / "c2lsh_bench_d1.pf").string();

  bench::PrintHeader("D1",
                     "query I/O: simulated model vs measured buffer-pool misses "
                     "(self-contained index: bucket probes + vector reads)");
  std::printf("simulated (analytic PageModel): %.0f pages/query (index + data)\n\n",
              sim_pages);

  TablePrinter table({"pool pages", "pool MiB", "cold misses/query", "warm misses/query",
                      "warm hit rate"});
  for (size_t pool_pages : {64u, 256u, 1024u, 4096u, 16384u}) {
    {
      auto built = DiskC2lshIndex::Build(world.data, options, path, 4096);
      bench::DieIf(built.status(), "disk build");
    }
    auto disk = DiskC2lshIndex::Open(path, pool_pages);
    bench::DieIf(disk.status(), "disk open");

    // Cold pass: self-contained queries (vector reads are measured I/O too).
    double cold = 0;
    for (size_t q = 0; q < nq; ++q) {
      DiskQueryStats stats;
      auto r = disk->Query(world.queries.row(q), k, &stats);
      bench::DieIf(r.status(), "disk query");
      cold += static_cast<double>(stats.pool_misses);
    }
    cold /= static_cast<double>(nq);
    // Warm pass (same queries again).
    double warm = 0, hits = 0;
    for (size_t q = 0; q < nq; ++q) {
      DiskQueryStats stats;
      auto r = disk->Query(world.queries.row(q), k, &stats);
      bench::DieIf(r.status(), "disk query warm");
      warm += static_cast<double>(stats.pool_misses);
      hits += static_cast<double>(stats.pool_hits);
    }
    warm /= static_cast<double>(nq);
    hits /= static_cast<double>(nq);
    table.AddRow(
        {TablePrinter::FmtInt(pool_pages),
         TablePrinter::Fmt(static_cast<double>(pool_pages) * 4096 / (1 << 20), 1),
         TablePrinter::Fmt(cold, 0), TablePrinter::Fmt(warm, 0),
         TablePrinter::Fmt(hits / std::max(1.0, hits + warm), 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::filesystem::remove(path);
  std::printf(
      "\nShape check: the cold-pool measured misses sit at the same order as\n"
      "the simulated model (the model charges re-reads the pool may cache, so\n"
      "it upper-bounds small pools' behaviour); warm misses fall toward zero\n"
      "once the pool exceeds the per-query working set.\n");
  bench::MaybeWriteTrace(parser, "c2lsh-d1_disk_io");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
