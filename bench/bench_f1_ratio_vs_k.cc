// Figure F1 — overall ratio vs k, per dataset profile.
//
// Regenerates the paper's accuracy figure: for k in {1,2,5,10,20,50,100},
// the mean overall (distance) ratio of C2LSH vs LSB-forest vs E2LSH, with
// the exact scan as the ratio-1.0 floor. Expected shape: all methods stay
// well below the c^2 = 4 guarantee; C2LSH matches or beats LSB-forest.

#include <cstdio>

#include "bench/bench_common.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser = bench::MakeStandardParser("F1: overall ratio vs k");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::PrintHeader("F1", "overall ratio vs k (lower is better, 1.0 = exact)");
  const std::vector<size_t> ks = bench::PaperKs();
  for (DatasetProfile profile : AllDatasetProfiles()) {
    bench::World world = bench::MakeWorld(profile, n, nq, ks.back(), seed);
    auto methods = bench::BuildAllMethods(world, seed);
    const auto rows = bench::RunKSweep(world, &methods, ks);

    std::printf("\n[%s]  n=%zu  d=%zu  queries=%zu\n", world.name.c_str(),
                world.data.size(), world.data.dim(), world.queries.num_rows());
    std::vector<std::string> headers = {"method"};
    for (size_t k : ks) headers.push_back("k=" + std::to_string(k));
    TablePrinter table(headers);
    for (size_t m = 0; m < rows.size(); m += ks.size()) {
      std::vector<std::string> cells = {rows[m].method};
      for (size_t j = 0; j < ks.size(); ++j) {
        cells.push_back(TablePrinter::Fmt(rows[m + j].result.mean_ratio, 4));
      }
      table.AddRow(std::move(cells));
    }
    std::printf("%s", table.ToString().c_str());
  }
  bench::MaybeWriteTrace(parser, "c2lsh-f1_ratio_vs_k");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
