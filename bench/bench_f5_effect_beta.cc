// Figure F5 — effect of the false-positive budget beta.
//
// beta*n bounds how many candidates C2LSH verifies before giving up on the
// current radius (termination condition T2). A larger budget verifies more
// candidates — better ratio/recall at higher I/O. The paper fixes
// beta*n = 100; this sweep shows the knob's whole curve.

#include <cstdio>

#include "bench/bench_common.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser = bench::MakeStandardParser("F5: effect of the beta*n budget");
  parser.AddInt("k", 10, "neighbors per query");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t k = static_cast<size_t>(parser.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::PrintHeader("F5", "C2LSH accuracy/cost vs false-positive budget beta*n");
  bench::World world = bench::MakeWorld(DatasetProfile::kMnist, n, nq, k, seed);

  TablePrinter table({"beta*n", "m", "l", "ratio", "recall", "pages/query",
                      "cand/query", "ms/query"});
  for (double budget : {50.0, 100.0, 200.0, 400.0, 800.0}) {
    C2lshOptions o = bench::DefaultC2lsh(seed);
    o.beta = budget / static_cast<double>(n);
    auto method = MakeC2lshMethod(world.data, o);
    bench::DieIf(method.status(), "c2lsh build");
    auto r = RunWorkload(method->get(), world.data, world.queries, world.gt, k);
    bench::DieIf(r.status(), "workload");
    auto derived = ComputeDerivedParams(o, n);
    bench::DieIf(derived.status(), "params");
    table.AddRow({TablePrinter::Fmt(budget, 0), TablePrinter::FmtInt(derived->m),
                  TablePrinter::FmtInt(derived->l), TablePrinter::Fmt(r->mean_ratio, 4),
                  TablePrinter::Fmt(r->mean_recall, 3),
                  TablePrinter::Fmt(r->mean_total_pages, 0),
                  TablePrinter::Fmt(r->mean_candidates, 1),
                  TablePrinter::Fmt(r->mean_query_millis, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nShape check: candidates verified grow ~linearly with the budget; the\n"
      "ratio improves and saturates; note m also shifts because beta enters\n"
      "the Hoeffding bound for m.\n");
  bench::MaybeWriteTrace(parser, "c2lsh-f5_effect_beta");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
