// M1 — google-benchmark micro-benchmarks of the hot paths: p-stable
// hashing, distance kernels, bucket-range probing (the virtual-rehashing
// primitive), collision counting, and end-to-end queries. Also measures the
// sorted-directory layout against a hash-map bucket store (DESIGN.md
// design-choice #3).

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "src/core/index.h"
#include "src/lsh/pstable.h"
#include "src/storage/bucket_table.h"
#include "src/util/random.h"
#include "src/vector/distance.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace {

void BM_SquaredL2(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a, b;
  rng.GaussianVector(d, &a);
  rng.GaussianVector(d, &b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredL2(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquaredL2)->Arg(32)->Arg(128)->Arg(512);

void BM_PStableHash(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(2);
  PStableHash h = PStableHash::Sample(d, 1.0, &rng);
  std::vector<float> v;
  rng.GaussianVector(d, &v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Bucket(v.data()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PStableHash)->Arg(32)->Arg(128)->Arg(512);

void BM_HashAllFunctions(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  auto fam = PStableFamily::Sample(m, 128, 1.0, 3);
  if (!fam.ok()) {
    state.SkipWithError("family sample failed");
    return;
  }
  Rng rng(4);
  std::vector<float> v;
  rng.GaussianVector(128, &v);
  std::vector<BucketId> out;
  for (auto _ : state) {
    fam->BucketAll(v.data(), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_HashAllFunctions)->Arg(64)->Arg(256);

BucketTable MakeRandomTable(size_t n, int64_t bucket_span, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<BucketId, ObjectId>> pairs;
  pairs.reserve(n);
  for (ObjectId i = 0; i < n; ++i) {
    pairs.emplace_back(rng.UniformInt(-bucket_span, bucket_span), i);
  }
  return BucketTable::Build(std::move(pairs));
}

void BM_BucketRangeProbe(benchmark::State& state) {
  const size_t n = 100000;
  const int64_t span = 5000;
  BucketTable table = MakeRandomTable(n, span, 5);
  Rng rng(6);
  const long long R = state.range(0);
  size_t sink = 0;
  for (auto _ : state) {
    const BucketId q = rng.UniformInt(-span, span);
    const BucketId lo = FloorDiv(q, R) * R;
    table.ForEachInRange(lo, lo + R - 1, [&](ObjectId id) { sink += id; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketRangeProbe)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

// Design-choice #3: the same range probe against an unordered_map bucket
// store must touch R separate cells — the layout C2LSH avoids.
void BM_HashMapRangeProbe(benchmark::State& state) {
  const size_t n = 100000;
  const int64_t span = 5000;
  Rng rng(7);
  std::unordered_map<BucketId, std::vector<ObjectId>> map;
  for (ObjectId i = 0; i < n; ++i) {
    map[rng.UniformInt(-span, span)].push_back(i);
  }
  const long long R = state.range(0);
  size_t sink = 0;
  for (auto _ : state) {
    const BucketId q = rng.UniformInt(-span, span);
    const BucketId lo = FloorDiv(q, R) * R;
    for (BucketId b = lo; b < lo + R; ++b) {
      auto it = map.find(b);
      if (it == map.end()) continue;
      for (ObjectId id : it->second) sink += id;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashMapRangeProbe)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_C2lshQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, n, 32, 11);
  if (!pd.ok()) {
    state.SkipWithError("dataset");
    return;
  }
  C2lshOptions o;
  o.seed = 12;
  auto index = C2lshIndex::Build(pd->data, o);
  if (!index.ok()) {
    state.SkipWithError("build");
    return;
  }
  size_t q = 0;
  for (auto _ : state) {
    auto r = index->Query(pd->data, pd->queries.row(q % 32), 10);
    benchmark::DoNotOptimize(r);
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_C2lshQuery)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_BatchQueryThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  // Function-local statics: built once, shared across the thread-count args.
  static ProfileData& pd = *[] {
    auto r = MakeProfileDataset(DatasetProfile::kMnist, 10000, 64, 15);
    static ProfileData d = std::move(r).value();
    return &d;
  }();
  static C2lshIndex& index = *[] {
    C2lshOptions o;
    o.seed = 16;
    auto r = C2lshIndex::Build(pd.data, o);
    static C2lshIndex idx = std::move(r).value();
    return &idx;
  }();
  for (auto _ : state) {
    auto r = index.BatchQuery(pd.data, pd.queries, 10, threads);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BatchQueryThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_C2lshBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto pd = MakeProfileDataset(DatasetProfile::kColor, n, 1, 13);
  if (!pd.ok()) {
    state.SkipWithError("dataset");
    return;
  }
  C2lshOptions o;
  o.seed = 14;
  for (auto _ : state) {
    auto index = C2lshIndex::Build(pd->data, o);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_C2lshBuild)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace c2lsh

BENCHMARK_MAIN();
