// Figure F6 — scalability in n.
//
// C2LSH's candidate count per query is governed by k + beta*n with
// beta = 100/n, i.e. ~constant in n, while the linear scan grows linearly.
// This sweep over n shows the sublinear growth of C2LSH's per-query cost
// (pages and candidates) against the scan.

#include <cstdio>

#include "bench/bench_common.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser = bench::MakeStandardParser("F6: per-query cost vs dataset size n");
  parser.AddInt("k", 10, "neighbors per query");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t k = static_cast<size_t>(parser.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::PrintHeader("F6", "C2LSH cost growth vs n (Mnist profile, k=" +
                               std::to_string(k) + ")");
  TablePrinter table({"n", "method", "ratio", "recall", "pages/query", "cand/query",
                      "ms/query"});
  for (size_t n : {5000u, 10000u, 20000u, 40000u}) {
    bench::World world = bench::MakeWorld(DatasetProfile::kMnist, n, nq, k, seed);
    auto c2 = MakeC2lshMethod(world.data, bench::DefaultC2lsh(seed));
    bench::DieIf(c2.status(), "c2lsh build");
    auto scan = MakeLinearScanMethod(world.data);
    bench::DieIf(scan.status(), "scan");
    for (AnnMethod* method : {c2.value().get(), scan.value().get()}) {
      auto r = RunWorkload(method, world.data, world.queries, world.gt, k);
      bench::DieIf(r.status(), "workload");
      table.AddRow({TablePrinter::FmtInt(n), method->name(),
                    TablePrinter::Fmt(r->mean_ratio, 4),
                    TablePrinter::Fmt(r->mean_recall, 3),
                    TablePrinter::Fmt(r->mean_total_pages, 0),
                    TablePrinter::Fmt(r->mean_candidates, 1),
                    TablePrinter::Fmt(r->mean_query_millis, 3)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nShape check: the scan's candidates equal n (linear), while C2LSH's\n"
      "candidates stay near k + 100 across the whole sweep — the sublinear\n"
      "verification cost the dynamic counting framework buys.\n");
  bench::MaybeWriteTrace(parser, "c2lsh-f6_scalability");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
