// Figure F2 — simulated I/O cost (4KB pages touched) vs k, per profile.
//
// The paper's efficiency figure under its disk-based cost model. Expected
// shape: all approximate methods sit far below the linear scan's sequential
// cost; I/O grows mildly with k (verification-dominated); C2LSH's I/O is
// competitive with LSB-forest at better accuracy (cross-reference F1).

#include <cstdio>

#include "bench/bench_common.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser = bench::MakeStandardParser("F2: I/O cost (pages) vs k");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::PrintHeader("F2", "mean pages touched per query vs k (lower is better)");
  const std::vector<size_t> ks = bench::PaperKs();
  for (DatasetProfile profile : AllDatasetProfiles()) {
    bench::World world = bench::MakeWorld(profile, n, nq, ks.back(), seed);
    auto methods = bench::BuildAllMethods(world, seed);
    const auto rows = bench::RunKSweep(world, &methods, ks);

    std::printf("\n[%s]  n=%zu  d=%zu\n", world.name.c_str(), world.data.size(),
                world.data.dim());
    std::vector<std::string> headers = {"method"};
    for (size_t k : ks) headers.push_back("k=" + std::to_string(k));
    TablePrinter table(headers);
    for (size_t m = 0; m < rows.size(); m += ks.size()) {
      std::vector<std::string> cells = {rows[m].method};
      for (size_t j = 0; j < ks.size(); ++j) {
        cells.push_back(TablePrinter::Fmt(rows[m + j].result.mean_total_pages, 0));
      }
      table.AddRow(std::move(cells));
    }
    std::printf("%s", table.ToString().c_str());
  }
  bench::MaybeWriteTrace(parser, "c2lsh-f2_io_vs_k");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
