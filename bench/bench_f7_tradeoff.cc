// Figure F7 — the accuracy/cost trade-off frontier (the "best parameters at
// each recall level" methodology the paper's figures are built on).
//
// Each method exposes one quality knob at fixed index parameters:
//   C2LSH       — the false-positive budget beta*n (candidates verified)
//   E2LSH       — the number of tables L
//   LSB-forest  — the candidate budget
//   Multi-Probe — the number of probes T
// This binary sweeps each knob, reports every (recall, pages, ms) point and
// then, per recall level, the cheapest configuration of each method — the
// rows of the paper's cost-at-fixed-recall comparison.

#include <cstdio>
#include <functional>
#include <limits>

#include "bench/bench_common.h"

namespace c2lsh {
namespace {

struct Point {
  std::string method;
  std::string config;
  WorkloadResult result;
};

int Run(int argc, char** argv) {
  ArgParser parser = bench::MakeStandardParser("F7: accuracy/cost trade-off frontier");
  parser.AddInt("k", 10, "neighbors per query");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t k = static_cast<size_t>(parser.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::World world = bench::MakeWorld(DatasetProfile::kMnist, n, nq, k, seed);
  std::vector<Point> points;

  auto add = [&](const std::string& label, const std::string& config,
                 Result<std::unique_ptr<AnnMethod>> method) {
    bench::DieIf(method.status(), label.c_str());
    auto r = RunWorkload(method->get(), world.data, world.queries, world.gt, k);
    bench::DieIf(r.status(), "workload");
    points.push_back(Point{label, config, std::move(r).value()});
  };

  for (double budget : {25.0, 100.0, 400.0, 1600.0}) {
    C2lshOptions o = bench::DefaultC2lsh(seed);
    o.beta = budget / static_cast<double>(n);
    add("C2LSH", "beta*n=" + TablePrinter::Fmt(budget, 0),
        MakeC2lshMethod(world.data, o));
  }
  {
    // High-quality point: tighter delta (more functions) + larger budget.
    C2lshOptions o = bench::DefaultC2lsh(seed);
    o.delta = 0.03;
    o.beta = 1600.0 / static_cast<double>(n);
    add("C2LSH", "delta=0.03,beta*n=1600", MakeC2lshMethod(world.data, o));
  }
  for (size_t L : {8u, 16u, 32u, 64u}) {
    E2lshOptions o = bench::DefaultE2lsh(seed);
    o.L = L;
    add("E2LSH", "L=" + std::to_string(L), MakeE2lshMethod(world.data, o));
  }
  for (size_t budget : {100u, 400u, 1600u}) {
    LsbForestOptions o = bench::DefaultLsb(seed);
    o.candidate_budget = budget;
    add("LSB-forest", "budget=" + std::to_string(budget),
        MakeLsbForestMethod(world.data, o));
  }
  for (size_t T : {4u, 16u, 64u, 256u}) {
    MultiProbeOptions o = bench::DefaultMultiProbe(seed);
    o.num_probes = T;
    add("MultiProbe", "T=" + std::to_string(T), MakeMultiProbeMethod(world.data, o));
  }
  for (double c : {1.05, 1.2, 1.5}) {
    SrsOptions o = bench::DefaultSrs(seed);
    o.c = c;
    add("SRS", "c=" + TablePrinter::Fmt(c, 2), MakeSrsMethod(world.data, o));
  }

  bench::PrintHeader("F7", "all sweep points (k=" + std::to_string(k) + ", Mnist profile)");
  TablePrinter all({"method", "config", "recall", "ratio", "pages/query", "ms/query",
                    "index size"});
  for (const Point& p : points) {
    all.AddRow({p.method, p.config, TablePrinter::Fmt(p.result.mean_recall, 3),
                TablePrinter::Fmt(p.result.mean_ratio, 4),
                TablePrinter::Fmt(p.result.mean_total_pages, 0),
                TablePrinter::Fmt(p.result.mean_query_millis, 3),
                TablePrinter::FmtBytes(p.result.index_bytes)});
  }
  std::printf("%s", all.ToString().c_str());

  std::printf("\nCheapest configuration reaching each recall level:\n");
  TablePrinter frontier({"recall >=", "method", "config", "recall", "pages/query",
                         "ms/query"});
  for (double level : {0.5, 0.7, 0.9}) {
    // Per method, the min-pages config meeting the level.
    for (const char* method : {"C2LSH", "E2LSH", "LSB-forest", "MultiProbe", "SRS"}) {
      const Point* best = nullptr;
      for (const Point& p : points) {
        if (p.method != method || p.result.mean_recall < level) continue;
        if (best == nullptr ||
            p.result.mean_total_pages < best->result.mean_total_pages) {
          best = &p;
        }
      }
      if (best == nullptr) {
        frontier.AddRow({TablePrinter::Fmt(level, 1), method, "(not reached)", "-", "-",
                         "-"});
      } else {
        frontier.AddRow({TablePrinter::Fmt(level, 1), method, best->config,
                         TablePrinter::Fmt(best->result.mean_recall, 3),
                         TablePrinter::Fmt(best->result.mean_total_pages, 0),
                         TablePrinter::Fmt(best->result.mean_query_millis, 3)});
      }
    }
  }
  std::printf("%s", frontier.ToString().c_str());
  std::printf(
      "\nShape check: raising C2LSH's budget (and tightening delta) walks it\n"
      "up the recall axis with proportional page cost, while plain E2LSH\n"
      "plateaus. Well-tuned Multi-Probe is competitive at this scale — but\n"
      "its w must be hand-tuned to the data's distance scale, whereas C2LSH\n"
      "exposes a single budget knob and keeps its per-query guarantee; that\n"
      "robustness (not raw page counts) is the paper's framing.\n");
  bench::MaybeWriteTrace(parser, "c2lsh-f7_tradeoff");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
