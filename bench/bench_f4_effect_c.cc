// Figure F4 — effect of the approximation ratio c on C2LSH.
//
// The paper evaluates c = 2 vs c = 3: a larger c needs far fewer hash
// functions (smaller m -> smaller index, less probing I/O) but admits
// coarser answers (worse ratio / recall). This binary regenerates that
// trade-off per dataset profile.

#include <cstdio>

#include "bench/bench_common.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser = bench::MakeStandardParser("F4: effect of approximation ratio c");
  parser.AddInt("k", 10, "neighbors per query");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t k = static_cast<size_t>(parser.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::PrintHeader("F4", "C2LSH with c=2 vs c=3 (k=" + std::to_string(k) + ")");
  TablePrinter table({"dataset", "c", "m", "l", "index size", "ratio", "recall",
                      "pages/query", "cand/query"});
  for (DatasetProfile profile : AllDatasetProfiles()) {
    bench::World world = bench::MakeWorld(profile, n, nq, k, seed);
    for (double c : {2.0, 3.0}) {
      auto method = MakeC2lshMethod(world.data, bench::DefaultC2lsh(seed, c));
      bench::DieIf(method.status(), "c2lsh build");
      auto r = RunWorkload(method->get(), world.data, world.queries, world.gt, k);
      bench::DieIf(r.status(), "workload");

      auto derived = ComputeDerivedParams(bench::DefaultC2lsh(seed, c), n);
      bench::DieIf(derived.status(), "params");
      table.AddRow({world.name, TablePrinter::Fmt(c, 0),
                    TablePrinter::FmtInt(derived->m), TablePrinter::FmtInt(derived->l),
                    TablePrinter::FmtBytes(r->index_bytes),
                    TablePrinter::Fmt(r->mean_ratio, 4),
                    TablePrinter::Fmt(r->mean_recall, 3),
                    TablePrinter::Fmt(r->mean_total_pages, 0),
                    TablePrinter::Fmt(r->mean_candidates, 1)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nShape check: c=3 shrinks m (and the index) by several-fold while the\n"
      "ratio degrades only mildly — the trade-off the paper reports.\n");
  bench::MaybeWriteTrace(parser, "c2lsh-f4_effect_c");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
