// Ablation A2 — virtual rehashing vs physically rebuilt per-radius tables.
//
// DESIGN.md design-choice #2: C2LSH stores ONE set of base tables and
// derives every radius by widening probe intervals. The alternative a
// static-framework design needs is one physical table set per radius. This
// binary builds both, verifies they produce byte-identical collision sets at
// every radius (correctness of the nested-floor identity), and reports the
// space/build-time multiplier virtual rehashing saves.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/index.h"
#include "src/core/virtual_rehash.h"
#include "src/lsh/pstable.h"
#include "src/storage/bucket_table.h"
#include "src/util/timer.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser =
      bench::MakeStandardParser("A2: virtual rehashing vs physical per-radius tables");
  parser.AddInt("rounds", 8, "radii in the schedule (R = 1..c^(rounds-1))");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t rounds = static_cast<size_t>(parser.GetInt("rounds"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::World world = bench::MakeWorld(DatasetProfile::kColor, n, nq, 1, seed);
  const C2lshOptions opts = bench::DefaultC2lsh(seed);
  auto derived = ComputeDerivedParams(opts, n);
  bench::DieIf(derived.status(), "params");
  const size_t m = derived->m;

  auto family = PStableFamily::Sample(m, world.data.dim(), opts.w, opts.seed);
  bench::DieIf(family.status(), "family");

  // --- Virtual: one set of base tables. ---
  Timer virtual_timer;
  std::vector<BucketTable> base_tables;
  base_tables.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const auto buckets = family->BucketColumn(world.data.vectors(), i);
    std::vector<std::pair<BucketId, ObjectId>> pairs;
    pairs.reserve(buckets.size());
    for (size_t r = 0; r < buckets.size(); ++r) {
      pairs.emplace_back(buckets[r], static_cast<ObjectId>(r));
    }
    base_tables.push_back(BucketTable::Build(std::move(pairs)));
  }
  const double virtual_build = virtual_timer.ElapsedSeconds();
  size_t virtual_bytes = 0;
  for (const auto& t : base_tables) virtual_bytes += t.MemoryBytes();

  // --- Physical: one table set per radius. ---
  Timer physical_timer;
  std::vector<long long> radii;
  long long R = 1;
  for (size_t r = 0; r < rounds; ++r) {
    radii.push_back(R);
    R *= 2;
  }
  std::vector<std::vector<BucketTable>> physical(radii.size());
  for (size_t round = 0; round < radii.size(); ++round) {
    physical[round].reserve(m);
    for (size_t i = 0; i < m; ++i) {
      const auto buckets = family->BucketColumn(world.data.vectors(), i);
      std::vector<std::pair<BucketId, ObjectId>> pairs;
      pairs.reserve(buckets.size());
      for (size_t r = 0; r < buckets.size(); ++r) {
        pairs.emplace_back(FloorDiv(buckets[r], radii[round]),
                           static_cast<ObjectId>(r));
      }
      physical[round].push_back(BucketTable::Build(std::move(pairs)));
    }
  }
  const double physical_build = physical_timer.ElapsedSeconds();
  size_t physical_bytes = 0;
  for (const auto& per_round : physical) {
    for (const auto& t : per_round) physical_bytes += t.MemoryBytes();
  }

  // --- Equivalence check: identical collision sets at every radius. ---
  size_t mismatches = 0;
  size_t checks = 0;
  std::vector<BucketId> qbuckets;
  for (size_t q = 0; q < nq; ++q) {
    family->BucketAll(world.queries.row(q), &qbuckets);
    for (size_t round = 0; round < radii.size(); ++round) {
      for (size_t i = 0; i < m; i += 7) {  // sample tables to keep this quick
        std::vector<ObjectId> via_virtual;
        const BucketRange range = QueryIntervalAtRadius(qbuckets[i], radii[round]);
        base_tables[i].ForEachInRange(range.lo, range.hi,
                                      [&](ObjectId id) { via_virtual.push_back(id); });
        std::vector<ObjectId> via_physical;
        const BucketId level = LevelBucket(qbuckets[i], radii[round]);
        physical[round][i].ForEachInRange(level, level, [&](ObjectId id) {
          via_physical.push_back(id);
        });
        std::sort(via_virtual.begin(), via_virtual.end());
        std::sort(via_physical.begin(), via_physical.end());
        if (via_virtual != via_physical) ++mismatches;
        ++checks;
      }
    }
  }

  bench::PrintHeader("A2", "virtual rehashing vs physical per-radius rebuild");
  TablePrinter table({"variant", "tables", "index size", "build (s)"});
  table.AddRow({"virtual (paper)", TablePrinter::FmtInt(m),
                TablePrinter::FmtBytes(virtual_bytes),
                TablePrinter::Fmt(virtual_build, 3)});
  table.AddRow({"physical per-R", TablePrinter::FmtInt(m * radii.size()),
                TablePrinter::FmtBytes(physical_bytes),
                TablePrinter::Fmt(physical_build, 3)});
  std::printf("%s", table.ToString().c_str());
  std::printf("\nEquivalence: %zu/%zu sampled (query, radius, table) probes identical\n",
              checks - mismatches, checks);
  std::printf(
      "Shape check: identical answers; the physical variant costs ~%zux the\n"
      "space and build time (one table set per radius) — exactly what virtual\n"
      "rehashing eliminates.\n",
      radii.size());
  bench::MaybeWriteTrace(parser, "c2lsh-a2_virtual_rehash");
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
