// M2 — SIMD kernel micro-benchmark.
//
// Times every kernel of the dispatch layer (squared_l2, l1, dot,
// squared_norm, dot_and_norms, dot_rows) plus the end-to-end packed
// PStableFamily::BucketAll on every ISA the host supports, across a sweep of
// dimensions, and reports ns/op, effective GB/s, and the speedup over the
// scalar reference. Results are also written as JSON (--out, default
// BENCH_kernels.json) so the perf trajectory of the kernel layer is recorded
// per PR.
//
// Usage: bench_m2_kernels [--reps 200] [--out BENCH_kernels.json]

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/lsh/pstable.h"
#include "src/util/random.h"
#include "src/util/timer.h"
#include "src/vector/aligned.h"
#include "src/vector/simd.h"

namespace c2lsh {
namespace bench {
namespace {

constexpr size_t kDims[] = {16, 64, 128, 960};
constexpr size_t kBucketAllM = 128;  // family size for the end-to-end pass

struct Measurement {
  std::string kernel;
  std::string isa;
  size_t dim = 0;
  double ns_per_op = 0.0;
  double gb_per_s = 0.0;
  double speedup_vs_scalar = 0.0;
};

// Runs `fn` (one "op") enough times to exceed ~2ms, returns ns per op. The
// double return value of each op is accumulated into a volatile sink so the
// kernel call is not optimized away.
template <typename Fn>
double TimeNsPerOp(size_t reps, Fn&& fn) {
  volatile double sink = 0.0;
  // Warm-up pass (page-in + dispatch resolution).
  for (size_t i = 0; i < 8; ++i) sink = sink + fn();
  double best = 1e300;
  for (int trial = 0; trial < 3; ++trial) {
    Timer timer;
    for (size_t i = 0; i < reps; ++i) sink = sink + fn();
    const double ns = timer.ElapsedSeconds() * 1e9 / static_cast<double>(reps);
    if (ns < best) best = ns;
  }
  (void)sink;
  return best;
}

Measurement Measure(const std::string& kernel, simd::Isa isa, size_t dim,
                    size_t reps, double bytes_per_op, double ns) {
  Measurement m;
  m.kernel = kernel;
  m.isa = std::string(simd::IsaName(isa));
  m.dim = dim;
  m.ns_per_op = ns;
  m.gb_per_s = bytes_per_op / ns;  // bytes/ns == GB/s
  (void)reps;
  return m;
}

void PrintRow(const Measurement& m) {
  std::printf("  %-14s %-7s d=%-5zu %10.1f ns/op %8.2f GB/s %8.2fx vs scalar\n",
              m.kernel.c_str(), m.isa.c_str(), m.dim, m.ns_per_op, m.gb_per_s,
              m.speedup_vs_scalar);
}

void WriteJson(const std::string& path, const std::vector<Measurement>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    std::fprintf(f,
                 "  {\"kernel\": \"%s\", \"isa\": \"%s\", \"dim\": %zu, "
                 "\"ns_per_op\": %.3f, \"gb_per_s\": %.4f, "
                 "\"speedup_vs_scalar\": %.4f}%s\n",
                 m.kernel.c_str(), m.isa.c_str(), m.dim, m.ns_per_op, m.gb_per_s,
                 m.speedup_vs_scalar, (i + 1 < rows.size()) ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  ArgParser parser(
      "M2: ns/op and GB/s for every SIMD kernel x ISA x dim, plus the packed "
      "BucketAll pass; emits BENCH_kernels.json");
  parser.AddInt("reps", 2000, "kernel invocations per timing trial");
  parser.AddString("out", "BENCH_kernels.json", "JSON output path");
  ParseOrDie(&parser, argc, argv);
  const size_t reps = static_cast<size_t>(parser.GetInt("reps"));

  const simd::Isa original = simd::ActiveIsa();
  const std::vector<simd::Isa> isas = simd::SupportedIsas();
  std::printf("supported ISAs:");
  for (simd::Isa isa : isas) std::printf(" %s", std::string(simd::IsaName(isa)).c_str());
  std::printf("  (active: %s)\n", std::string(simd::IsaName(original)).c_str());

  std::vector<Measurement> rows;
  PrintHeader("M2", "SIMD kernel microbenchmarks");

  for (size_t dim : kDims) {
    Rng rng(99 + dim);
    std::vector<float> a, b;
    rng.GaussianVector(dim, &a);
    rng.GaussianVector(dim, &b);

    // Pre-built family for the end-to-end BucketAll pass at this dim.
    auto fam = PStableFamily::Sample(kBucketAllM, dim, 4.0, 7);
    DieIf(fam.status(), "family sample");
    std::vector<BucketId> buckets;

    // kernel name -> (bytes touched per op, runner). The runner reads the
    // table freshly each call so ForceIsa takes effect.
    struct Case {
      const char* name;
      double bytes;
    };
    const double vec_bytes = static_cast<double>(dim * sizeof(float));
    const Case cases[] = {
        {"squared_l2", 2 * vec_bytes},
        {"l1", 2 * vec_bytes},
        {"dot", 2 * vec_bytes},
        {"squared_norm", vec_bytes},
        {"dot_and_norms", 2 * vec_bytes},
        {"bucket_all", static_cast<double>(kBucketAllM) * vec_bytes},
    };

    std::vector<double> scalar_ns(std::size(cases), 0.0);
    for (simd::Isa isa : isas) {
      if (!simd::ForceIsa(isa)) continue;
      for (size_t ci = 0; ci < std::size(cases); ++ci) {
        const std::string name = cases[ci].name;
        double ns = 0.0;
        if (name == "squared_l2") {
          ns = TimeNsPerOp(reps, [&] { return simd::Active().squared_l2(a.data(), b.data(), dim); });
        } else if (name == "l1") {
          ns = TimeNsPerOp(reps, [&] { return simd::Active().l1(a.data(), b.data(), dim); });
        } else if (name == "dot") {
          ns = TimeNsPerOp(reps, [&] { return simd::Active().dot(a.data(), b.data(), dim); });
        } else if (name == "squared_norm") {
          ns = TimeNsPerOp(reps, [&] { return simd::Active().squared_norm(a.data(), dim); });
        } else if (name == "dot_and_norms") {
          ns = TimeNsPerOp(reps, [&] {
            double d0, na, nb;
            simd::Active().dot_and_norms(a.data(), b.data(), dim, &d0, &na, &nb);
            return d0 + na + nb;
          });
        } else {  // bucket_all — the end-to-end packed matrix-vector pass
          ns = TimeNsPerOp(reps / 8 + 1, [&] {
            fam->BucketAll(a.data(), &buckets);
            return static_cast<double>(buckets[0]);
          });
        }
        if (isa == simd::Isa::kScalar) scalar_ns[ci] = ns;
        Measurement m = Measure(name, isa, dim, reps, cases[ci].bytes, ns);
        m.speedup_vs_scalar = (scalar_ns[ci] > 0.0) ? scalar_ns[ci] / ns : 1.0;
        PrintRow(m);
        rows.push_back(m);
      }
    }
  }
  simd::ForceIsa(original);

  WriteJson(parser.GetString("out"), rows);
  std::printf("\nwrote %s (%zu rows)\n", parser.GetString("out").c_str(), rows.size());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::bench::Main(argc, argv); }
