// Ablation A3 — the hash-offset span.
//
// The paper draws the p-stable offset b* from [0, w * c^{t*}) — the whole
// radius schedule — so the level-R grid anchor is uniform modulo w*R at
// every level. A narrower span (the textbook [0, w) of Datar et al.) makes
// R = 1 identical, but at large radii the floor-aligned window anchored near
// 0 can never cross the sign boundary: objects whose projection falls on the
// other side of 0 from the query stop accumulating collisions no matter how
// far R grows, capping attainable collision counts below m (and hence
// recall, for queries whose neighbors straddle the boundary).
//
// This binary measures that failure directly: the fraction of objects that
// reach the full count m at a huge radius, under both spans.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/virtual_rehash.h"
#include "src/lsh/pstable.h"
#include "src/storage/bucket_table.h"

namespace c2lsh {
namespace {

struct SpanResult {
  double mean_fraction_full = 0.0;  // objects reaching count m at huge R
  double min_fraction_full = 1.0;
};

SpanResult MeasureSpan(const bench::World& world, size_t m, double offset_span,
                       uint64_t seed, long long big_radius) {
  auto family = PStableFamily::Sample(m, world.data.dim(), 1.0, seed, offset_span);
  bench::DieIf(family.status(), "family");
  std::vector<BucketTable> tables;
  tables.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const auto buckets = family->BucketColumn(world.data.vectors(), i);
    std::vector<std::pair<BucketId, ObjectId>> pairs;
    for (size_t r = 0; r < buckets.size(); ++r) {
      pairs.emplace_back(buckets[r], static_cast<ObjectId>(r));
    }
    tables.push_back(BucketTable::Build(std::move(pairs)));
  }

  SpanResult result;
  std::vector<BucketId> qb;
  for (size_t q = 0; q < world.queries.num_rows(); ++q) {
    family->BucketAll(world.queries.row(q), &qb);
    std::vector<uint32_t> counts(world.data.size(), 0);
    for (size_t i = 0; i < m; ++i) {
      const BucketRange range = QueryIntervalAtRadius(qb[i], big_radius);
      tables[i].ForEachInRange(range.lo, range.hi, [&](ObjectId id) { ++counts[id]; });
    }
    size_t full = 0;
    for (uint32_t c : counts) {
      if (c == m) ++full;
    }
    const double frac = static_cast<double>(full) / static_cast<double>(counts.size());
    result.mean_fraction_full += frac;
    result.min_fraction_full = std::min(result.min_fraction_full, frac);
  }
  result.mean_fraction_full /= static_cast<double>(world.queries.num_rows());
  return result;
}

int Run(int argc, char** argv) {
  ArgParser parser = bench::MakeStandardParser(
      "A3: offset span [0, w) vs the paper's [0, w*c^t*) — coverage at large radii");
  parser.AddInt("m", 64, "hash functions to sample");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t m = static_cast<size_t>(parser.GetInt("m"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::World world = bench::MakeWorld(DatasetProfile::kColor, n, nq, 1, seed);
  const long long schedule_cap = 1LL << 24;

  bench::PrintHeader("A3",
                     "fraction of objects reaching the full collision count m at R = 2^24");
  TablePrinter table({"offset span", "mean full-coverage fraction", "worst query"});
  const SpanResult narrow = MeasureSpan(world, m, 1.0, seed, schedule_cap);
  const SpanResult wide =
      MeasureSpan(world, m, static_cast<double>(schedule_cap), seed, schedule_cap);
  table.AddRow({"[0, w)        (textbook)", TablePrinter::Fmt(narrow.mean_fraction_full, 4),
                TablePrinter::Fmt(narrow.min_fraction_full, 4)});
  table.AddRow({"[0, w*c^t*)   (paper)", TablePrinter::Fmt(wide.mean_fraction_full, 4),
                TablePrinter::Fmt(wide.min_fraction_full, 4)});
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nShape check: with the textbook span, objects on the far side of the\n"
      "projection's sign boundary never co-locate with the query — the full-\n"
      "coverage fraction stalls near the probability that both share a sign\n"
      "window in all m functions (~0 for m this large). The paper's schedule-\n"
      "wide span reaches 1.0: every object eventually collides in every\n"
      "table, which both the termination proof and the exhaustive-fallback\n"
      "round rely on. (This repo's C2lshIndex uses the paper's span.)\n");
  bench::MaybeWriteTrace(parser, "c2lsh-a3_offset_span");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
