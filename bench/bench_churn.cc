// bench_churn — online mutability under interleaved load.
//
// Both index modes run the same churn loop: every round inserts one new
// object, deletes one existing object, and answers queries in between; a
// compaction folds the accumulated deltas every --compact_every rounds.
// The table reports per-operation latency percentiles — the cost of a
// WAL-synced mutation (disk mode), of an overlay mutation (memory mode),
// and of queries that must merge base runs with live deltas.
//
// With --metrics_out (e.g. --metrics_out BENCH_churn.json) the run emits a
// JSON metrics report: one row per (mode, operation) with the full latency
// series, plus the registry dump carrying the wal_* counters and the
// overlay/tombstone/compaction gauges this workload exercises.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/disk_index.h"
#include "src/core/index.h"
#include "src/util/timer.h"

namespace c2lsh {
namespace {

double Pct(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Wraps one operation's latency series as a metrics-report row.
WorkloadResult MakeRow(const std::string& name, size_t k, std::vector<double> ms) {
  WorkloadResult r;
  r.method_name = name;
  r.k = k;
  r.num_queries = ms.size();
  double sum = 0.0;
  for (double m : ms) sum += m;
  r.mean_query_millis = ms.empty() ? 0.0 : sum / static_cast<double>(ms.size());
  r.p50_query_millis = Pct(ms, 0.50);
  r.p95_query_millis = Pct(ms, 0.95);
  r.p99_query_millis = Pct(ms, 0.99);
  r.query_millis = std::move(ms);
  return r;
}

struct ChurnLatencies {
  std::vector<double> insert_ms, delete_ms, query_ms, compact_ms;
};

void PrintChurn(TablePrinter* table, const std::string& mode,
                const ChurnLatencies& lat) {
  const struct {
    const char* op;
    const std::vector<double>& ms;
  } rows[] = {{"insert", lat.insert_ms},
              {"delete", lat.delete_ms},
              {"query", lat.query_ms},
              {"compact", lat.compact_ms}};
  for (const auto& row : rows) {
    double sum = 0.0;
    for (double m : row.ms) sum += m;
    table->AddRow({mode, row.op, TablePrinter::FmtInt(static_cast<long long>(row.ms.size())),
                   TablePrinter::Fmt(row.ms.empty()
                                         ? 0.0
                                         : sum / static_cast<double>(row.ms.size())),
                   TablePrinter::Fmt(Pct(row.ms, 0.50)), TablePrinter::Fmt(Pct(row.ms, 0.95)),
                   TablePrinter::Fmt(Pct(row.ms, 0.99))});
  }
}

int Run(int argc, char** argv) {
  ArgParser parser = bench::MakeStandardParser(
      "churn: interleaved insert/delete/query with periodic compaction, "
      "memory and disk (WAL-backed) index modes");
  parser.AddInt("k", 10, "neighbors per query");
  parser.AddInt("rounds", 256, "churn rounds (1 insert + 1 delete + queries each)");
  parser.AddInt("compact_every", 64, "rounds between compactions");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t k = static_cast<size_t>(parser.GetInt("k"));
  const size_t rounds = static_cast<size_t>(parser.GetInt("rounds"));
  const size_t compact_every =
      std::max<size_t>(1, static_cast<size_t>(parser.GetInt("compact_every")));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  // The profile carries n base rows plus one fresh row per churn round; the
  // full dataset resolves any id a query may return mid-churn.
  auto pd = MakeProfileDataset(DatasetProfile::kColor, n + rounds, nq, seed);
  bench::DieIf(pd.status(), "profile dataset");
  const size_t dim = pd->data.dim();
  std::vector<float> head;
  head.reserve(n * dim);
  for (size_t i = 0; i < n; ++i) {
    const float* v = pd->data.object(static_cast<ObjectId>(i));
    head.insert(head.end(), v, v + dim);
  }
  auto base_m = FloatMatrix::FromVector(n, dim, std::move(head));
  bench::DieIf(base_m.status(), "base matrix");
  auto base = Dataset::Create("base", std::move(base_m).value());
  bench::DieIf(base.status(), "base dataset");

  const C2lshOptions options = bench::DefaultC2lsh(seed);
  bench::PrintHeader("CHURN", "online mutability: interleaved insert/delete/query");
  std::printf("n=%zu rounds=%zu compact_every=%zu k=%zu queries=%zu\n\n", n, rounds,
              compact_every, k, nq);

  std::vector<WorkloadResult> report;
  TablePrinter table({"mode", "op", "ops", "mean ms", "p50 ms", "p95 ms", "p99 ms"});

  // --- memory mode: overlay mutation + snapshot queries ------------------
  {
    auto index = C2lshIndex::Build(*base, options);
    bench::DieIf(index.status(), "mem build");
    ChurnLatencies lat;
    Timer t;
    for (size_t r = 0; r < rounds; ++r) {
      const ObjectId ins = static_cast<ObjectId>(n + r);
      t.Reset();
      bench::DieIf(index->Insert(ins, pd->data.object(ins)), "mem insert");
      lat.insert_ms.push_back(t.ElapsedMillis());
      t.Reset();
      bench::DieIf(index->Delete(static_cast<ObjectId>((r * 37) % n)), "mem delete");
      lat.delete_ms.push_back(t.ElapsedMillis());
      const float* q = pd->queries.row(r % nq);
      t.Reset();
      auto res = index->Query(pd->data, q, k);
      lat.query_ms.push_back(t.ElapsedMillis());
      bench::DieIf(res.status(), "mem query");
      if ((r + 1) % compact_every == 0) {
        t.Reset();
        index->Compact();
        lat.compact_ms.push_back(t.ElapsedMillis());
      }
    }
    PrintChurn(&table, "memory", lat);
    report.push_back(MakeRow("churn-mem/insert", 0, std::move(lat.insert_ms)));
    report.push_back(MakeRow("churn-mem/delete", 0, std::move(lat.delete_ms)));
    report.push_back(MakeRow("churn-mem/query", k, std::move(lat.query_ms)));
    report.push_back(MakeRow("churn-mem/compact", 0, std::move(lat.compact_ms)));
  }

  // --- disk mode: WAL-synced mutation + buffer-pool queries ---------------
  {
    const std::string path =
        (std::filesystem::temp_directory_path() / "c2lsh_bench_churn.pf").string();
    auto index = DiskC2lshIndex::Build(*base, options, path, 4096,
                                       /*store_vectors=*/true);
    bench::DieIf(index.status(), "disk build");
    ChurnLatencies lat;
    Timer t;
    for (size_t r = 0; r < rounds; ++r) {
      const ObjectId ins = static_cast<ObjectId>(n + r);
      t.Reset();
      bench::DieIf(index->Insert(ins, pd->data.object(ins)), "disk insert");
      lat.insert_ms.push_back(t.ElapsedMillis());
      t.Reset();
      bench::DieIf(index->Delete(static_cast<ObjectId>((r * 37) % n)), "disk delete");
      lat.delete_ms.push_back(t.ElapsedMillis());
      const float* q = pd->queries.row(r % nq);
      t.Reset();
      auto res = index->Query(q, k);
      lat.query_ms.push_back(t.ElapsedMillis());
      bench::DieIf(res.status(), "disk query");
      if ((r + 1) % compact_every == 0) {
        t.Reset();
        bench::DieIf(index->Compact(), "disk compact");
        lat.compact_ms.push_back(t.ElapsedMillis());
      }
    }
    std::printf("disk: wal last_lsn=%llu applied_lsn=%llu overlay=%zu tombstones=%zu "
                "file pages=%llu\n\n",
                static_cast<unsigned long long>(index->wal_last_lsn()),
                static_cast<unsigned long long>(index->applied_lsn()),
                index->OverlayEntries(), index->NumTombstones(),
                static_cast<unsigned long long>(index->FilePages()));
    PrintChurn(&table, "disk", lat);
    report.push_back(MakeRow("churn-disk/insert", 0, std::move(lat.insert_ms)));
    report.push_back(MakeRow("churn-disk/delete", 0, std::move(lat.delete_ms)));
    report.push_back(MakeRow("churn-disk/query", k, std::move(lat.query_ms)));
    report.push_back(MakeRow("churn-disk/compact", 0, std::move(lat.compact_ms)));
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".wal");
  }

  std::printf("%s", table.ToString().c_str());
  bench::MaybeWriteMetricsReport(parser, report);
  bench::MaybeWriteTrace(parser, "c2lsh-churn");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
