// Figure F3 — wall-clock query time vs k, per profile.
//
// The in-memory companion to F2. Expected shape mirrors F2 minus the page
// constants: C2LSH and LSB-forest in the same order of magnitude, linear
// scan slowest on large/high-d profiles, all growing mildly with k.

#include <cstdio>

#include "bench/bench_common.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser = bench::MakeStandardParser("F3: query time (ms) vs k");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::PrintHeader("F3", "mean query wall time (ms) vs k");
  const std::vector<size_t> ks = bench::PaperKs();
  // Per-round trace collection is only worth its copy cost when the report
  // is actually being written.
  WorkloadOptions workload_options;
  workload_options.collect_traces = !parser.GetString("metrics_out").empty();
  std::vector<WorkloadResult> all_results;
  for (DatasetProfile profile : AllDatasetProfiles()) {
    bench::World world = bench::MakeWorld(profile, n, nq, ks.back(), seed);
    auto methods = bench::BuildAllMethods(world, seed);
    const auto rows = bench::RunKSweep(world, &methods, ks, workload_options);

    std::printf("\n[%s]  n=%zu  d=%zu\n", world.name.c_str(), world.data.size(),
                world.data.dim());
    std::vector<std::string> headers = {"method"};
    for (size_t k : ks) headers.push_back("k=" + std::to_string(k));
    TablePrinter table(headers);
    for (size_t m = 0; m < rows.size(); m += ks.size()) {
      std::vector<std::string> cells = {rows[m].method};
      for (size_t j = 0; j < ks.size(); ++j) {
        cells.push_back(TablePrinter::Fmt(rows[m + j].result.mean_query_millis, 3));
      }
      table.AddRow(std::move(cells));
    }
    std::printf("%s", table.ToString().c_str());
    for (const auto& row : rows) all_results.push_back(row.result);
  }
  bench::MaybeWriteMetricsReport(parser, all_results);
  bench::MaybeWriteTrace(parser, "c2lsh-f3_time_vs_k");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
