// Shared setup for the experiment binaries: dataset materialization with
// ground-truth caching, default method configurations, and consistent
// printing. Every bench_* binary regenerates one table or figure of the
// C2LSH evaluation (see DESIGN.md section 5) and accepts --n / --queries /
// --seed to scale the run.

#pragma once
#ifndef C2LSH_BENCH_BENCH_COMMON_H_
#define C2LSH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/eval/harness.h"
#include "src/eval/method.h"
#include "src/eval/report.h"
#include "src/eval/table.h"
#include "src/obs/span.h"
#include "src/util/argparse.h"
#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

namespace c2lsh {
namespace bench {

/// One materialized dataset profile with queries and exact ground truth.
struct World {
  std::string name;
  Dataset data;
  FloatMatrix queries;
  std::vector<NeighborList> gt;
};

/// Dies with a message on error — bench binaries have no meaningful recovery.
inline void DieIf(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

/// Materializes one profile with ground truth for max_k neighbors.
inline World MakeWorld(DatasetProfile profile, size_t n, size_t num_queries,
                       size_t max_k, uint64_t seed) {
  auto pd = MakeProfileDataset(profile, n, num_queries, seed);
  DieIf(pd.status(), "profile dataset");
  auto gt = ComputeGroundTruth(pd->data, pd->queries, max_k);
  DieIf(gt.status(), "ground truth");
  return World{DatasetProfileName(profile), std::move(pd->data), std::move(pd->queries),
               std::move(gt.value())};
}

/// Standard parser with the flags every experiment shares.
inline ArgParser MakeStandardParser(const std::string& doc) {
  ArgParser p(doc);
  p.AddInt("n", 10000, "objects per dataset profile");
  p.AddInt("queries", 50, "number of queries");
  p.AddInt("seed", 42, "master seed");
  p.AddString("metrics_out", "",
              "write a JSON metrics report (per-query latency percentiles, "
              "rehash traces, registry dump) to this path; empty = disabled");
  p.AddString("trace_out", "",
              "write the span trace of the run as Perfetto-loadable Chrome "
              "trace JSON to this path; empty = tracing stays off");
  return p;
}

/// Arms span tracing when --trace_out was given. Benches that gate on
/// untraced timings (overhead assertions) flip the mode themselves around
/// the timed regions; the trace accumulates in the rings either way.
inline bool ArmTracingIfRequested(const ArgParser& parser) {
  if (parser.GetString("trace_out").empty()) return false;
  obs::Tracer::Global().SetMode(obs::TraceMode::kAlways);
  return true;
}

/// Writes the accumulated span trace when --trace_out was given. The JSON is
/// self-checked with the in-tree validator first so a formatting regression
/// fails the bench rather than Perfetto.
inline void MaybeWriteTrace(const ArgParser& parser, const char* bench_name) {
  const std::string path = parser.GetString("trace_out");
  if (path.empty()) return;
  const std::string json =
      obs::ExportChromeTrace(obs::Tracer::Global().SnapshotAll(), bench_name);
  DieIf(obs::ValidateChromeTraceJson(json), "trace JSON validation");
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("span trace written to %s (load in https://ui.perfetto.dev)\n",
              path.c_str());
}

/// Writes the JSON metrics report when --metrics_out was given.
inline void MaybeWriteMetricsReport(const ArgParser& parser,
                                    const std::vector<WorkloadResult>& results) {
  const std::string path = parser.GetString("metrics_out");
  if (path.empty()) return;
  DieIf(WriteMetricsReport(path, results), "metrics report");
  std::printf("metrics report written to %s\n", path.c_str());
}

/// Parses or dies; handles --help.
inline void ParseOrDie(ArgParser* p, int argc, char** argv) {
  const Status s = p->Parse(argc, argv);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(), p->HelpString().c_str());
    std::exit(1);
  }
  if (p->help_requested()) {
    std::printf("%s", p->HelpString().c_str());
    std::exit(0);
  }
}

/// Default method configurations used across experiments (paper defaults).
inline C2lshOptions DefaultC2lsh(uint64_t seed, double c = 2.0) {
  C2lshOptions o;
  o.w = 1.0;
  o.c = c;
  o.delta = 0.1;
  o.seed = seed;
  return o;
}

inline E2lshOptions DefaultE2lsh(uint64_t seed) {
  E2lshOptions o;
  o.K = 6;
  o.L = 32;
  o.w = 1.0;
  o.c = 2.0;
  o.max_rounds = 10;
  o.seed = seed;
  return o;
}

inline LsbForestOptions DefaultLsb(uint64_t seed) {
  LsbForestOptions o;
  o.tree.u = 8;
  o.tree.v = 0;  // fit the z-order grid to the data
  o.tree.w = 4.0;
  o.L = 0;       // the paper's formula: sqrt(d*n/B) trees
  o.c = 2.0;
  o.seed = seed;
  return o;
}

inline MultiProbeOptions DefaultMultiProbe(uint64_t seed) {
  MultiProbeOptions o;
  o.K = 6;
  o.L = 8;
  o.w = 16.0;  // one fixed width — multi-probe has no radius schedule
  o.num_probes = 16;
  o.seed = seed;
  return o;
}

inline SrsOptions DefaultSrs(uint64_t seed) {
  SrsOptions o;
  o.projected_dim = 6;
  o.c = 1.2;        // recall-oriented regime (see SRS paper / srs.h)
  o.threshold = 0.99;
  o.budget_fraction = 0.1;
  o.seed = seed;
  return o;
}

/// Builds the paper-era methods (C2LSH, E2LSH, LSB-forest, Multi-Probe LSH,
/// SRS) plus the exact scan over one world. Dies on build failure.
inline std::vector<std::unique_ptr<AnnMethod>> BuildAllMethods(const World& world,
                                                               uint64_t seed) {
  std::vector<std::unique_ptr<AnnMethod>> methods;
  auto c2 = MakeC2lshMethod(world.data, DefaultC2lsh(seed));
  DieIf(c2.status(), "c2lsh build");
  methods.push_back(std::move(c2).value());
  auto e2 = MakeE2lshMethod(world.data, DefaultE2lsh(seed));
  DieIf(e2.status(), "e2lsh build");
  methods.push_back(std::move(e2).value());
  auto lsb = MakeLsbForestMethod(world.data, DefaultLsb(seed));
  DieIf(lsb.status(), "lsb build");
  methods.push_back(std::move(lsb).value());
  auto mp = MakeMultiProbeMethod(world.data, DefaultMultiProbe(seed));
  DieIf(mp.status(), "multiprobe build");
  methods.push_back(std::move(mp).value());
  auto srs = MakeSrsMethod(world.data, DefaultSrs(seed));
  DieIf(srs.status(), "srs build");
  methods.push_back(std::move(srs).value());
  auto scan = MakeLinearScanMethod(world.data);
  DieIf(scan.status(), "linear scan");
  methods.push_back(std::move(scan).value());
  return methods;
}

/// The paper's k grid.
inline std::vector<size_t> PaperKs() { return {1, 2, 5, 10, 20, 50, 100}; }

/// Runs the full (method x k) sweep for one world.
struct SweepRow {
  std::string method;
  WorkloadResult result;
};
inline std::vector<SweepRow> RunKSweep(const World& world,
                                       std::vector<std::unique_ptr<AnnMethod>>* methods,
                                       const std::vector<size_t>& ks,
                                       const WorkloadOptions& options = WorkloadOptions()) {
  std::vector<SweepRow> rows;
  for (auto& method : *methods) {
    for (size_t k : ks) {
      auto r = RunWorkload(method.get(), world.data, world.queries, world.gt, k, options);
      DieIf(r.status(), "workload");
      rows.push_back(SweepRow{method->name(), std::move(r).value()});
    }
  }
  return rows;
}

/// Prints a section header matching the DESIGN.md experiment ids.
inline void PrintHeader(const std::string& exp_id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", exp_id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace c2lsh

#endif  // C2LSH_BENCH_BENCH_COMMON_H_
