// Extension experiment E1 — QALSH (query-aware collision counting) vs C2LSH.
//
// The successor scheme the paper's framework spawned: query-centric windows
// replace offset-quantized buckets, so (i) the same guarantee needs fewer
// hash functions (larger p1 - p2 gap), and (ii) any real approximation ratio
// c > 1 works. This binary compares both schemes at c = 2 and runs QALSH at
// c = 1.5, a setting C2LSH cannot express.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/extensions/qalsh/qalsh.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser = bench::MakeStandardParser("E1: QALSH extension vs C2LSH");
  parser.AddInt("k", 10, "neighbors per query");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t k = static_cast<size_t>(parser.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::PrintHeader("E1", "query-aware collision counting (QALSH) vs C2LSH");
  TablePrinter table({"dataset", "method", "c", "m", "l", "index size", "ratio",
                      "recall", "pages/query", "cand/query"});

  for (DatasetProfile profile : {DatasetProfile::kMnist, DatasetProfile::kColor}) {
    bench::World world = bench::MakeWorld(profile, n, nq, k, seed);

    // C2LSH at c = 2 (its minimum).
    {
      auto method = MakeC2lshMethod(world.data, bench::DefaultC2lsh(seed));
      bench::DieIf(method.status(), "c2lsh");
      auto derived = ComputeDerivedParams(bench::DefaultC2lsh(seed), world.data.size());
      bench::DieIf(derived.status(), "c2lsh params");
      auto r = RunWorkload(method->get(), world.data, world.queries, world.gt, k);
      bench::DieIf(r.status(), "c2lsh workload");
      table.AddRow({world.name, "C2LSH", "2", TablePrinter::FmtInt(derived->m),
                    TablePrinter::FmtInt(derived->l),
                    TablePrinter::FmtBytes(r->index_bytes),
                    TablePrinter::Fmt(r->mean_ratio, 4),
                    TablePrinter::Fmt(r->mean_recall, 3),
                    TablePrinter::Fmt(r->mean_total_pages, 0),
                    TablePrinter::Fmt(r->mean_candidates, 1)});
    }

    // QALSH at c = 2 and the non-integer c = 1.5.
    for (double c : {2.0, 1.5}) {
      QalshOptions qo;
      qo.w = 2.0;
      qo.c = c;
      qo.delta = 0.1;
      qo.seed = seed;
      auto index = QalshIndex::Build(world.data, qo);
      bench::DieIf(index.status(), "qalsh build");

      double ratio = 0, recall = 0, pages = 0, cands = 0;
      for (size_t q = 0; q < world.queries.num_rows(); ++q) {
        QalshQueryStats stats;
        auto r = index->Query(world.data, world.queries.row(q), k, &stats);
        bench::DieIf(r.status(), "qalsh query");
        ratio += OverallRatio(*r, world.gt[q], k);
        recall += Recall(*r, world.gt[q], k);
        pages += static_cast<double>(stats.total_pages());
        cands += static_cast<double>(stats.candidates_verified);
      }
      const double nqd = static_cast<double>(world.queries.num_rows());
      table.AddRow({world.name, "QALSH", TablePrinter::Fmt(c, 1),
                    TablePrinter::FmtInt(index->derived().counting.m),
                    TablePrinter::FmtInt(index->derived().counting.l),
                    TablePrinter::FmtBytes(index->MemoryBytes()),
                    TablePrinter::Fmt(ratio / nqd, 4),
                    TablePrinter::Fmt(recall / nqd, 3),
                    TablePrinter::Fmt(pages / nqd, 0),
                    TablePrinter::Fmt(cands / nqd, 1)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nShape check: at c=2 QALSH needs fewer functions (m) than C2LSH for\n"
      "the same (delta, beta) guarantee; c=1.5 — inexpressible in C2LSH —\n"
      "buys better accuracy at a larger m.\n");
  bench::MaybeWriteTrace(parser, "c2lsh-e1_qalsh");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
