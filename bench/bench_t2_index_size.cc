// Experiment T2 — the index size / build time table.
//
// The paper's space story: C2LSH builds m single-function tables (one entry
// per object per table), LSB-forest builds L z-order B-trees, and rigorous
// E2LSH needs L tables *per radius*. This binary regenerates the comparison
// for every dataset profile.

#include <cstdio>

#include "bench/bench_common.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser =
      bench::MakeStandardParser("T2: index size and build time per method and profile");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::PrintHeader("T2", "index size and indexing time");
  TablePrinter table(
      {"dataset", "method", "index size", "bytes/object", "build (s)"});

  for (DatasetProfile profile : AllDatasetProfiles()) {
    bench::World world = bench::MakeWorld(profile, n, 2, 1, seed);

    auto c2 = MakeC2lshMethod(world.data, bench::DefaultC2lsh(seed));
    bench::DieIf(c2.status(), "c2lsh build");
    auto e2 = MakeE2lshMethod(world.data, bench::DefaultE2lsh(seed));
    bench::DieIf(e2.status(), "e2lsh build");
    auto lsb = MakeLsbForestMethod(world.data, bench::DefaultLsb(seed));
    bench::DieIf(lsb.status(), "lsb build");

    for (const auto& method : {c2.value().get(), e2.value().get(), lsb.value().get()}) {
      table.AddRow({world.name, method->name(),
                    TablePrinter::FmtBytes(method->MemoryBytes()),
                    TablePrinter::Fmt(static_cast<double>(method->MemoryBytes()) /
                                          static_cast<double>(n),
                                      1),
                    TablePrinter::Fmt(method->build_seconds(), 3)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nShape check: per object, C2LSH stores m ids; E2LSH stores L*rounds\n"
      "keys (the rigorous-LSH blowup C2LSH removes); LSB-forest sits between,\n"
      "paying L z-order keys of u*v bits each.\n");
  bench::MaybeWriteTrace(parser, "c2lsh-t2_index_size");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
