// Experiment T1 — the parameter table.
//
// Reproduces the table every C2LSH evaluation leads with: the derived
// parameters (p1, p2, z, alpha, m, l) per dataset profile and approximation
// ratio, straight from the paper's Hoeffding-bound formulas, plus the
// analytic guarantee checks (P1 failure bound <= delta; expected false
// positives <= beta*n/2).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/params.h"
#include "src/core/theory.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser = bench::MakeStandardParser(
      "T1: derived C2LSH parameters per dataset profile and c");
  parser.AddDouble("delta", 0.1, "error probability");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const double delta = parser.GetDouble("delta");

  bench::PrintHeader("T1", "C2LSH derived parameters (w=1, beta=100/n, delta=" +
                               TablePrinter::Fmt(delta, 2) + ")");

  TablePrinter table({"dataset", "n", "c", "p1", "p2", "z", "alpha", "m", "l",
                      "P1-bound", "E[FP]", "beta*n/2"});
  for (DatasetProfile profile : AllDatasetProfiles()) {
    for (double c : {2.0, 3.0}) {
      C2lshOptions o;
      o.w = 1.0;
      o.c = c;
      o.delta = delta;
      auto d = ComputeDerivedParams(o, n);
      bench::DieIf(d.status(), "derived params");
      table.AddRow({DatasetProfileName(profile), TablePrinter::FmtInt(n),
                    TablePrinter::Fmt(c, 0), TablePrinter::Fmt(d->model.p1, 4),
                    TablePrinter::Fmt(d->model.p2, 4), TablePrinter::Fmt(d->z, 3),
                    TablePrinter::Fmt(d->alpha, 4), TablePrinter::FmtInt(d->m),
                    TablePrinter::FmtInt(d->l),
                    TablePrinter::Fmt(P1FailureBound(*d), 4),
                    TablePrinter::Fmt(ExpectedFalsePositives(*d, n), 2),
                    TablePrinter::Fmt(d->beta * n / 2.0, 1)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nShape check: m is identical across profiles at fixed n (it depends on\n"
      "n, w, c, delta, beta only); c=3 needs far fewer functions than c=2; the\n"
      "P1 bound never exceeds delta and E[FP] never exceeds beta*n/2.\n");
  bench::MaybeWriteTrace(parser, "c2lsh-t1_params");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
