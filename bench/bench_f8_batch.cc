// Figure F8 — batched query engine throughput vs the serial query loop.
//
// Sweeps QueryBatch's batch_size x num_shards grid over the paper's
// in-memory profiles (the F3 workload) and reports aggregate throughput
// (queries/sec), the speedup over a serial loop of Query() calls, and the
// per-query latency percentiles (p50/p95/p99) from the
// c2lsh_batch_query_millis histogram. The speedup on a single core comes
// from the engine's shared bucket-run scans and the query-major projection
// kernel, not from parallelism; with more cores the table sharding adds on
// top. --metrics_out writes the whole sweep as JSON (BENCH_batch.json in
// CI) including a `speedup_batch32` summary per profile and the
// workload-level `aggregate_speedup_batch32` (total serial time over total
// best batched time at batch >= 32, across every profile) — the acceptance
// gate is aggregate >= 2x at batch >= 32 on the F3 workload.
//
// The binary also owns the span-tracing overhead gate: with tracing compiled
// in but disabled (the production default) the per-span cost, scaled by the
// spans an average query emits, must stay under 1% of query latency — the
// bench exits non-zero otherwise. --trace_out additionally writes the run's
// span trace as Perfetto-loadable Chrome trace JSON (BENCH_trace.json at the
// repo root is a committed example).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/index.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/util/timer.h"

namespace c2lsh {
namespace {

/// Nearest-rank percentile over raw serial samples (batched runs read the
/// obs histogram instead, which is the production surface).
double SamplePercentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t ix = std::min(samples.size() - 1,
                             static_cast<size_t>(p * static_cast<double>(samples.size())));
  return samples[ix];
}

struct RunRow {
  size_t batch_size = 0;   // 0 = whole batch in one block
  size_t num_shards = 0;
  double millis = 0.0;     // best-of-reps wall time for the whole batch
  double qps = 0.0;
  double speedup = 0.0;    // vs the serial Query() loop
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

struct ProfileRows {
  std::string name;
  size_t n = 0, dim = 0, nq = 0;
  double serial_millis = 0.0, serial_qps = 0.0;
  double serial_p50 = 0.0, serial_p95 = 0.0, serial_p99 = 0.0;
  double speedup_batch32 = 0.0;  // best speedup among batch_size >= 32 runs
  double best_batch32_millis = 0.0;  // fastest batch_size >= 32 run
  std::vector<RunRow> runs;
};

void AppendJson(std::string* out, const ProfileRows& p) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    {\"profile\": \"%s\", \"n\": %zu, \"dim\": %zu, "
                "\"queries\": %zu,\n",
                p.name.c_str(), p.n, p.dim, p.nq);
  *out += buf;
  std::snprintf(buf, sizeof(buf),
                "     \"serial\": {\"millis\": %.3f, \"qps\": %.1f, "
                "\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f},\n",
                p.serial_millis, p.serial_qps, p.serial_p50, p.serial_p95,
                p.serial_p99);
  *out += buf;
  std::snprintf(buf, sizeof(buf), "     \"speedup_batch32\": %.3f,\n",
                p.speedup_batch32);
  *out += buf;
  *out += "     \"runs\": [\n";
  for (size_t i = 0; i < p.runs.size(); ++i) {
    const RunRow& r = p.runs[i];
    std::snprintf(buf, sizeof(buf),
                  "      {\"batch_size\": %zu, \"num_shards\": %zu, "
                  "\"millis\": %.3f, \"qps\": %.1f, \"speedup\": %.3f, "
                  "\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f}%s\n",
                  r.batch_size, r.num_shards, r.millis, r.qps, r.speedup,
                  r.p50, r.p95, r.p99, i + 1 < p.runs.size() ? "," : "");
    *out += buf;
  }
  *out += "     ]}";
}

int Run(int argc, char** argv) {
  ArgParser parser =
      bench::MakeStandardParser("F8: batched engine throughput vs serial loop");
  parser.AddInt("k", 10, "neighbors per query");
  parser.AddInt("reps", 3, "repetitions per configuration (best time wins)");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t k = static_cast<size_t>(parser.GetInt("k"));
  const int reps = std::max(1, static_cast<int>(parser.GetInt("reps")));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::PrintHeader("F8", "QueryBatch throughput vs serial Query loop");

  // batch_size 0 means "the whole query set in one block" — the widest
  // sharing. Shard counts beyond the core count still exercise the
  // deterministic merge; on one core they are pure bookkeeping.
  const std::vector<size_t> batch_sizes = {8, 32, 0};
  const std::vector<size_t> shard_counts = {1, 2, 4};
  obs::Histogram* batch_hist = obs::MetricsRegistry::Global().GetHistogram(
      "c2lsh_batch_query_millis",
      "Per-query wall latency inside batched execution blocks (ms)");

  std::vector<ProfileRows> all;
  for (DatasetProfile profile : AllDatasetProfiles()) {
    auto pd = MakeProfileDataset(profile, n, nq, seed);
    bench::DieIf(pd.status(), "profile dataset");
    auto index = C2lshIndex::Build(pd->data, bench::DefaultC2lsh(seed));
    bench::DieIf(index.status(), "c2lsh build");

    ProfileRows rows;
    rows.name = DatasetProfileName(profile);
    rows.n = pd->data.size();
    rows.dim = pd->data.dim();
    rows.nq = pd->queries.num_rows();

    // Serial baseline: the exact loop QueryBatch replaces.
    std::vector<double> per_query_millis(rows.nq, 0.0);
    double serial_best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      Timer loop_timer;
      for (size_t q = 0; q < rows.nq; ++q) {
        Timer qt;
        auto r = index->Query(pd->data, pd->queries.row(q), k);
        bench::DieIf(r.status(), "serial query");
        per_query_millis[q] = qt.ElapsedMillis();
      }
      const double t = loop_timer.ElapsedMillis();
      if (rep == 0 || t < serial_best) serial_best = t;
    }
    rows.serial_millis = serial_best;
    rows.serial_qps = 1e3 * static_cast<double>(rows.nq) / serial_best;
    rows.serial_p50 = SamplePercentile(per_query_millis, 0.50);
    rows.serial_p95 = SamplePercentile(per_query_millis, 0.95);
    rows.serial_p99 = SamplePercentile(per_query_millis, 0.99);

    for (size_t batch : batch_sizes) {
      for (size_t shards : shard_counts) {
        C2lshIndex::BatchQueryOptions opts;
        opts.batch_size = batch;
        opts.num_shards = shards;
        RunRow row;
        row.batch_size = batch;
        row.num_shards = shards;
        for (int rep = 0; rep < reps; ++rep) {
          batch_hist->Reset();  // percentiles reflect the final rep
          Timer t;
          auto r = index->QueryBatch(pd->data, pd->queries, k, opts);
          bench::DieIf(r.status(), "batched query");
          const double millis = t.ElapsedMillis();
          if (rep == 0 || millis < row.millis) row.millis = millis;
        }
        row.qps = 1e3 * static_cast<double>(rows.nq) / row.millis;
        row.speedup = serial_best / row.millis;
        row.p50 = batch_hist->Percentile(0.50);
        row.p95 = batch_hist->Percentile(0.95);
        row.p99 = batch_hist->Percentile(0.99);
        const size_t effective_batch = batch == 0 ? rows.nq : batch;
        if (effective_batch >= 32) {
          rows.speedup_batch32 = std::max(rows.speedup_batch32, row.speedup);
          if (rows.best_batch32_millis == 0.0 ||
              row.millis < rows.best_batch32_millis) {
            rows.best_batch32_millis = row.millis;
          }
        }
        rows.runs.push_back(row);
      }
    }

    std::printf("\n[%s]  n=%zu  d=%zu  queries=%zu  k=%zu\n", rows.name.c_str(),
                rows.n, rows.dim, rows.nq, k);
    std::printf("serial loop: %.1f ms  (%.1f q/s)  p50=%.3f p95=%.3f p99=%.3f\n",
                rows.serial_millis, rows.serial_qps, rows.serial_p50,
                rows.serial_p95, rows.serial_p99);
    TablePrinter table({"batch", "shards", "ms", "q/s", "speedup", "p50",
                        "p95", "p99"});
    for (const RunRow& r : rows.runs) {
      table.AddRow({r.batch_size == 0 ? "all" : std::to_string(r.batch_size),
                    std::to_string(r.num_shards), TablePrinter::Fmt(r.millis, 1),
                    TablePrinter::Fmt(r.qps, 1), TablePrinter::Fmt(r.speedup, 2),
                    TablePrinter::Fmt(r.p50, 3), TablePrinter::Fmt(r.p95, 3),
                    TablePrinter::Fmt(r.p99, 3)});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("best speedup at batch >= 32: %.2fx\n", rows.speedup_batch32);
    all.push_back(std::move(rows));
  }

  // Workload-level aggregate: total serial time over total best batched
  // time at batch >= 32, across all profiles — the F3-workload gate.
  double serial_total = 0.0, batch32_total = 0.0;
  for (const ProfileRows& p : all) {
    serial_total += p.serial_millis;
    batch32_total += p.best_batch32_millis;
  }
  const double aggregate =
      batch32_total > 0.0 ? serial_total / batch32_total : 0.0;
  std::printf(
      "\naggregate speedup at batch >= 32 (whole F3 workload): %.2fx "
      "(serial %.1f ms -> batched %.1f ms)\n",
      aggregate, serial_total, batch32_total);

  // Span-tracing overhead, measured on the serial loop over one profile.
  // Three numbers: the untraced baseline (tracing compiled in, mode off —
  // exactly what production pays), the fully-sampled run, and a microbench
  // of the disabled span path. The hard gate is on the disabled path: its
  // per-query cost must stay under 1% of query latency.
  bench::PrintHeader("F8-trace", "span tracing overhead (serial loop)");
  double disabled_pct = 0.0, armed_pct = 0.0;
  {
    auto pd = MakeProfileDataset(DatasetProfile::kColor, n, nq, seed);
    bench::DieIf(pd.status(), "profile dataset");
    auto index = C2lshIndex::Build(pd->data, bench::DefaultC2lsh(seed));
    bench::DieIf(index.status(), "c2lsh build");

    auto time_serial_loop = [&]() {
      double best = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        Timer t;
        for (size_t q = 0; q < nq; ++q) {
          auto r = index->Query(pd->data, pd->queries.row(q), k);
          bench::DieIf(r.status(), "overhead query");
        }
        const double millis = t.ElapsedMillis();
        if (rep == 0 || millis < best) best = millis;
      }
      return best;
    };

    obs::Tracer::Global().SetMode(obs::TraceMode::kOff);
    const double off_best = time_serial_loop();

    obs::Tracer::Global().SetMode(obs::TraceMode::kAlways);
    obs::TraceRing* ring = obs::Tracer::Global().ThreadRing();
    const uint64_t emitted_before = ring->emitted();
    const double on_best = time_serial_loop();
    const double events_per_query =
        static_cast<double>(ring->emitted() - emitted_before) /
        static_cast<double>(nq * static_cast<size_t>(reps));
    obs::Tracer::Global().SetMode(obs::TraceMode::kOff);

    // Disabled span path: one relaxed load + branch per ScopedSpan.
    constexpr int kProbes = 1 << 20;
    Timer probe_timer;
    for (int i = 0; i < kProbes; ++i) {
      obs::ScopedSpan probe(obs::SpanSubsystem::kOther, "overhead_probe",
                            static_cast<uint64_t>(i));
    }
    const double ns_per_span = probe_timer.ElapsedMillis() * 1e6 / kProbes;

    const double query_millis = off_best / static_cast<double>(nq);
    disabled_pct =
        events_per_query * ns_per_span * 1e-6 / query_millis * 100.0;
    armed_pct = (on_best - off_best) / off_best * 100.0;
    std::printf(
        "untraced serial loop: %.1f ms   fully sampled: %.1f ms (%+.2f%%)\n"
        "disabled span path: %.2f ns/span x %.1f spans/query = %.4f%% of "
        "query latency (gate: < 1%%)\n",
        off_best, on_best, armed_pct, ns_per_span, events_per_query,
        disabled_pct);
    if (disabled_pct >= 1.0) {
      std::fprintf(stderr,
                   "FATAL: disabled-tracing overhead %.4f%% exceeds the 1%% "
                   "budget\n",
                   disabled_pct);
      return 1;
    }
  }

  bench::MaybeWriteTrace(parser, "c2lsh-bench-f8");

  const std::string path = parser.GetString("metrics_out");
  if (!path.empty()) {
    std::string json = "{\n  \"bench\": \"f8_batch\",\n";
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  \"k\": %zu, \"reps\": %d,\n", k, reps);
    json += buf;
    double worst = 0.0;
    for (size_t i = 0; i < all.size(); ++i) {
      worst = i == 0 ? all[i].speedup_batch32
                     : std::min(worst, all[i].speedup_batch32);
    }
    std::snprintf(buf, sizeof(buf),
                  "  \"aggregate_speedup_batch32\": %.3f,\n"
                  "  \"min_speedup_batch32\": %.3f,\n",
                  aggregate, worst);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"tracing_overhead\": {\"disabled_pct\": %.4f, "
                  "\"armed_pct\": %.2f},\n",
                  disabled_pct, armed_pct);
    json += buf;
    json += "  \"profiles\": [\n";
    for (size_t i = 0; i < all.size(); ++i) {
      AppendJson(&json, all[i]);
      json += i + 1 < all.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL: cannot open %s\n", path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("metrics report written to %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
