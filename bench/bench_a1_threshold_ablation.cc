// Ablation A1 — the collision threshold l.
//
// DESIGN.md design-choice #1: the paper sets l = ceil(alpha * m) from the
// Hoeffding bounds. This ablation overrides l across a sweep around that
// value and measures the predicted cliff: lowering l floods verification
// with false positives (I/O up, ratio flat), raising l past alpha*m starts
// missing true neighbors (recall down). The derived value sits at the knee.
//
// The override is implemented through CollisionCountsAtRadius + manual
// verification, i.e. the same counting machinery with a custom threshold.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/index.h"
#include "src/eval/metrics.h"
#include "src/vector/distance.h"

namespace c2lsh {
namespace {

// A miniature C2LSH query with an arbitrary threshold: counts at the first
// radius where the planted NN is within reach, then verifies objects with
// count >= l.
struct AblationPoint {
  double recall = 0.0;
  double ratio = 0.0;
  double candidates = 0.0;
};

AblationPoint RunWithThreshold(const C2lshIndex& index, const bench::World& world,
                               size_t l, size_t k) {
  AblationPoint pt;
  for (size_t q = 0; q < world.queries.num_rows(); ++q) {
    const float* query = world.queries.row(q);
    // Radius reaching the k-th true neighbor (the round where T1 would fire).
    const double target = world.gt[q][k - 1].dist;
    long long radius = 1;
    while (static_cast<double>(radius) < target) radius *= 2;

    const auto counts = index.CollisionCountsAtRadius(query, radius);
    NeighborList found;
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] >= l) {
        const double dist =
            L2(query, world.data.object(static_cast<ObjectId>(i)), world.data.dim());
        found.push_back(Neighbor{static_cast<ObjectId>(i), static_cast<float>(dist)});
      }
    }
    pt.candidates += static_cast<double>(found.size());
    std::sort(found.begin(), found.end(), NeighborLess());
    if (found.size() > k) found.resize(k);
    pt.recall += Recall(found, world.gt[q], k);
    pt.ratio += OverallRatio(found, world.gt[q], k);
  }
  const double nq = static_cast<double>(world.queries.num_rows());
  pt.recall /= nq;
  pt.ratio /= nq;
  pt.candidates /= nq;
  return pt;
}

int Run(int argc, char** argv) {
  ArgParser parser = bench::MakeStandardParser("A1: collision-threshold ablation");
  parser.AddInt("k", 10, "neighbors per query");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t k = static_cast<size_t>(parser.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  bench::World world = bench::MakeWorld(DatasetProfile::kMnist, n, nq, k, seed);
  auto index = C2lshIndex::Build(world.data, bench::DefaultC2lsh(seed));
  bench::DieIf(index.status(), "c2lsh build");
  const size_t m = index->derived().m;
  const size_t l_star = index->derived().l;

  bench::PrintHeader("A1", "threshold ablation around l* = ceil(alpha*m) = " +
                               std::to_string(l_star) + " (m = " + std::to_string(m) +
                               ")");
  TablePrinter table({"l", "l/m", "recall", "ratio", "candidates/query", "note"});
  const double fractions[] = {0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5};
  for (double f : fractions) {
    size_t l = std::max<size_t>(1, static_cast<size_t>(f * static_cast<double>(l_star)));
    l = std::min(l, m);
    const AblationPoint pt = RunWithThreshold(index.value(), world, l, k);
    table.AddRow({TablePrinter::FmtInt(l),
                  TablePrinter::Fmt(static_cast<double>(l) / static_cast<double>(m), 3),
                  TablePrinter::Fmt(pt.recall, 3), TablePrinter::Fmt(pt.ratio, 4),
                  TablePrinter::Fmt(pt.candidates, 1),
                  l == l_star ? "<- paper's l = ceil(alpha*m)" : ""});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nShape check: below l*, candidate counts blow up with no accuracy\n"
      "gain; above l*, recall collapses. The Hoeffding-derived l sits at the\n"
      "knee — the design choice the ablation validates.\n");
  bench::MaybeWriteTrace(parser, "c2lsh-a1_threshold_ablation");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
