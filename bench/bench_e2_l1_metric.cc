// Extension experiment E2 — Manhattan (l1) search through the counting
// framework.
//
// The collision-counting framework is LSH-family-generic: swapping Gaussian
// projections for Cauchy ones turns the query-aware index into an l1 ANN
// structure with the same Hoeffding parameterization. This binary measures
// QALSH-l1 against the exact l1 scan and against the *wrong-metric* shortcut
// practitioners sometimes take (an l2 index queried for l1 neighbors), which
// quantifies why native metric support matters.

#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/extensions/qalsh/qalsh.h"

namespace c2lsh {
namespace {

int Run(int argc, char** argv) {
  ArgParser parser =
      bench::MakeStandardParser("E2: l1 (Manhattan) search via Cauchy projections");
  parser.AddInt("k", 10, "neighbors per query");
  bench::ParseOrDie(&parser, argc, argv);
  bench::ArmTracingIfRequested(parser);
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t nq = static_cast<size_t>(parser.GetInt("queries"));
  const size_t k = static_cast<size_t>(parser.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  auto pd = MakeProfileDataset(DatasetProfile::kColor, n, nq, seed);
  bench::DieIf(pd.status(), "dataset");
  auto gt_l1 = ComputeGroundTruth(pd->data, pd->queries, k, Metric::kManhattan);
  bench::DieIf(gt_l1.status(), "l1 ground truth");

  bench::PrintHeader("E2", "Manhattan-metric ANN (Color profile, k=" +
                               std::to_string(k) + ")");
  TablePrinter table({"method", "metric", "m", "recall@k (l1 truth)", "ratio",
                      "cand/query"});

  auto evaluate = [&](const char* label, const char* metric, QalshIndex* index,
                      size_t m) {
    double recall = 0, ratio = 0, cands = 0;
    for (size_t q = 0; q < nq; ++q) {
      QalshQueryStats stats;
      auto r = index->Query(pd->data, pd->queries.row(q), k, &stats);
      bench::DieIf(r.status(), "query");
      // Score every method against the true l1 neighbors. For the l2 index
      // the returned dists are l2, so recompute l1 for the ratio metric.
      NeighborList rescored = *r;
      for (Neighbor& nb : rescored) {
        nb.dist = static_cast<float>(
            L1(pd->queries.row(q), pd->data.object(nb.id), pd->data.dim()));
      }
      std::sort(rescored.begin(), rescored.end(), NeighborLess());
      recall += Recall(rescored, (*gt_l1)[q], k);
      ratio += OverallRatio(rescored, (*gt_l1)[q], k);
      cands += static_cast<double>(stats.candidates_verified);
    }
    const double d = static_cast<double>(nq);
    table.AddRow({label, metric, TablePrinter::FmtInt(m),
                  TablePrinter::Fmt(recall / d, 3), TablePrinter::Fmt(ratio / d, 4),
                  TablePrinter::Fmt(cands / d, 1)});
  };

  // Native l1: Cauchy projections, l1 verification.
  QalshOptions l1opts;
  l1opts.p = 1.0;
  l1opts.w = 8.0;
  l1opts.seed = seed;
  auto l1_index = QalshIndex::Build(pd->data, l1opts);
  bench::DieIf(l1_index.status(), "l1 build");
  evaluate("QALSH-l1 (native)", "l1", &l1_index.value(), l1_index->derived().counting.m);

  // Wrong-metric shortcut: an l2 index asked for l1 neighbors.
  QalshOptions l2opts;
  l2opts.p = 2.0;
  l2opts.w = 2.0;
  l2opts.seed = seed;
  auto l2_index = QalshIndex::Build(pd->data, l2opts);
  bench::DieIf(l2_index.status(), "l2 build");
  evaluate("QALSH-l2 (wrong metric)", "l2", &l2_index.value(),
           l2_index->derived().counting.m);

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nShape check: the native Cauchy/l1 index recalls the true Manhattan\n"
      "neighbors; the l2 shortcut degrades because l2-close is only a proxy\n"
      "for l1-close — the framework's family-independence is what makes the\n"
      "native variant a drop-in.\n");
  bench::MaybeWriteTrace(parser, "c2lsh-e2_l1_metric");
  return 0;
}

}  // namespace
}  // namespace c2lsh

int main(int argc, char** argv) { return c2lsh::Run(argc, argv); }
