file(REMOVE_RECURSE
  "CMakeFiles/disk_mode.dir/disk_mode.cpp.o"
  "CMakeFiles/disk_mode.dir/disk_mode.cpp.o.d"
  "disk_mode"
  "disk_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
