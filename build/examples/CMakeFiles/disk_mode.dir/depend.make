# Empty dependencies file for disk_mode.
# This may be replaced when dependencies are built.
