# Empty dependencies file for audio_dedup.
# This may be replaced when dependencies are built.
