file(REMOVE_RECURSE
  "CMakeFiles/audio_dedup.dir/audio_dedup.cpp.o"
  "CMakeFiles/audio_dedup.dir/audio_dedup.cpp.o.d"
  "audio_dedup"
  "audio_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
