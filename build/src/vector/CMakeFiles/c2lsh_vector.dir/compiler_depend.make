# Empty compiler generated dependencies file for c2lsh_vector.
# This may be replaced when dependencies are built.
