
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vector/dataset.cc" "src/vector/CMakeFiles/c2lsh_vector.dir/dataset.cc.o" "gcc" "src/vector/CMakeFiles/c2lsh_vector.dir/dataset.cc.o.d"
  "/root/repo/src/vector/distance.cc" "src/vector/CMakeFiles/c2lsh_vector.dir/distance.cc.o" "gcc" "src/vector/CMakeFiles/c2lsh_vector.dir/distance.cc.o.d"
  "/root/repo/src/vector/ground_truth.cc" "src/vector/CMakeFiles/c2lsh_vector.dir/ground_truth.cc.o" "gcc" "src/vector/CMakeFiles/c2lsh_vector.dir/ground_truth.cc.o.d"
  "/root/repo/src/vector/io.cc" "src/vector/CMakeFiles/c2lsh_vector.dir/io.cc.o" "gcc" "src/vector/CMakeFiles/c2lsh_vector.dir/io.cc.o.d"
  "/root/repo/src/vector/matrix.cc" "src/vector/CMakeFiles/c2lsh_vector.dir/matrix.cc.o" "gcc" "src/vector/CMakeFiles/c2lsh_vector.dir/matrix.cc.o.d"
  "/root/repo/src/vector/synthetic.cc" "src/vector/CMakeFiles/c2lsh_vector.dir/synthetic.cc.o" "gcc" "src/vector/CMakeFiles/c2lsh_vector.dir/synthetic.cc.o.d"
  "/root/repo/src/vector/transform.cc" "src/vector/CMakeFiles/c2lsh_vector.dir/transform.cc.o" "gcc" "src/vector/CMakeFiles/c2lsh_vector.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/c2lsh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
