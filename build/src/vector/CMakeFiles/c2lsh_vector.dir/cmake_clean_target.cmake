file(REMOVE_RECURSE
  "libc2lsh_vector.a"
)
