file(REMOVE_RECURSE
  "CMakeFiles/c2lsh_vector.dir/dataset.cc.o"
  "CMakeFiles/c2lsh_vector.dir/dataset.cc.o.d"
  "CMakeFiles/c2lsh_vector.dir/distance.cc.o"
  "CMakeFiles/c2lsh_vector.dir/distance.cc.o.d"
  "CMakeFiles/c2lsh_vector.dir/ground_truth.cc.o"
  "CMakeFiles/c2lsh_vector.dir/ground_truth.cc.o.d"
  "CMakeFiles/c2lsh_vector.dir/io.cc.o"
  "CMakeFiles/c2lsh_vector.dir/io.cc.o.d"
  "CMakeFiles/c2lsh_vector.dir/matrix.cc.o"
  "CMakeFiles/c2lsh_vector.dir/matrix.cc.o.d"
  "CMakeFiles/c2lsh_vector.dir/synthetic.cc.o"
  "CMakeFiles/c2lsh_vector.dir/synthetic.cc.o.d"
  "CMakeFiles/c2lsh_vector.dir/transform.cc.o"
  "CMakeFiles/c2lsh_vector.dir/transform.cc.o.d"
  "libc2lsh_vector.a"
  "libc2lsh_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2lsh_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
