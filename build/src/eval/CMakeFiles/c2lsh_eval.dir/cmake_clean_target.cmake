file(REMOVE_RECURSE
  "libc2lsh_eval.a"
)
