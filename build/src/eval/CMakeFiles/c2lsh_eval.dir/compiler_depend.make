# Empty compiler generated dependencies file for c2lsh_eval.
# This may be replaced when dependencies are built.
