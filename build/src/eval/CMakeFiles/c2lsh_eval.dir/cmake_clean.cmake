file(REMOVE_RECURSE
  "CMakeFiles/c2lsh_eval.dir/harness.cc.o"
  "CMakeFiles/c2lsh_eval.dir/harness.cc.o.d"
  "CMakeFiles/c2lsh_eval.dir/method.cc.o"
  "CMakeFiles/c2lsh_eval.dir/method.cc.o.d"
  "CMakeFiles/c2lsh_eval.dir/metrics.cc.o"
  "CMakeFiles/c2lsh_eval.dir/metrics.cc.o.d"
  "CMakeFiles/c2lsh_eval.dir/table.cc.o"
  "CMakeFiles/c2lsh_eval.dir/table.cc.o.d"
  "libc2lsh_eval.a"
  "libc2lsh_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2lsh_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
