
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/c2lsh_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/c2lsh_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/disk_index.cc" "src/core/CMakeFiles/c2lsh_core.dir/disk_index.cc.o" "gcc" "src/core/CMakeFiles/c2lsh_core.dir/disk_index.cc.o.d"
  "/root/repo/src/core/index.cc" "src/core/CMakeFiles/c2lsh_core.dir/index.cc.o" "gcc" "src/core/CMakeFiles/c2lsh_core.dir/index.cc.o.d"
  "/root/repo/src/core/params.cc" "src/core/CMakeFiles/c2lsh_core.dir/params.cc.o" "gcc" "src/core/CMakeFiles/c2lsh_core.dir/params.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/core/CMakeFiles/c2lsh_core.dir/serialize.cc.o" "gcc" "src/core/CMakeFiles/c2lsh_core.dir/serialize.cc.o.d"
  "/root/repo/src/core/theory.cc" "src/core/CMakeFiles/c2lsh_core.dir/theory.cc.o" "gcc" "src/core/CMakeFiles/c2lsh_core.dir/theory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/c2lsh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/c2lsh_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/c2lsh_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/lsh/CMakeFiles/c2lsh_lsh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
