file(REMOVE_RECURSE
  "CMakeFiles/c2lsh_core.dir/cost_model.cc.o"
  "CMakeFiles/c2lsh_core.dir/cost_model.cc.o.d"
  "CMakeFiles/c2lsh_core.dir/disk_index.cc.o"
  "CMakeFiles/c2lsh_core.dir/disk_index.cc.o.d"
  "CMakeFiles/c2lsh_core.dir/index.cc.o"
  "CMakeFiles/c2lsh_core.dir/index.cc.o.d"
  "CMakeFiles/c2lsh_core.dir/params.cc.o"
  "CMakeFiles/c2lsh_core.dir/params.cc.o.d"
  "CMakeFiles/c2lsh_core.dir/serialize.cc.o"
  "CMakeFiles/c2lsh_core.dir/serialize.cc.o.d"
  "CMakeFiles/c2lsh_core.dir/theory.cc.o"
  "CMakeFiles/c2lsh_core.dir/theory.cc.o.d"
  "libc2lsh_core.a"
  "libc2lsh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2lsh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
