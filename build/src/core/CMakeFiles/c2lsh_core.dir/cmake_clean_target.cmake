file(REMOVE_RECURSE
  "libc2lsh_core.a"
)
