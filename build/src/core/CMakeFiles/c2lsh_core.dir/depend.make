# Empty dependencies file for c2lsh_core.
# This may be replaced when dependencies are built.
