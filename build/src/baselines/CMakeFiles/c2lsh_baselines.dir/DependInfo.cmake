
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/e2lsh.cc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/e2lsh.cc.o" "gcc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/e2lsh.cc.o.d"
  "/root/repo/src/baselines/linear_scan.cc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/linear_scan.cc.o" "gcc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/linear_scan.cc.o.d"
  "/root/repo/src/baselines/lsb/bptree.cc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/lsb/bptree.cc.o" "gcc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/lsb/bptree.cc.o.d"
  "/root/repo/src/baselines/lsb/lsb_forest.cc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/lsb/lsb_forest.cc.o" "gcc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/lsb/lsb_forest.cc.o.d"
  "/root/repo/src/baselines/lsb/lsb_tree.cc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/lsb/lsb_tree.cc.o" "gcc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/lsb/lsb_tree.cc.o.d"
  "/root/repo/src/baselines/lsb/zorder.cc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/lsb/zorder.cc.o" "gcc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/lsb/zorder.cc.o.d"
  "/root/repo/src/baselines/multiprobe.cc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/multiprobe.cc.o" "gcc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/multiprobe.cc.o.d"
  "/root/repo/src/baselines/srs/kdtree.cc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/srs/kdtree.cc.o" "gcc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/srs/kdtree.cc.o.d"
  "/root/repo/src/baselines/srs/srs.cc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/srs/srs.cc.o" "gcc" "src/baselines/CMakeFiles/c2lsh_baselines.dir/srs/srs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/c2lsh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/c2lsh_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/c2lsh_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/lsh/CMakeFiles/c2lsh_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/c2lsh_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
