file(REMOVE_RECURSE
  "libc2lsh_baselines.a"
)
