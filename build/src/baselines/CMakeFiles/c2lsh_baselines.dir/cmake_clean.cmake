file(REMOVE_RECURSE
  "CMakeFiles/c2lsh_baselines.dir/e2lsh.cc.o"
  "CMakeFiles/c2lsh_baselines.dir/e2lsh.cc.o.d"
  "CMakeFiles/c2lsh_baselines.dir/linear_scan.cc.o"
  "CMakeFiles/c2lsh_baselines.dir/linear_scan.cc.o.d"
  "CMakeFiles/c2lsh_baselines.dir/lsb/bptree.cc.o"
  "CMakeFiles/c2lsh_baselines.dir/lsb/bptree.cc.o.d"
  "CMakeFiles/c2lsh_baselines.dir/lsb/lsb_forest.cc.o"
  "CMakeFiles/c2lsh_baselines.dir/lsb/lsb_forest.cc.o.d"
  "CMakeFiles/c2lsh_baselines.dir/lsb/lsb_tree.cc.o"
  "CMakeFiles/c2lsh_baselines.dir/lsb/lsb_tree.cc.o.d"
  "CMakeFiles/c2lsh_baselines.dir/lsb/zorder.cc.o"
  "CMakeFiles/c2lsh_baselines.dir/lsb/zorder.cc.o.d"
  "CMakeFiles/c2lsh_baselines.dir/multiprobe.cc.o"
  "CMakeFiles/c2lsh_baselines.dir/multiprobe.cc.o.d"
  "CMakeFiles/c2lsh_baselines.dir/srs/kdtree.cc.o"
  "CMakeFiles/c2lsh_baselines.dir/srs/kdtree.cc.o.d"
  "CMakeFiles/c2lsh_baselines.dir/srs/srs.cc.o"
  "CMakeFiles/c2lsh_baselines.dir/srs/srs.cc.o.d"
  "libc2lsh_baselines.a"
  "libc2lsh_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2lsh_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
