# Empty dependencies file for c2lsh_baselines.
# This may be replaced when dependencies are built.
