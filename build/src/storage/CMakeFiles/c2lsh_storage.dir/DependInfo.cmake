
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/blob.cc" "src/storage/CMakeFiles/c2lsh_storage.dir/blob.cc.o" "gcc" "src/storage/CMakeFiles/c2lsh_storage.dir/blob.cc.o.d"
  "/root/repo/src/storage/bucket_table.cc" "src/storage/CMakeFiles/c2lsh_storage.dir/bucket_table.cc.o" "gcc" "src/storage/CMakeFiles/c2lsh_storage.dir/bucket_table.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/c2lsh_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/c2lsh_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_bucket_table.cc" "src/storage/CMakeFiles/c2lsh_storage.dir/disk_bucket_table.cc.o" "gcc" "src/storage/CMakeFiles/c2lsh_storage.dir/disk_bucket_table.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/storage/CMakeFiles/c2lsh_storage.dir/page_file.cc.o" "gcc" "src/storage/CMakeFiles/c2lsh_storage.dir/page_file.cc.o.d"
  "/root/repo/src/storage/page_model.cc" "src/storage/CMakeFiles/c2lsh_storage.dir/page_model.cc.o" "gcc" "src/storage/CMakeFiles/c2lsh_storage.dir/page_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/c2lsh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/c2lsh_vector.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
