file(REMOVE_RECURSE
  "libc2lsh_storage.a"
)
