file(REMOVE_RECURSE
  "CMakeFiles/c2lsh_storage.dir/blob.cc.o"
  "CMakeFiles/c2lsh_storage.dir/blob.cc.o.d"
  "CMakeFiles/c2lsh_storage.dir/bucket_table.cc.o"
  "CMakeFiles/c2lsh_storage.dir/bucket_table.cc.o.d"
  "CMakeFiles/c2lsh_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/c2lsh_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/c2lsh_storage.dir/disk_bucket_table.cc.o"
  "CMakeFiles/c2lsh_storage.dir/disk_bucket_table.cc.o.d"
  "CMakeFiles/c2lsh_storage.dir/page_file.cc.o"
  "CMakeFiles/c2lsh_storage.dir/page_file.cc.o.d"
  "CMakeFiles/c2lsh_storage.dir/page_model.cc.o"
  "CMakeFiles/c2lsh_storage.dir/page_model.cc.o.d"
  "libc2lsh_storage.a"
  "libc2lsh_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2lsh_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
