# Empty compiler generated dependencies file for c2lsh_storage.
# This may be replaced when dependencies are built.
