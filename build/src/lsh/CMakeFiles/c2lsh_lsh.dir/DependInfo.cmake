
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsh/collision_model.cc" "src/lsh/CMakeFiles/c2lsh_lsh.dir/collision_model.cc.o" "gcc" "src/lsh/CMakeFiles/c2lsh_lsh.dir/collision_model.cc.o.d"
  "/root/repo/src/lsh/compound.cc" "src/lsh/CMakeFiles/c2lsh_lsh.dir/compound.cc.o" "gcc" "src/lsh/CMakeFiles/c2lsh_lsh.dir/compound.cc.o.d"
  "/root/repo/src/lsh/pstable.cc" "src/lsh/CMakeFiles/c2lsh_lsh.dir/pstable.cc.o" "gcc" "src/lsh/CMakeFiles/c2lsh_lsh.dir/pstable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/c2lsh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/c2lsh_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/c2lsh_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
