# Empty dependencies file for c2lsh_lsh.
# This may be replaced when dependencies are built.
