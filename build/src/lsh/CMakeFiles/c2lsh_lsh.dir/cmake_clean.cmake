file(REMOVE_RECURSE
  "CMakeFiles/c2lsh_lsh.dir/collision_model.cc.o"
  "CMakeFiles/c2lsh_lsh.dir/collision_model.cc.o.d"
  "CMakeFiles/c2lsh_lsh.dir/compound.cc.o"
  "CMakeFiles/c2lsh_lsh.dir/compound.cc.o.d"
  "CMakeFiles/c2lsh_lsh.dir/pstable.cc.o"
  "CMakeFiles/c2lsh_lsh.dir/pstable.cc.o.d"
  "libc2lsh_lsh.a"
  "libc2lsh_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2lsh_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
