file(REMOVE_RECURSE
  "libc2lsh_lsh.a"
)
