file(REMOVE_RECURSE
  "libc2lsh_util.a"
)
