file(REMOVE_RECURSE
  "CMakeFiles/c2lsh_util.dir/argparse.cc.o"
  "CMakeFiles/c2lsh_util.dir/argparse.cc.o.d"
  "CMakeFiles/c2lsh_util.dir/math.cc.o"
  "CMakeFiles/c2lsh_util.dir/math.cc.o.d"
  "CMakeFiles/c2lsh_util.dir/random.cc.o"
  "CMakeFiles/c2lsh_util.dir/random.cc.o.d"
  "CMakeFiles/c2lsh_util.dir/status.cc.o"
  "CMakeFiles/c2lsh_util.dir/status.cc.o.d"
  "libc2lsh_util.a"
  "libc2lsh_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2lsh_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
