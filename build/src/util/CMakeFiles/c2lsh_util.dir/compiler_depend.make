# Empty compiler generated dependencies file for c2lsh_util.
# This may be replaced when dependencies are built.
