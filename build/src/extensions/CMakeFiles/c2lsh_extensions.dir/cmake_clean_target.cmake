file(REMOVE_RECURSE
  "libc2lsh_extensions.a"
)
