# Empty dependencies file for c2lsh_extensions.
# This may be replaced when dependencies are built.
