file(REMOVE_RECURSE
  "CMakeFiles/c2lsh_extensions.dir/qalsh/qalsh.cc.o"
  "CMakeFiles/c2lsh_extensions.dir/qalsh/qalsh.cc.o.d"
  "libc2lsh_extensions.a"
  "libc2lsh_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2lsh_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
