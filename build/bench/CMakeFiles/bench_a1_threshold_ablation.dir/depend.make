# Empty dependencies file for bench_a1_threshold_ablation.
# This may be replaced when dependencies are built.
