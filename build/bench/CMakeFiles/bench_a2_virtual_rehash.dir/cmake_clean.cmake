file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_virtual_rehash.dir/bench_a2_virtual_rehash.cc.o"
  "CMakeFiles/bench_a2_virtual_rehash.dir/bench_a2_virtual_rehash.cc.o.d"
  "bench_a2_virtual_rehash"
  "bench_a2_virtual_rehash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_virtual_rehash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
