# Empty dependencies file for bench_a2_virtual_rehash.
# This may be replaced when dependencies are built.
