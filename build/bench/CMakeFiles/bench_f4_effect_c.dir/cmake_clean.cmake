file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_effect_c.dir/bench_f4_effect_c.cc.o"
  "CMakeFiles/bench_f4_effect_c.dir/bench_f4_effect_c.cc.o.d"
  "bench_f4_effect_c"
  "bench_f4_effect_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_effect_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
