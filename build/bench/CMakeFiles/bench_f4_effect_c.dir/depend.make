# Empty dependencies file for bench_f4_effect_c.
# This may be replaced when dependencies are built.
