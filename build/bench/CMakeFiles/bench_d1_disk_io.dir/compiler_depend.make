# Empty compiler generated dependencies file for bench_d1_disk_io.
# This may be replaced when dependencies are built.
