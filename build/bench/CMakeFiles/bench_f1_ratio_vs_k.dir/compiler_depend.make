# Empty compiler generated dependencies file for bench_f1_ratio_vs_k.
# This may be replaced when dependencies are built.
