file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_ratio_vs_k.dir/bench_f1_ratio_vs_k.cc.o"
  "CMakeFiles/bench_f1_ratio_vs_k.dir/bench_f1_ratio_vs_k.cc.o.d"
  "bench_f1_ratio_vs_k"
  "bench_f1_ratio_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_ratio_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
