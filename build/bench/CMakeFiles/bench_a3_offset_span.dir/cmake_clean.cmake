file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_offset_span.dir/bench_a3_offset_span.cc.o"
  "CMakeFiles/bench_a3_offset_span.dir/bench_a3_offset_span.cc.o.d"
  "bench_a3_offset_span"
  "bench_a3_offset_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_offset_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
