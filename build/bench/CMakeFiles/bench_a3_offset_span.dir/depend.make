# Empty dependencies file for bench_a3_offset_span.
# This may be replaced when dependencies are built.
