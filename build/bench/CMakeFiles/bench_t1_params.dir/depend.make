# Empty dependencies file for bench_t1_params.
# This may be replaced when dependencies are built.
