file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_params.dir/bench_t1_params.cc.o"
  "CMakeFiles/bench_t1_params.dir/bench_t1_params.cc.o.d"
  "bench_t1_params"
  "bench_t1_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
