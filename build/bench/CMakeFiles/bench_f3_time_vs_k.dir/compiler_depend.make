# Empty compiler generated dependencies file for bench_f3_time_vs_k.
# This may be replaced when dependencies are built.
