file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_effect_beta.dir/bench_f5_effect_beta.cc.o"
  "CMakeFiles/bench_f5_effect_beta.dir/bench_f5_effect_beta.cc.o.d"
  "bench_f5_effect_beta"
  "bench_f5_effect_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_effect_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
