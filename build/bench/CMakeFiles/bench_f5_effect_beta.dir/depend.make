# Empty dependencies file for bench_f5_effect_beta.
# This may be replaced when dependencies are built.
