file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_qalsh.dir/bench_e1_qalsh.cc.o"
  "CMakeFiles/bench_e1_qalsh.dir/bench_e1_qalsh.cc.o.d"
  "bench_e1_qalsh"
  "bench_e1_qalsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_qalsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
