# Empty compiler generated dependencies file for bench_e1_qalsh.
# This may be replaced when dependencies are built.
