# Empty compiler generated dependencies file for bench_f6_scalability.
# This may be replaced when dependencies are built.
