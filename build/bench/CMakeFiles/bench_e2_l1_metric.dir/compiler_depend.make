# Empty compiler generated dependencies file for bench_e2_l1_metric.
# This may be replaced when dependencies are built.
