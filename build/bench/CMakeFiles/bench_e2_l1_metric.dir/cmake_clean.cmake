file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_l1_metric.dir/bench_e2_l1_metric.cc.o"
  "CMakeFiles/bench_e2_l1_metric.dir/bench_e2_l1_metric.cc.o.d"
  "bench_e2_l1_metric"
  "bench_e2_l1_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_l1_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
