# Empty compiler generated dependencies file for bench_t2_index_size.
# This may be replaced when dependencies are built.
