file(REMOVE_RECURSE
  "CMakeFiles/disk_index_test.dir/disk_index_test.cc.o"
  "CMakeFiles/disk_index_test.dir/disk_index_test.cc.o.d"
  "disk_index_test"
  "disk_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
