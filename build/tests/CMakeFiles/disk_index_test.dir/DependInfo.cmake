
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/disk_index_test.cc" "tests/CMakeFiles/disk_index_test.dir/disk_index_test.cc.o" "gcc" "tests/CMakeFiles/disk_index_test.dir/disk_index_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/c2lsh_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/c2lsh_extensions.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/c2lsh_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/c2lsh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lsh/CMakeFiles/c2lsh_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/c2lsh_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/c2lsh_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/c2lsh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
