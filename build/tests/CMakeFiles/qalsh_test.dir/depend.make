# Empty dependencies file for qalsh_test.
# This may be replaced when dependencies are built.
