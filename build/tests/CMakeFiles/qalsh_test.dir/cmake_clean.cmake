file(REMOVE_RECURSE
  "CMakeFiles/qalsh_test.dir/qalsh_test.cc.o"
  "CMakeFiles/qalsh_test.dir/qalsh_test.cc.o.d"
  "qalsh_test"
  "qalsh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qalsh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
