# Empty dependencies file for e2lsh_test.
# This may be replaced when dependencies are built.
