file(REMOVE_RECURSE
  "CMakeFiles/e2lsh_test.dir/e2lsh_test.cc.o"
  "CMakeFiles/e2lsh_test.dir/e2lsh_test.cc.o.d"
  "e2lsh_test"
  "e2lsh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2lsh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
