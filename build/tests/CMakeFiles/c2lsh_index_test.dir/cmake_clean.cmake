file(REMOVE_RECURSE
  "CMakeFiles/c2lsh_index_test.dir/c2lsh_index_test.cc.o"
  "CMakeFiles/c2lsh_index_test.dir/c2lsh_index_test.cc.o.d"
  "c2lsh_index_test"
  "c2lsh_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2lsh_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
