# Empty compiler generated dependencies file for c2lsh_index_test.
# This may be replaced when dependencies are built.
