# Empty compiler generated dependencies file for bucket_table_test.
# This may be replaced when dependencies are built.
