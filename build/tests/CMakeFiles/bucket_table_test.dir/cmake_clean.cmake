file(REMOVE_RECURSE
  "CMakeFiles/bucket_table_test.dir/bucket_table_test.cc.o"
  "CMakeFiles/bucket_table_test.dir/bucket_table_test.cc.o.d"
  "bucket_table_test"
  "bucket_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucket_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
