# Empty dependencies file for pstable_test.
# This may be replaced when dependencies are built.
