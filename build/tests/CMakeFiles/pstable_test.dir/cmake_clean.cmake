file(REMOVE_RECURSE
  "CMakeFiles/pstable_test.dir/pstable_test.cc.o"
  "CMakeFiles/pstable_test.dir/pstable_test.cc.o.d"
  "pstable_test"
  "pstable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
