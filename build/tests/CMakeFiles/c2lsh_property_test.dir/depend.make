# Empty dependencies file for c2lsh_property_test.
# This may be replaced when dependencies are built.
