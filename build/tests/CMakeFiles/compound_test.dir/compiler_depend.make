# Empty compiler generated dependencies file for compound_test.
# This may be replaced when dependencies are built.
