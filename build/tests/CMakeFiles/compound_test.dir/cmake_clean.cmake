file(REMOVE_RECURSE
  "CMakeFiles/compound_test.dir/compound_test.cc.o"
  "CMakeFiles/compound_test.dir/compound_test.cc.o.d"
  "compound_test"
  "compound_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
