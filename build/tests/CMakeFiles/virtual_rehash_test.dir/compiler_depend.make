# Empty compiler generated dependencies file for virtual_rehash_test.
# This may be replaced when dependencies are built.
