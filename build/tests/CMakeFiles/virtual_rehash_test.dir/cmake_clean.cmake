file(REMOVE_RECURSE
  "CMakeFiles/virtual_rehash_test.dir/virtual_rehash_test.cc.o"
  "CMakeFiles/virtual_rehash_test.dir/virtual_rehash_test.cc.o.d"
  "virtual_rehash_test"
  "virtual_rehash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_rehash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
