# Empty dependencies file for multiprobe_test.
# This may be replaced when dependencies are built.
