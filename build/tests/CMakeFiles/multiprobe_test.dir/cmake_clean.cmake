file(REMOVE_RECURSE
  "CMakeFiles/multiprobe_test.dir/multiprobe_test.cc.o"
  "CMakeFiles/multiprobe_test.dir/multiprobe_test.cc.o.d"
  "multiprobe_test"
  "multiprobe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprobe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
