# Empty dependencies file for page_model_test.
# This may be replaced when dependencies are built.
