file(REMOVE_RECURSE
  "CMakeFiles/page_model_test.dir/page_model_test.cc.o"
  "CMakeFiles/page_model_test.dir/page_model_test.cc.o.d"
  "page_model_test"
  "page_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
