file(REMOVE_RECURSE
  "CMakeFiles/lsb_test.dir/lsb_test.cc.o"
  "CMakeFiles/lsb_test.dir/lsb_test.cc.o.d"
  "lsb_test"
  "lsb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
