# Empty dependencies file for lsb_test.
# This may be replaced when dependencies are built.
