file(REMOVE_RECURSE
  "CMakeFiles/c2lsh_tool.dir/c2lsh_tool.cpp.o"
  "CMakeFiles/c2lsh_tool.dir/c2lsh_tool.cpp.o.d"
  "c2lsh_tool"
  "c2lsh_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2lsh_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
