# Empty compiler generated dependencies file for c2lsh_tool.
# This may be replaced when dependencies are built.
