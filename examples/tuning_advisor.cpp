// Tuning advisor — interactive exploration of C2LSH's parameter space
// without building a single index.
//
// Everything C2LSH promises is computable analytically from (n, w, c, delta,
// beta): the derived (m, l), the index size, the expected candidates per
// round, and the probability that an object at any given distance becomes a
// candidate. This tool prints those predictions so users can pick parameters
// *before* spending build time, the same way the paper's Section on
// parameter settings reasons.
//
// Run: ./build/examples/tuning_advisor --n=1000000 --c=2 --delta=0.1

#include <algorithm>
#include <cstdio>

#include "src/core/cost_model.h"
#include "src/core/index.h"
#include "src/core/params.h"
#include "src/core/theory.h"
#include "src/eval/table.h"
#include "src/util/argparse.h"
#include "src/vector/synthetic.h"

int main(int argc, char** argv) {
  using namespace c2lsh;

  ArgParser parser("tuning_advisor: analytic C2LSH parameter predictions");
  parser.AddInt("n", 100000, "dataset cardinality");
  parser.AddInt("dim", 128, "vector dimensionality (index-size estimate only)");
  parser.AddDouble("w", 1.0, "base bucket width");
  parser.AddDouble("c", 2.0, "approximation ratio (integer >= 2)");
  parser.AddDouble("delta", 0.1, "error probability");
  parser.AddDouble("beta_n", 100.0, "false-positive budget beta*n");
  parser.AddBool("simulate", false,
                 "also build a synthetic dataset at the given n, run the query-cost "
                 "model against it, and validate the predictions with real queries");
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.HelpString().c_str());
    return 0;
  }
  const size_t n = static_cast<size_t>(parser.GetInt("n"));
  const size_t dim = static_cast<size_t>(parser.GetInt("dim"));

  C2lshOptions options;
  options.w = parser.GetDouble("w");
  options.c = parser.GetDouble("c");
  options.delta = parser.GetDouble("delta");
  options.beta = parser.GetDouble("beta_n") / static_cast<double>(n);

  auto derived = ComputeDerivedParams(options, n);
  if (!derived.ok()) {
    std::fprintf(stderr, "%s\n", derived.status().ToString().c_str());
    return 1;
  }

  std::printf("Derived parameters for n=%zu:\n  %s\n\n", n,
              derived->ToString().c_str());

  // Index size estimate: m tables x n 4-byte ids (+ directory overhead),
  // plus m projection vectors.
  const double table_bytes =
      static_cast<double>(derived->m) * static_cast<double>(n) * 4.0 * 1.25;
  const double func_bytes = static_cast<double>(derived->m) * dim * 4.0;
  std::printf("Estimated index size: %.1f MiB (tables) + %.2f MiB (hash functions)\n",
              table_bytes / (1 << 20), func_bytes / (1 << 20));
  std::printf("Guarantee checks: P1 failure bound %.4f (<= delta %.2f), "
              "E[false positives] %.2f (<= beta*n/2 = %.1f)\n\n",
              P1FailureBound(*derived), options.delta,
              ExpectedFalsePositives(*derived, static_cast<double>(n)),
              derived->beta * static_cast<double>(n) / 2.0);

  // Candidate probability by distance, per round.
  std::printf("Probability an object becomes a candidate, by distance (in units\n"
              "of the round radius R):\n");
  TablePrinter table({"dist/R", "P[candidate]", "interpretation"});
  struct Row {
    double ratio;
    const char* note;
  };
  const Row rows[] = {
      {0.25, "very close - should be caught"},
      {0.5, ""},
      {1.0, "guarantee boundary (>= 1-delta)"},
      {1.5, "grey zone"},
      {2.0, "c*R boundary (false positive)"},
      {3.0, "far - should be ignored"},
      {4.0, ""},
  };
  for (const Row& row : rows) {
    table.AddRow({TablePrinter::Fmt(row.ratio, 2),
                  TablePrinter::Fmt(ProbFrequent(*derived, row.ratio, 1.0), 5),
                  row.note});
  }
  std::printf("%s", table.ToString().c_str());

  std::printf("\nWhat-if sweep over c:\n");
  TablePrinter sweep({"c", "m", "l", "est. index MiB", "P[cand] at cR"});
  for (double c : {2.0, 3.0, 4.0}) {
    C2lshOptions o = options;
    o.c = c;
    auto d = ComputeDerivedParams(o, n);
    if (!d.ok()) continue;
    sweep.AddRow({TablePrinter::Fmt(c, 0), TablePrinter::FmtInt(d->m),
                  TablePrinter::FmtInt(d->l),
                  TablePrinter::Fmt(static_cast<double>(d->m) * n * 5.0 / (1 << 20), 1),
                  TablePrinter::Fmt(ProbFrequent(*d, c, 1.0), 5)});
  }
  std::printf("%s", sweep.ToString().c_str());

  if (parser.GetBool("simulate")) {
    // Ground the closed-form predictions in a concrete dataset: sample a
    // distance profile, run the query-cost model, then measure for real.
    const size_t sim_n = std::min<size_t>(n, 20000);  // laptop-scale cap
    std::printf("\n--- simulation at n=%zu (Mnist profile) ---\n", sim_n);
    auto pd = MakeProfileDataset(DatasetProfile::kMnist, sim_n, 16, 99);
    if (!pd.ok()) {
      std::fprintf(stderr, "%s\n", pd.status().ToString().c_str());
      return 1;
    }
    auto sim_derived = ComputeDerivedParams(options, sim_n);
    if (!sim_derived.ok()) {
      std::fprintf(stderr, "%s\n", sim_derived.status().ToString().c_str());
      return 1;
    }
    auto profile = SampleDistanceProfile(pd->data, 16, 128, 10, 101);
    if (!profile.ok()) {
      std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
      return 1;
    }
    auto pred = PredictQueryCost(*sim_derived, *profile, 10);
    if (!pred.ok()) {
      std::fprintf(stderr, "%s\n", pred.status().ToString().c_str());
      return 1;
    }

    C2lshOptions sim_options = options;
    sim_options.seed = 103;
    auto index = C2lshIndex::Build(pd->data, sim_options);
    if (!index.ok()) {
      std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
      return 1;
    }
    double radius = 0, cands = 0, incs = 0;
    for (size_t q = 0; q < 16; ++q) {
      C2lshQueryStats stats;
      auto r = index->Query(pd->data, pd->queries.row(q), 10, &stats);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      radius += static_cast<double>(stats.final_radius);
      cands += static_cast<double>(stats.candidates_verified);
      incs += static_cast<double>(stats.collision_increments);
    }
    TablePrinter compare({"quantity", "predicted", "measured (mean of 16)"});
    compare.AddRow({"terminating radius", TablePrinter::FmtInt(pred->terminating_radius),
                    TablePrinter::Fmt(radius / 16.0, 1)});
    compare.AddRow({"candidates verified", TablePrinter::Fmt(pred->expected_candidates, 1),
                    TablePrinter::Fmt(cands / 16.0, 1)});
    compare.AddRow({"counter increments", TablePrinter::Fmt(pred->expected_increments, 0),
                    TablePrinter::Fmt(incs / 16.0, 0)});
    std::printf("%s", compare.ToString().c_str());
  }
  return 0;
}
