// Quickstart: the smallest complete C2LSH program.
//
//   1. Generate (or load) a dataset of float vectors.
//   2. Build a C2lshIndex with the paper's default parameters.
//   3. Run c-k-ANN queries and inspect results + per-query statistics.
//   4. Read the process-wide metrics the queries left behind.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/core/index.h"
#include "src/obs/registry.h"
#include "src/vector/ground_truth.h"
#include "src/vector/synthetic.h"

int main() {
  using namespace c2lsh;

  // 1. A synthetic clustered dataset (swap in ReadFvecs(...) for real data).
  auto pd = MakeProfileDataset(DatasetProfile::kMnist, /*n=*/10000,
                               /*num_queries=*/5, /*seed=*/42);
  if (!pd.ok()) {
    std::fprintf(stderr, "dataset: %s\n", pd.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = pd->data;
  std::printf("dataset: %s, n=%zu, d=%zu\n", data.name().c_str(), data.size(),
              data.dim());

  // 2. Build the index. The only knobs most users touch:
  //    c     - approximation ratio (integer >= 2)
  //    delta - per-query error probability
  //    beta  - false-positive budget (0 = the paper's 100/n)
  C2lshOptions options;
  options.c = 2.0;
  options.delta = 0.1;
  options.seed = 7;
  auto index = C2lshIndex::Build(data, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("index built: %s\n", index->derived().ToString().c_str());
  std::printf("index size: %.2f MiB\n",
              static_cast<double>(index->MemoryBytes()) / (1 << 20));

  // 3. Query. Results carry exact distances; stats show what the search did.
  for (size_t q = 0; q < pd->queries.num_rows(); ++q) {
    C2lshQueryStats stats;
    auto result = index->Query(data, pd->queries.row(q), /*k=*/5, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nquery %zu: %zu neighbors in %llu rounds (final R=%lld, "
                "%llu candidates verified, %llu pages)\n",
                q, result->size(), static_cast<unsigned long long>(stats.rounds),
                static_cast<long long>(stats.final_radius),
                static_cast<unsigned long long>(stats.candidates_verified),
                static_cast<unsigned long long>(stats.total_pages()));
    for (const Neighbor& nb : *result) {
      std::printf("  id=%u  dist=%.4f\n", nb.id, nb.dist);
    }
  }

  // 4. Every query also fed the process-wide metrics registry. Pull a few
  //    aggregates back out (tools/metrics_dump prints the whole registry as
  //    a table, JSON, or Prometheus text; benches accept --metrics_out).
  auto& registry = obs::MetricsRegistry::Global();
  const obs::Counter* rounds = registry.FindCounter("c2lsh_rounds_total");
  const obs::Histogram* lat = registry.FindHistogram("c2lsh_query_millis");
  if (rounds != nullptr && lat != nullptr && lat->count() > 0) {
    std::printf("\nmetrics: %llu rehash rounds over %llu queries, "
                "query latency p50=%.3f ms p95=%.3f ms\n",
                static_cast<unsigned long long>(rounds->value()),
                static_cast<unsigned long long>(lat->count()),
                lat->Percentile(0.50), lat->Percentile(0.95));
  }
  return 0;
}
