// Near-duplicate audio detection — a dynamic-index workload.
//
// Simulates an audio fingerprint catalog (192-d features, the Audio profile)
// that grows over time: new tracks stream in, each is first checked against
// the index for near-duplicates (distance below a threshold) and then
// inserted. Exercises the dynamic Insert/Delete/Compact path of C2lshIndex
// and the (R, c)-NN decision primitive.
//
// Run: ./build/examples/audio_dedup [--catalog=8000] [--stream=500]

#include <cstdio>

#include "src/core/index.h"
#include "src/util/argparse.h"
#include "src/util/random.h"
#include "src/vector/distance.h"
#include "src/vector/synthetic.h"

int main(int argc, char** argv) {
  using namespace c2lsh;

  ArgParser parser("audio_dedup: streaming near-duplicate detection with dynamic inserts");
  parser.AddInt("catalog", 8000, "initial catalog size");
  parser.AddInt("stream", 500, "tracks streamed in afterwards");
  parser.AddDouble("dup_fraction", 0.2, "fraction of streamed tracks that are near-dups");
  parser.AddInt("seed", 3, "seed");
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.HelpString().c_str());
    return 0;
  }
  const size_t catalog_n = static_cast<size_t>(parser.GetInt("catalog"));
  const size_t stream_n = static_cast<size_t>(parser.GetInt("stream"));
  const double dup_fraction = parser.GetDouble("dup_fraction");
  const uint64_t seed = static_cast<uint64_t>(parser.GetInt("seed"));

  // Full universe: catalog + stream slots in one dataset so the index can
  // verify against it (the index stores only ids + hashes).
  auto pd = MakeProfileDataset(DatasetProfile::kAudio, catalog_n + stream_n,
                               /*num_queries=*/1, seed);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().ToString().c_str());
    return 1;
  }
  FloatMatrix all = pd->data.vectors();  // copy so we can overwrite stream rows
  Rng rng(seed + 99);

  // Make a known fraction of the streamed tracks near-duplicates of random
  // catalog tracks (tiny jitter), the rest stay genuinely new.
  const size_t dim = all.dim();
  std::vector<bool> is_dup(stream_n, false);
  for (size_t s = 0; s < stream_n; ++s) {
    if (rng.Bernoulli(dup_fraction)) {
      is_dup[s] = true;
      const size_t src = rng.Index(catalog_n);
      float* dst = all.mutable_row(catalog_n + s);
      for (size_t j = 0; j < dim; ++j) {
        dst[j] = all.at(src, j) + static_cast<float>(rng.Gaussian(0.0, 0.02));
      }
    }
  }
  auto universe = Dataset::Create("audio-universe", std::move(all));
  if (!universe.ok()) {
    std::fprintf(stderr, "%s\n", universe.status().ToString().c_str());
    return 1;
  }

  // Build the index over the catalog prefix only.
  auto prefix_m = FloatMatrix::Create(catalog_n, dim);
  for (size_t i = 0; i < catalog_n; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      prefix_m->set(i, j, universe->vectors().at(i, j));
    }
  }
  auto catalog = Dataset::Create("catalog", std::move(prefix_m.value()));
  C2lshOptions options;
  options.seed = seed;
  auto index = C2lshIndex::Build(catalog.value(), options);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("Catalog indexed: %zu tracks, %zu hash tables\n", catalog_n,
              index->num_tables());

  // Stream: detect-then-insert. A track is flagged as a duplicate when its
  // nearest indexed track lies within dup_threshold. Planted near-dups sit
  // at ~0.02*sqrt(d) ≈ 0.3 data units; genuine neighbors are several units
  // away, so 1.0 separates the two populations.
  const double dup_threshold = 1.0;
  size_t true_pos = 0, false_pos = 0, false_neg = 0, inserted = 0;
  for (size_t s = 0; s < stream_n; ++s) {
    const ObjectId id = static_cast<ObjectId>(catalog_n + s);
    const float* track = universe->object(id);
    auto nn = index->Query(universe.value(), track, 1);
    if (!nn.ok()) {
      std::fprintf(stderr, "query: %s\n", nn.status().ToString().c_str());
      return 1;
    }
    const bool flagged = !nn->empty() && (*nn)[0].dist <= dup_threshold;
    if (flagged && is_dup[s]) ++true_pos;
    if (flagged && !is_dup[s]) ++false_pos;
    if (!flagged && is_dup[s]) ++false_neg;
    if (!flagged) {
      if (Status st = index->Insert(id, track); !st.ok()) {
        std::fprintf(stderr, "insert: %s\n", st.ToString().c_str());
        return 1;
      }
      ++inserted;
    }
  }
  std::printf("\nStreamed %zu tracks: %zu inserted as new\n", stream_n, inserted);
  std::printf("Duplicate detection: %zu true positives, %zu false positives, "
              "%zu false negatives\n",
              true_pos, false_pos, false_neg);

  // Periodic maintenance: fold the delta overlays back into flat tables.
  index->Compact();
  std::printf("Compacted; index now tracks %zu objects (%.2f MiB)\n",
              index->num_objects(),
              static_cast<double>(index->MemoryBytes()) / (1 << 20));

  // Verify an inserted track is now served from the index.
  if (inserted > 0) {
    for (size_t s = 0; s < stream_n; ++s) {
      if (!is_dup[s]) {
        const ObjectId id = static_cast<ObjectId>(catalog_n + s);
        auto check = index->Query(universe.value(), universe->object(id), 1);
        if (check.ok() && !check->empty() && (*check)[0].id == id) {
          std::printf("Post-compaction lookup of inserted track %u: OK (dist=0)\n", id);
        }
        break;
      }
    }
  }
  return 0;
}
